//! Failure-injection tests: the controller must degrade gracefully when
//! its inputs (job profiles, arrival-rate estimates) are wrong — the
//! real system's profilers are regressions over noisy observations
//! (§3.1), so robustness to estimation error is part of the contract.

#![deny(deprecated)]

use dynaplace::model::units::SimDuration;
use dynaplace::sim::engine::{EstimationNoise, NodeOutage, SimConfig};
use dynaplace::sim::scenario::{experiment_one, experiment_three, experiment_two, SharingConfig};

/// ±30% misestimated job profiles: every job still completes, and most
/// deadlines are still met (the goals carry 2.7× slack).
#[test]
fn misestimated_job_profiles_degrade_gracefully() {
    let mut config = SimConfig::apc_default();
    config.noise = EstimationNoise {
        job_work: 0.3,
        txn_rate: 0.0,
    };
    let metrics = experiment_one(42, 60, 260.0, config).run();
    assert_eq!(metrics.completions.len(), 60, "all jobs must complete");
    assert!(
        metrics.deadline_met_ratio().unwrap() >= 0.95,
        "goals have 2.7x slack; ±30% error must not break them: {:?}",
        metrics.deadline_met_ratio()
    );
}

/// Misestimation must not be able to wedge the controller even under
/// contention with mixed shapes.
#[test]
fn misestimation_under_heavy_load_still_completes() {
    let mut config = SimConfig::apc_default();
    config.noise = EstimationNoise {
        job_work: 0.4,
        txn_rate: 0.0,
    };
    let metrics = experiment_two(7, 80, 80.0, config).run();
    assert_eq!(metrics.completions.len(), 80, "all jobs must complete");
    // Under misestimation the hit rate drops but the system still works.
    assert!(metrics.deadline_met_ratio().unwrap() > 0.5);
}

/// Underestimating the transactional arrival rate starves the web tier
/// of allocation; overestimating it starves batch. Both must remain
/// stable (jobs complete, no panic, allocations within capacity).
#[test]
fn txn_rate_misestimation_is_stable() {
    for bias in [-0.3, 0.3] {
        let mut config = SimConfig::apc_default();
        config.horizon = Some(SimDuration::from_secs(40_000.0));
        config.noise = EstimationNoise {
            job_work: 0.0,
            txn_rate: bias,
        };
        let metrics = experiment_three(42, 30, 200.0, 800.0, SharingConfig::Dynamic, config).run();
        assert_eq!(metrics.completions.len(), 30, "bias {bias}");
        // Total allocation never exceeds the 25-node cluster capacity.
        for s in &metrics.samples {
            let total = s.txn_allocation.as_mhz() + s.batch_allocation.as_mhz();
            assert!(total <= 390_000.0 + 1.0, "over-allocation at {:?}", s.time);
        }
        // The actual (truth-based) transactional performance is reported
        // from the router, so underestimation shows up as reduced u —
        // but never below the representable floor, and the run finishes.
        assert!(metrics.samples.iter().all(|s| s.txn_rp.is_some()));
    }
}

/// Noise is deterministic: the same configuration reproduces bit-equal
/// runs (the bias is a pure function of the application id).
#[test]
fn noisy_runs_are_deterministic() {
    let run = || {
        let mut config = SimConfig::apc_default();
        config.noise = EstimationNoise {
            job_work: 0.25,
            txn_rate: 0.1,
        };
        experiment_two(3, 40, 120.0, config).run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.completions.len(), b.completions.len());
    for (x, y) in a.completions.iter().zip(&b.completions) {
        assert_eq!(x.completion, y.completion);
    }
}

/// A node failure mid-run: jobs on the failed node are suspended and
/// re-placed on survivors; everything still completes.
#[test]
fn node_failure_recovers() {
    use dynaplace::batch::job::{JobProfile, JobSpec};
    use dynaplace::model::cluster::Cluster;
    use dynaplace::model::node::NodeSpec;
    use dynaplace::model::units::*;
    use dynaplace::model::NodeId;
    use dynaplace::rpf::goal::CompletionGoal;
    use dynaplace::sim::engine::Simulation;

    let cluster = Cluster::homogeneous(
        3,
        NodeSpec::try_new(CpuSpeed::from_mhz(2_000.0), Memory::from_mb(4_000.0))
            .expect("valid node capacities"),
    );
    let mut config = SimConfig::apc_default();
    config.cycle = SimDuration::from_secs(10.0);
    config.horizon = Some(SimDuration::from_secs(5_000.0));
    // Node 0 dies 30 s in.
    config.node_failures = vec![NodeOutage::permanent(
        SimDuration::from_secs(30.0),
        NodeId::new(0),
    )];

    let mut sim = Simulation::new(cluster, config);
    for i in 0..6 {
        sim.add_job(move |app| {
            JobSpec::new(
                app,
                JobProfile::single_stage(
                    Work::from_mcycles(100_000.0),
                    CpuSpeed::from_mhz(1_000.0),
                    Memory::from_mb(1_500.0),
                ),
                SimTime::from_secs(i as f64),
                CompletionGoal::new(SimTime::from_secs(i as f64), SimTime::from_secs(2_000.0)),
            )
        });
    }
    let metrics = sim.run();
    assert_eq!(metrics.completions.len(), 6, "all jobs survive the failure");
    // Victims of the failure were suspended and resumed elsewhere.
    assert!(metrics.changes.suspends >= 1, "failure suspends residents");
    assert!(metrics.changes.resumes >= 1, "survivors resume elsewhere");
    assert!(
        metrics.completions.iter().all(|c| c.met_deadline),
        "loose goals absorb the failure"
    );
}

/// A failed node is never used again: with only one node and a failure,
/// nothing completes after it and the run ends at the horizon.
#[test]
fn failed_single_node_halts_progress() {
    use dynaplace::batch::job::{JobProfile, JobSpec};
    use dynaplace::model::cluster::Cluster;
    use dynaplace::model::node::NodeSpec;
    use dynaplace::model::units::*;
    use dynaplace::model::NodeId;
    use dynaplace::rpf::goal::CompletionGoal;
    use dynaplace::sim::engine::Simulation;

    let cluster = Cluster::homogeneous(
        1,
        NodeSpec::try_new(CpuSpeed::from_mhz(1_000.0), Memory::from_mb(4_000.0))
            .expect("valid node capacities"),
    );
    let mut config = SimConfig::apc_default();
    config.cycle = SimDuration::from_secs(5.0);
    config.horizon = Some(SimDuration::from_secs(500.0));
    config.node_failures = vec![NodeOutage::permanent(
        SimDuration::from_secs(10.0),
        NodeId::new(0),
    )];

    let mut sim = Simulation::new(cluster, config);
    sim.add_job(|app| {
        JobSpec::new(
            app,
            JobProfile::single_stage(
                Work::from_mcycles(100_000.0), // needs 100 s — dies at 10 s
                CpuSpeed::from_mhz(1_000.0),
                Memory::from_mb(1_000.0),
            ),
            SimTime::ZERO,
            CompletionGoal::new(SimTime::ZERO, SimTime::from_secs(400.0)),
        )
    });
    let metrics = sim.run();
    assert!(metrics.completions.is_empty(), "no capacity after failure");
    assert!(metrics.changes.suspends >= 1);
}

/// Placement-level failure drill through the shared invariant checker:
/// after a node's capacity is zeroed (the engine's failure model) and
/// its residents evicted, re-placement lands only on survivors and the
/// outcome satisfies every [`PlacementInvariants`] clause.
#[test]
fn replacement_after_node_loss_respects_invariants() {
    use dynaplace::apc::optimizer::{place, ApcConfig};
    use dynaplace::apc::problem::PlacementProblem;
    use dynaplace::model::cluster::Cluster;
    use dynaplace::model::node::NodeSpec;
    use dynaplace::model::units::{CpuSpeed, Memory};
    use dynaplace::model::NodeId;
    use dynaplace_testutil::fixtures::{JobParams, ProblemFixture, ProblemParams};
    use dynaplace_testutil::PlacementInvariants;

    let params = ProblemParams {
        nodes: vec![(2_000.0, 4_000.0), (2_000.0, 4_000.0), (2_000.0, 4_000.0)],
        jobs: (0..5)
            .map(|i| JobParams {
                work: 60_000.0 + 5_000.0 * i as f64,
                max_speed: 900.0,
                memory: 1_100.0,
                goal_factor: 2.5,
                progress: 0.2,
                placed_on: Some(i % 3),
            })
            .collect(),
        txn: None,
    };
    let fixture = ProblemFixture::build(&params);
    let healthy = place(&fixture.problem(), &ApcConfig::default());
    PlacementInvariants::assert_outcome(&fixture.problem(), &healthy);

    // Node 0 fails: zero its capacity (as the engine does) and evict
    // its residents from the incumbent placement.
    let dead = NodeId::new(0);
    let mut degraded = Cluster::new();
    for (id, spec) in fixture.cluster.iter() {
        if id == dead {
            degraded.add_node(
                NodeSpec::try_new(CpuSpeed::ZERO, Memory::ZERO).expect("valid node capacities"),
            );
        } else {
            degraded.add_node(spec.clone());
        }
    }
    let mut incumbent = healthy.placement.clone();
    let victims: Vec<_> = incumbent.apps_on(dead).map(|(app, _)| app).collect();
    assert!(
        !victims.is_empty(),
        "drill needs residents on the dead node"
    );
    for app in victims {
        while incumbent.count(app, dead) > 0 {
            incumbent.remove(app, dead).unwrap();
        }
    }
    let problem = PlacementProblem {
        cluster: &degraded,
        apps: &fixture.apps,
        workloads: fixture.workloads.clone(),
        current: &incumbent,
        now: fixture.now,
        cycle: fixture.cycle,
        forbidden: Default::default(),
    };
    let recovered = place(&problem, &ApcConfig::default());
    PlacementInvariants::assert_outcome(&problem, &recovered);
    for (app, node, count) in recovered.placement.iter() {
        assert!(
            node != dead || count == 0,
            "instances of {app:?} re-placed on the failed node"
        );
    }
    assert!(
        recovered.placement.total_placed() > 0,
        "survivors must keep hosting work"
    );
}

/// The work-profiler loop (§3.1): with online demand estimation enabled,
/// Experiment Three still equalizes — the regression converges to the
/// true per-request demand within a couple of cycles.
#[test]
fn online_demand_estimation_still_equalizes() {
    use dynaplace::sim::scenario::{experiment_three, SharingConfig};

    let mut config = SimConfig::apc_default();
    config.horizon = Some(SimDuration::from_secs(40_000.0));
    config.estimate_txn_demand = true;
    let metrics = experiment_three(42, 30, 200.0, 800.0, SharingConfig::Dynamic, config).run();
    assert_eq!(metrics.completions.len(), 30);
    // Equalization still happens under estimated demand.
    let min_gap = metrics
        .samples
        .iter()
        .filter_map(|s| match (s.txn_rp, s.batch_hypothetical_rp) {
            (Some(t), Some(b)) if s.running_jobs > 10 => Some((t.value() - b.value()).abs()),
            _ => None,
        })
        .fold(f64::INFINITY, f64::min);
    assert!(
        min_gap < 0.07,
        "equalization gap {min_gap} under estimation"
    );
    // And the unloaded phase still pins TX at its saturation allocation
    // (the estimate is within the ±2% measurement error).
    let tx_max = metrics
        .samples
        .iter()
        .map(|s| s.txn_allocation.as_mhz())
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        (tx_max - 130_000.0).abs() < 6_000.0,
        "saturation under estimation: {tx_max}"
    );
}
