//! Differential tests for the decision-provenance tracing contract:
//!
//! 1. tracing must be *inert* — a run with the default [`NoopSink`] and a
//!    run with a buffering [`JsonlSink`] produce bit-identical placements
//!    and metrics (tracing observes decisions, never influences them);
//! 2. trace *content* must be deterministic — two traced runs of the same
//!    scenario yield byte-identical deterministic JSONL.

#![deny(deprecated)]

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use dynaplace::apc::optimizer::{place, place_traced, ApcConfig};
use dynaplace::apc::problem::{PlacementProblem, WorkloadModel};
use dynaplace::batch::hypothetical::JobSnapshot;
use dynaplace::batch::job::JobProfile;
use dynaplace::model::prelude::*;
use dynaplace::rpf::goal::CompletionGoal;
use dynaplace::sim::metrics::RunMetrics;
use dynaplace::sim::spec::ScenarioSpec;
use dynaplace::trace::{JsonlSink, TraceLevel, TraceSink};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn mixed_workload() -> ScenarioSpec {
    let path = repo_root().join("scenarios/mixed_workload.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    ScenarioSpec::from_json_str(&text).expect("valid scenario")
}

/// Strips the only legitimately nondeterministic quantity in a run's
/// metrics (host wall-clock compute times) so the rest can be compared
/// bit for bit.
fn deterministic_view(mut metrics: RunMetrics) -> RunMetrics {
    for sample in &mut metrics.samples {
        sample.placement_compute_secs = 0.0;
    }
    metrics
}

#[test]
fn traced_and_untraced_runs_are_bit_identical() {
    // Baseline: the default build path, which installs a NoopSink.
    let spec = mixed_workload();
    let mut baseline_sim = spec.build();
    baseline_sim.record_placements(true);
    let baseline = deterministic_view(baseline_sim.run());

    // Same scenario, but with a verbose buffering sink attached.
    let mut traced_sim = spec.build();
    traced_sim.record_placements(true);
    let sink = Arc::new(JsonlSink::new(TraceLevel::Verbose));
    traced_sim.set_trace_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
    let traced = deterministic_view(traced_sim.run());

    assert!(!sink.is_empty(), "verbose trace of a real run is non-empty");
    assert_eq!(baseline.samples, traced.samples);
    assert_eq!(baseline.completions, traced.completions);
    assert_eq!(baseline.changes, traced.changes);
    assert_eq!(baseline.actuation, traced.actuation);
    assert_eq!(baseline.placements, traced.placements);
}

#[test]
fn trace_content_is_deterministic_across_runs() {
    let spec = mixed_workload();
    let run = || {
        let mut sim = spec.build();
        let sink = Arc::new(JsonlSink::new(TraceLevel::Decisions));
        sim.set_trace_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
        sim.run();
        sink.deterministic_jsonl()
    };
    let first = run();
    let second = run();
    assert!(!first.is_empty());
    assert_eq!(first, second, "deterministic trace must be byte-identical");
}

/// A small two-node, two-job problem with one job already running, so
/// the optimizer exercises removals, adoption, and rejection paths.
fn small_problem(
    cluster: &Cluster,
    apps: &AppSet,
    current: &Placement,
    jobs: &[(AppId, f64)],
) -> PlacementProblem<'static> {
    // Leaked allocations keep the lifetimes simple inside the test; the
    // process exits right after.
    let cluster: &'static Cluster = Box::leak(Box::new(cluster.clone()));
    let apps: &'static AppSet = Box::leak(Box::new(apps.clone()));
    let current: &'static Placement = Box::leak(Box::new(current.clone()));
    let mut workloads = BTreeMap::new();
    for &(app, work) in jobs {
        workloads.insert(
            app,
            WorkloadModel::Batch(JobSnapshot::new(
                app,
                CompletionGoal::new(SimTime::ZERO, SimTime::from_secs(30.0)),
                std::sync::Arc::new(JobProfile::single_stage(
                    Work::from_mcycles(work),
                    CpuSpeed::from_mhz(1_000.0),
                    Memory::from_mb(700.0),
                )),
                Work::ZERO,
                SimDuration::from_secs(1.0),
            )),
        );
    }
    PlacementProblem {
        cluster,
        apps,
        workloads,
        current,
        now: SimTime::ZERO,
        cycle: SimDuration::from_secs(1.0),
        forbidden: Default::default(),
    }
}

#[test]
fn place_traced_returns_the_same_outcome_bits_as_place() {
    let mut cluster = Cluster::new();
    let n0 = cluster.add_node(
        NodeSpec::try_new(CpuSpeed::from_mhz(1_000.0), Memory::from_mb(1_500.0))
            .expect("valid node capacities"),
    );
    cluster.add_node(
        NodeSpec::try_new(CpuSpeed::from_mhz(800.0), Memory::from_mb(1_500.0))
            .expect("valid node capacities"),
    );
    let mut apps = AppSet::new();
    let j1 = apps.add(ApplicationSpec::batch(
        Memory::from_mb(700.0),
        CpuSpeed::from_mhz(1_000.0),
    ));
    let j2 = apps.add(ApplicationSpec::batch(
        Memory::from_mb(700.0),
        CpuSpeed::from_mhz(1_000.0),
    ));
    let mut current = Placement::new();
    current.place(j1, n0);

    let problem = small_problem(&cluster, &apps, &current, &[(j1, 8_000.0), (j2, 20_000.0)]);
    let config = ApcConfig::default();

    let untraced = place(&problem, &config);
    let sink = JsonlSink::new(TraceLevel::Verbose);
    let traced = place_traced(&problem, &config, &sink);

    assert!(!sink.is_empty(), "a verbose optimizer trace is non-empty");
    // The Debug rendering prints every f64 in shortest-round-trip form,
    // so equal strings mean bit-identical outcomes.
    assert_eq!(format!("{untraced:?}"), format!("{traced:?}"));
    assert_eq!(untraced.placement, traced.placement);
    assert_eq!(untraced.stats, traced.stats);
}
