//! Cross-crate integration tests: scaled-down versions of the paper's
//! experiments asserting the qualitative shapes the figures show.

#![deny(deprecated)]

use dynaplace::apc::optimizer::ApcConfig;
use dynaplace::apc::PolicyHandle;
use dynaplace::model::units::SimDuration;
use dynaplace::sim::costs::VmCostModel;
use dynaplace::sim::engine::{MetricsRetention, SimConfig, DEFAULT_STALL_LIMIT};
use dynaplace::sim::scenario::{
    experiment_one, experiment_three, experiment_two, paper_example, ExampleScenario, SharingConfig,
};

/// Scaled Experiment One: the plateau sits at 1 − 17,600/47,520 ≈ 0.63,
/// every deadline is met, and no job is ever suspended or migrated.
#[test]
fn experiment_one_shape() {
    let metrics = experiment_one(42, 60, 260.0, SimConfig::apc_default()).run();
    assert_eq!(metrics.completions.len(), 60);
    assert_eq!(metrics.deadline_met_ratio(), Some(1.0));
    assert_eq!(metrics.changes.suspends, 0);
    assert_eq!(metrics.changes.migrations, 0);
    let plateau = metrics
        .samples
        .iter()
        .filter_map(|s| s.batch_hypothetical_rp)
        .map(|u| u.value())
        .fold(f64::NEG_INFINITY, f64::max);
    assert!((plateau - 0.6296).abs() < 0.01, "plateau {plateau}");
    // Actual completion performance is predicted by the hypothetical:
    // every completion's u is below the plateau and above the worst dip.
    let dip = metrics
        .samples
        .iter()
        .filter_map(|s| s.batch_hypothetical_rp)
        .map(|u| u.value())
        .fold(f64::INFINITY, f64::min);
    for c in &metrics.completions {
        assert!(c.rp.value() <= plateau + 0.02);
        assert!(
            c.rp.value() >= dip - 0.05,
            "completion {} vs dip {dip}",
            c.rp
        );
    }
}

/// Scaled Experiment Two at heavy load: FCFS collapses, EDF and APC stay
/// close, EDF churns the most, FCFS never changes placements.
#[test]
fn experiment_two_shape_heavy_load() {
    let fcfs = experiment_two(7, 150, 50.0, SimConfig::fcfs_default()).run();
    let edf = experiment_two(7, 150, 50.0, SimConfig::edf_default()).run();
    let apc = experiment_two(7, 150, 50.0, SimConfig::apc_default()).run();

    let met = |m: &dynaplace::sim::RunMetrics| m.deadline_met_ratio().unwrap_or(0.0);
    assert!(met(&fcfs) < met(&edf), "EDF must beat FCFS under load");
    assert!(met(&fcfs) < met(&apc), "APC must beat FCFS under load");
    assert!(
        (met(&edf) - met(&apc)).abs() < 0.3,
        "EDF and APC stay comparable: {} vs {}",
        met(&edf),
        met(&apc)
    );
    assert_eq!(fcfs.changes.disruptive_total(), 0);
    assert!(
        edf.changes.disruptive_total() > apc.changes.disruptive_total(),
        "EDF churns more than APC: {} vs {}",
        edf.changes.disruptive_total(),
        apc.changes.disruptive_total()
    );
}

/// Scaled Experiment Two at light load: everyone meets everything.
#[test]
fn experiment_two_shape_light_load() {
    for config in [
        SimConfig::fcfs_default(),
        SimConfig::edf_default(),
        SimConfig::apc_default(),
    ] {
        let metrics = experiment_two(7, 60, 400.0, config).run();
        assert!(
            metrics.deadline_met_ratio().unwrap_or(0.0) > 0.95,
            "underloaded systems meet essentially all deadlines"
        );
    }
}

/// Scaled Experiment Three: dynamic sharing equalizes the two workloads'
/// relative performance under contention, and the transactional
/// allocation is drawn down then restored.
#[test]
fn experiment_three_dynamic_equalizes() {
    let mut config = SimConfig::apc_default();
    config.horizon = Some(SimDuration::from_secs(45_000.0));
    let metrics = experiment_three(42, 40, 180.0, 900.0, SharingConfig::Dynamic, config).run();

    // At some loaded sample the gap between TX and LR performance closes.
    let min_gap = metrics
        .samples
        .iter()
        .filter_map(|s| match (s.txn_rp, s.batch_hypothetical_rp) {
            (Some(t), Some(b)) if s.running_jobs > 10 => Some((t.value() - b.value()).abs()),
            _ => None,
        })
        .fold(f64::INFINITY, f64::min);
    assert!(min_gap < 0.05, "equalization gap {min_gap}");

    // TX allocation peaks at its saturation (≈130,000 MHz) and dips
    // under pressure.
    let tx_max = metrics
        .samples
        .iter()
        .map(|s| s.txn_allocation.as_mhz())
        .fold(f64::NEG_INFINITY, f64::max);
    let tx_min_loaded = metrics
        .samples
        .iter()
        .filter(|s| s.running_jobs > 10)
        .map(|s| s.txn_allocation.as_mhz())
        .fold(f64::INFINITY, f64::min);
    assert!((tx_max - 130_000.0).abs() < 2_000.0, "tx_max {tx_max}");
    assert!(tx_min_loaded < tx_max - 1_000.0);
}

/// Scaled Experiment Three: the static 9-node partition pegs the
/// transactional workload at its maximum while jobs see less capacity.
#[test]
fn experiment_three_static_partitions() {
    let mut config = SimConfig::fcfs_default();
    config.horizon = Some(SimDuration::from_secs(45_000.0));
    let tx9 = experiment_three(
        42,
        40,
        180.0,
        900.0,
        SharingConfig::StaticTx9,
        config.clone(),
    )
    .run();
    for s in &tx9.samples {
        let u = s.txn_rp.expect("txn present").value();
        assert!((u - 0.66).abs() < 0.01, "TX9 pegged at 0.66, got {u}");
        assert!((s.txn_allocation.as_mhz() - 130_000.0).abs() < 1.0);
    }
    let tx6 = experiment_three(42, 40, 180.0, 900.0, SharingConfig::StaticTx6, config).run();
    for s in &tx6.samples {
        // 6 nodes = 93,600 MHz < saturation: worse response time, lower u.
        assert!((s.txn_allocation.as_mhz() - 93_600.0).abs() < 1.0);
        let u = s.txn_rp.expect("txn present").value();
        assert!(u < 0.66 - 0.01, "TX6 must sit below the maximum, got {u}");
    }
}

/// The §4.3 example under the paper-narrative configuration: all jobs
/// complete, and in S2 the tighter goal makes J2 finish earlier.
#[test]
fn paper_example_scenarios() {
    let config = || SimConfig {
        cycle: SimDuration::from_secs(1.0),
        horizon: Some(SimDuration::from_secs(100.0)),
        costs: VmCostModel::free(),
        scheduler: PolicyHandle::apc_with(ApcConfig::paper_narrative(), false),
        batch_nodes: None,
        static_txn_nodes: None,
        noise: dynaplace::sim::engine::EstimationNoise::NONE,
        profile_from_history: false,
        node_failures: Vec::new(),
        estimate_txn_demand: false,
        record_placements: false,
        actuation: Default::default(),
        observation: Default::default(),
        trace: Default::default(),
        stall_limit: DEFAULT_STALL_LIMIT,
        retention: MetricsRetention::Full,
    };
    let s1 = paper_example(ExampleScenario::S1, config()).run();
    let s2 = paper_example(ExampleScenario::S2, config()).run();
    assert_eq!(s1.completions.len(), 3);
    assert_eq!(s2.completions.len(), 3);
    let j2 = |m: &dynaplace::sim::RunMetrics| {
        m.completions
            .iter()
            .find(|c| c.app.index() == 1)
            .unwrap()
            .completion
            .as_secs()
    };
    assert!(
        j2(&s2) < j2(&s1),
        "S2 starts J2 earlier: {} vs {}",
        j2(&s2),
        j2(&s1)
    );
}

/// Every controller outcome — across batch-only, mixed, and
/// memory-tight worlds, via both entry points — satisfies the shared
/// [`PlacementInvariants`] checker (the same one the differential and
/// failure-injection suites use).
#[test]
fn controller_outcomes_satisfy_shared_invariants() {
    use dynaplace::apc::optimizer::{fill_only, place};
    use dynaplace_testutil::fixtures::{JobParams, ProblemFixture, ProblemParams, TxnParams};
    use dynaplace_testutil::PlacementInvariants;

    let job = |work: f64, speed: f64, mem: f64, placed: Option<u32>| JobParams {
        work,
        max_speed: speed,
        memory: mem,
        goal_factor: 2.0,
        progress: 0.0,
        placed_on: placed,
    };
    let worlds = [
        // Batch-only, under-committed: everything should start.
        ProblemParams {
            nodes: vec![(2_000.0, 4_000.0), (2_000.0, 4_000.0)],
            jobs: vec![job(50_000.0, 800.0, 1_000.0, None); 3],
            txn: None,
        },
        // Mixed with a transactional tier competing for CPU.
        ProblemParams {
            nodes: vec![(3_000.0, 8_000.0), (1_500.0, 4_000.0), (1_500.0, 4_000.0)],
            jobs: vec![
                job(80_000.0, 1_200.0, 1_500.0, Some(0)),
                job(40_000.0, 600.0, 900.0, None),
                job(120_000.0, 1_000.0, 1_200.0, Some(1)),
            ],
            txn: Some(TxnParams {
                rate: 40.0,
                demand: 30.0,
                memory: 1_000.0,
            }),
        },
        // Memory-tight: not everything fits; whatever is placed must
        // still respect capacity.
        ProblemParams {
            nodes: vec![(2_000.0, 2_000.0)],
            jobs: vec![job(60_000.0, 700.0, 1_500.0, None); 4],
            txn: None,
        },
    ];
    for (i, params) in worlds.iter().enumerate() {
        let fixture = ProblemFixture::build(params);
        let problem = fixture.problem();
        let config = ApcConfig::default();
        let placed = place(&problem, &config);
        PlacementInvariants::assert_outcome(&problem, &placed);
        let filled = fill_only(&problem, &config);
        PlacementInvariants::assert_outcome(&problem, &filled);
        assert!(
            placed.placement.total_placed() > 0,
            "world {i}: controller placed nothing"
        );
    }
}

/// Determinism across the whole stack: same seed, same everything.
#[test]
fn full_stack_determinism() {
    let run = || {
        experiment_three(
            9,
            25,
            200.0,
            600.0,
            SharingConfig::Dynamic,
            SimConfig {
                horizon: Some(SimDuration::from_secs(30_000.0)),
                ..SimConfig::apc_default()
            },
        )
        .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.completions.len(), b.completions.len());
    for (x, y) in a.completions.iter().zip(&b.completions) {
        assert_eq!(x.app, y.app);
        assert_eq!(x.completion, y.completion);
    }
    assert_eq!(a.changes, b.changes);
    for (sa, sb) in a.samples.iter().zip(&b.samples) {
        assert_eq!(sa.txn_allocation, sb.txn_allocation);
        assert_eq!(sa.batch_allocation, sb.batch_allocation);
    }
}
