//! Integration tests for on-the-fly profile generation: the controller
//! plans with class-history work estimates instead of the (unknowable)
//! true profiles.

#![deny(deprecated)]

use dynaplace::batch::job::{JobProfile, JobSpec};
use dynaplace::model::cluster::Cluster;
use dynaplace::model::node::NodeSpec;
use dynaplace::model::units::*;
use dynaplace::rpf::goal::CompletionGoal;
use dynaplace::sim::engine::{SimConfig, Simulation};

fn cluster() -> Cluster {
    Cluster::homogeneous(
        2,
        NodeSpec::try_new(CpuSpeed::from_mhz(2_000.0), Memory::from_mb(4_000.0))
            .expect("valid node capacities"),
    )
}

fn config() -> SimConfig {
    SimConfig {
        cycle: SimDuration::from_secs(30.0),
        horizon: Some(SimDuration::from_secs(20_000.0)),
        profile_from_history: true,
        ..SimConfig::apc_default()
    }
}

fn classed_job(
    sim: &mut Simulation,
    class: &str,
    work: f64,
    arrival: f64,
    deadline: f64,
) -> dynaplace::model::AppId {
    let class = class.to_string();
    sim.add_job(move |app| {
        JobSpec::new(
            app,
            JobProfile::single_stage(
                Work::from_mcycles(work),
                CpuSpeed::from_mhz(1_000.0),
                Memory::from_mb(1_000.0),
            ),
            SimTime::from_secs(arrival),
            CompletionGoal::new(SimTime::from_secs(arrival), SimTime::from_secs(deadline)),
        )
        .with_class(class)
    })
}

/// A stream of identical classed jobs: once three have completed the
/// controller plans from history; estimates are exact, so behaviour is
/// unchanged and every goal is met.
#[test]
fn identical_class_history_is_exact() {
    let mut sim = Simulation::new(cluster(), config());
    for i in 0..12 {
        let arrival = i as f64 * 60.0;
        classed_job(&mut sim, "etl", 30_000.0, arrival, arrival + 300.0);
    }
    let metrics = sim.run();
    assert_eq!(metrics.completions.len(), 12);
    assert!(metrics.completions.iter().all(|c| c.met_deadline));
}

/// Heterogeneous work within a class: the controller plans with the
/// running mean. All jobs still complete; goals with 3× slack absorb the
/// estimation error.
#[test]
fn varied_class_history_degrades_gracefully() {
    let mut sim = Simulation::new(cluster(), config());
    let works = [
        24_000.0, 36_000.0, 30_000.0, 27_000.0, 33_000.0, 30_000.0, 21_000.0, 39_000.0,
    ];
    for (i, &work) in works.iter().enumerate() {
        let arrival = i as f64 * 60.0;
        // Deadline with 3x slack over the *true* work at 1,000 MHz.
        let deadline = arrival + 3.0 * work / 1_000.0;
        classed_job(&mut sim, "analytics", work, arrival, deadline);
    }
    let metrics = sim.run();
    assert_eq!(metrics.completions.len(), works.len());
    let met = metrics
        .completions
        .iter()
        .filter(|c| c.met_deadline)
        .count();
    assert!(
        met >= works.len() - 1,
        "at most one miss under ±30% class variance, got {met}/{}",
        works.len()
    );
}

/// Untagged jobs are unaffected by the flag: exact profiles are used.
#[test]
fn untagged_jobs_use_true_profiles() {
    let mut sim = Simulation::new(cluster(), config());
    let app = sim.add_job(|app| {
        JobSpec::new(
            app,
            JobProfile::single_stage(
                Work::from_mcycles(20_000.0),
                CpuSpeed::from_mhz(1_000.0),
                Memory::from_mb(1_000.0),
            ),
            SimTime::ZERO,
            CompletionGoal::new(SimTime::ZERO, SimTime::from_secs(100.0)),
        )
    });
    let metrics = sim.run();
    let c = metrics.completions.iter().find(|c| c.app == app).unwrap();
    // Placed immediately; 3.6 s boot + 20 s at 1,000 MHz.
    assert!(
        (c.completion.as_secs() - 23.6).abs() < 0.1,
        "completed at {}",
        c.completion
    );
}
