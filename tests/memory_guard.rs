//! The constant-memory contract of the streaming control plane, at a
//! size the debug-build fast tier can afford.
//!
//! Under [`MetricsRetention::Aggregate`] a finished job leaves the
//! engine entirely: its completion record folds into running totals, its
//! state is dropped, and its application id is recycled. This file pins
//! the observable half of that contract — aggregate totals are exactly
//! the fold of the per-record metrics a full-retention run produces —
//! and sanity-checks the `VmHWM` plumbing the CLI's `--max-rss-mb`
//! guard reads. The full-scale guard (a day-long, 100k-job generated
//! trace under a hard RSS bound) runs against the release binary in CI:
//! `simulate tests/perf/streaming_memory_guard.json --generate --strict
//! --max-rss-mb <MB>`, relaxed on every push and tight nightly.

#![deny(deprecated)]

use dynaplace::sim::spec::{
    BatchStreamSpec, GoalSpec, ProcessSpec, ScenarioSpec, TxnCurveSpec, TxnStreamSpec, WorkloadSpec,
};
use dynaplace::sim::MetricsRetention;

const JOBS: u64 = 1_000;

/// A purely generative scenario: no classic jobs, one Poisson batch
/// firehose plus a small transactional app, ending when the capped
/// stream drains.
fn firehose_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec {
        seed: 7,
        scheduler: "apc".to_string(),
        cycle_secs: 60.0,
        horizon_secs: None,
        free_vm_costs: true,
        resources: vec![],
        nodes: vec![dynaplace::sim::spec::NodeGroupSpec {
            count: 2,
            name: None,
            cpu_mhz: 6_000.0,
            memory_mb: 8_192.0,
            resources: Default::default(),
        }],
        jobs: vec![],
        txns: vec![],
        workload: Some(WorkloadSpec {
            batch_streams: vec![BatchStreamSpec {
                name: Some("firehose".to_string()),
                process: ProcessSpec::Poisson { rate_per_sec: 2.0 },
                count: Some(JOBS),
                work_mcycles: 600.0,
                max_speed_mhz: 600.0,
                memory_mb: 256.0,
                goal: GoalSpec::Factor(20.0),
                tasks: 1,
                class: None,
                resources: Default::default(),
            }],
            txn_streams: vec![TxnStreamSpec {
                name: Some("portal".to_string()),
                curve: TxnCurveSpec::Population {
                    users: 100.0,
                    think_time_secs: 10.0,
                },
                demand_mcycles: 8.0,
                floor_secs: 0.01,
                goal_secs: 0.1,
                memory_mb: 512.0,
                max_instances: 1,
                resources: Default::default(),
            }],
        }),
        node_failures: vec![],
        actuation: Default::default(),
        deadline_secs: None,
        sharding: None,
        observation: None,
        trace: Default::default(),
    };
    assert_eq!(spec.validate(), Ok(()));
    // Ensure the run terminates: txn streams keep the control loop
    // armed, so bound the run just past the stream's expected drain.
    spec.horizon_secs = Some(1_000.0);
    spec
}

/// Aggregate retention drains the whole stream, keeps no per-job
/// records, and its folded totals agree with the full-retention run.
///
/// The comparison is semantic, not bit-exact: aggregate retention
/// recycles the application ids of finished jobs, and the optimizer's
/// documented ascending-app-id tie-break can then hand the luxury CPU
/// share to a different (relabeled) job, shifting individual
/// completion instants by floating-point noise. Lock-step vs streaming
/// bit-equality (tests/streaming_equivalence.rs) holds under *full*
/// retention, where ids are never recycled.
#[test]
fn aggregate_retention_folds_to_the_full_retention_totals() {
    let spec = firehose_spec();

    let full = {
        let sim = spec.build_streaming_checked().unwrap();
        sim.run()
    };
    let aggregate = {
        let mut sim = spec.build_streaming_checked().unwrap();
        sim.set_retention(MetricsRetention::Aggregate);
        sim.run()
    };

    assert_eq!(full.completions.len(), JOBS as usize);
    assert!(full.totals.is_none());
    assert!(
        aggregate.completions.is_empty(),
        "aggregate retention must not retain per-job records"
    );
    let totals = aggregate.totals.expect("aggregate run folds totals");
    assert_eq!(totals.count, JOBS);
    assert_eq!(aggregate.completed_jobs(), full.completed_jobs());

    let met = full.completions.iter().filter(|c| c.met_deadline).count() as u64;
    assert_eq!(totals.met_deadlines, met);
    let sum_rp: f64 = full.completions.iter().map(|c| c.rp.value()).sum();
    let drift = (totals.sum_rp - sum_rp).abs() / sum_rp.abs().max(1.0);
    assert!(
        drift < 1e-6,
        "aggregate rp sum drifted beyond id-relabeling noise: {} vs {} ({drift:e})",
        totals.sum_rp,
        sum_rp
    );
    assert_eq!(
        aggregate.deadline_met_ratio(),
        full.deadline_met_ratio(),
        "both runs met (or missed) the same fraction of deadlines"
    );

    // The cycle schedule is horizon-driven, identical across retention
    // modes even when individual allocations differ by relabeling.
    assert_eq!(aggregate.samples.len(), full.samples.len());
}

/// The `VmHWM` probe the CLI memory guard reads must parse on Linux;
/// elsewhere it degrades to a skip, never a panic.
#[test]
fn peak_rss_probe_parses_or_degrades() {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return; // not Linux: the CLI guard skips too
    };
    let line = status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .expect("Linux exposes VmHWM");
    let kb: f64 = line
        .split_whitespace()
        .nth(1)
        .expect("VmHWM carries a value")
        .parse()
        .expect("VmHWM value is numeric");
    assert!(kb > 0.0, "a running process has a nonzero peak RSS");
}
