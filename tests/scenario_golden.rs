//! Golden-file regression tests over the checked-in scenarios.
//!
//! Each scenario runs end to end with per-cycle placement recording on;
//! the per-cycle satisfaction samples and placement deltas are rendered
//! to a stable text form and compared line-by-line against
//! `tests/golden/<scenario>.txt`. Any behavioral drift in the
//! controller, the load distributor, or the simulator shows up as a
//! readable diff naming the first diverging cycle.
//!
//! Bless intentional changes with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test scenario_golden
//! ```
//!
//! Every run is checked against the whole-run invariants in
//! `dynaplace_testutil::oracle` before its rendering is compared — or
//! blessed. A golden is only as good as the run it pins, so a run that
//! violates the invariants can never be written back as the new
//! expectation, even under `UPDATE_GOLDEN=1`.

#![deny(deprecated)]

use std::fmt::Write as _;
use std::path::PathBuf;

use dynaplace::model::placement::Placement;
use dynaplace::sim::metrics::RunMetrics;
use dynaplace::sim::spec::ScenarioSpec;
use dynaplace_testutil::{oracle, render_placement_diff};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Renders the parts of a run the goldens pin down: one block per
/// control cycle (satisfaction sample + placement delta), then the
/// aggregate change counters.
fn render(metrics: &RunMetrics) -> String {
    assert_eq!(
        metrics.samples.len(),
        metrics.placements.len(),
        "recording must produce one placement per cycle sample"
    );
    let fmt_rp = |rp: Option<dynaplace::rpf::value::Rp>| match rp {
        Some(u) => format!("{:+.6}", u.value()),
        None => "n/a".into(),
    };
    let mut out = String::new();
    let mut previous = Placement::new();
    for (sample, record) in metrics.samples.iter().zip(&metrics.placements) {
        writeln!(
            out,
            "t={:.0}s batch_rp={} txn_rp={} batch={:.1}MHz txn={:.1}MHz running={} waiting={}",
            sample.time.as_secs(),
            fmt_rp(sample.batch_hypothetical_rp),
            fmt_rp(sample.txn_rp),
            sample.batch_allocation.as_mhz(),
            sample.txn_allocation.as_mhz(),
            sample.running_jobs,
            sample.waiting_jobs,
        )
        .unwrap();
        if sample.pending_actions > 0 {
            // Only flaky runs have unreconciled actions; keeping the line
            // conditional leaves pre-actuation goldens byte-identical.
            out.truncate(out.len() - 1);
            writeln!(out, " pending={}", sample.pending_actions).unwrap();
        }
        if !sample.rigid_utilization.is_empty() {
            // Only multi-dimension scenarios sample extra rigid dims;
            // memory-only goldens stay byte-identical.
            let dims: Vec<String> = sample
                .rigid_utilization
                .iter()
                .map(|r| format!("{}={:.0}/{:.0}", r.dim, r.used, r.capacity))
                .collect();
            writeln!(out, "  rigid: {}", dims.join(" ")).unwrap();
        }
        for line in render_placement_diff(&previous, &record.placement).lines() {
            writeln!(out, "  {line}").unwrap();
        }
        previous = record.placement.clone();
    }
    writeln!(
        out,
        "changes: starts={} suspends={} resumes={} migrations={}",
        metrics.changes.starts,
        metrics.changes.suspends,
        metrics.changes.resumes,
        metrics.changes.migrations,
    )
    .unwrap();
    if metrics.actuation != Default::default() {
        // Same reasoning: the actuation line only appears once a run
        // exercised the fallible layer.
        let a = &metrics.actuation;
        writeln!(
            out,
            "actuation: failed={} timed_out={} retries={} deferrals={} quarantines={} \
             fallbacks={} truncations={} skips={}",
            a.failed_ops,
            a.timed_out_ops,
            a.retries,
            a.deferrals,
            a.quarantines,
            a.fill_only_fallbacks,
            a.deadline_truncations,
            a.invariant_skips,
        )
        .unwrap();
    }
    if metrics.observation != Default::default() {
        // And again: the observation line only appears once a run
        // exercised the imperfect-telemetry layer.
        let o = &metrics.observation;
        writeln!(
            out,
            "observation: missed={} lost={} suspects={} deaths={} reinstatements={} \
             stale_holds={} fill_only={}",
            o.missed_heartbeats,
            o.lost_reports,
            o.suspects,
            o.deaths,
            o.reinstatements,
            o.stale_holds,
            o.fill_only_degrades,
        )
        .unwrap();
    }
    writeln!(out, "completions: {}", metrics.completions.len()).unwrap();
    out
}

/// Line-by-line comparison with a readable report: names the first
/// diverging line — and the cycle, app, and field it falls on — and
/// shows both versions with two lines of context.
fn assert_matches_golden(name: &str, actual: &str) {
    assert_matches_golden_file(&format!("{name}.txt"), name, actual);
}

/// Best-effort semantic location of the first diverging line: the cycle
/// block it falls under (nearest preceding `t=...` header), the app a
/// placement-diff line names (`aN@nM: x -> y`), and the first
/// `key=value` token whose value changed between the two versions.
fn locate_divergence(exp: &[&str], act: &[&str], first_diff: usize) -> String {
    let mut parts = Vec::new();
    if let Some(cycle) = exp
        .iter()
        .take(first_diff + 1)
        .rev()
        .find_map(|l| l.split_whitespace().next().filter(|t| t.starts_with("t=")))
    {
        parts.push(format!("cycle {cycle}"));
    }
    if let Some(line) = act.get(first_diff).or_else(|| exp.get(first_diff)) {
        if let Some(tok) = line.split_whitespace().find(|t| {
            t.starts_with('a') && t[1..].chars().next().is_some_and(|c| c.is_ascii_digit())
        }) {
            parts.push(format!("app {}", tok.trim_end_matches(':')));
        }
    }
    if let (Some(e), Some(a)) = (exp.get(first_diff), act.get(first_diff)) {
        if let Some(field) = e
            .split_whitespace()
            .zip(a.split_whitespace())
            .find(|(x, y)| x != y)
            .and_then(|(x, y)| {
                let (xk, _) = x.split_once('=')?;
                let (yk, _) = y.split_once('=')?;
                (xk == yk).then(|| xk.to_string())
            })
        {
            parts.push(format!("field {field}"));
        }
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!(" ({})", parts.join(", "))
    }
}

fn assert_matches_golden_file(filename: &str, name: &str, actual: &str) {
    let path = repo_root().join("tests/golden").join(filename);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let first_diff = exp
        .iter()
        .zip(&act)
        .position(|(e, a)| e != a)
        .unwrap_or(exp.len().min(act.len()));
    let lo = first_diff.saturating_sub(2);
    let mut report = format!(
        "{name} diverges from {} at line {}{} (expected {} lines, got {}):\n",
        path.display(),
        first_diff + 1,
        locate_divergence(&exp, &act, first_diff),
        exp.len(),
        act.len()
    );
    for i in lo..(first_diff + 3) {
        match (exp.get(i), act.get(i)) {
            (Some(e), Some(a)) if e == a => {
                let _ = writeln!(report, "   {:>5} | {e}", i + 1);
            }
            _ => {
                if let Some(e) = exp.get(i) {
                    let _ = writeln!(report, " - {:>5} | {e}", i + 1);
                }
                if let Some(a) = act.get(i) {
                    let _ = writeln!(report, " + {:>5} | {a}", i + 1);
                }
            }
        }
    }
    report.push_str("re-bless intentional changes with UPDATE_GOLDEN=1");
    panic!("{report}");
}

#[test]
fn divergence_locator_names_cycle_app_and_field() {
    let exp = vec![
        "t=0s batch_rp=+0.5 running=1 waiting=0",
        "  (no change)",
        "t=10s batch_rp=+0.5 running=1 waiting=0",
        "  a3@n1: 0 -> 1",
    ];
    let mut act = exp.clone();
    act[2] = "t=10s batch_rp=+0.25 running=1 waiting=0";
    assert_eq!(
        locate_divergence(&exp, &act, 2),
        " (cycle t=10s, field batch_rp)"
    );
    let mut act = exp.clone();
    act[3] = "  a3@n1: 0 -> 2";
    assert_eq!(
        locate_divergence(&exp, &act, 3),
        " (cycle t=10s, app a3@n1)"
    );
    // One side shorter than the other: the extra line still locates.
    assert_eq!(
        locate_divergence(&exp, &exp[..3], 3),
        " (cycle t=10s, app a3@n1)"
    );
}

fn load_scenario(name: &str) -> ScenarioSpec {
    let path = repo_root().join("scenarios").join(format!("{name}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    ScenarioSpec::from_json_str(&text)
        .unwrap_or_else(|e| panic!("invalid scenario {}: {e}", path.display()))
}

/// Checks the run against the fuzz oracle's whole-run invariants. Under
/// `UPDATE_GOLDEN=1` this runs *before* any golden is written, so a
/// broken run can never be blessed as the new expectation.
fn check_invariants(name: &str, spec: &ScenarioSpec, metrics: &RunMetrics) {
    if let Err(msg) = oracle::check_run_message(spec, metrics) {
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            panic!("refusing to bless {name}: the run violates invariants:\n{msg}");
        }
        panic!("{name}: the run violates invariants:\n{msg}");
    }
}

fn run_scenario(name: &str) -> RunMetrics {
    let spec = load_scenario(name);
    let mut sim = spec.build();
    sim.record_placements(true);
    let metrics = sim.run();
    check_invariants(name, &spec, &metrics);
    metrics
}

#[test]
fn mixed_workload_matches_golden() {
    let metrics = run_scenario("mixed_workload");
    assert_matches_golden("mixed_workload", &render(&metrics));
}

/// The decision trace of the mixed workload, in deterministic form
/// (wall-clock fields stripped), pinned line by line. Any change to
/// *why* the controller decides what it decides — not just *what* it
/// decides — shows up here as a readable diff.
#[test]
fn mixed_workload_trace_matches_golden() {
    use std::sync::Arc;

    use dynaplace::trace::{JsonlSink, TraceLevel, TraceSink};

    let spec = load_scenario("mixed_workload");
    let mut sim = spec.build();
    sim.record_placements(true);
    let sink = Arc::new(JsonlSink::new(TraceLevel::Decisions));
    sim.set_trace_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
    let metrics = sim.run();
    check_invariants("mixed_workload trace", &spec, &metrics);
    assert_matches_golden_file(
        "mixed_workload.trace.jsonl",
        "mixed_workload trace",
        &sink.deterministic_jsonl(),
    );
}

#[test]
fn node_failure_drill_matches_golden() {
    let metrics = run_scenario("node_failure_drill");
    assert_matches_golden("node_failure_drill", &render(&metrics));
}

#[test]
fn flaky_cluster_matches_golden() {
    let metrics = run_scenario("flaky_cluster");
    assert_matches_golden("flaky_cluster", &render(&metrics));
}

#[test]
fn sharded_cluster_matches_golden() {
    let metrics = run_scenario("sharded_cluster");
    assert_matches_golden("sharded_cluster", &render(&metrics));
}

#[test]
fn multi_resource_matches_golden() {
    let metrics = run_scenario("multi_resource");
    assert_matches_golden("multi_resource", &render(&metrics));
}

#[test]
fn noisy_telemetry_matches_golden() {
    let metrics = run_scenario("noisy_telemetry");
    assert_matches_golden("noisy_telemetry", &render(&metrics));
}

/// The imperfect-telemetry acceptance bar: the checked-in scenario must
/// actually flap (suspects, false-positive deaths, reinstatements, and
/// stale holds all occur), yet every job completes and the controller is
/// fully reconciled once the lossy-transport window closes and the
/// health machine's hysteresis has drained.
#[test]
fn noisy_telemetry_flaps_and_recovers() {
    let spec = load_scenario("noisy_telemetry");
    let obs_spec = spec
        .observation
        .clone()
        .expect("scenario ships an observation block");
    let metrics = run_scenario("noisy_telemetry");

    let o = &metrics.observation;
    assert!(
        o.suspects > 0 && o.deaths > 0 && o.reinstatements > 0 && o.stale_holds > 0,
        "the golden scenario must exercise the whole health machine: {o:?}"
    );
    assert_eq!(
        metrics.completions.len(),
        spec.jobs.iter().map(|g| g.count).sum::<usize>(),
        "every job completes despite flapping telemetry"
    );
    let hysteresis = f64::from(
        obs_spec.dead_after + obs_spec.reinstate_after + obs_spec.staleness_budget_cycles + 5,
    );
    let settled =
        obs_spec.loss_until_secs.expect("bounded loss window") + hysteresis * spec.cycle_secs;
    for s in &metrics.samples {
        if s.time.as_secs() >= settled {
            assert_eq!(
                s.pending_actions,
                0,
                "unreconciled actions at t={:.0}s after telemetry recovered",
                s.time.as_secs()
            );
        }
    }

    // The exactly-off contract, as `simulate --no-observation-faults`
    // applies it: stripping the block yields a clean perfect-telemetry
    // run whose counters never move.
    let mut perfect = spec.clone();
    perfect.observation = None;
    let clean = perfect.build().run();
    assert_eq!(clean.observation, Default::default());
    assert_eq!(clean.completions.len(), metrics.completions.len());
}

/// The multi-dimension acceptance bar: the `license_slots` dimension in
/// `multi_resource.json` must change a decision memory alone would not
/// force. Each licensed node carries one slot and each `cad` job demands
/// one, so the checked-in run may never co-locate two `cad` jobs; with
/// every `resources` block stripped (memory-only, the pre-refactor
/// model), the optimizer packs them onto the fast nodes.
#[test]
fn license_dimension_forces_a_spread_memory_would_not() {
    use std::collections::BTreeMap;

    use dynaplace::model::ids::NodeId;

    let spec = load_scenario("multi_resource");
    assert_eq!(
        spec.resources,
        ["disk_mb", "net_mbps", "license_slots"],
        "scenario must declare three extra rigid dimensions"
    );
    let mut memory_only = spec.clone();
    memory_only.resources.clear();
    memory_only
        .nodes
        .iter_mut()
        .for_each(|g| g.resources.clear());
    memory_only
        .jobs
        .iter_mut()
        .for_each(|g| g.resources.clear());
    memory_only
        .txns
        .iter_mut()
        .for_each(|t| t.resources.clear());

    // The four `cad` jobs are the first job group, so they hold the
    // first four dense application ids.
    let max_cad_per_node = |metrics: &RunMetrics| -> u32 {
        let mut max = 0;
        for record in &metrics.placements {
            let mut per_node: BTreeMap<NodeId, u32> = BTreeMap::new();
            for (app, node, count) in record.placement.iter() {
                if app.index() < 4 {
                    *per_node.entry(node).or_default() += count;
                }
            }
            max = max.max(per_node.values().copied().max().unwrap_or(0));
        }
        max
    };

    let run = |spec: &ScenarioSpec| -> RunMetrics {
        let mut sim = spec.build();
        sim.record_placements(true);
        sim.run()
    };
    let licensed = run(&spec);
    let unconstrained = run(&memory_only);
    assert_eq!(
        licensed.completions.len(),
        7,
        "all four cad and three render jobs must finish despite slot scarcity"
    );
    assert_eq!(
        max_cad_per_node(&licensed),
        1,
        "one license slot per node must forbid co-locating cad jobs"
    );
    assert!(
        max_cad_per_node(&unconstrained) >= 2,
        "without the license dimension, memory alone co-locates cad jobs"
    );
}

/// The sharding acceptance bar on quality: cell-scoped solving plus
/// cross-cell rebalancing may not cost satisfaction. The same scenario
/// runs once as checked in (sharded) and once with sharding stripped;
/// the sharded run must complete every job the whole-cluster run does
/// and keep the mean final relative performance within noise of it.
#[test]
fn sharded_cluster_satisfaction_no_worse_than_unsharded() {
    let spec = load_scenario("sharded_cluster");
    assert!(spec.sharding.is_some(), "scenario must ship sharded");
    let mut unsharded_spec = spec.clone();
    unsharded_spec.sharding = None;

    let mean_rp = |metrics: &RunMetrics| -> f64 {
        let total: f64 = metrics.completions.iter().map(|c| c.rp.value()).sum();
        total / metrics.completions.len() as f64
    };
    let sharded = spec.build().run();
    let unsharded = unsharded_spec.build().run();
    assert!(
        sharded.completions.len() >= unsharded.completions.len(),
        "sharding lost completions: {} vs {}",
        sharded.completions.len(),
        unsharded.completions.len()
    );
    let (s, u) = (mean_rp(&sharded), mean_rp(&unsharded));
    assert!(
        s >= u - 0.05,
        "sharded mean final satisfaction regressed: {s:.4} vs unsharded {u:.4}"
    );
}
