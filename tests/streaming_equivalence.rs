//! Lock-step vs streaming control-plane equivalence over the checked-in
//! scenario corpus.
//!
//! The streaming control plane ([`ScenarioSpec::build_streaming`]) draws
//! submissions lazily from a [`dynaplace::sim::WorkloadSource`] instead
//! of registering everything up front. The contract is *bit-equality*:
//! replaying any scenario through the streaming adapter must produce a
//! run indistinguishable — every cycle sample, completion record,
//! placement, and counter compared via `to_bits` — from the classic
//! in-memory build. [`first_divergence`] names the first cycle, app, and
//! field that drifts, so a failure here is actionable without re-running
//! anything.

#![deny(deprecated)]

use std::path::PathBuf;

use dynaplace::sim::metrics::RunMetrics;
use dynaplace::sim::spec::ScenarioSpec;
use dynaplace_testutil::oracle::{first_divergence, DiffOptions};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn load_scenario(path: &std::path::Path) -> ScenarioSpec {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    ScenarioSpec::from_json_str(&text)
        .unwrap_or_else(|e| panic!("invalid scenario {}: {e}", path.display()))
}

fn run_lockstep(spec: &ScenarioSpec) -> RunMetrics {
    let mut sim = spec.build();
    sim.record_placements(true);
    sim.run()
}

fn run_streaming(spec: &ScenarioSpec) -> RunMetrics {
    let mut sim = spec
        .build_streaming_checked()
        .expect("scenario validated by the lock-step build");
    sim.record_placements(true);
    sim.run()
}

/// Every checked-in scenario — including the generative
/// `diurnal_stream` one — replayed through the streaming adapter is
/// bit-identical to the direct in-memory run.
#[test]
fn every_scenario_is_bit_identical_through_the_streaming_adapter() {
    let dir = repo_root().join("scenarios");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", dir.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 7,
        "expected the full scenario corpus, found {paths:?}"
    );
    for path in paths {
        let spec = load_scenario(&path);
        let lockstep = run_lockstep(&spec);
        let streaming = run_streaming(&spec);
        if let Some(divergence) = first_divergence(&lockstep, &streaming, DiffOptions::default()) {
            panic!(
                "{}: streaming run diverges from lock-step:\n{divergence}",
                path.display()
            );
        }
    }
}

/// The pinned repro corpus (fuzz finds blessed as permanent scenarios)
/// holds the same contract: the streaming adapter is not allowed to
/// change a single bit of any regression run.
#[test]
fn every_pinned_repro_is_bit_identical_through_the_streaming_adapter() {
    let dir = repo_root().join("tests/repro");
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return; // no repro corpus checked in
    };
    let mut paths: Vec<PathBuf> = entries
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let spec = load_scenario(&path);
        let lockstep = run_lockstep(&spec);
        let streaming = run_streaming(&spec);
        if let Some(divergence) = first_divergence(&lockstep, &streaming, DiffOptions::default()) {
            panic!(
                "{}: streaming run diverges from lock-step:\n{divergence}",
                path.display()
            );
        }
    }
}
