//! The paper's fairness claim (§2), tested: the extended max-min
//! objective prevents the starvation that a total-performance maximizer
//! (the approach of Wang et al. [17]) exhibits.
//!
//! Scenario: one memory slot, one *expensive* job (slow speed cap, so
//! its relative performance is costly to raise) competing with a stream
//! of *cheap* jobs (fast, loose goals). A sum-maximizer prefers running
//! the cheap jobs — each yields more aggregate performance per cycle —
//! and starves the expensive job past its deadline. Max-min gives the
//! least-satisfied application the slot.

#![deny(deprecated)]

use dynaplace::apc::optimizer::{ApcConfig, Objective};
use dynaplace::apc::PolicyHandle;
use dynaplace::batch::job::{JobProfile, JobSpec};
use dynaplace::model::cluster::Cluster;
use dynaplace::model::node::NodeSpec;
use dynaplace::model::units::*;
use dynaplace::model::AppId;
use dynaplace::rpf::goal::CompletionGoal;
use dynaplace::sim::costs::VmCostModel;
use dynaplace::sim::engine::{SimConfig, Simulation};
use dynaplace::sim::RunMetrics;

fn run(objective: Objective) -> (AppId, RunMetrics) {
    let mut cluster = Cluster::new();
    // One slot: 1,000 MHz, memory fits exactly one job.
    cluster.add_node(
        NodeSpec::try_new(CpuSpeed::from_mhz(1_000.0), Memory::from_mb(1_000.0))
            .expect("valid node capacities"),
    );
    let config = SimConfig {
        cycle: SimDuration::from_secs(10.0),
        horizon: Some(SimDuration::from_secs(2_000.0)),
        costs: VmCostModel::free(),
        scheduler: PolicyHandle::apc_with(
            ApcConfig::builder()
                .objective(objective)
                .build()
                .expect("valid comparison config"),
            true,
        ),
        ..SimConfig::apc_default()
    };
    let mut sim = Simulation::new(cluster, config);

    // The expensive job: 20,000 Mc at ≤200 MHz (100 s best), deadline
    // t = 150 (factor 1.5) — must hold the slot most of the run.
    let expensive = sim.add_job(|app| {
        JobSpec::new(
            app,
            JobProfile::single_stage(
                Work::from_mcycles(20_000.0),
                CpuSpeed::from_mhz(200.0),
                Memory::from_mb(1_000.0),
            ),
            SimTime::ZERO,
            CompletionGoal::new(SimTime::ZERO, SimTime::from_secs(150.0)),
        )
    });
    // Cheap jobs: 5,000 Mc at ≤1,000 MHz (5 s best), very loose goals.
    for i in 0..6 {
        sim.add_job(move |app| {
            let arrival = SimTime::from_secs(1.0 + i as f64);
            JobSpec::new(
                app,
                JobProfile::single_stage(
                    Work::from_mcycles(5_000.0),
                    CpuSpeed::from_mhz(1_000.0),
                    Memory::from_mb(1_000.0),
                ),
                arrival,
                CompletionGoal::new(arrival, arrival + SimDuration::from_secs(1_000.0)),
            )
        });
    }
    (expensive, sim.run())
}

#[test]
fn maxmin_protects_the_expensive_job() {
    let (expensive, metrics) = run(Objective::LexicographicMaxMin);
    let rec = metrics
        .completions
        .iter()
        .find(|c| c.app == expensive)
        .expect("expensive job completes");
    assert!(
        rec.met_deadline,
        "max-min must not starve the expensive job (finished at {}, deadline {})",
        rec.completion, rec.deadline
    );
    // The cheap jobs still make their loose goals.
    assert!(metrics.completions.iter().all(|c| c.met_deadline));
}

#[test]
fn total_performance_starves_the_expensive_job() {
    let (expensive, metrics) = run(Objective::TotalPerformance);
    let maxmin_finish = {
        let (app, m) = run(Objective::LexicographicMaxMin);
        m.completions
            .iter()
            .find(|c| c.app == app)
            .unwrap()
            .completion
    };
    let finish = metrics
        .completions
        .iter()
        .find(|c| c.app == expensive)
        .map(|c| c.completion);
    // The sum-maximizer either never runs the expensive job within the
    // horizon or finishes it later than max-min does — the starvation
    // §2 warns about.
    match finish {
        None => {} // starved entirely: the strongest form of the claim
        Some(t) => assert!(
            t > maxmin_finish,
            "total-performance should delay the expensive job: {t} vs {maxmin_finish}"
        ),
    }
}
