//! The shootout guard: APC must weakly dominate every baseline in the
//! registry on `scenarios/mixed_workload.json`.
//!
//! "Weakly dominate" is checked on the outcomes the paper's controller
//! is accountable for:
//!
//! - jobs completed,
//! - deadline-met ratio,
//! - mean final satisfaction — the mean satisfaction across the
//!   applications still live at the last control cycle (here the
//!   standing transactional service; every batch job has drained).
//!
//! Mid-run satisfaction is deliberately *not* guarded: during the
//! transactional burst APC chooses to sacrifice an already-doomed
//! (utility-floored) transactional cycle to protect batch deadlines,
//! which is the tradeoff the objective encodes, not a regression.
//!
//! Parallel (`tasks > 1`) stage-in is APC-only, so every policy —
//! including APC — runs the scenario with task counts clamped to one:
//! each cell is the identical workload and the comparison is fair.

#![deny(deprecated)]

use std::path::PathBuf;

use dynaplace::prelude::{policy_handles, PolicyClass};
use dynaplace::sim::metrics::RunMetrics;
use dynaplace::sim::spec::ScenarioSpec;

const EPS: f64 = 1e-6;

fn mixed_workload_single_task() -> ScenarioSpec {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios/mixed_workload.json");
    let text = std::fs::read_to_string(&path).expect("mixed_workload.json is checked in");
    let mut spec = ScenarioSpec::from_json_str(&text).expect("mixed_workload.json parses");
    for group in &mut spec.jobs {
        group.tasks = 1;
    }
    spec.trace.path = None;
    spec
}

fn run(spec: &ScenarioSpec, policy: &str) -> RunMetrics {
    let mut spec = spec.clone();
    spec.scheduler = policy.to_string();
    if policy != "apc" {
        // APC-only machinery a registered policy may not support.
        spec.observation = None;
        spec.sharding = None;
        spec.deadline_secs = None;
    }
    spec.build_checked()
        .unwrap_or_else(|e| panic!("{policy} rejects the guard scenario: {e}"))
        .run()
}

/// Mean satisfaction over whatever is still live at the final sample.
fn mean_final_satisfaction(metrics: &RunMetrics) -> f64 {
    let last = metrics.samples.last().expect("run produced samples");
    let parts: Vec<f64> = last
        .batch_hypothetical_rp
        .iter()
        .chain(last.txn_rp.iter())
        .map(|rp| rp.value())
        .collect();
    assert!(
        !parts.is_empty(),
        "final sample carries no satisfaction at all"
    );
    parts.iter().sum::<f64>() / parts.len() as f64
}

#[test]
fn apc_weakly_dominates_every_baseline_on_mixed_workload() {
    let spec = mixed_workload_single_task();
    let apc = run(&spec, "apc");
    let apc_final = mean_final_satisfaction(&apc);
    let apc_met = apc.deadline_met_ratio().unwrap_or(1.0);

    let mut compared = 0;
    for policy in policy_handles() {
        if policy.class() == PolicyClass::Apc {
            continue;
        }
        let name = policy.name().to_string();
        let baseline = run(&spec, &name);
        assert!(
            apc.completions.len() >= baseline.completions.len(),
            "{name} completed {} jobs, APC only {}",
            baseline.completions.len(),
            apc.completions.len()
        );
        let base_met = baseline.deadline_met_ratio().unwrap_or(1.0);
        assert!(
            apc_met + EPS >= base_met,
            "{name} met {base_met:.3} of deadlines, APC only {apc_met:.3}"
        );
        let base_final = mean_final_satisfaction(&baseline);
        assert!(
            apc_final + EPS >= base_final,
            "{name} ended at satisfaction {base_final:+.4}, APC at {apc_final:+.4}"
        );
        compared += 1;
    }
    assert!(
        compared >= 6,
        "registry should hold at least six baselines, found {compared}"
    );
}
