//! Multi-stage jobs (§4.1) through the full stack: per-stage speed caps
//! are honoured at the next control decision after a stage boundary.

#![deny(deprecated)]

use dynaplace::batch::job::{JobProfile, JobSpec, JobStage};
use dynaplace::model::cluster::Cluster;
use dynaplace::model::node::NodeSpec;
use dynaplace::model::units::*;
use dynaplace::rpf::goal::CompletionGoal;
use dynaplace::sim::costs::VmCostModel;
use dynaplace::sim::engine::{SimConfig, Simulation};

fn config(cycle_secs: f64) -> SimConfig {
    SimConfig {
        cycle: SimDuration::from_secs(cycle_secs),
        horizon: Some(SimDuration::from_secs(10_000.0)),
        costs: VmCostModel::free(),
        ..SimConfig::apc_default()
    }
}

fn two_stage_profile() -> JobProfile {
    JobProfile::new(vec![
        // Stage 1: I/O-ish — slow cap, small memory. 4,000 Mc at ≤500 MHz (8 s).
        JobStage::new(
            Work::from_mcycles(4_000.0),
            CpuSpeed::from_mhz(500.0),
            CpuSpeed::ZERO,
            Memory::from_mb(500.0),
        ),
        // Stage 2: compute — fast cap, more memory. 8,000 Mc at ≤1,000 MHz (8 s).
        JobStage::new(
            Work::from_mcycles(8_000.0),
            CpuSpeed::from_mhz(1_000.0),
            CpuSpeed::ZERO,
            Memory::from_mb(1_500.0),
        ),
    ])
}

/// Alone on a big node with a short control cycle, a two-stage job
/// completes in ≈ the sum of its per-stage minimum times: the controller
/// re-caps the allocation at each stage's maximum as stages change.
#[test]
fn stage_speed_caps_are_tracked() {
    let mut cluster = Cluster::new();
    cluster.add_node(
        NodeSpec::try_new(CpuSpeed::from_mhz(4_000.0), Memory::from_mb(8_000.0))
            .expect("valid node capacities"),
    );
    let mut sim = Simulation::new(cluster, config(1.0));
    let app = sim.add_job(|app| {
        JobSpec::new(
            app,
            two_stage_profile(),
            SimTime::ZERO,
            CompletionGoal::new(SimTime::ZERO, SimTime::from_secs(100.0)),
        )
    });
    let metrics = sim.run();
    let c = metrics.completions.iter().find(|c| c.app == app).unwrap();
    // Ideal 16 s; allow up to two control cycles of stage-boundary lag.
    assert!(
        c.completion.as_secs() >= 16.0 - 1e-6 && c.completion.as_secs() <= 18.0,
        "two-stage job completed at {}",
        c.completion
    );
}

/// The same job under a coarse cycle loses at most one cycle at the
/// stage boundary (the allocation stays at the stage-1 cap until the
/// next decision).
#[test]
fn coarse_cycle_delays_stage_speedup() {
    let mut cluster = Cluster::new();
    cluster.add_node(
        NodeSpec::try_new(CpuSpeed::from_mhz(4_000.0), Memory::from_mb(8_000.0))
            .expect("valid node capacities"),
    );
    let mut sim = Simulation::new(cluster, config(10.0));
    let app = sim.add_job(|app| {
        JobSpec::new(
            app,
            two_stage_profile(),
            SimTime::ZERO,
            CompletionGoal::new(SimTime::ZERO, SimTime::from_secs(100.0)),
        )
    });
    let metrics = sim.run();
    let c = metrics.completions.iter().find(|c| c.app == app).unwrap();
    // Stage 1 ends at t=8; the 500 MHz cap persists until t=10, then
    // stage 2's remaining 7,000 Mc runs at 1,000 MHz → 17 s total.
    assert!(
        c.completion.as_secs() >= 16.0 - 1e-6 && c.completion.as_secs() <= 20.0 + 1e-6,
        "completed at {}",
        c.completion
    );
}

/// Two multi-stage jobs share a node fairly across their stage changes
/// and both meet loose goals.
#[test]
fn multi_stage_jobs_share_fairly() {
    let mut cluster = Cluster::new();
    cluster.add_node(
        NodeSpec::try_new(CpuSpeed::from_mhz(1_200.0), Memory::from_mb(8_000.0))
            .expect("valid node capacities"),
    );
    let mut sim = Simulation::new(cluster, config(2.0));
    for i in 0..2 {
        sim.add_job(move |app| {
            JobSpec::new(
                app,
                two_stage_profile(),
                SimTime::from_secs(i as f64),
                CompletionGoal::new(SimTime::from_secs(i as f64), SimTime::from_secs(200.0)),
            )
        });
    }
    let metrics = sim.run();
    assert_eq!(metrics.completions.len(), 2);
    assert!(metrics.completions.iter().all(|c| c.met_deadline));
    // Total work 24,000 Mc through a 1,200 MHz node needs ≥ 20 s.
    let makespan = metrics
        .completions
        .iter()
        .map(|c| c.completion.as_secs())
        .fold(0.0, f64::max);
    assert!(makespan >= 20.0 - 1e-6);
}
