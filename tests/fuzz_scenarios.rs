//! Scenario fuzzing: random valid `ScenarioSpec`s driven through full
//! simulations under three oracle families (DESIGN.md §14):
//!
//! - **Invariant**: whole-run properties re-derived from the spec alone
//!   (capacity, instance bounds, completion accounting, starvation,
//!   convergence) on the widest generator profile.
//! - **Differential**: run pairs whose contracts promise bit-equal
//!   metrics — sharded(cell ≥ cluster) vs. classic, cached vs. oracle
//!   scoring, parallel vs. serial, traced vs. noop, JSON-round-tripped
//!   vs. original, zero-fault observation vs. no observation layer —
//!   compared field-by-field via `to_bits`.
//! - **Metamorphic**: transformations that must not change decisions
//!   (adding a slack rigid dimension) or outcomes (permuting app
//!   declaration order under a deterministic profile).
//!
//! Failures shrink structurally and persist a minimized ready-to-bless
//! JSON spec (see `tests/repro/README.md`). The per-property case
//! counts below total 80+ generated scenarios in the tier-1 fast path;
//! `PROPTEST_CASES=1024` turns the same file into the CI stress sweep.

#![deny(deprecated)]

use std::sync::Arc;

use dynaplace::apc::optimizer::ScoringMode;
use dynaplace::model::placement::Placement;
use dynaplace::sim::metrics::RunMetrics;
use dynaplace::sim::spec::{ObservationSpec, ScenarioSpec, ShardingSpec};
use dynaplace::trace::{JsonlSink, TraceEvent, TraceLevel, TraceSink};
use dynaplace_json::Json;
use dynaplace_testutil::gen::{self, GenProfile};
use dynaplace_testutil::oracle::{self, DiffOptions};
use proptest::prelude::*;
use proptest::TestRng;

/// Differential oracle body: run the spec twice (baseline and variant)
/// and demand bit-equality.
fn assert_equivalent(
    property: &str,
    spec: &ScenarioSpec,
    opts: DiffOptions,
    variant: impl Fn(&ScenarioSpec) -> RunMetrics + std::panic::RefUnwindSafe,
) -> TestCaseResult {
    gen::check_scenario(property, spec, |s| {
        let base = oracle::run_spec(s);
        let other = variant(s);
        match oracle::first_divergence(&base, &other, opts) {
            None => Ok(()),
            Some(msg) => Err(msg),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant family, widest profile: every generated spec passes
    /// `validate()` by construction, builds, runs to completion, and
    /// satisfies every whole-run invariant its contract implies.
    #[test]
    fn generated_scenarios_pass_whole_run_invariants(
        spec in gen::scenarios(GenProfile::full()),
    ) {
        prop_assert_eq!(spec.validate(), Ok(()), "generator emitted an invalid spec");
        gen::check_scenario("whole_run_invariants", &spec, |s| {
            oracle::check_run_message(s, &oracle::run_spec(s))
        })?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sharded placement with one cell covering the whole cluster is
    /// bit-equal to classic placement.
    #[test]
    fn sharded_single_cell_equals_classic(spec in gen::scenarios(GenProfile::quick())) {
        let nodes = spec.node_count();
        assert_equivalent("sharded_vs_classic", &spec, DiffOptions::default(), |s| {
            let mut sharded = s.clone();
            sharded.sharding = Some(ShardingSpec::new(nodes));
            oracle::run_spec(&sharded)
        })?;
    }

    /// Incremental (cached) scoring is bit-equal to from-scratch
    /// (oracle) scoring over whole runs.
    #[test]
    fn cached_scoring_equals_oracle_scoring(spec in gen::scenarios(GenProfile::quick())) {
        assert_equivalent("cached_vs_oracle_scoring", &spec, DiffOptions::default(), |s| {
            oracle::run_spec_with(s, |sim| {
                let mut cfg = sim.apc_config().expect("quick profile is APC-only").clone();
                cfg.scoring = ScoringMode::FromScratch;
                sim.set_apc_config(cfg);
            })
        })?;
    }

    /// Multi-threaded placement is bit-equal to serial placement.
    #[test]
    fn parallel_placement_equals_serial(spec in gen::scenarios(GenProfile::quick())) {
        assert_equivalent("parallel_vs_serial", &spec, DiffOptions::default(), |s| {
            oracle::run_spec_with(s, |sim| {
                let mut cfg = sim.apc_config().expect("quick profile is APC-only").clone();
                cfg.threads = 4;
                sim.set_apc_config(cfg);
            })
        })?;
    }

    /// A verbose trace sink observes without perturbing: traced runs
    /// are bit-equal to untraced ones.
    #[test]
    fn traced_run_equals_noop(spec in gen::scenarios(GenProfile::quick())) {
        assert_equivalent("traced_vs_noop", &spec, DiffOptions::default(), |s| {
            oracle::run_spec_with(s, |sim| {
                let sink = Arc::new(JsonlSink::new(TraceLevel::Verbose));
                sim.set_trace_sink(sink as Arc<dyn TraceSink>);
            })
        })?;
    }

    /// Bit-equivalence contract of the sub-floor utility band: on runs
    /// where no recorded relative performance ever crosses the healthy
    /// floor, the band is provably inert — every engine variant
    /// (classic/sharded × cached/oracle scoring) produces bit-identical
    /// metrics, exactly as before the band existed. Runs that do cross
    /// the floor engage the band and are covered by the invariant
    /// family and the pinned starved-floor repro instead.
    #[test]
    fn no_subfloor_implies_bit_identical(spec in gen::scenarios(GenProfile::quick())) {
        gen::check_scenario("no_subfloor_bit_identical", &spec, |s| {
            let base = oracle::run_spec(s);
            if crosses_floor(&base) {
                return Ok(());
            }
            let nodes = s.node_count();
            let sharded_spec = {
                let mut v = s.clone();
                v.sharding = Some(ShardingSpec::new(nodes));
                v
            };
            let oracle_scoring = |sim: &mut dynaplace::sim::engine::Simulation| {
                let mut cfg = sim.apc_config().expect("quick profile is APC-only").clone();
                cfg.scoring = ScoringMode::FromScratch;
                sim.set_apc_config(cfg);
            };
            let variants: [(&str, RunMetrics); 3] = [
                ("sharded+cached", oracle::run_spec(&sharded_spec)),
                ("classic+oracle", oracle::run_spec_with(s, oracle_scoring)),
                (
                    "sharded+oracle",
                    oracle::run_spec_with(&sharded_spec, oracle_scoring),
                ),
            ];
            for (name, metrics) in &variants {
                if let Some(msg) =
                    oracle::first_divergence(&base, metrics, DiffOptions::default())
                {
                    return Err(format!("{name} diverged from classic+cached: {msg}"));
                }
            }
            Ok(())
        })?;
    }

    /// A spec that survives a JSON round trip (including non-ASCII and
    /// astral-plane names, the PR 5 surrogate-pair regression) runs
    /// bit-identically to the original.
    #[test]
    fn json_round_trip_preserves_runs(spec in gen::scenarios(GenProfile::full())) {
        assert_equivalent("json_round_trip", &spec, DiffOptions::default(), |s| {
            let text = s.to_json_string();
            let back = ScenarioSpec::from_json_str(&text)
                .unwrap_or_else(|e| panic!("round trip failed to parse: {e}"));
            assert_eq!(back.validate(), Ok(()), "round trip broke validity");
            oracle::run_spec(&back)
        })?;
    }

    /// An *active* observation layer with nothing lossy, noisy, or stale
    /// (non-default seed flips it on; every fault knob stays zero) runs
    /// the full telemetry code path — draws, health machine, views —
    /// yet is bit-equal to no observation layer at all. This is the
    /// exactly-off contract's sharp edge: perfect telemetry must be
    /// indistinguishable from unmodeled telemetry.
    #[test]
    fn zero_fault_observation_equals_disabled(spec in gen::scenarios(GenProfile::quick())) {
        assert_equivalent("zero_fault_observation", &spec, DiffOptions::default(), |s| {
            let mut observed = s.clone();
            observed.observation = Some(ObservationSpec {
                seed: s.seed ^ 0x0B5E,
                ..Default::default()
            });
            assert_eq!(
                observed.validate(),
                Ok(()),
                "zero-fault observation block must stay valid"
            );
            let config = observed.observation.as_ref().expect("just set").to_config();
            assert!(
                config.is_active(),
                "a non-default seed must activate the observation layer"
            );
            oracle::run_spec(&observed)
        })?;
    }

    /// Metamorphic: declaring an extra rigid dimension nothing demands
    /// never changes any decision (only the utilization samples gain an
    /// all-zero entry).
    #[test]
    fn slack_rigid_dimension_never_changes_decisions(
        // `quick` rather than `deterministic`: the relation is bitwise
        // (same seed, same decisions), so multi-node fleets, failures,
        // and stochastic arrivals all strengthen it rather than
        // confound it. APC-only, since only APC accepts extra dims.
        spec in gen::scenarios(GenProfile::quick()),
    ) {
        let opts = DiffOptions { ignore_rigid_utilization: true };
        assert_equivalent("slack_dim_metamorphic", &spec, opts, |s| {
            let mut widened = s.clone();
            widened.resources.push("slack_probe".to_string());
            for group in &mut widened.nodes {
                group.resources.insert("slack_probe".to_string(), 1e9);
            }
            assert_eq!(widened.validate(), Ok(()), "widened spec must stay valid");
            oracle::run_spec(&widened)
        })?;
    }

    /// Metamorphic: under a deterministic profile (no RNG-consuming
    /// arrivals, no chaos), permuting the declaration order of job
    /// groups and txns relabels app ids but never changes outcomes —
    /// the multiset of completion records matches to numeric tolerance
    /// (permutation reorders float accumulation inside the allocator,
    /// so bit-equality is promised only by the differential family) and
    /// the change counters are identical.
    #[test]
    fn app_declaration_order_never_changes_outcomes(
        spec in gen::scenarios(GenProfile::deterministic()),
    ) {
        gen::check_scenario("app_order_metamorphic", &spec, |s| {
            let base = oracle::run_spec(s);
            let mut reordered = s.clone();
            reordered.jobs.reverse();
            reordered.txns.reverse();
            let other = oracle::run_spec(&reordered);
            compare_completion_multisets(&base, &other)?;
            let met = |m: &RunMetrics| m.completions.iter().filter(|c| c.met_deadline).count();
            if met(&base) != met(&other) {
                return Err(format!(
                    "deadline hits changed under declaration reorder: {} vs {}",
                    met(&base),
                    met(&other)
                ));
            }
            if base.changes != other.changes {
                return Err(format!(
                    "change counters changed under declaration reorder: {:?} vs {:?}",
                    base.changes, other.changes
                ));
            }
            Ok(())
        })?;
    }
}

/// Whether any recorded relative performance in the run sits below the
/// healthy floor, i.e. inside the sub-floor utility band.
fn crosses_floor(m: &RunMetrics) -> bool {
    let sub = |u: dynaplace::rpf::Rp| u.value() < dynaplace::rpf::RP_FLOOR;
    m.completions.iter().any(|c| sub(c.rp))
        || m.samples
            .iter()
            .any(|s| s.batch_hypothetical_rp.is_some_and(sub) || s.txn_rp.is_some_and(sub))
}

/// Guarantees a spec exercises the generative streaming path: roughly
/// half the full-profile draws carry a `workload` block already; the
/// rest get a small deterministic one (a bounded Poisson batch stream
/// plus an open-loop txn curve) whose demands fit the generator's
/// placeability floor (node memory is always ≥ 2000 MB).
fn force_workload(mut spec: ScenarioSpec) -> ScenarioSpec {
    use dynaplace::sim::spec::{
        BatchStreamSpec, GoalSpec, ProcessSpec, TxnCurveSpec, TxnStreamSpec, WorkloadSpec,
    };
    if spec.workload.is_none() {
        spec.workload = Some(WorkloadSpec {
            batch_streams: vec![BatchStreamSpec {
                name: Some("forced-stream".to_string()),
                process: ProcessSpec::Poisson { rate_per_sec: 0.25 },
                count: Some(3),
                work_mcycles: 3_000.0,
                max_speed_mhz: 600.0,
                memory_mb: 128.0,
                goal: GoalSpec::Factor(6.0),
                tasks: 1,
                class: None,
                resources: Default::default(),
            }],
            txn_streams: vec![TxnStreamSpec {
                name: Some("forced-curve".to_string()),
                curve: TxnCurveSpec::Population {
                    users: 50.0,
                    think_time_secs: 5.0,
                },
                demand_mcycles: 10.0,
                floor_secs: 0.002,
                goal_secs: 0.125,
                memory_mb: 128.0,
                max_instances: 1,
                resources: Default::default(),
            }],
        });
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole's lock-step compatibility contract: materializing a
    /// scenario up front (`build`) and streaming it through a
    /// `WorkloadSource` (`build_streaming`) — classic lists replayed,
    /// `workload` blocks drawn generatively — produce bit-identical
    /// runs under full metrics retention, for every float in every
    /// sample, completion, and placement record. (Aggregate retention
    /// is deliberately outside the contract: it recycles application
    /// ids, which legitimately shifts documented ascending-id
    /// tie-breaks; tests/memory_guard.rs pins its semantic-equality
    /// contract instead.)
    #[test]
    fn streaming_equals_lockstep(spec in gen::scenarios(GenProfile::full())) {
        let spec = force_workload(spec);
        prop_assert_eq!(spec.validate(), Ok(()), "forced workload block must stay valid");
        assert_equivalent("streaming_vs_lockstep", &spec, DiffOptions::default(), |s| {
            let mut sim = s
                .build_streaming_checked()
                .unwrap_or_else(|e| panic!("streaming build must accept a valid spec: {e}"));
            sim.record_placements(true);
            sim.run()
        })?;
    }
}

/// Full-width profile restricted to APC (the only scheduler that
/// accepts an `observation` block), for the telemetry fuzz families.
fn apc_full() -> GenProfile {
    GenProfile {
        schedulers: vec!["apc".to_string()],
        ..GenProfile::full()
    }
}

/// Guarantees a spec exercises the observation layer: roughly half the
/// `apc_full` draws carry a generated block already; the rest get a
/// deterministic flapping-telemetry window that provably closes
/// (`loss_until`), so the convergence oracle still applies.
fn force_observation(mut spec: ScenarioSpec) -> ScenarioSpec {
    if spec.observation.is_none() {
        spec.observation = Some(ObservationSpec {
            heartbeat_loss: 0.375,
            max_staleness_cycles: 1,
            noise: 0.125,
            loss_until_secs: Some(25.0 * spec.cycle_secs),
            seed: spec.seed ^ 0xFA11,
            ..Default::default()
        });
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Convergence under recovering telemetry: every spec runs with a
    /// bounded flapping-telemetry window, and the whole-run oracle
    /// demands that once the window closes the health machine settles
    /// and desired == actual within the grace window — every
    /// false-positive death must fully reconcile. The oracle also
    /// enforces the health machine's arithmetic: hysteresis floors on
    /// missed heartbeats, and deaths/reinstatements never exceeding
    /// suspect transitions.
    #[test]
    fn recovering_telemetry_reconverges(spec in gen::scenarios(apc_full())) {
        let spec = force_observation(spec);
        prop_assert_eq!(spec.validate(), Ok(()), "forced observation block must stay valid");
        gen::check_scenario("telemetry_reconvergence", &spec, |s| {
            oracle::check_run_message(s, &oracle::run_spec(s))
        })?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Telemetry-safety invariant, checked event-by-event against the
    /// verbose decision trace: the health machine never suspects a node
    /// with fewer than `suspect_after` consecutive missed heartbeats,
    /// never declares one dead with fewer than `dead_after`, and every
    /// `heartbeat_missed` event's own consecutive count is consistent
    /// with the miss/delivery history the trace implies.
    #[test]
    fn deaths_require_consecutive_misses(spec in gen::scenarios(apc_full())) {
        let spec = force_observation(spec);
        let obs = spec.observation.clone().expect("observation forced on");
        gen::check_scenario("death_needs_consecutive_misses", &spec, |s| {
            let sink = Arc::new(JsonlSink::new(TraceLevel::Verbose));
            oracle::run_spec_with(s, |sim| {
                sim.set_trace_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
            });
            check_health_trace(&sink.lines(), obs.suspect_after, obs.dead_after)
        })?;
    }
}

/// Replays a verbose trace through a shadow copy of the per-node miss
/// counter and rejects any health transition the configured hysteresis
/// does not license.
fn check_health_trace(lines: &[String], suspect_after: u32, dead_after: u32) -> Result<(), String> {
    let mut consecutive: std::collections::BTreeMap<usize, u64> = Default::default();
    for line in lines {
        let v = Json::parse(line).map_err(|e| format!("unparseable trace line: {e}\n{line}"))?;
        let event = TraceEvent::from_json(&v)
            .map_err(|e| format!("undecodable trace event: {e}\n{line}"))?;
        match event {
            TraceEvent::HeartbeatMissed {
                node,
                consecutive: c,
                ..
            } => {
                let prev = consecutive.get(&node.index()).copied().unwrap_or(0);
                // A delivered heartbeat (never traced) resets the count,
                // so each miss either restarts at 1 or extends the run.
                if c != 1 && c != prev + 1 {
                    return Err(format!(
                        "node{} reports {c} consecutive misses after a run of {prev}",
                        node.index()
                    ));
                }
                consecutive.insert(node.index(), c);
            }
            TraceEvent::NodeSuspected { node, misses, .. } => {
                let seen = consecutive.get(&node.index()).copied().unwrap_or(0);
                if misses < u64::from(suspect_after) || misses != seen {
                    return Err(format!(
                        "node{} suspected at {misses} misses (threshold {suspect_after}, \
                         trace shows {seen})",
                        node.index()
                    ));
                }
            }
            TraceEvent::NodeDeclaredDead { node, misses, .. } => {
                let seen = consecutive.get(&node.index()).copied().unwrap_or(0);
                if misses < u64::from(dead_after) || misses != seen {
                    return Err(format!(
                        "node{} declared dead at {misses} misses (threshold {dead_after}, \
                         trace shows {seen})",
                        node.index()
                    ));
                }
            }
            TraceEvent::NodeReinstated { node, .. } => {
                consecutive.insert(node.index(), 0);
            }
            _ => {}
        }
    }
    Ok(())
}

/// `a` and `b` agree to relative numeric tolerance. The bound is loose
/// (1e-3) on purpose: the optimizer's greedy passes visit apps in id
/// order, so relabeling perturbs allocation splits at the ~1e-5 level
/// even when every decision is identical. Structural outcomes
/// (counts, deadline hits, change counters) are compared exactly.
fn close(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (a - b).abs() <= 1e-3 * a.abs().max(b.abs()).max(1.0)
}

/// App-id-free completion fingerprint: every float field of every
/// completion record, sorted so relabeled runs align.
fn completion_multiset(m: &RunMetrics) -> Vec<[f64; 6]> {
    let mut records: Vec<[f64; 6]> = m
        .completions
        .iter()
        .map(|c| {
            [
                c.arrival.as_secs(),
                c.completion.as_secs(),
                c.deadline.as_secs(),
                c.distance.as_secs(),
                c.rp.value(),
                c.goal_factor,
            ]
        })
        .collect();
    records.sort_unstable_by(|a, b| {
        a.iter()
            .zip(b)
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    records
}

/// Compares two runs' completion multisets field-by-field to relative
/// tolerance. Arrival times are deterministic and must match exactly;
/// the derived fields may carry permutation-induced accumulation noise.
fn compare_completion_multisets(base: &RunMetrics, other: &RunMetrics) -> Result<(), String> {
    let (a, b) = (completion_multiset(base), completion_multiset(other));
    if a.len() != b.len() {
        return Err(format!(
            "completion count changed under declaration reorder: {} vs {}",
            a.len(),
            b.len()
        ));
    }
    const FIELDS: [&str; 6] = [
        "arrival",
        "completion",
        "deadline",
        "distance",
        "rp",
        "goal_factor",
    ];
    for (i, (ra, rb)) in a.iter().zip(&b).enumerate() {
        if ra[0].to_bits() != rb[0].to_bits() {
            return Err(format!(
                "completion {i}: arrival changed under declaration reorder: {} vs {}",
                ra[0], rb[0]
            ));
        }
        for f in 1..6 {
            if !close(ra[f], rb[f]) {
                return Err(format!(
                    "completion {i}: {} changed under declaration reorder: {} vs {}",
                    FIELDS[f], ra[f], rb[f]
                ));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Known-bug demonstrations: seeded mutations the harness must catch,
// shrink, and persist (the acceptance gate for the whole facility).
// ---------------------------------------------------------------------

fn repro_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/repro")
}

/// Seeds a "reconcile leak": every recorded placement also keeps the
/// previous cycle's instances, as if suspend operations reported
/// success without ever taking effect. This is the class of bug the
/// actuation rollback in `reconcile.rs` exists to prevent.
fn leak_previous_cycle(metrics: &mut RunMetrics) {
    let mut prev: Option<Placement> = None;
    for record in &mut metrics.placements {
        let clean = record.placement.clone();
        if let Some(ghost) = &prev {
            for (app, node, count) in ghost.iter() {
                for _ in 0..count {
                    record.placement.place(app, node);
                }
            }
        }
        prev = Some(clean);
    }
}

/// The harness catches the seeded reconcile leak, shrinks the failing
/// spec to the checked-in minimized repro, and the report names the
/// violated invariant.
#[test]
fn seeded_reconcile_leak_is_caught_and_shrunk() {
    let leaky = |s: &ScenarioSpec| -> Result<(), String> {
        let mut metrics = oracle::run_spec(s);
        leak_previous_cycle(&mut metrics);
        oracle::check_run_message(s, &metrics)
    };
    // Deterministic "random" spec: fixed seed sequence, first draw
    // whose run overlaps placements across cycles (so the leak bites) —
    // same spec forever for a given generator.
    let spec = (0u64..64)
        .map(|i| {
            let mut rng = TestRng::from_seed(0x0D15_EA5E ^ i.wrapping_mul(0x9E37_79B9));
            gen::gen_scenario(&mut rng, &GenProfile::full())
        })
        .find(|s| leaky(s).is_err())
        .expect("one of 64 deterministic draws must expose the seeded leak");
    let first = leaky(&spec).expect_err("the seeded leak must violate whole-run invariants");
    assert!(
        first.contains("over capacity") || first.contains("instances, max"),
        "the leak must surface as a capacity or instance-bound violation, got:\n{first}"
    );

    let minimized = gen::shrink_spec(&spec, |s| leaky(s).is_err());
    assert!(
        leaky(&minimized).is_err(),
        "shrinking must preserve the failure"
    );
    assert!(
        minimized.to_json_string().len() <= spec.to_json_string().len(),
        "shrinking must not grow the spec"
    );

    // The minimized spec is pinned under tests/repro/ — the shrinker is
    // deterministic, so any drift means generator or shrinker changes
    // that need a conscious re-bless (see tests/repro/README.md).
    let pinned = repro_dir().join("reconcile_leak.json");
    let mut rendered = minimized.to_json_string();
    rendered.push('\n');
    if std::env::var_os("UPDATE_REPRO").is_some() {
        std::fs::write(&pinned, &rendered).expect("write pinned repro");
    }
    let expected = std::fs::read_to_string(&pinned).unwrap_or_else(|e| {
        panic!(
            "missing pinned repro {} ({e}); run with UPDATE_REPRO=1",
            pinned.display()
        )
    });
    assert_eq!(
        rendered, expected,
        "minimized reconcile-leak spec drifted from the pinned repro; \
         rerun with UPDATE_REPRO=1 and review the diff"
    );
}

/// The checked-in surrogate-pair repro (astral-plane app name written
/// as a `😀` escape pair, the exact shape of the PR 5 parser
/// bug) parses, validates, survives a round trip, and runs clean.
#[test]
fn surrogate_pair_repro_round_trips_and_runs() {
    let path = repro_dir().join("surrogate_pair_name.json");
    let text = std::fs::read_to_string(&path).expect("checked-in repro spec");
    let spec = ScenarioSpec::from_json_str(&text).expect("surrogate-pair spec parses");
    let name = spec.jobs[0].name.as_deref().expect("job keeps its name");
    assert!(
        name.contains('\u{1F600}'),
        "surrogate pair must decode to the astral char, got {name:?}"
    );
    let back = ScenarioSpec::from_json_str(&spec.to_json_string()).expect("round trip parses");
    assert_eq!(
        back.jobs[0].name.as_deref(),
        Some(name),
        "round trip keeps the name"
    );
    assert_eq!(spec.validate(), Ok(()));
    oracle::check_run_message(&spec, &oracle::run_spec(&spec)).expect("repro runs clean");
}

/// The checked-in starved-floor-job repro: a transient outage blows the
/// jobs' deadlines so far past recovery that their raw relative
/// performance sits below the healthy floor whatever they receive,
/// while the transactional application's saturation demand could absorb
/// the whole node. Under the old flat clamp the objective was
/// indifferent to these jobs and the run livelocked until the engine's
/// starvation breaker cut it (this test pinned that behavior). With the
/// sub-floor utility band the jobs stay strictly ordered by lateness,
/// so the water-filling and candidate search drain them naturally: the
/// breaker must never fire, no starvation report may exist, and every
/// previously starved job must complete. This is the acceptance gate
/// for the band — the containment shims are deleted, not bypassed.
#[test]
fn starved_floor_job_repro_drains_without_breaker() {
    let path = repro_dir().join("starved_floor_job.json");
    let text = std::fs::read_to_string(&path).expect("checked-in repro spec");
    let spec = ScenarioSpec::from_json_str(&text).expect("starved repro parses");
    assert_eq!(spec.validate(), Ok(()));

    let sink = Arc::new(JsonlSink::new(TraceLevel::Decisions));
    let metrics = oracle::run_spec_with(&spec, |sim| {
        sim.set_trace_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
    });

    assert!(
        metrics.starvation.is_none(),
        "the stall breaker fired on the pinned repro: {:?}",
        metrics.starvation
    );
    assert!(
        !sink.to_jsonl().contains("\"ev\":\"starvation_break\""),
        "no starvation-break event may appear in the decision trace"
    );
    // Every spawned job (the previously starved ones included) now
    // completes.
    let completed: std::collections::BTreeSet<_> =
        metrics.completions.iter().map(|c| c.app.index()).collect();
    assert_eq!(
        completed.len(),
        spec.job_count(),
        "every previously starved job must complete, got completions {completed:?}"
    );
    oracle::check_run_message(&spec, &metrics).expect("drained run passes the invariant oracle");
}

/// Every spec under tests/repro/ is a permanent regression scenario:
/// it parses, validates, and passes the whole-run invariant oracle.
#[test]
fn repro_corpus_passes_invariants() {
    let mut checked = 0;
    for entry in std::fs::read_dir(repro_dir()).expect("tests/repro exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable repro spec");
        let spec = ScenarioSpec::from_json_str(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        spec.validate()
            .unwrap_or_else(|e| panic!("{} does not validate: {e}", path.display()));
        oracle::check_run_message(&spec, &oracle::run_spec(&spec))
            .unwrap_or_else(|e| panic!("{} violates invariants:\n{e}", path.display()));
        checked += 1;
    }
    assert!(
        checked >= 2,
        "expected at least two pinned repro specs, found {checked}"
    );
}
