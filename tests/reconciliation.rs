//! Reconciliation-loop properties: fallible actuation may delay
//! placement changes but must never lose them. Once faults stop
//! (`fail_until` has passed and every transient outage has recovered),
//! the desired and actual placements converge, every job completes,
//! and the whole run stays deterministic per seed.

#![deny(deprecated)]

use dynaplace::model::NodeId;
use dynaplace::sim::metrics::RunMetrics;
use dynaplace::sim::spec::{
    ActuationSpec, ArrivalSpec, GoalSpec, JobGroupSpec, NodeFailureSpec, NodeGroupSpec,
    ObservationSpec, ScenarioSpec,
};
use proptest::prelude::*;

const NODES: usize = 3;
const NODE_CPU_MHZ: f64 = 3_000.0;
const NODE_MEMORY_MB: f64 = 6_000.0;
const JOBS: usize = 6;
const JOB_MEMORY_MB: f64 = 1_500.0;
const CYCLE_SECS: f64 = 60.0;
/// Faults stop here: operations issued later always succeed.
const FAIL_UNTIL_SECS: f64 = 4_000.0;
/// Slack after the last fault before convergence is demanded: one
/// quarantine window plus one max backoff, rounded up to whole cycles.
const GRACE_SECS: f64 = 600.0 + 240.0 + 2.0 * CYCLE_SECS;

/// A small serviceable cluster with flaky actuation and one transient
/// node outage. Goals are loose (factor 10) so delayed operations
/// cannot turn into missed capacity: only a lost instance could stop a
/// job from completing.
fn flaky_spec(
    seed: u64,
    actuation_seed: u64,
    failure_rate: f64,
    outage: Option<(f64, u32, f64)>,
) -> ScenarioSpec {
    ScenarioSpec {
        seed,
        scheduler: "apc".to_string(),
        cycle_secs: CYCLE_SECS,
        horizon_secs: Some(30_000.0),
        free_vm_costs: false,
        resources: vec![],
        nodes: vec![NodeGroupSpec {
            count: NODES,
            name: None,
            cpu_mhz: NODE_CPU_MHZ,
            memory_mb: NODE_MEMORY_MB,
            resources: Default::default(),
        }],
        jobs: vec![JobGroupSpec {
            count: JOBS,
            name: None,
            work_mcycles: 300_000.0,
            max_speed_mhz: 1_000.0,
            memory_mb: JOB_MEMORY_MB,
            goal: GoalSpec::Factor(10.0),
            arrivals: ArrivalSpec::Periodic { every_secs: 120.0 },
            tasks: 1,
            class: None,
            resources: Default::default(),
        }],
        txns: vec![],
        workload: None,
        node_failures: outage
            .map(|(at_secs, node, duration_secs)| NodeFailureSpec {
                at_secs,
                node,
                duration_secs: Some(duration_secs),
            })
            .into_iter()
            .collect(),
        actuation: ActuationSpec {
            failure_rate,
            latency_jitter: 0.2,
            fail_until_secs: Some(FAIL_UNTIL_SECS),
            seed: actuation_seed,
            base_backoff_secs: 30.0,
            backoff_factor: 2.0,
            max_backoff_secs: 240.0,
            quarantine_after: 3,
            quarantine_secs: 600.0,
            fallback_after: 2,
            ..Default::default()
        },
        deadline_secs: None,
        sharding: None,
        observation: None,
        trace: Default::default(),
    }
}

/// The instant after which no more faults can occur: the end of the
/// fallible window or the last outage recovery, whichever is later.
fn last_fault_secs(spec: &ScenarioSpec) -> f64 {
    spec.node_failures
        .iter()
        .map(|f| f.at_secs + f.duration_secs.unwrap_or(f64::INFINITY))
        .fold(FAIL_UNTIL_SECS, f64::max)
}

fn assert_converged(spec: &ScenarioSpec, metrics: &RunMetrics) {
    assert_eq!(
        metrics.completions.len(),
        JOBS,
        "every job completes despite faults (actuation: {:?})",
        metrics.actuation
    );
    // Convergence: once faults stop and the grace window (backoff +
    // quarantine drain) passes, the actual placement tracks the desired
    // one — no sample may still owe reconciliation work.
    let settled = last_fault_secs(spec) + GRACE_SECS;
    for s in &metrics.samples {
        if s.time.as_secs() >= settled {
            assert_eq!(
                s.pending_actions,
                0,
                "unreconciled actions at t={:.0}s, {:.0}s after the last fault",
                s.time.as_secs(),
                s.time.as_secs() - last_fault_secs(spec)
            );
        }
    }
    // Live-node capacity: jobs have uniform memory, so per-node
    // instance counts bound memory use exactly; and nothing may be
    // placed on a node while it is down.
    for record in &metrics.placements {
        let mut per_node = std::collections::BTreeMap::<NodeId, u32>::new();
        for (_, node, count) in record.placement.iter() {
            *per_node.entry(node).or_default() += count;
        }
        for (node, count) in per_node {
            assert!(
                f64::from(count) * JOB_MEMORY_MB <= NODE_MEMORY_MB,
                "node {node:?} over memory at t={:.0}s: {count} instances",
                record.time.as_secs()
            );
            let down = spec.node_failures.iter().any(|f| {
                u32::from(node.index() as u16) == f.node
                    && record.time.as_secs() > f.at_secs + CYCLE_SECS
                    && record.time.as_secs() < f.at_secs + f.duration_secs.unwrap_or(f64::INFINITY)
            });
            assert!(
                !down || count == 0,
                "instances on failed node {node:?} at t={:.0}s",
                record.time.as_secs()
            );
        }
    }
}

fn run(spec: &ScenarioSpec) -> RunMetrics {
    let mut sim = spec.build_checked().expect("generated specs are valid");
    sim.record_placements(true);
    sim.run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized fault schedules (operation failure rate, failure-draw
    /// seed, transient outage timing) all converge: after the last
    /// fault, desired == actual within the grace window and every job
    /// completes.
    #[test]
    fn reconciliation_converges(
        seed in any::<u64>(),
        actuation_seed in any::<u64>(),
        failure_rate in 0.05..0.6f64,
        outage_at in 300.0..1_200.0f64,
        outage_node in 0u32..NODES as u32,
        outage_secs in 400.0..2_000.0f64,
    ) {
        let spec = flaky_spec(
            seed,
            actuation_seed,
            failure_rate,
            Some((outage_at, outage_node, outage_secs)),
        );
        assert_converged(&spec, &run(&spec));
    }

    /// Faults without an outage converge too (the outage path must not
    /// be what rescues reconciliation).
    #[test]
    fn reconciliation_converges_without_outage(
        seed in any::<u64>(),
        actuation_seed in any::<u64>(),
        failure_rate in 0.05..0.6f64,
    ) {
        let spec = flaky_spec(seed, actuation_seed, failure_rate, None);
        assert_converged(&spec, &run(&spec));
    }
}

/// Same seed ⇒ bit-equal metrics: failure draws, backoff schedules,
/// and retry events are all pure functions of the configuration.
#[test]
fn same_seed_runs_are_bit_equal() {
    let spec = flaky_spec(17, 23, 0.35, Some((600.0, 1, 1_500.0)));
    let a = run(&spec);
    let b = run(&spec);
    // `placement_compute_secs` is wall-clock measurement, the only
    // field allowed to differ; everything simulated must be bit-equal.
    assert_eq!(a.samples.len(), b.samples.len());
    for (x, y) in a.samples.iter().zip(&b.samples) {
        let mut y = y.clone();
        y.placement_compute_secs = x.placement_compute_secs;
        assert_eq!(*x, y);
    }
    assert_eq!(a.completions, b.completions);
    assert_eq!(a.changes, b.changes);
    assert_eq!(a.actuation, b.actuation);
    assert_eq!(a.placements, b.placements);
}

/// Different actuation seeds genuinely change the fault schedule (the
/// determinism test above is not vacuous).
#[test]
fn actuation_seed_matters() {
    let a = run(&flaky_spec(17, 1, 0.5, None));
    let b = run(&flaky_spec(17, 2, 0.5, None));
    assert_ne!(
        a.actuation, b.actuation,
        "distinct seeds should produce distinct fault schedules"
    );
}

// ---------------------------------------------------------------------
// False-positive believed deaths: the observation layer's node-health
// machine can evict residents from a perfectly healthy node and later
// reinstate it. These regressions pin the engine paths that become
// reachable only then — eviction of residents that were never actually
// failed, reinstatement racing the desired/actual machinery, and
// believed deaths overlapping true outages.
// ---------------------------------------------------------------------

/// `flaky_spec` with infallible actuation and a lossy-telemetry window
/// ending at `FAIL_UNTIL_SECS` instead: every fault is a false belief.
fn observed_spec(
    seed: u64,
    obs_seed: u64,
    loss: f64,
    outage: Option<(f64, u32, f64)>,
) -> ScenarioSpec {
    let mut spec = flaky_spec(seed, 0, 0.0, outage);
    spec.actuation = Default::default();
    spec.observation = Some(ObservationSpec {
        heartbeat_loss: loss,
        loss_until_secs: Some(FAIL_UNTIL_SECS),
        seed: obs_seed,
        ..Default::default()
    });
    spec
}

/// The instant by which a recovered observation layer must have settled:
/// end of telemetry loss, plus worst-case death-then-reinstatement
/// hysteresis, plus scheduling slack — in whole cycles.
const OBSERVATION_GRACE_SECS: f64 = (4 + 2 + 5) as f64 * CYCLE_SECS;

/// False-positive believed deaths evict healthy nodes' residents, yet
/// once telemetry recovers every node is reinstated, desired == actual,
/// and every job still completes.
#[test]
fn false_positive_deaths_reconverge() {
    let spec = observed_spec(11, 5, 0.55, None);
    assert_eq!(spec.validate(), Ok(()));
    let metrics = run(&spec);

    let obs = &metrics.observation;
    assert!(
        obs.deaths >= 1 && obs.reinstatements >= 1,
        "the regression must actually exercise believed death and reinstatement: {obs:?}"
    );
    assert_eq!(
        metrics.completions.len(),
        JOBS,
        "every job completes despite false-positive evictions"
    );
    let settled = FAIL_UNTIL_SECS + OBSERVATION_GRACE_SECS;
    for s in &metrics.samples {
        if s.time.as_secs() >= settled {
            assert_eq!(
                s.pending_actions,
                0,
                "unreconciled actions at t={:.0}s after telemetry recovered",
                s.time.as_secs()
            );
        }
    }
}

/// A believed death can land on a node that is *also* truly down (its
/// residents already evicted by the outage path), and a true recovery
/// can race reinstatement. Both orders must be graceful no-ops, not
/// panics, and the run still converges.
#[test]
fn believed_death_overlapping_true_outage_is_graceful() {
    let spec = observed_spec(7, 3, 0.55, Some((600.0, 1, 1_500.0)));
    assert_eq!(spec.validate(), Ok(()));
    let metrics = run(&spec);

    assert!(
        metrics.observation.deaths >= 1,
        "the overlap regression needs at least one believed death: {:?}",
        metrics.observation
    );
    assert_eq!(metrics.completions.len(), JOBS);
    let settled = last_fault_secs(&spec).max(FAIL_UNTIL_SECS) + OBSERVATION_GRACE_SECS + GRACE_SECS;
    for s in &metrics.samples {
        if s.time.as_secs() >= settled {
            assert_eq!(s.pending_actions, 0, "unreconciled at t={:?}", s.time);
        }
    }
}

/// Observation faults compose with fallible actuation: evictions issued
/// on believed deaths go through the same fallible operation queue, and
/// the combined system still converges once both fault windows close.
#[test]
fn observation_and_actuation_faults_compose() {
    let mut spec = flaky_spec(19, 29, 0.3, None);
    spec.observation = Some(ObservationSpec {
        heartbeat_loss: 0.5,
        loss_until_secs: Some(FAIL_UNTIL_SECS),
        seed: 13,
        ..Default::default()
    });
    assert_eq!(spec.validate(), Ok(()));
    let metrics = run(&spec);

    assert!(
        metrics.observation.missed_heartbeats > 0,
        "telemetry faults must fire: {:?}",
        metrics.observation
    );
    assert_eq!(metrics.completions.len(), JOBS);
    let settled = FAIL_UNTIL_SECS + GRACE_SECS + OBSERVATION_GRACE_SECS;
    for s in &metrics.samples {
        if s.time.as_secs() >= settled {
            assert_eq!(s.pending_actions, 0, "unreconciled at t={:?}", s.time);
        }
    }
}

/// The checked-in flaky golden scenario meets the acceptance bar
/// directly: nonzero failure rate plus a transient outage, yet all jobs
/// complete, total allocation stays within live capacity, and the run
/// converges after the last fault.
#[test]
fn flaky_cluster_scenario_converges() {
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(root.join("scenarios/flaky_cluster.json")).unwrap();
    let spec = ScenarioSpec::from_json_str(&text).unwrap();
    let mut sim = spec.build();
    sim.record_placements(true);
    let metrics = sim.run();

    assert_eq!(metrics.completions.len(), 10, "all jobs complete");
    assert!(
        metrics.actuation.failed_ops + metrics.actuation.timed_out_ops > 0,
        "the golden scenario must actually exercise failures: {:?}",
        metrics.actuation
    );
    let recovery = spec.node_failures[0].at_secs + spec.node_failures[0].duration_secs.unwrap();
    let fail_until = spec.actuation.fail_until_secs.unwrap();
    let settled = recovery.max(fail_until) + GRACE_SECS;
    for s in &metrics.samples {
        if s.time.as_secs() >= settled {
            assert_eq!(s.pending_actions, 0, "unreconciled at t={:?}", s.time);
        }
        // Total allocation never exceeds live capacity: 3 nodes of
        // 6 GHz, minus the failed node while it is down.
        let live =
            if s.time.as_secs() > spec.node_failures[0].at_secs && s.time.as_secs() < recovery {
                2.0 * 6_000.0
            } else {
                3.0 * 6_000.0
            };
        let total = s.batch_allocation.as_mhz() + s.txn_allocation.as_mhz();
        assert!(
            total <= live + 1.0,
            "allocation {total} MHz over live capacity {live} at t={:?}",
            s.time
        );
    }
}
