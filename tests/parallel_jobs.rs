//! Integration tests for malleable parallel jobs — the paper's stated
//! future work ("we expect to extend this technique in the future to
//! offer explicit support for parallel jobs"), implemented here as
//! multi-task jobs whose progress rate is the sum of their placed
//! tasks' speeds.

#![deny(deprecated)]

use dynaplace::batch::job::{JobProfile, JobSpec};
use dynaplace::model::cluster::Cluster;
use dynaplace::model::node::NodeSpec;
use dynaplace::model::units::*;
use dynaplace::rpf::goal::CompletionGoal;
use dynaplace::sim::engine::{SimConfig, Simulation};

fn cluster(nodes: usize) -> Cluster {
    Cluster::homogeneous(
        nodes,
        NodeSpec::try_new(CpuSpeed::from_mhz(2_000.0), Memory::from_mb(8_000.0))
            .expect("valid node capacities"),
    )
}

fn config() -> SimConfig {
    SimConfig {
        cycle: SimDuration::from_secs(10.0),
        horizon: Some(SimDuration::from_secs(5_000.0)),
        ..SimConfig::apc_default()
    }
}

/// A 4-task parallel job on 4 nodes finishes ≈4× faster than the same
/// work serially.
#[test]
fn parallel_job_uses_multiple_nodes() {
    // Serial reference: 80,000 Mc at ≤1,000 MHz → 80 s.
    let mut sim = Simulation::new(cluster(4), config());
    let serial = sim.add_job(|app| {
        JobSpec::new(
            app,
            JobProfile::single_stage(
                Work::from_mcycles(80_000.0),
                CpuSpeed::from_mhz(1_000.0),
                Memory::from_mb(1_000.0),
            ),
            SimTime::ZERO,
            CompletionGoal::new(SimTime::ZERO, SimTime::from_secs(400.0)),
        )
    });
    let serial_metrics = sim.run();
    let serial_done = serial_metrics
        .completions
        .iter()
        .find(|c| c.app == serial)
        .unwrap()
        .completion;

    // Parallel: same work, 4 tasks at ≤1,000 MHz each.
    let mut sim = Simulation::new(cluster(4), config());
    let parallel = sim.add_parallel_job(4, |app| {
        JobSpec::new(
            app,
            JobProfile::single_stage(
                Work::from_mcycles(80_000.0),
                CpuSpeed::from_mhz(1_000.0),
                Memory::from_mb(1_000.0),
            ),
            SimTime::ZERO,
            CompletionGoal::new(SimTime::ZERO, SimTime::from_secs(400.0)),
        )
    });
    let parallel_metrics = sim.run();
    let parallel_done = parallel_metrics
        .completions
        .iter()
        .find(|c| c.app == parallel)
        .unwrap()
        .completion;

    assert!(
        parallel_done.as_secs() < serial_done.as_secs() / 2.0,
        "4 tasks must be much faster than serial: {} vs {}",
        parallel_done,
        serial_done
    );
    // The speedup is bounded by 4x (plus scheduling granularity).
    assert!(parallel_done.as_secs() >= serial_done.as_secs() / 4.0 - 11.0);
}

/// A parallel job shares the cluster fairly with ordinary jobs: both
/// meet their goals, the parallel one using several nodes at once.
#[test]
fn parallel_job_coexists_with_serial_jobs() {
    let mut sim = Simulation::new(cluster(3), config());
    sim.add_parallel_job(3, |app| {
        JobSpec::new(
            app,
            JobProfile::single_stage(
                Work::from_mcycles(120_000.0),
                CpuSpeed::from_mhz(1_500.0),
                Memory::from_mb(1_000.0),
            ),
            SimTime::ZERO,
            CompletionGoal::new(SimTime::ZERO, SimTime::from_secs(600.0)),
        )
    });
    for i in 0..3 {
        sim.add_job(move |app| {
            JobSpec::new(
                app,
                JobProfile::single_stage(
                    Work::from_mcycles(30_000.0),
                    CpuSpeed::from_mhz(1_000.0),
                    Memory::from_mb(1_000.0),
                ),
                SimTime::from_secs(i as f64 * 5.0),
                CompletionGoal::new(
                    SimTime::from_secs(i as f64 * 5.0),
                    SimTime::from_secs(300.0),
                ),
            )
        });
    }
    let metrics = sim.run();
    assert_eq!(metrics.completions.len(), 4, "everything completes");
    assert!(
        metrics.completions.iter().all(|c| c.met_deadline),
        "fair sharing meets every goal: {:?}",
        metrics
            .completions
            .iter()
            .map(|c| (c.app, c.distance.as_secs()))
            .collect::<Vec<_>>()
    );
}

/// Scaling down a parallel job (losing tasks to contention) does not
/// suspend it: it keeps running on the remaining tasks.
#[test]
fn parallel_job_is_malleable_under_contention() {
    let mut sim = Simulation::new(cluster(2), config());
    // Parallel job that would like both nodes.
    let par = sim.add_parallel_job(2, |app| {
        JobSpec::new(
            app,
            JobProfile::single_stage(
                Work::from_mcycles(200_000.0),
                CpuSpeed::from_mhz(2_000.0),
                Memory::from_mb(5_000.0), // large: one task per node
            ),
            SimTime::ZERO,
            CompletionGoal::new(SimTime::ZERO, SimTime::from_secs(3_000.0)),
        )
    });
    // A memory-hungry urgent job arrives later and needs a whole node.
    sim.add_job(|app| {
        JobSpec::new(
            app,
            JobProfile::single_stage(
                Work::from_mcycles(40_000.0),
                CpuSpeed::from_mhz(2_000.0),
                Memory::from_mb(5_000.0),
            ),
            SimTime::from_secs(30.0),
            CompletionGoal::new(SimTime::from_secs(30.0), SimTime::from_secs(80.0)),
        )
    });
    let metrics = sim.run();
    assert_eq!(metrics.completions.len(), 2);
    let par_rec = metrics.completions.iter().find(|c| c.app == par).unwrap();
    assert!(par_rec.met_deadline, "malleable job still meets its goal");
}
