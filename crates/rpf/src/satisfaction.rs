//! The optimization objective: an ordered vector of per-application
//! relative performance, compared lexicographically.
//!
//! The paper's objective (§3.2) extends max-min fairness: first maximize
//! the lowest application's relative performance; once the lowest cannot
//! be improved, continue improving the next lowest, and so on. Sorting
//! each candidate's per-application performance ascending and comparing
//! the sorted vectors lexicographically realizes exactly that order.

use std::cmp::Ordering;

use serde::{Deserialize, Serialize};

use dynaplace_model::ids::AppId;

use crate::value::Rp;

/// Default tolerance when comparing relative performance values.
pub const DEFAULT_EPSILON: f64 = 1e-6;

/// A snapshot of every application's relative performance under some
/// placement, sorted ascending (worst first).
///
/// ```
/// use dynaplace_model::ids::AppId;
/// use dynaplace_rpf::satisfaction::SatisfactionVector;
/// use dynaplace_rpf::value::Rp;
///
/// let a = SatisfactionVector::from_entries(vec![
///     (AppId::new(0), Rp::new(0.7)),
///     (AppId::new(1), Rp::new(0.6)),
/// ]);
/// let b = SatisfactionVector::from_entries(vec![
///     (AppId::new(0), Rp::new(0.65)),
///     (AppId::new(1), Rp::new(0.65)),
/// ]);
/// // b's worst application (0.65) beats a's worst (0.6).
/// assert!(b.dominates(&a, 1e-6));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SatisfactionVector {
    /// Entries sorted ascending by performance, ties broken by app id for
    /// determinism.
    entries: Vec<(AppId, Rp)>,
}

impl SatisfactionVector {
    /// Builds the vector from per-application performance values (any
    /// order; sorted internally).
    pub fn from_entries(mut entries: Vec<(AppId, Rp)>) -> Self {
        entries.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        Self { entries }
    }

    /// The sorted entries, worst first.
    pub fn entries(&self) -> &[(AppId, Rp)] {
        &self.entries
    }

    /// The worst-performing application and its performance, if any
    /// applications are present.
    pub fn worst(&self) -> Option<(AppId, Rp)> {
        self.entries.first().copied()
    }

    /// The best-performing application and its performance.
    pub fn best(&self) -> Option<(AppId, Rp)> {
        self.entries.last().copied()
    }

    /// Number of applications.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mean relative performance (a diagnostic, not the objective).
    pub fn mean(&self) -> Option<Rp> {
        if self.entries.is_empty() {
            return None;
        }
        let sum: f64 = self.entries.iter().map(|(_, u)| u.value()).sum();
        Some(Rp::new(sum / self.entries.len() as f64))
    }

    /// Lexicographic comparison of the ascending-sorted performance
    /// values, with per-element tolerance `epsilon`: elements closer than
    /// `epsilon` are treated as equal and the comparison moves on.
    ///
    /// Per-element comparison happens on the decompressed axis
    /// ([`Rp::cmp_with_tolerance`]): healthy-range pairs behave exactly
    /// as the historical absolute check, while sub-floor band pairs
    /// compare by lateness so `epsilon` does not erase band-scale deltas
    /// (which would make the objective indifferent to draining hopeless
    /// jobs — the starvation livelock this band exists to fix).
    ///
    /// `Greater` means `self` is the better system state under the
    /// paper's extended max-min objective.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors cover different numbers of applications;
    /// candidates in one optimization run always score the same
    /// application set.
    pub fn compare(&self, other: &Self, epsilon: f64) -> Ordering {
        assert_eq!(
            self.entries.len(),
            other.entries.len(),
            "satisfaction vectors must cover the same applications"
        );
        for ((_, a), (_, b)) in self.entries.iter().zip(&other.entries) {
            match a.cmp_with_tolerance(*b, epsilon) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Whether `self` strictly improves on `other` by more than
    /// `epsilon` somewhere before getting worse anywhere (i.e. the
    /// lexicographic comparison says `Greater`).
    pub fn dominates(&self, other: &Self, epsilon: f64) -> bool {
        self.compare(other, epsilon) == Ordering::Greater
    }
}

impl FromIterator<(AppId, Rp)> for SatisfactionVector {
    fn from_iter<I: IntoIterator<Item = (AppId, Rp)>>(iter: I) -> Self {
        Self::from_entries(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(values: &[f64]) -> SatisfactionVector {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (AppId::new(i as u32), Rp::new(v)))
            .collect()
    }

    #[test]
    fn sorted_worst_first() {
        let v = sv(&[0.5, -0.2, 0.9]);
        assert_eq!(v.worst().unwrap().1, Rp::new(-0.2));
        assert_eq!(v.best().unwrap().1, Rp::new(0.9));
        let us: Vec<f64> = v.entries().iter().map(|(_, u)| u.value()).collect();
        assert_eq!(us, vec![-0.2, 0.5, 0.9]);
    }

    #[test]
    fn maxmin_prefers_better_worst() {
        // The paper's S2 example: (0.65, 0.65) beats (0.6, 0.7).
        let p1 = sv(&[0.65, 0.65]);
        let p2 = sv(&[0.6, 0.7]);
        assert_eq!(p1.compare(&p2, DEFAULT_EPSILON), Ordering::Greater);
        assert!(p1.dominates(&p2, DEFAULT_EPSILON));
    }

    #[test]
    fn extended_criterion_breaks_ties_beyond_the_min() {
        // Same worst value: the second-worst decides.
        let a = sv(&[0.5, 0.9]);
        let b = sv(&[0.5, 0.6]);
        assert_eq!(a.compare(&b, DEFAULT_EPSILON), Ordering::Greater);
    }

    #[test]
    fn epsilon_absorbs_noise() {
        let a = sv(&[0.5000001, 0.7]);
        let b = sv(&[0.5, 0.7]);
        assert_eq!(a.compare(&b, 1e-3), Ordering::Equal);
        assert_eq!(a.compare(&b, 1e-9), Ordering::Greater);
    }

    #[test]
    fn equal_vectors_compare_equal() {
        let a = sv(&[0.1, 0.2, 0.3]);
        assert_eq!(a.compare(&a.clone(), DEFAULT_EPSILON), Ordering::Equal);
        assert!(!a.dominates(&a.clone(), DEFAULT_EPSILON));
    }

    #[test]
    fn sorting_makes_entry_order_irrelevant() {
        let a = SatisfactionVector::from_entries(vec![
            (AppId::new(1), Rp::new(0.9)),
            (AppId::new(0), Rp::new(0.1)),
        ]);
        let b = SatisfactionVector::from_entries(vec![
            (AppId::new(0), Rp::new(0.1)),
            (AppId::new(1), Rp::new(0.9)),
        ]);
        assert_eq!(a.compare(&b, DEFAULT_EPSILON), Ordering::Equal);
    }

    #[test]
    fn mean_is_diagnostic() {
        assert!(sv(&[0.0, 1.0])
            .mean()
            .unwrap()
            .approx_eq(Rp::new(0.5), 1e-12));
        assert_eq!(sv(&[]).mean(), None);
    }

    #[test]
    #[should_panic(expected = "same applications")]
    fn mismatched_lengths_panic() {
        let _ = sv(&[0.1]).compare(&sv(&[0.1, 0.2]), DEFAULT_EPSILON);
    }

    #[test]
    fn sub_floor_band_is_not_flat_to_the_objective() {
        // Two hopeless jobs, latenesses 1000 vs 1001 (raw-u units): the
        // stored encodings differ by far less than DEFAULT_EPSILON, but
        // the objective must still prefer the less-late state.
        let less_late = SatisfactionVector::from_entries(vec![(
            AppId::new(0),
            Rp::banded_from_lateness(1000.0),
        )]);
        let more_late = SatisfactionVector::from_entries(vec![(
            AppId::new(1),
            Rp::banded_from_lateness(1001.0),
        )]);
        let delta =
            (less_late.worst().unwrap().1.value() - more_late.worst().unwrap().1.value()).abs();
        assert!(delta < DEFAULT_EPSILON);
        assert_eq!(
            less_late.compare(&more_late, DEFAULT_EPSILON),
            Ordering::Greater
        );
    }
}
