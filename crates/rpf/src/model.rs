//! The `PerformanceModel` abstraction: relative performance as a function
//! of allocated CPU power.
//!
//! The placement algorithm asks two questions of every application
//! (§3.2):
//!
//! 1. *What relative performance does the application achieve under a
//!    given CPU allocation?* — [`PerformanceModel::performance`]
//! 2. *How much CPU must it receive to achieve a target relative
//!    performance?* — [`PerformanceModel::demand`]

use dynaplace_model::units::CpuSpeed;
use dynaplace_solver::piecewise::{PiecewiseError, PiecewiseLinear};

use crate::value::Rp;

/// Relative performance as a monotone non-decreasing function of the
/// aggregate CPU speed ω allocated to the application.
pub trait PerformanceModel {
    /// Relative performance achieved with aggregate allocation `omega`.
    ///
    /// Must be non-decreasing in `omega`.
    fn performance(&self, omega: CpuSpeed) -> Rp;

    /// The smallest aggregate allocation achieving relative performance
    /// `u`, clamped to [`PerformanceModel::max_useful_demand`] when `u`
    /// exceeds [`PerformanceModel::max_performance`].
    fn demand(&self, u: Rp) -> CpuSpeed;

    /// The highest achievable relative performance (the paper's
    /// `u_max_m`): allocating more CPU than
    /// [`PerformanceModel::max_useful_demand`] does not raise performance
    /// beyond this.
    fn max_performance(&self) -> Rp;

    /// The allocation at which performance saturates.
    fn max_useful_demand(&self) -> CpuSpeed {
        self.demand(self.max_performance())
    }
}

impl<M: PerformanceModel + ?Sized> PerformanceModel for &M {
    fn performance(&self, omega: CpuSpeed) -> Rp {
        (**self).performance(omega)
    }
    fn demand(&self, u: Rp) -> CpuSpeed {
        (**self).demand(u)
    }
    fn max_performance(&self) -> Rp {
        (**self).max_performance()
    }
    fn max_useful_demand(&self) -> CpuSpeed {
        (**self).max_useful_demand()
    }
}

impl<M: PerformanceModel + ?Sized> PerformanceModel for Box<M> {
    fn performance(&self, omega: CpuSpeed) -> Rp {
        (**self).performance(omega)
    }
    fn demand(&self, u: Rp) -> CpuSpeed {
        (**self).demand(u)
    }
    fn max_performance(&self) -> Rp {
        (**self).max_performance()
    }
    fn max_useful_demand(&self) -> CpuSpeed {
        (**self).max_useful_demand()
    }
}

/// A performance model materialized from `(ω, u)` samples, interpolated
/// piecewise-linearly in both directions.
///
/// This is the concrete representation the placement controller works
/// with: workload-specific models (queueing theory for transactional
/// applications, the hypothetical relative performance for batch jobs)
/// are sampled into a `SampledRpf` once per control cycle.
///
/// ```
/// use dynaplace_model::units::CpuSpeed;
/// use dynaplace_rpf::model::{PerformanceModel, SampledRpf};
/// use dynaplace_rpf::value::Rp;
///
/// let rpf = SampledRpf::from_samples(vec![
///     (CpuSpeed::ZERO, Rp::new(-1.0)),
///     (CpuSpeed::from_mhz(1_000.0), Rp::new(0.5)),
/// ])?;
/// assert_eq!(rpf.performance(CpuSpeed::from_mhz(500.0)), Rp::new(-0.25));
/// assert_eq!(rpf.demand(Rp::new(0.5)), CpuSpeed::from_mhz(1_000.0));
/// assert_eq!(rpf.max_performance(), Rp::new(0.5));
/// # Ok::<(), dynaplace_solver::piecewise::PiecewiseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SampledRpf {
    curve: PiecewiseLinear,
}

impl SampledRpf {
    /// Builds the model from `(allocation, performance)` samples with
    /// strictly increasing allocations and non-decreasing performance.
    ///
    /// # Errors
    ///
    /// Returns [`PiecewiseError`] if fewer than two samples are given or
    /// allocations are not strictly increasing.
    ///
    /// # Panics
    ///
    /// Panics if the performance values are decreasing (the model must be
    /// monotone).
    pub fn from_samples(samples: Vec<(CpuSpeed, Rp)>) -> Result<Self, PiecewiseError> {
        let pts: Vec<(f64, f64)> = samples
            .into_iter()
            .map(|(omega, u)| (omega.as_mhz(), u.value()))
            .collect();
        let curve = PiecewiseLinear::new(pts)?;
        assert!(
            curve.is_non_decreasing(),
            "performance must be non-decreasing in allocation"
        );
        Ok(Self { curve })
    }

    /// The underlying sample points as `(allocation, performance)`.
    pub fn samples(&self) -> impl Iterator<Item = (CpuSpeed, Rp)> + '_ {
        self.curve
            .points()
            .iter()
            .map(|&(x, y)| (CpuSpeed::from_mhz(x), Rp::new(y)))
    }
}

impl PerformanceModel for SampledRpf {
    fn performance(&self, omega: CpuSpeed) -> Rp {
        Rp::new(self.curve.eval(omega.as_mhz()))
    }

    fn demand(&self, u: Rp) -> CpuSpeed {
        CpuSpeed::from_mhz(self.curve.inverse(u.value()))
    }

    fn max_performance(&self) -> Rp {
        Rp::new(self.curve.eval(self.curve.x_max()))
    }

    fn max_useful_demand(&self) -> CpuSpeed {
        // The earliest allocation achieving max performance (left edge of
        // the saturated plateau), not the largest sampled allocation.
        self.demand(self.max_performance())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mhz(m: f64) -> CpuSpeed {
        CpuSpeed::from_mhz(m)
    }

    fn saturating_model() -> SampledRpf {
        SampledRpf::from_samples(vec![
            (CpuSpeed::ZERO, Rp::new(-2.0)),
            (mhz(100.0), Rp::new(0.0)),
            (mhz(200.0), Rp::new(0.66)),
            (mhz(400.0), Rp::new(0.66)), // saturated plateau
        ])
        .unwrap()
    }

    #[test]
    fn performance_interpolates() {
        let m = saturating_model();
        assert_eq!(m.performance(mhz(50.0)), Rp::new(-1.0));
        assert_eq!(m.performance(mhz(100.0)), Rp::GOAL);
        assert_eq!(m.performance(mhz(300.0)), Rp::new(0.66));
    }

    #[test]
    fn performance_clamps_outside_samples() {
        let m = saturating_model();
        assert_eq!(m.performance(mhz(1e9)), Rp::new(0.66));
        assert_eq!(m.performance(CpuSpeed::ZERO), Rp::new(-2.0));
    }

    #[test]
    fn demand_is_leftmost_inverse() {
        let m = saturating_model();
        assert_eq!(m.demand(Rp::GOAL), mhz(100.0));
        // Saturated value: demand is the left edge of the plateau.
        assert_eq!(m.demand(Rp::new(0.66)), mhz(200.0));
        assert_eq!(m.max_useful_demand(), mhz(200.0));
    }

    #[test]
    fn demand_beyond_max_clamps() {
        let m = saturating_model();
        assert_eq!(m.demand(Rp::new(0.99)), mhz(400.0).min(m.demand(Rp::MAX)));
        assert_eq!(m.max_performance(), Rp::new(0.66));
    }

    #[test]
    fn round_trip_within_active_region() {
        let m = saturating_model();
        for omega in [10.0, 60.0, 150.0, 199.0] {
            let u = m.performance(mhz(omega));
            let back = m.demand(u);
            assert!(
                (back.as_mhz() - omega).abs() < 1e-6,
                "round trip failed at {omega} MHz: got {back:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_samples_rejected() {
        let _ = SampledRpf::from_samples(vec![
            (CpuSpeed::ZERO, Rp::new(0.5)),
            (mhz(100.0), Rp::new(0.1)),
        ]);
    }

    #[test]
    fn trait_object_usable() {
        let m: Box<dyn PerformanceModel> = Box::new(saturating_model());
        assert_eq!(m.performance(mhz(100.0)), Rp::GOAL);
        assert_eq!(m.max_performance(), Rp::new(0.66));
        // And through a reference.
        let by_ref: &dyn PerformanceModel = &*m;
        assert_eq!(by_ref.demand(Rp::GOAL), mhz(100.0));
    }
}
