//! The relative performance value type.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Floor of the *healthy* relative-performance range.
///
/// The paper samples the hypothetical relative performance function from
/// `u₁ = −∞`; a finite floor keeps the arithmetic well-behaved while still
/// representing "hopelessly late". Values at or above the floor are the
/// healthy range and are bit-identical to the historical flat-clamp
/// encoding. See DESIGN.md §6.
pub const RP_FLOOR: f64 = -10.0;

/// Upper bound for relative performance: a job that completes instantly at
/// its desired start time achieves exactly 1.
pub const RP_CEIL: f64 = 1.0;

/// Width of the sub-floor band, in `u` units.
///
/// Raw (unclamped) performance below [`RP_FLOOR`] is squash-compressed
/// into the open band `(RP_FLOOR − SUB_FLOOR_BAND, RP_FLOOR)` so that
/// hopeless jobs stay strictly ordered by lateness instead of collapsing
/// onto a flat clamp. The band bottom `RP_FLOOR − SUB_FLOOR_BAND` itself
/// encodes infinite lateness ("never completes").
pub const SUB_FLOOR_BAND: f64 = 1.0;

/// Absolute lower bound of the representable range: the sub-floor band
/// bottom, encoding infinite lateness.
pub const RP_MIN: f64 = RP_FLOOR - SUB_FLOOR_BAND;

/// A relative performance value (the paper's `u`): 0 when the goal is
/// exactly met, positive when exceeded, negative when violated.
///
/// Values are clamped into `[RP_MIN, RP_CEIL]` and are never NaN, which
/// makes `Rp` totally ordered ([`Ord`]). Values in `[RP_FLOOR, RP_CEIL]`
/// are the healthy range; values below [`RP_FLOOR`] live in the sub-floor
/// band and encode squash-compressed lateness (see
/// [`Rp::banded_from_lateness`]).
///
/// ```
/// use dynaplace_rpf::value::Rp;
///
/// let on_goal = Rp::new(0.0);
/// let ahead = Rp::new(0.63);
/// let late = Rp::new(-0.15);
/// assert!(late < on_goal && on_goal < ahead);
/// assert_eq!(Rp::new(55.0), Rp::MAX); // clamped
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Rp(f64);

impl Rp {
    /// Exactly meeting the goal.
    pub const GOAL: Self = Self(0.0);
    /// The healthy-range floor ([`RP_FLOOR`]). Sub-floor band values sort
    /// strictly below this.
    pub const FLOOR: Self = Self(RP_FLOOR);
    /// The absolute minimum ([`RP_MIN`]): the sub-floor band bottom,
    /// encoding infinite lateness.
    pub const MIN: Self = Self(RP_MIN);
    /// The upper clamp ([`RP_CEIL`]).
    pub const MAX: Self = Self(RP_CEIL);

    /// Creates a relative performance value, clamping into
    /// `[RP_MIN, RP_CEIL]`.
    ///
    /// Sub-floor band values (below [`RP_FLOOR`]) should normally be
    /// constructed via [`Rp::banded_from_lateness`]; this constructor
    /// accepts them so already-banded values round-trip through plain
    /// floats (serde, interpolation).
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    #[inline]
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "relative performance must not be NaN");
        Self(value.clamp(RP_MIN, RP_CEIL))
    }

    /// Encodes a non-negative lateness `l` (in raw `u` units below the
    /// floor: `l = RP_FLOOR − u_raw`) as a sub-floor band value:
    ///
    /// `u = RP_FLOOR − SUB_FLOOR_BAND · l / (l + 1)`
    ///
    /// The mapping is strictly decreasing in `l`, so hopeless jobs order
    /// by lateness, and approaches (reaches, for `l = ∞`) the band bottom
    /// [`Rp::MIN`]. `l = 0` maps to exactly [`Rp::FLOOR`].
    ///
    /// # Panics
    ///
    /// Panics if `l` is NaN or negative.
    #[inline]
    pub fn banded_from_lateness(l: f64) -> Self {
        assert!(!l.is_nan(), "lateness must not be NaN");
        assert!(l >= 0.0, "lateness must be non-negative, got {l}");
        if l.is_infinite() {
            return Self::MIN;
        }
        // d ∈ [0, 1); the clamp guards float round-off only.
        let d = l / (l + 1.0);
        Self((RP_FLOOR - SUB_FLOOR_BAND * d).clamp(RP_MIN, RP_FLOOR))
    }

    /// True when this value lies strictly inside the sub-floor band
    /// (below [`RP_FLOOR`]).
    #[inline]
    pub fn is_sub_floor(self) -> bool {
        self.0 < RP_FLOOR
    }

    /// Decodes the lateness of a sub-floor band value (the inverse of
    /// [`Rp::banded_from_lateness`]); `None` for healthy-range values.
    /// The band bottom decodes to `f64::INFINITY`.
    #[inline]
    pub fn sub_floor_lateness(self) -> Option<f64> {
        if !self.is_sub_floor() {
            return None;
        }
        let d = (RP_FLOOR - self.0) / SUB_FLOOR_BAND;
        if d >= 1.0 {
            Some(f64::INFINITY)
        } else {
            Some(d / (1.0 - d))
        }
    }

    /// The value mapped back onto the raw (uncompressed) `u` axis:
    /// healthy-range values are themselves; sub-floor band values
    /// decompress to `RP_FLOOR − lateness` (possibly `−∞`).
    ///
    /// Tolerance-based comparisons must happen on this axis: band values
    /// are squash-compressed, so an absolute tolerance applied to the
    /// stored encoding would erase `ε`-sized lateness deltas.
    #[inline]
    pub fn effective(self) -> f64 {
        match self.sub_floor_lateness() {
            Some(l) => RP_FLOOR - l,
            None => self.0,
        }
    }

    /// The underlying (band-compressed) value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Whether the goal is met or exceeded (`u >= 0`).
    #[inline]
    pub fn meets_goal(self) -> bool {
        self.0 >= 0.0
    }

    /// The smaller of two values.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two values.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// True when the two values differ by at most `tol` on the raw
    /// (decompressed) `u` axis. For healthy-range pairs this is exactly
    /// the historical absolute comparison; sub-floor values decompress to
    /// lateness first so band-scale deltas are not erased.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        self.cmp_with_tolerance(other, tol) == Ordering::Equal
    }

    /// Three-way comparison with tolerance `tol` on the raw
    /// (decompressed) `u` axis: `Equal` when within `tol`, otherwise the
    /// numeric order. Two band-bottom values (both infinitely late)
    /// compare `Equal`.
    #[inline]
    pub fn cmp_with_tolerance(self, other: Self, tol: f64) -> Ordering {
        let (a, b) = (self.effective(), other.effective());
        if a == b {
            // Covers both −∞ (band bottom vs band bottom), where a − b
            // would be NaN.
            return Ordering::Equal;
        }
        let diff = a - b;
        if diff.abs() <= tol {
            Ordering::Equal
        } else if diff > 0.0 {
            Ordering::Greater
        } else {
            Ordering::Less
        }
    }
}

impl Eq for Rp {}

impl PartialOrd for Rp {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rp {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Clamped, never NaN: total_cmp agrees with numeric order. The
        // band compression is strictly monotone, so the stored encoding
        // orders identically to the decompressed axis.
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for Rp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u={:+.3}", self.0)
    }
}

impl From<Rp> for f64 {
    #[inline]
    fn from(rp: Rp) -> f64 {
        rp.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping() {
        assert_eq!(Rp::new(2.0), Rp::MAX);
        assert_eq!(Rp::new(-99.0), Rp::MIN);
        assert_eq!(Rp::new(0.5).value(), 0.5);
    }

    #[test]
    fn ordering_is_numeric() {
        let mut v = vec![Rp::new(0.3), Rp::new(-0.4), Rp::new(1.0), Rp::GOAL];
        v.sort();
        assert_eq!(v, vec![Rp::new(-0.4), Rp::GOAL, Rp::new(0.3), Rp::new(1.0)]);
    }

    #[test]
    fn goal_semantics() {
        assert!(Rp::GOAL.meets_goal());
        assert!(Rp::new(0.1).meets_goal());
        assert!(!Rp::new(-0.001).meets_goal());
    }

    #[test]
    fn min_max_and_approx() {
        assert_eq!(Rp::new(0.2).min(Rp::new(0.5)), Rp::new(0.2));
        assert_eq!(Rp::new(0.2).max(Rp::new(0.5)), Rp::new(0.5));
        assert!(Rp::new(0.2).approx_eq(Rp::new(0.2000001), 1e-5));
        assert!(!Rp::new(0.2).approx_eq(Rp::new(0.3), 1e-5));
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_rejected() {
        let _ = Rp::new(f64::NAN);
    }

    #[test]
    fn display() {
        assert_eq!(Rp::new(0.63).to_string(), "u=+0.630");
        assert_eq!(Rp::new(-0.15).to_string(), "u=-0.150");
    }

    #[test]
    fn band_constants() {
        assert_eq!(Rp::FLOOR.value(), RP_FLOOR);
        assert_eq!(Rp::MIN.value(), RP_FLOOR - SUB_FLOOR_BAND);
        assert!(Rp::MIN < Rp::FLOOR);
        assert!(!Rp::FLOOR.is_sub_floor());
        assert!(Rp::MIN.is_sub_floor());
    }

    #[test]
    fn band_orders_by_lateness() {
        let a = Rp::banded_from_lateness(0.5);
        let b = Rp::banded_from_lateness(2.0);
        let c = Rp::banded_from_lateness(100.0);
        assert!(Rp::FLOOR > a && a > b && b > c && c > Rp::MIN);
        assert_eq!(Rp::banded_from_lateness(0.0), Rp::FLOOR);
        assert_eq!(Rp::banded_from_lateness(f64::INFINITY), Rp::MIN);
    }

    #[test]
    fn band_round_trips() {
        for l in [0.25, 1.0, 3.5, 42.0, 1e6] {
            let u = Rp::banded_from_lateness(l);
            let back = u.sub_floor_lateness().expect("banded value is sub-floor");
            assert!(
                (back - l).abs() <= 1e-9 * l.max(1.0),
                "lateness {l} round-tripped to {back}"
            );
        }
        assert_eq!(Rp::FLOOR.sub_floor_lateness(), None);
        assert_eq!(Rp::GOAL.sub_floor_lateness(), None);
        assert_eq!(Rp::MIN.sub_floor_lateness(), Some(f64::INFINITY));
    }

    #[test]
    fn effective_decompresses() {
        assert_eq!(Rp::new(0.3).effective(), 0.3);
        assert_eq!(Rp::FLOOR.effective(), RP_FLOOR);
        let u = Rp::banded_from_lateness(4.0);
        assert!((u.effective() - (RP_FLOOR - 4.0)).abs() <= 1e-9);
        assert_eq!(Rp::MIN.effective(), f64::NEG_INFINITY);
    }

    #[test]
    fn tolerance_compares_on_decompressed_axis() {
        // Band-scale encodings of nearby latenesses are ε-apart in the
        // stored encoding but tol-distinguishable once decompressed.
        let a = Rp::banded_from_lateness(1000.0);
        let b = Rp::banded_from_lateness(1001.0);
        assert!((a.value() - b.value()).abs() < 1e-5);
        assert_eq!(a.cmp_with_tolerance(b, 1e-3), Ordering::Greater);
        assert!(!a.approx_eq(b, 1e-3));
        // Within tolerance on the lateness axis → equal.
        let c = Rp::banded_from_lateness(1000.0005);
        assert!(a.approx_eq(c, 1e-3));
        // Healthy pairs behave exactly as the historical absolute check.
        assert_eq!(
            Rp::new(0.2).cmp_with_tolerance(Rp::new(0.5), 1e-6),
            Ordering::Less
        );
        // Mixed pair: healthy always beats sub-floor by more than any
        // sane tolerance once decompressed.
        assert_eq!(
            Rp::FLOOR.cmp_with_tolerance(Rp::banded_from_lateness(50.0), 1.0),
            Ordering::Greater
        );
        // Two infinitely-late values are indistinguishable.
        assert_eq!(Rp::MIN.cmp_with_tolerance(Rp::MIN, 1e-6), Ordering::Equal);
    }
}
