//! The relative performance value type.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Lower clamp for relative performance values.
///
/// The paper samples the hypothetical relative performance function from
/// `u₁ = −∞`; a finite floor keeps the arithmetic well-behaved while still
/// representing "hopelessly late". A job at the floor contributes almost
/// no CPU demand at the bottom sampling row, matching the fluid model's
/// intent. See DESIGN.md §6.
pub const RP_FLOOR: f64 = -10.0;

/// Upper bound for relative performance: a job that completes instantly at
/// its desired start time achieves exactly 1.
pub const RP_CEIL: f64 = 1.0;

/// A relative performance value (the paper's `u`): 0 when the goal is
/// exactly met, positive when exceeded, negative when violated.
///
/// Values are clamped into `[RP_FLOOR, RP_CEIL]` and are never NaN, which
/// makes `Rp` totally ordered ([`Ord`]).
///
/// ```
/// use dynaplace_rpf::value::Rp;
///
/// let on_goal = Rp::new(0.0);
/// let ahead = Rp::new(0.63);
/// let late = Rp::new(-0.15);
/// assert!(late < on_goal && on_goal < ahead);
/// assert_eq!(Rp::new(55.0), Rp::MAX); // clamped
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Rp(f64);

impl Rp {
    /// Exactly meeting the goal.
    pub const GOAL: Self = Self(0.0);
    /// The lower clamp ([`RP_FLOOR`]).
    pub const MIN: Self = Self(RP_FLOOR);
    /// The upper clamp ([`RP_CEIL`]).
    pub const MAX: Self = Self(RP_CEIL);

    /// Creates a relative performance value, clamping into
    /// `[RP_FLOOR, RP_CEIL]`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    #[inline]
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "relative performance must not be NaN");
        Self(value.clamp(RP_FLOOR, RP_CEIL))
    }

    /// The underlying value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Whether the goal is met or exceeded (`u >= 0`).
    #[inline]
    pub fn meets_goal(self) -> bool {
        self.0 >= 0.0
    }

    /// The smaller of two values.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two values.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// True when the two values differ by at most `tol`.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.0 - other.0).abs() <= tol
    }
}

impl Eq for Rp {}

impl PartialOrd for Rp {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rp {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Clamped, never NaN: total_cmp agrees with numeric order.
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for Rp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u={:+.3}", self.0)
    }
}

impl From<Rp> for f64 {
    #[inline]
    fn from(rp: Rp) -> f64 {
        rp.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping() {
        assert_eq!(Rp::new(2.0), Rp::MAX);
        assert_eq!(Rp::new(-99.0), Rp::MIN);
        assert_eq!(Rp::new(0.5).value(), 0.5);
    }

    #[test]
    fn ordering_is_numeric() {
        let mut v = vec![Rp::new(0.3), Rp::new(-0.4), Rp::new(1.0), Rp::GOAL];
        v.sort();
        assert_eq!(v, vec![Rp::new(-0.4), Rp::GOAL, Rp::new(0.3), Rp::new(1.0)]);
    }

    #[test]
    fn goal_semantics() {
        assert!(Rp::GOAL.meets_goal());
        assert!(Rp::new(0.1).meets_goal());
        assert!(!Rp::new(-0.001).meets_goal());
    }

    #[test]
    fn min_max_and_approx() {
        assert_eq!(Rp::new(0.2).min(Rp::new(0.5)), Rp::new(0.2));
        assert_eq!(Rp::new(0.2).max(Rp::new(0.5)), Rp::new(0.5));
        assert!(Rp::new(0.2).approx_eq(Rp::new(0.2000001), 1e-5));
        assert!(!Rp::new(0.2).approx_eq(Rp::new(0.3), 1e-5));
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_rejected() {
        let _ = Rp::new(f64::NAN);
    }

    #[test]
    fn display() {
        assert_eq!(Rp::new(0.63).to_string(), "u=+0.630");
        assert_eq!(Rp::new(-0.15).to_string(), "u=-0.150");
    }
}
