//! Relative performance functions (RPFs) and the fairness objective.
//!
//! An RPF measures an application's performance *relative to its goal*
//! (§3.2 of the paper): 0 means the goal is exactly met, positive values
//! exceed it, negative values violate it. Because every workload — web
//! application or batch job — is scored on the same scale, the placement
//! controller can trade resources between them fairly.
//!
//! This crate provides:
//!
//! - [`value::Rp`] — the clamped, totally ordered performance value,
//! - [`goal`] — response-time and completion-time goals and their linear
//!   RPFs (eqs. 1 and 2),
//! - [`model::PerformanceModel`] — performance as a function of allocated
//!   CPU, with the two queries the placement algorithm needs, and
//!   [`model::SampledRpf`], the piecewise-linear materialization,
//! - [`satisfaction::SatisfactionVector`] — the ordered per-application
//!   performance vector and the paper's extended max-min comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod goal;
pub mod model;
pub mod satisfaction;
pub mod utility;
pub mod value;

pub use goal::{CompletionGoal, ResponseTimeGoal};
pub use model::{PerformanceModel, SampledRpf};
pub use satisfaction::{SatisfactionVector, DEFAULT_EPSILON};
pub use utility::{SatisfactionCurve, UtilityModel};
pub use value::{Rp, RP_CEIL, RP_FLOOR, RP_MIN, SUB_FLOOR_BAND};
