//! SLA goals and the linear RPFs the paper derives from them.
//!
//! - Transactional applications carry a response-time goal τ and
//!   `u(t) = (τ − t)/τ` (eq. 1).
//! - Batch jobs carry a completion-time goal τ and desired start time
//!   τ_start, with `u(t_c) = (τ − t_c)/(τ − τ_start)` (eq. 2).

use serde::{Deserialize, Serialize};

use dynaplace_model::units::{SimDuration, SimTime};

use crate::value::Rp;

/// Completion-time goal of a batch job (eq. 2).
///
/// ```
/// use dynaplace_model::units::{SimDuration, SimTime};
/// use dynaplace_rpf::goal::CompletionGoal;
/// use dynaplace_rpf::value::Rp;
///
/// // Submitted at t=1 s, goal t=17 s (relative goal 16 s).
/// let goal = CompletionGoal::new(SimTime::from_secs(1.0), SimTime::from_secs(17.0));
/// // Completing at t=6 s achieves (17-6)/16 = 0.6875.
/// assert!(goal
///     .performance_at(SimTime::from_secs(6.0))
///     .approx_eq(Rp::new(0.6875), 1e-9));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletionGoal {
    desired_start: SimTime,
    deadline: SimTime,
}

impl CompletionGoal {
    /// Creates a completion goal with desired start `τ_start` and
    /// completion deadline `τ`.
    ///
    /// # Panics
    ///
    /// Panics if the deadline is not strictly after the desired start.
    pub fn new(desired_start: SimTime, deadline: SimTime) -> Self {
        assert!(
            deadline > desired_start,
            "completion deadline must be after the desired start"
        );
        Self {
            desired_start,
            deadline,
        }
    }

    /// Builds a goal from a desired start and the paper's *relative goal
    /// factor*: `relative goal = factor × best execution time`, so the
    /// deadline is `τ_start + factor × t_best`.
    ///
    /// # Panics
    ///
    /// Panics if `factor × best_execution` is not strictly positive.
    pub fn from_goal_factor(
        desired_start: SimTime,
        best_execution: SimDuration,
        factor: f64,
    ) -> Self {
        let relative = SimDuration::from_secs(best_execution.as_secs() * factor);
        assert!(relative.is_positive(), "relative goal must be positive");
        Self::new(desired_start, desired_start + relative)
    }

    /// The desired start time `τ_start`.
    #[inline]
    pub fn desired_start(&self) -> SimTime {
        self.desired_start
    }

    /// The completion deadline `τ`.
    #[inline]
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }

    /// The relative goal `τ − τ_start`.
    #[inline]
    pub fn relative_goal(&self) -> SimDuration {
        self.deadline - self.desired_start
    }

    /// Relative performance of completing at `completion` (eq. 2).
    ///
    /// Healthy values (raw `u ≥ RP_FLOOR`) are returned exactly as the
    /// historical clamped arithmetic produced them; raw values below the
    /// floor are squash-compressed into the sub-floor band so hopeless
    /// completions stay strictly ordered by lateness (DESIGN.md §6).
    pub fn performance_at(&self, completion: SimTime) -> Rp {
        let num = (self.deadline - completion).as_secs();
        let raw = num / self.relative_goal().as_secs();
        if raw >= crate::value::RP_FLOOR {
            Rp::new(raw)
        } else {
            Rp::banded_from_lateness(crate::value::RP_FLOOR - raw)
        }
    }

    /// Inverse of eq. 2: the completion time that yields relative
    /// performance `u`, `t(u) = τ − u·(τ − τ_start)` (the paper's `t_m(u)`
    /// in §4.2). Sub-floor band values decompress to their raw lateness
    /// first, so this inverts [`CompletionGoal::performance_at`] across
    /// the whole range (`Rp::MIN` maps to an infinitely late completion).
    pub fn completion_for(&self, u: Rp) -> SimTime {
        self.deadline - SimDuration::from_secs(u.effective() * self.relative_goal().as_secs())
    }

    /// Signed distance to the deadline for a completion time: positive
    /// when early, negative when late (the y axis of the paper's Fig. 5).
    pub fn distance_to_deadline(&self, completion: SimTime) -> SimDuration {
        self.deadline - completion
    }
}

/// Response-time goal of a transactional application (eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseTimeGoal {
    goal: SimDuration,
}

impl ResponseTimeGoal {
    /// Creates a response-time goal of `goal` (the paper's τ).
    ///
    /// # Panics
    ///
    /// Panics if the goal is not strictly positive.
    pub fn new(goal: SimDuration) -> Self {
        assert!(goal.is_positive(), "response time goal must be positive");
        Self { goal }
    }

    /// The goal τ.
    #[inline]
    pub fn goal(&self) -> SimDuration {
        self.goal
    }

    /// Relative performance of an observed response time (eq. 1):
    /// `u = (τ − t)/τ`, clamped at the healthy floor.
    ///
    /// Transactional scoring deliberately does not use the sub-floor
    /// band: requests are memoryless (there is no lateness to drain), and
    /// deep overload must score exactly [`Rp::FLOOR`] so it stays
    /// consistent with the router's no-capacity outcome.
    pub fn performance_at(&self, response_time: SimDuration) -> Rp {
        let raw = (self.goal - response_time).as_secs() / self.goal.as_secs();
        Rp::new(raw.max(crate::value::RP_FLOOR))
    }

    /// Inverse of eq. 1: the response time that yields `u`,
    /// `t(u) = τ·(1 − u)`.
    pub fn response_for(&self, u: Rp) -> SimDuration {
        SimDuration::from_secs(self.goal.as_secs() * (1.0 - u.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn completion_goal_round_trip() {
        let g = CompletionGoal::new(t(0.0), t(20.0));
        assert_eq!(g.relative_goal(), d(20.0));
        // Completing at t=4 (J1 alone at full speed in §4.3): u = 0.8.
        assert!(g.performance_at(t(4.0)).approx_eq(Rp::new(0.8), 1e-12));
        assert_eq!(g.completion_for(Rp::new(0.8)), t(4.0));
        // Exactly on goal.
        assert_eq!(g.performance_at(t(20.0)), Rp::GOAL);
        // Late by 20% of the relative goal.
        assert!(g.performance_at(t(24.0)).approx_eq(Rp::new(-0.2), 1e-12));
    }

    #[test]
    fn goal_factor_matches_experiment_one() {
        // 17,600 s at max speed, factor 2.7 → relative goal 47,520 s.
        let g = CompletionGoal::from_goal_factor(t(100.0), d(17_600.0), 2.7);
        assert!((g.relative_goal().as_secs() - 47_520.0).abs() < 1e-9);
        // Max achievable RP when started immediately ≈ 0.63 (paper §5.1).
        let u = g.performance_at(t(100.0 + 17_600.0));
        assert!((u.value() - 0.6296).abs() < 1e-3);
    }

    #[test]
    fn distance_to_deadline_sign() {
        let g = CompletionGoal::new(t(0.0), t(10.0));
        assert_eq!(g.distance_to_deadline(t(8.0)), d(2.0));
        assert_eq!(g.distance_to_deadline(t(12.0)), d(-2.0));
    }

    #[test]
    #[should_panic(expected = "deadline must be after")]
    fn inverted_goal_rejected() {
        let _ = CompletionGoal::new(t(5.0), t(5.0));
    }

    #[test]
    fn response_goal_round_trip() {
        let g = ResponseTimeGoal::new(d(0.1));
        assert_eq!(g.performance_at(d(0.1)), Rp::GOAL);
        assert!(g.performance_at(d(0.05)).approx_eq(Rp::new(0.5), 1e-12));
        assert!(g.performance_at(d(0.2)).approx_eq(Rp::new(-1.0), 1e-12));
        assert!((g.response_for(Rp::new(0.5)).as_secs() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn response_goal_floor_clamps() {
        let g = ResponseTimeGoal::new(d(0.01));
        // Absurdly slow response clamps at the healthy floor (never the
        // sub-floor band): txn scoring is memoryless.
        assert_eq!(g.performance_at(d(1e9)), Rp::FLOOR);
    }

    #[test]
    fn completion_goal_bands_below_floor() {
        let g = CompletionGoal::new(t(0.0), t(10.0));
        // raw u = (10 − completion)/10; floor crossed at completion 110 s.
        assert_eq!(g.performance_at(t(110.0)), Rp::FLOOR);
        let a = g.performance_at(t(120.0));
        let b = g.performance_at(t(200.0));
        assert!(a.is_sub_floor() && b.is_sub_floor());
        // Later completion → strictly lower banded utility.
        assert!(Rp::FLOOR > a && a > b && b > Rp::MIN);
        // completion_for inverts the band.
        for c in [120.0, 200.0, 5_000.0] {
            let u = g.performance_at(t(c));
            assert!(
                (g.completion_for(u).as_secs() - c).abs() <= 1e-6 * c,
                "completion {c} round-tripped to {}",
                g.completion_for(u).as_secs()
            );
        }
        assert_eq!(g.completion_for(Rp::MIN).as_secs(), f64::INFINITY);
    }
}
