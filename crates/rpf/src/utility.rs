//! Transforming relative performance into business utility.
//!
//! The paper is careful to distinguish RPFs from utility functions (§2):
//! an RPF is *merely a measure of relative distance from the goal*, while
//! a utility function models user satisfaction or business value. "If
//! such a satisfaction model exists, it may be used to transform an RPF
//! into a utility function." This module provides that transformation:
//! a monotone satisfaction curve composed over any [`PerformanceModel`].

use dynaplace_model::units::CpuSpeed;
use dynaplace_solver::piecewise::{PiecewiseError, PiecewiseLinear};

use crate::model::PerformanceModel;
use crate::value::Rp;

/// A monotone non-decreasing map from relative performance to business
/// utility, represented piecewise-linearly.
///
/// ```
/// use dynaplace_rpf::utility::SatisfactionCurve;
/// use dynaplace_rpf::value::Rp;
///
/// // A step-ish SLA curve: heavy penalty below goal, bonus above.
/// let curve = SatisfactionCurve::new(vec![
///     (-1.0, -100.0), // severe violation: large penalty
///     (0.0, 0.0),     // exactly on goal: neutral
///     (0.5, 10.0),    // overachievement is worth a little
///     (1.0, 12.0),    // ...with diminishing returns
/// ])?;
/// assert_eq!(curve.utility(Rp::GOAL), 0.0);
/// assert_eq!(curve.utility(Rp::new(-0.5)), -50.0);
/// assert_eq!(curve.utility(Rp::new(0.75)), 11.0);
/// # Ok::<(), dynaplace_solver::piecewise::PiecewiseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SatisfactionCurve {
    curve: PiecewiseLinear,
}

impl SatisfactionCurve {
    /// Builds the curve from `(relative performance, utility)` samples
    /// with strictly increasing performance values and non-decreasing
    /// utility.
    ///
    /// # Errors
    ///
    /// Returns [`PiecewiseError`] for fewer than two points or
    /// non-increasing x coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the utilities decrease (satisfaction must be monotone
    /// in performance).
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, PiecewiseError> {
        let curve = PiecewiseLinear::new(points)?;
        assert!(
            curve.is_non_decreasing(),
            "satisfaction must be non-decreasing in relative performance"
        );
        Ok(Self { curve })
    }

    /// The linear identity: utility ≡ relative performance (the implicit
    /// model used when no satisfaction data exists).
    ///
    /// The knot at `(RP_FLOOR, RP_FLOOR)` keeps the healthy segment
    /// `[RP_FLOOR, RP_CEIL]` arithmetic bit-identical to the historical
    /// two-point curve; the extra segment below it extends the identity
    /// across the sub-floor band down to `RP_MIN`.
    pub fn identity() -> Self {
        Self::new(vec![
            (crate::value::RP_MIN, crate::value::RP_MIN),
            (crate::value::RP_FLOOR, crate::value::RP_FLOOR),
            (crate::value::RP_CEIL, crate::value::RP_CEIL),
        ])
        .expect("identity curve is well-formed")
    }

    /// Business utility of a relative performance value.
    pub fn utility(&self, u: Rp) -> f64 {
        self.curve.eval(u.value())
    }
}

/// A [`PerformanceModel`] re-scored through a [`SatisfactionCurve`]:
/// utility as a function of allocated CPU. Useful for comparing the
/// paper's fairness objective against utility-maximizing placement (the
/// approach of Wang et al. \[17\] discussed in §2).
#[derive(Debug, Clone)]
pub struct UtilityModel<M> {
    inner: M,
    curve: SatisfactionCurve,
}

impl<M: PerformanceModel> UtilityModel<M> {
    /// Wraps a performance model with a satisfaction curve.
    pub fn new(inner: M, curve: SatisfactionCurve) -> Self {
        Self { inner, curve }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Utility achieved under aggregate allocation `omega`.
    pub fn utility(&self, omega: CpuSpeed) -> f64 {
        self.curve.utility(self.inner.performance(omega))
    }

    /// The maximum achievable utility.
    pub fn max_utility(&self) -> f64 {
        self.curve.utility(self.inner.max_performance())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SampledRpf;

    fn model() -> SampledRpf {
        SampledRpf::from_samples(vec![
            (CpuSpeed::ZERO, Rp::new(-1.0)),
            (CpuSpeed::from_mhz(100.0), Rp::new(0.0)),
            (CpuSpeed::from_mhz(200.0), Rp::new(0.5)),
        ])
        .unwrap()
    }

    #[test]
    fn identity_is_identity() {
        let c = SatisfactionCurve::identity();
        for u in [-10.5, -10.0, -5.0, -1.0, 0.0, 0.5, 1.0] {
            assert!((c.utility(Rp::new(u)) - u).abs() < 1e-12);
        }
    }

    #[test]
    fn asymmetric_penalties() {
        // Violations cost 10x what overachievement earns.
        let c = SatisfactionCurve::new(vec![(-1.0, -10.0), (0.0, 0.0), (1.0, 1.0)]).unwrap();
        assert_eq!(c.utility(Rp::new(-0.5)), -5.0);
        assert_eq!(c.utility(Rp::new(0.5)), 0.5);
    }

    #[test]
    fn utility_model_composes() {
        let m = UtilityModel::new(
            model(),
            SatisfactionCurve::new(vec![(-1.0, -100.0), (0.0, 0.0), (0.5, 5.0)]).unwrap(),
        );
        assert_eq!(m.utility(CpuSpeed::ZERO), -100.0);
        assert_eq!(m.utility(CpuSpeed::from_mhz(100.0)), 0.0);
        assert_eq!(m.utility(CpuSpeed::from_mhz(200.0)), 5.0);
        assert_eq!(m.max_utility(), 5.0);
        // Monotone because both parts are monotone.
        assert!(m.utility(CpuSpeed::from_mhz(150.0)) > m.utility(CpuSpeed::from_mhz(50.0)));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_satisfaction_rejected() {
        let _ = SatisfactionCurve::new(vec![(0.0, 1.0), (1.0, 0.0)]);
    }
}
