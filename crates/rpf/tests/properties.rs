//! Property-based tests for the RPF framework.

#![deny(deprecated)]

use std::cmp::Ordering;

use dynaplace_model::ids::AppId;
use dynaplace_model::units::{CpuSpeed, SimDuration, SimTime};
use dynaplace_rpf::goal::{CompletionGoal, ResponseTimeGoal};
use dynaplace_rpf::model::{PerformanceModel, SampledRpf};
use dynaplace_rpf::satisfaction::SatisfactionVector;
use dynaplace_rpf::value::Rp;
use proptest::prelude::*;

fn arb_rp() -> impl Strategy<Value = Rp> {
    (-12.0..1.2f64).prop_map(Rp::new)
}

fn arb_sv(len: usize) -> impl Strategy<Value = SatisfactionVector> {
    proptest::collection::vec(arb_rp(), len).prop_map(|us| {
        us.into_iter()
            .enumerate()
            .map(|(i, u)| (AppId::new(i as u32), u))
            .collect()
    })
}

proptest! {
    /// Completion goal: performance_at and completion_for invert each
    /// other inside the representable range.
    #[test]
    fn completion_goal_inverse(
        start in 0.0..1e5f64,
        rel in 1.0..1e5f64,
        u in -9.9..0.99f64,
    ) {
        let g = CompletionGoal::new(
            SimTime::from_secs(start),
            SimTime::from_secs(start + rel),
        );
        let t = g.completion_for(Rp::new(u));
        let back = g.performance_at(t);
        prop_assert!(back.approx_eq(Rp::new(u), 1e-9));
    }

    /// Completion performance is monotone decreasing in completion time.
    #[test]
    fn later_completion_is_never_better(
        start in 0.0..1e5f64,
        rel in 1.0..1e5f64,
        t1 in 0.0..2e5f64,
        dt in 0.0..1e5f64,
    ) {
        let g = CompletionGoal::new(
            SimTime::from_secs(start),
            SimTime::from_secs(start + rel),
        );
        let early = g.performance_at(SimTime::from_secs(t1));
        let late = g.performance_at(SimTime::from_secs(t1 + dt));
        prop_assert!(late <= early);
    }

    /// Response goal: response_for inverts performance_at.
    #[test]
    fn response_goal_inverse(goal in 0.001..10.0f64, u in -9.9..0.99f64) {
        let g = ResponseTimeGoal::new(SimDuration::from_secs(goal));
        let t = g.response_for(Rp::new(u));
        prop_assert!(g.performance_at(t).approx_eq(Rp::new(u), 1e-9));
    }

    /// SatisfactionVector comparison (with eps=0) is antisymmetric and
    /// consistent with dominance.
    #[test]
    fn comparison_antisymmetric(a in arb_sv(5), b in arb_sv(5)) {
        let ab = a.compare(&b, 0.0);
        let ba = b.compare(&a, 0.0);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Greater {
            prop_assert!(a.dominates(&b, 0.0));
            prop_assert!(!b.dominates(&a, 0.0));
        }
    }

    /// Raising any single application's performance never makes the
    /// vector compare worse (monotonicity of the max-min extension).
    #[test]
    fn raising_one_entry_never_hurts(
        us in proptest::collection::vec(-5.0..0.9f64, 1..6),
        idx in any::<prop::sample::Index>(),
        boost in 0.0..5.0f64,
    ) {
        let base: SatisfactionVector = us
            .iter()
            .enumerate()
            .map(|(i, &u)| (AppId::new(i as u32), Rp::new(u)))
            .collect();
        let i = idx.index(us.len());
        let improved: SatisfactionVector = us
            .iter()
            .enumerate()
            .map(|(j, &u)| {
                let v = if j == i { u + boost } else { u };
                (AppId::new(j as u32), Rp::new(v))
            })
            .collect();
        prop_assert_ne!(improved.compare(&base, 0.0), Ordering::Less);
    }

    /// SampledRpf: performance is monotone in allocation and demand is a
    /// left inverse within the active region.
    #[test]
    fn sampled_rpf_monotone(
        deltas in proptest::collection::vec((1.0..500.0f64, 0.0..0.3f64), 2..10),
        probe in 0.0..1.0f64,
    ) {
        let mut omega = 0.0;
        let mut u = -3.0;
        let mut samples = vec![(CpuSpeed::ZERO, Rp::new(u))];
        for (dw, du) in deltas {
            omega += dw;
            u = (u + du).min(1.0);
            samples.push((CpuSpeed::from_mhz(omega), Rp::new(u)));
        }
        let rpf = SampledRpf::from_samples(samples).unwrap();
        let w1 = CpuSpeed::from_mhz(probe * omega);
        let w2 = CpuSpeed::from_mhz(omega);
        prop_assert!(rpf.performance(w1) <= rpf.performance(w2));
        // demand(performance(w)) <= w: the inverse is the *cheapest*
        // allocation achieving that performance.
        prop_assert!(rpf.demand(rpf.performance(w1)).as_mhz() <= w1.as_mhz() + 1e-9);
    }
}
