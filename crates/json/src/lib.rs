//! Minimal JSON support for dynaplace: a value model, a strict parser,
//! a pretty-printer, and explicit conversion traits.
//!
//! The workspace builds in offline environments where serde/serde_json
//! are unavailable, and its JSON needs are small and concrete: read
//! scenario specifications (`scenarios/*.json`), write result artifacts
//! (`results/*.json`), and round-trip the Experiment Two sweep cache.
//! Those paths use explicit [`ToJson`]/[`FromJson`] implementations on
//! the few types involved, which also keeps the on-disk format an
//! intentional, reviewed surface rather than a derive side effect.
//!
//! Numbers are stored as `f64` (JSON's number model); printing uses
//! Rust's shortest round-trip formatting, so `parse(print(x)) == x` for
//! every finite value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved as written.
    Obj(Vec<(String, Json)>),
}

/// Error raised by parsing or by typed extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description with position context.
    pub message: String,
}

impl JsonError {
    fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

/// Shorthand result type.
pub type Result<T> = std::result::Result<T, JsonError>;

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON document"));
        }
        Ok(v)
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Prints the value on a single line with no whitespace, for line-
    /// oriented formats (JSONL) where one value per line is the contract.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => out.push_str(&format_number(*x)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => out.push_str(&format_number(*x)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Typed field extraction: `obj.field::<f64>("cpu_mhz")`.
    pub fn field<T: FromJson>(&self, key: &str) -> Result<T> {
        match self.get(key) {
            Some(v) => {
                T::from_json(v).map_err(|e| JsonError::new(format!("field '{key}': {}", e.message)))
            }
            None => Err(JsonError::new(format!("missing field '{key}'"))),
        }
    }

    /// Typed optional field: absent and `null` both give the default.
    pub fn field_or<T: FromJson + Default>(&self, key: &str) -> Result<T> {
        match self.get(key) {
            None => Ok(T::default()),
            Some(Json::Null) => Ok(T::default()),
            Some(v) => {
                T::from_json(v).map_err(|e| JsonError::new(format!("field '{key}': {}", e.message)))
            }
        }
    }

    /// Like [`Json::field_or`] with an explicit fallback, for optional
    /// fields whose default is not `T::default()`.
    pub fn field_or_else<T: FromJson>(&self, key: &str, default: impl FnOnce() -> T) -> Result<T> {
        match self.get(key) {
            None | Some(Json::Null) => Ok(default()),
            Some(v) => {
                T::from_json(v).map_err(|e| JsonError::new(format!("field '{key}': {}", e.message)))
            }
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a finite f64 with shortest round-trip precision; integral
/// values keep a trailing `.0` so the type survives a round trip
/// visually (1.0, not 1).
fn format_number(x: f64) -> String {
    if !x.is_finite() {
        // JSON has no Inf/NaN; mirror serde_json's `null`.
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        let line = 1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        JsonError::new(format!("{msg} (line {line}, byte {})", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let unit = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            // A high surrogate followed by `\u` + low
                            // surrogate decodes as one UTF-16 pair; a
                            // lone surrogate maps to the replacement
                            // character rather than failing the parse.
                            let code = if (0xD800..=0xDBFF).contains(&unit)
                                && self.bytes.get(self.pos + 1) == Some(&b'\\')
                                && self.bytes.get(self.pos + 2) == Some(&b'u')
                            {
                                let low = self.hex4(self.pos + 3)?;
                                if (0xDC00..=0xDFFF).contains(&low) {
                                    self.pos += 6;
                                    0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    unit
                                }
                            } else {
                                unit
                            };
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits of a `\u` escape starting at `at`,
    /// without advancing the cursor.
    fn hex4(&self, at: usize) -> Result<u32> {
        let Some(digits) = self.bytes.get(at..at + 4) else {
            return Err(self.err("truncated \\u escape"));
        };
        let hex = std::str::from_utf8(digits).map_err(|_| self.err("invalid \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))
    }

    fn array(&mut self) -> Result<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

/// Conversion into [`Json`].
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Conversion from [`Json`].
pub trait FromJson: Sized {
    /// Parses from a JSON value.
    fn from_json(v: &Json) -> Result<Self>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self> {
        Ok(v.clone())
    }
}

macro_rules! num_conv {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self> {
                let x = v.as_f64().ok_or_else(|| JsonError::new("expected a number"))?;
                Ok(x as $t)
            }
        }
    )*};
}
num_conv!(f64, f32, u64, u32, usize, i64, i32);

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self> {
        v.as_bool()
            .ok_or_else(|| JsonError::new("expected a boolean"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new("expected a string"))
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self> {
        v.as_arr()
            .ok_or_else(|| JsonError::new("expected an array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(x) => x.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_json(v).map(Some)
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self> {
        let items = v
            .as_arr()
            .ok_or_else(|| JsonError::new("expected a pair"))?;
        if items.len() != 2 {
            return Err(JsonError::new(format!(
                "expected a 2-element array, got {}",
                items.len()
            )));
        }
        Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
    }
}

impl<K: ToString, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

/// Builds an object from explicit fields, preserving order.
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert!(arr[2].get("b").unwrap().is_null());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{'a': 1}").is_err());
    }

    #[test]
    fn compact_is_single_line_and_round_trips() {
        let v = Json::parse(
            r#"{"seed": 42, "xs": [1.5, 2, 0.000012054], "s": "hi \"there\"", "n": null}"#,
        )
        .unwrap();
        let text = v.compact();
        assert!(!text.contains('\n'));
        assert!(!text.contains(' ') || text.contains("\"hi"));
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(obj([]).compact(), "{}");
        assert_eq!(Json::Arr(vec![]).compact(), "[]");
    }

    #[test]
    fn pretty_round_trips() {
        let v = Json::parse(
            r#"{"seed": 42, "xs": [1.5, 2, 0.000012054], "s": "hi \"there\"", "n": null}"#,
        )
        .unwrap();
        let text = v.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for &x in &[
            0.0,
            -0.0,
            1.0,
            0.1,
            1e-12,
            123456789.123456,
            f64::MIN_POSITIVE,
        ] {
            let text = format_number(x);
            let back: f64 = text.parse().unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn typed_fields_extract() {
        let v = Json::parse(r#"{"count": 3, "name": "x", "opt": null}"#).unwrap();
        assert_eq!(v.field::<usize>("count").unwrap(), 3);
        assert_eq!(v.field::<String>("name").unwrap(), "x");
        assert_eq!(v.field_or::<u64>("missing").unwrap(), 0);
        assert_eq!(v.field_or::<Option<f64>>("opt").unwrap(), None);
        assert!(v.field::<f64>("missing").is_err());
    }
}
