//! Round-trip property suite: `parse ∘ render == identity` on generated
//! values, for both the compact and the pretty printer.
//!
//! String generation deliberately over-samples the hostile corners of
//! the escape path: control characters (the `\u00XX` escape route),
//! quotes, backslashes, forward slashes, DEL, and multi-byte Unicode up
//! to astral-plane code points. Numbers cover integers, subnormals, and
//! extreme exponents — the printer promises shortest-round-trip
//! formatting for every finite `f64`.

use dynaplace_json::Json;
use proptest::prelude::*;

/// Character palette biased toward escape-path edge cases.
const PALETTE: [char; 24] = [
    '\u{0}', '\u{1}', '\u{8}', '\t', '\n', '\u{b}', '\u{c}', '\r', '\u{e}',
    '\u{1f}', // controls
    '"', '\\', '/', ' ', 'a', 'Z', '0', '_', '\u{7f}', 'é', 'Ж', '✓', '\u{fffd}', '𝄞',
];

fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec((0usize..PALETTE.len()).prop_map(|i| PALETTE[i]), 0..12)
        .prop_map(|chars| chars.into_iter().collect())
}

fn arb_number() -> BoxedStrategy<f64> {
    prop_oneof![
        Just(0.0),
        Just(-0.0),
        Just(f64::MIN_POSITIVE),
        Just(f64::MAX),
        Just(f64::EPSILON),
        Just(1e-300),
        Just(-123_456_789.123_456),
        -1e9..1e9f64,
        -1e-6..1e-6f64,
        (0u64..1_000_000).prop_map(|n| n as f64),
    ]
    .boxed()
}

fn arb_json(depth: u32) -> BoxedStrategy<Json> {
    let scalar = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        arb_number().prop_map(Json::Num),
        arb_string().prop_map(Json::Str),
    ]
    .boxed();
    if depth == 0 {
        return scalar;
    }
    prop_oneof![
        scalar,
        proptest::collection::vec(arb_json(depth - 1), 0..4).prop_map(Json::Arr),
        proptest::collection::vec((arb_string(), arb_json(depth - 1)), 0..4).prop_map(Json::Obj),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `parse(compact(v)) == v` for arbitrary nested values.
    #[test]
    fn compact_round_trips(v in arb_json(3)) {
        let text = v.compact();
        let back = Json::parse(&text).unwrap_or_else(|e| {
            panic!("compact output failed to parse: {e}\n{text}")
        });
        prop_assert_eq!(back, v);
    }

    /// `parse(pretty(v)) == v` for arbitrary nested values.
    #[test]
    fn pretty_round_trips(v in arb_json(3)) {
        let text = v.pretty();
        let back = Json::parse(&text).unwrap_or_else(|e| {
            panic!("pretty output failed to parse: {e}\n{text}")
        });
        prop_assert_eq!(back, v);
    }

    /// Strings survive alone too (the densest escape coverage, since
    /// nothing else in the document dilutes the hostile characters).
    #[test]
    fn hostile_strings_round_trip(s in arb_string()) {
        let v = Json::Str(s);
        prop_assert_eq!(Json::parse(&v.compact()).unwrap(), v.clone());
        prop_assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }
}

/// Every control character (the full `\u00XX` range) escapes to
/// something the parser accepts and maps back to the same code point.
#[test]
fn all_control_characters_round_trip() {
    for code in 0u32..0x20 {
        let c = char::from_u32(code).unwrap();
        let v = Json::Str(format!("a{c}b"));
        let text = v.compact();
        assert_eq!(
            Json::parse(&text).unwrap(),
            v,
            "control char U+{code:04X} failed through {text:?}"
        );
    }
}

/// Explicit `\uXXXX` escapes in the input — including surrogate pairs —
/// parse to the right scalar values and survive re-rendering.
#[test]
fn unicode_escape_forms_parse_and_round_trip() {
    let cases = [
        (r#""\u0000""#, "\u{0}"),
        (r#""\u001F""#, "\u{1f}"),
        (r#""\u0041""#, "A"),
        (r#""\u00e9""#, "\u{e9}"),
        (r#""\u2713""#, "\u{2713}"),
        (r#""\uD834\uDD1E""#, "\u{1d11e}"), // surrogate pair
    ];
    for (input, expected) in cases {
        let v = Json::parse(input).unwrap_or_else(|e| panic!("{input}: {e}"));
        assert_eq!(v, Json::Str(expected.to_string()), "{input}");
        assert_eq!(Json::parse(&v.compact()).unwrap(), v, "{input}");
    }
}
