//! Shared test support for the dynaplace workspace.
//!
//! Two things live here so every suite checks the same contract the same
//! way:
//!
//! - [`PlacementInvariants`]: the single checker for "this placement and
//!   load distribution are physically meaningful" — capacity never
//!   exceeded, no orphan instances, load routes sum to each
//!   application's delivered demand. Integration suites, the
//!   failure-injection suite, and the differential scoring harness all
//!   call it instead of re-deriving ad-hoc assertions.
//! - [`fixtures`]: the randomized placement-problem generator used by
//!   the property and differential suites, so "a random cluster" means
//!   the same distribution everywhere.
//! - [`gen`] and [`oracle`]: the scenario fuzzing facility — a
//!   generator of random valid [`dynaplace_sim::spec::ScenarioSpec`]s
//!   with a structural shrinker, and whole-run invariant/differential
//!   oracles over full simulations (DESIGN.md §14).
//!
//! This crate is a dev-dependency only; it never ships in the library.

use std::fmt::Write as _;

use dynaplace_apc::optimizer::PlacementOutcome;
use dynaplace_apc::problem::PlacementProblem;
use dynaplace_model::ids::{AppId, NodeId};
use dynaplace_model::load::LoadDistribution;
use dynaplace_model::placement::Placement;
use dynaplace_model::units::CpuSpeed;

pub mod fixtures;
pub mod gen;
pub mod oracle;

/// Numeric slack for capacity comparisons, matching the feasibility
/// epsilon the load distributor itself works to.
const CAP_EPS: f64 = 1e-6;

/// The shared placement-invariant checker.
///
/// [`check`](Self::check) collects every violation instead of stopping
/// at the first, so a failing test prints the full picture.
pub struct PlacementInvariants {
    violations: Vec<String>,
}

impl PlacementInvariants {
    /// Checks `placement` (and, when given, its load distribution)
    /// against `problem`. Returns every violated invariant, one message
    /// per violation; an empty `Ok(())` means all invariants hold.
    pub fn check(
        problem: &PlacementProblem<'_>,
        placement: &Placement,
        load: Option<&LoadDistribution>,
    ) -> Result<(), Vec<String>> {
        let mut inv = PlacementInvariants {
            violations: Vec::new(),
        };
        inv.check_structure(problem, placement);
        inv.check_memory_capacity(problem, placement);
        if let Some(load) = load {
            inv.check_load(problem, placement, load);
        }
        if inv.violations.is_empty() {
            Ok(())
        } else {
            Err(inv.violations)
        }
    }

    /// Asserts that an optimizer outcome satisfies every invariant,
    /// panicking with a readable report otherwise. This is the entry
    /// point test suites call.
    pub fn assert_outcome(problem: &PlacementProblem<'_>, outcome: &PlacementOutcome) {
        if let Err(violations) = Self::check(problem, &outcome.placement, Some(&outcome.score.load))
        {
            let mut report = String::from("placement invariants violated:\n");
            for v in &violations {
                let _ = writeln!(report, "  - {v}");
            }
            panic!("{report}");
        }
    }

    fn violation(&mut self, message: String) {
        self.violations.push(message);
    }

    /// Structural soundness: the model's own validation (pinning,
    /// anti-affinity, instance limits, spec memory) plus liveness — a
    /// placement may only hold instances of live applications on nodes
    /// that exist ("no orphan instances").
    fn check_structure(&mut self, problem: &PlacementProblem<'_>, placement: &Placement) {
        if let Err(e) = placement.validate(problem.cluster, problem.apps) {
            self.violation(format!("model validation failed: {e}"));
        }
        for (app, node, count) in placement.iter() {
            if !problem.workloads.contains_key(&app) {
                self.violation(format!(
                    "orphan instances: {count} instance(s) of non-live {app:?} on {node:?}"
                ));
            }
            if !problem.cluster.contains(node) {
                self.violation(format!("instances of {app:?} on unknown {node:?}"));
            }
        }
    }

    /// Rigid capacity in every declared dimension, with *effective*
    /// per-instance sizes (a batch job's current stage may pin less
    /// memory than its spec maximum; extra dimensions come from the
    /// static spec).
    fn check_memory_capacity(&mut self, problem: &PlacementProblem<'_>, placement: &Placement) {
        let dims = problem.rigid_dims().clone();
        for (node, spec) in problem.cluster.iter() {
            let mut used = vec![0.0; dims.len().max(spec.rigid_capacity().len())];
            for (app, count) in placement.apps_on(node) {
                if let Ok(rigid) = problem.try_effective_rigid(app) {
                    for (d, u) in used.iter_mut().enumerate() {
                        *u += rigid.get(d) * count as f64;
                    }
                }
            }
            for (d, &u) in used.iter().enumerate() {
                let cap = spec.rigid_capacity().get(d);
                if u > cap * (1.0 + CAP_EPS) + CAP_EPS {
                    let name = if d < dims.len() { dims.name(d) } else { "?" };
                    self.violation(format!(
                        "{name} (dim {d}) over-committed on {node:?}: {u:.3} used of {cap:.3}"
                    ));
                }
            }
        }
    }

    /// Load-distribution invariants: CPU capacity per node, routes only
    /// where instances exist, per-route and per-app ceilings respected,
    /// and per-app routes summing to the app's delivered total.
    fn check_load(
        &mut self,
        problem: &PlacementProblem<'_>,
        placement: &Placement,
        load: &LoadDistribution,
    ) {
        // CPU capacity never exceeded.
        for (node, spec) in problem.cluster.iter() {
            let total = load.node_total(node).as_mhz();
            let cap = spec.cpu_capacity().as_mhz();
            if total > cap * (1.0 + CAP_EPS) + CAP_EPS {
                self.violation(format!(
                    "CPU over-committed on {node:?}: {total:.3} MHz routed of {cap:.3} MHz"
                ));
            }
        }
        // Routes only flow to hosted instances, and each route respects
        // the per-instance speed ceiling times the instance count.
        for (app, node, speed) in load.iter() {
            if speed.is_zero() {
                continue;
            }
            let count = placement.count(app, node);
            if count == 0 {
                self.violation(format!(
                    "load routed to absent instances: {app:?} gets {speed} on {node:?}"
                ));
                continue;
            }
            if !problem.workloads.contains_key(&app) {
                self.violation(format!("load routed to non-live {app:?} on {node:?}"));
                continue;
            }
            let (_, max) = problem
                .try_effective_speed_bounds(app)
                .expect("live app has speed bounds");
            let node_cpu = problem
                .cluster
                .node(node)
                .map(|s| s.cpu_capacity())
                .unwrap_or(CpuSpeed::ZERO);
            let ceiling = (max * count as f64).min(node_cpu).as_mhz();
            if speed.as_mhz() > ceiling * (1.0 + CAP_EPS) + CAP_EPS {
                self.violation(format!(
                    "route ceiling exceeded for {app:?} on {node:?}: {speed} > {ceiling:.3} MHz"
                ));
            }
        }
        // Per-app routes sum to the delivered demand, and a placed batch
        // app that receives anything receives at least its minimum.
        for &app in problem.workloads.keys() {
            let total: CpuSpeed = load.allocations_of(app).map(|(_, s)| s).sum();
            let reported = load.app_total(app);
            if !total.approx_eq(reported, CAP_EPS * (1.0 + reported.as_mhz())) {
                self.violation(format!(
                    "routes of {app:?} sum to {total} but app_total reports {reported}"
                ));
            }
            let (min, _) = problem
                .try_effective_speed_bounds(app)
                .expect("live app has speed bounds");
            if !reported.is_zero() && !min.is_zero() {
                let instances = placement.total_instances(app);
                let min_total = min.as_mhz() * instances as f64;
                // Placed apps' minimum speeds must be honoured; the
                // distributor caps cells at node capacity, so compare
                // against the smaller of the two.
                let floor = placement
                    .instances_of(app)
                    .map(|(node, count)| {
                        let cpu = problem
                            .cluster
                            .node(node)
                            .map(|s| s.cpu_capacity().as_mhz())
                            .unwrap_or(0.0);
                        (min.as_mhz() * count as f64).min(cpu)
                    })
                    .sum::<f64>()
                    .min(min_total);
                if reported.as_mhz() + CAP_EPS < floor * (1.0 - CAP_EPS) {
                    self.violation(format!(
                        "minimum speed unmet for {app:?}: {reported} < {floor:.3} MHz floor"
                    ));
                }
            }
        }
        // No load attributed to apps that hold no instances at all.
        for &app in problem.workloads.keys() {
            if !placement.is_placed(app) && !load.app_total(app).is_zero() {
                self.violation(format!(
                    "unplaced {app:?} reports nonzero total {}",
                    load.app_total(app)
                ));
            }
        }
    }
}

/// Convenience: checks a placement/load pair and panics with the full
/// violation report on failure. For suites that score placements
/// themselves rather than going through the optimizer.
pub fn assert_placement_valid(
    problem: &PlacementProblem<'_>,
    placement: &Placement,
    load: Option<&LoadDistribution>,
) {
    if let Err(violations) = PlacementInvariants::check(problem, placement, load) {
        let mut report = String::from("placement invariants violated:\n");
        for v in &violations {
            let _ = writeln!(report, "  - {v}");
        }
        panic!("{report}");
    }
}

/// Renders a placement as a compact, diff-friendly listing — one
/// `app@node xN` per line, sorted. Shared by golden tests and failure
/// reports so mismatches read well.
pub fn render_placement(placement: &Placement) -> String {
    let mut lines: Vec<String> = placement
        .iter()
        .map(|(app, node, count)| format!("a{}@n{} x{}", app.index(), node.index(), count))
        .collect();
    lines.sort();
    lines.join("\n")
}

/// Renders the per-(app, node) differences between two placements.
pub fn render_placement_diff(before: &Placement, after: &Placement) -> String {
    let mut keys: Vec<(AppId, NodeId)> = before
        .iter()
        .chain(after.iter())
        .map(|(a, n, _)| (a, n))
        .collect();
    keys.sort();
    keys.dedup();
    let mut out = Vec::new();
    for (app, node) in keys {
        let b = before.count(app, node);
        let a = after.count(app, node);
        if b != a {
            out.push(format!("a{}@n{}: {b} -> {a}", app.index(), node.index()));
        }
    }
    if out.is_empty() {
        "(no change)".to_string()
    } else {
        out.join("\n")
    }
}
