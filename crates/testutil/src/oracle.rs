//! Whole-run oracles over [`RunMetrics`] and a bitwise differential
//! comparator for runs whose contracts promise bit-equivalence.
//!
//! Three families (see DESIGN.md §14):
//!
//! - **Invariant** — [`check_run`]: per-dimension capacity never
//!   exceeded by the recorded actual placement, per-app instance bounds,
//!   monotone time and completion accounting, no *silent* starvation for
//!   horizon-free specs (every job completes or is named in the engine's
//!   starvation report), and desired/actual convergence once the
//!   actuation fault window plus backoff grace has passed.
//! - **Differential** — [`first_divergence`]: every float compared via
//!   `to_bits`, with `placement_compute_secs` (wall clock) always
//!   excluded; the message names the cycle, app, and field.
//! - **Metamorphic** — built by tests from the two pieces above, e.g.
//!   comparing a run against its slack-dimension-augmented twin with
//!   [`DiffOptions::ignore_rigid_utilization`].

use dynaplace_sim::metrics::{CompletionRecord, CycleSample, RunMetrics};
use dynaplace_sim::spec::{ActuationSpec, ArrivalSpec, ScenarioSpec};
use dynaplace_sim::{Simulation, Submission};

use crate::render_placement_diff;

/// Relative slack for capacity sums, mirroring
/// [`crate::PlacementInvariants`].
const CAP_EPS: f64 = 1e-6;

/// Builds and runs a spec with placement recording on, panicking on a
/// spec the generator should never have produced.
pub fn run_spec(spec: &ScenarioSpec) -> RunMetrics {
    run_spec_with(spec, |_| {})
}

/// Like [`run_spec`], but lets the caller tweak the simulation before
/// it runs (swap the APC config, attach a trace sink, ...).
pub fn run_spec_with(spec: &ScenarioSpec, tweak: impl FnOnce(&mut Simulation)) -> RunMetrics {
    let mut sim = spec
        .build_checked()
        .unwrap_or_else(|e| panic!("generated spec must be valid: {e}"));
    sim.record_placements(true);
    tweak(&mut sim);
    sim.run()
}

/// Per-app rigid demands and instance bounds, derived from the spec the
/// same way the scenario builder assigns app ids: job groups first in
/// declaration order (one app per arrival; `at` arrivals yield one app
/// per listed time), then txns, then every submission the generative
/// `workload` block produces, in admission order.
struct AppModel {
    label: String,
    /// Memory first, then the extra dims in registry order.
    rigid: Vec<f64>,
    max_instances: u32,
    /// Whether this app is a batch job (completes) rather than a
    /// transactional application (never does).
    is_job: bool,
}

fn app_models(spec: &ScenarioSpec) -> Vec<AppModel> {
    let mut apps = Vec::new();
    for (j, group) in spec.jobs.iter().enumerate() {
        let arrivals = match &group.arrivals {
            ArrivalSpec::At(times) => times.len(),
            _ => group.count,
        };
        let mut rigid = vec![group.memory_mb];
        for dim in &spec.resources {
            rigid.push(group.resources.get(dim).copied().unwrap_or(0.0));
        }
        for _ in 0..arrivals {
            apps.push(AppModel {
                label: format!("job group {j}"),
                rigid: rigid.clone(),
                max_instances: group.tasks,
                is_job: true,
            });
        }
    }
    for (t, txn) in spec.txns.iter().enumerate() {
        let mut rigid = vec![txn.memory_mb];
        for dim in &spec.resources {
            rigid.push(txn.resources.get(dim).copied().unwrap_or(0.0));
        }
        apps.push(AppModel {
            label: format!("txn {t}"),
            rigid,
            max_instances: txn.max_instances,
            is_job: false,
        });
    }
    // Generated apps take the ids above the classic block, in the
    // order lock-step admission (and streaming id assignment) drains
    // the generative source.
    for (g, submission) in spec.generated_submissions().into_iter().enumerate() {
        apps.push(match submission {
            Submission::Job(job) => AppModel {
                label: format!("generated job {g}"),
                rigid: std::iter::once(job.memory_mb)
                    .chain(job.extra_rigid.iter().copied())
                    .collect(),
                max_instances: job.tasks,
                is_job: true,
            },
            Submission::Txn(txn) => AppModel {
                label: format!("generated txn {g}"),
                rigid: std::iter::once(txn.memory_mb)
                    .chain(txn.extra_rigid.iter().copied())
                    .collect(),
                max_instances: txn.max_instances,
                is_job: false,
            },
        });
    }
    apps
}

/// Per-node capacities: memory first, then extra dims in registry
/// order, expanded per node in group declaration order.
fn node_capacities(spec: &ScenarioSpec) -> Vec<Vec<f64>> {
    let mut nodes = Vec::new();
    for group in &spec.nodes {
        let mut caps = vec![group.memory_mb];
        for dim in &spec.resources {
            caps.push(group.resources.get(dim).copied().unwrap_or(0.0));
        }
        for _ in 0..group.count {
            nodes.push(caps.clone());
        }
    }
    nodes
}

fn dim_name(spec: &ScenarioSpec, d: usize) -> &str {
    if d == 0 {
        "memory_mb"
    } else {
        &spec.resources[d - 1]
    }
}

/// Grace instant after which the reconciliation loop must have drained
/// every pending action: the actuation fault window end, plus full
/// quarantine and backoff decay, plus a few control cycles to flush.
/// With an observation layer, also past its transport-fault window plus
/// enough cycles for the health machine to reinstate every
/// false-positive death and for stale reports to age out. `None` when
/// either layer's faults are unbounded (no `fail_until` / `loss_until`).
fn convergence_grace(spec: &ScenarioSpec) -> Option<f64> {
    let actuation = if spec.actuation == ActuationSpec::default() {
        0.0
    } else {
        spec.actuation.fail_until_secs.map(|fail_until| {
            fail_until
                + spec.actuation.quarantine_secs
                + 4.0 * spec.actuation.max_backoff_secs
                + 5.0 * spec.cycle_secs
        })?
    };
    let observation = match &spec.observation {
        Some(o) if o.heartbeat_loss > 0.0 || o.max_staleness_cycles > 0 || o.noise > 0.0 => {
            let settle = f64::from(
                o.dead_after
                    + o.reinstate_after
                    + o.max_staleness_cycles
                    + o.staleness_budget_cycles
                    + 5,
            );
            o.loss_until_secs
                .map(|until| until + settle * spec.cycle_secs)?
        }
        // Estimator-only configs (smoothing, headroom) never destabilize
        // reconciliation: they change what is desired, not whether the
        // desired state is reachable.
        _ => 0.0,
    };
    Some(actuation.max(observation))
}

/// Checks every whole-run invariant the spec's contract implies.
/// Returns all violations (not just the first) so a fuzz failure
/// message shows the full shape of the breakage.
pub fn check_run(spec: &ScenarioSpec, metrics: &RunMetrics) -> Result<(), Vec<String>> {
    let apps = app_models(spec);
    let nodes = node_capacities(spec);
    let mut violations = Vec::new();

    // Time axis: strictly increasing cycle samples, one placement
    // record per sample when recording is on.
    for pair in metrics.samples.windows(2) {
        if pair[1].time <= pair[0].time {
            violations.push(format!(
                "cycle samples out of order: t={}s then t={}s",
                pair[0].time.as_secs(),
                pair[1].time.as_secs()
            ));
        }
    }
    if !metrics.placements.is_empty() && metrics.placements.len() != metrics.samples.len() {
        violations.push(format!(
            "{} placement records for {} cycle samples",
            metrics.placements.len(),
            metrics.samples.len()
        ));
    }

    // Actual placement: known ids, instance bounds, and per-dimension
    // capacity on every node at every recorded cycle. The engine
    // debug-asserts this internally; the oracle re-derives it from the
    // spec alone so a broken engine cannot vouch for itself.
    for (cycle, record) in metrics.placements.iter().enumerate() {
        let t = record.time.as_secs();
        let mut used = vec![vec![0.0f64; nodes.first().map_or(1, Vec::len)]; nodes.len()];
        let mut instances = vec![0u32; apps.len()];
        for (app, node, count) in record.placement.iter() {
            let (a, n) = (app.index(), node.index());
            if a >= apps.len() {
                violations.push(format!("cycle {cycle} (t={t}s): unknown app a{a} placed"));
                continue;
            }
            if n >= nodes.len() {
                violations.push(format!("cycle {cycle} (t={t}s): unknown node n{n} used"));
                continue;
            }
            instances[a] += count;
            for (d, demand) in apps[a].rigid.iter().enumerate() {
                used[n][d] += f64::from(count) * demand;
            }
        }
        for (a, &placed) in instances.iter().enumerate() {
            if placed > apps[a].max_instances {
                violations.push(format!(
                    "cycle {cycle} (t={t}s): app a{a} ({}) has {placed} instances, max {}",
                    apps[a].label, apps[a].max_instances
                ));
            }
        }
        for (n, node_used) in used.iter().enumerate() {
            for (d, &u) in node_used.iter().enumerate() {
                let cap = nodes[n][d];
                if u > cap * (1.0 + CAP_EPS) + CAP_EPS {
                    violations.push(format!(
                        "cycle {cycle} (t={t}s): node n{n} over capacity in {}: used {u}, capacity {cap}",
                        dim_name(spec, d)
                    ));
                }
            }
        }
    }

    // Completion accounting: nondecreasing completion times, each job
    // app completes at most once, txns never complete, distances are
    // consistent, and horizon-free runs starve no job.
    let mut completed = vec![0usize; apps.len()];
    for (i, c) in metrics.completions.iter().enumerate() {
        let a = c.app.index();
        if a >= apps.len() || !apps[a].is_job {
            violations.push(format!("completion {i}: app a{a} is not a batch job"));
            continue;
        }
        completed[a] += 1;
        if completed[a] > 1 {
            violations.push(format!("completion {i}: app a{a} completed more than once"));
        }
        if c.completion < c.arrival {
            violations.push(format!(
                "completion {i} (app a{a}): completes at {}s before arriving at {}s",
                c.completion.as_secs(),
                c.arrival.as_secs()
            ));
        }
        let distance = c.deadline.as_secs() - c.completion.as_secs();
        if (c.distance.as_secs() - distance).abs() > 1e-6 * distance.abs().max(1.0) {
            violations.push(format!(
                "completion {i} (app a{a}): distance {} != deadline - completion = {distance}",
                c.distance.as_secs()
            ));
        }
        if c.met_deadline != (c.completion <= c.deadline) {
            violations.push(format!(
                "completion {i} (app a{a}): met_deadline={} but completion {}s vs deadline {}s",
                c.met_deadline,
                c.completion.as_secs(),
                c.deadline.as_secs()
            ));
        }
    }
    for pair in metrics.completions.windows(2) {
        if pair[1].completion < pair[0].completion {
            violations.push(format!(
                "completions out of order: {}s then {}s",
                pair[0].completion.as_secs(),
                pair[1].completion.as_secs()
            ));
        }
    }
    // No silent starvation: in a horizon-free run every job either
    // completes or is explicitly named in the starvation report the
    // engine's breaker recorded when it proved the run livelocked.
    let starved: std::collections::BTreeSet<usize> = metrics
        .starvation
        .as_ref()
        .map(|s| s.apps.iter().map(|a| a.index()).collect())
        .unwrap_or_default();
    if spec.horizon_secs.is_none() {
        for (a, &n) in completed.iter().enumerate() {
            if apps[a].is_job && n == 0 && !starved.contains(&a) {
                violations.push(format!(
                    "silent starvation: job app a{a} neither completed nor was reported \
                     starved in a horizon-free run"
                ));
            }
        }
    }
    if let Some(report) = &metrics.starvation {
        if spec.horizon_secs.is_some() {
            violations.push("starvation breaker fired in a horizon-bounded run".into());
        }
        if report.apps.is_empty() {
            violations.push("starvation report names no apps".into());
        }
        for app in &report.apps {
            let a = app.index();
            if a >= apps.len() || !apps[a].is_job {
                violations.push(format!(
                    "starvation report names a{a}, which is not a batch job"
                ));
            } else if completed[a] > 0 {
                violations.push(format!("starvation report names a{a}, which completed"));
            }
        }
    }

    // Desired/actual convergence: with default (infallible) actuation
    // every sample is fully reconciled; with bounded faults, every
    // sample past the grace instant must be.
    if let Some(grace) = convergence_grace(spec) {
        for (cycle, sample) in metrics.samples.iter().enumerate() {
            if sample.time.as_secs() >= grace && sample.pending_actions != 0 {
                violations.push(format!(
                    "cycle {cycle} (t={}s): {} pending actions after the convergence grace \
                     instant ({grace}s)",
                    sample.time.as_secs(),
                    sample.pending_actions
                ));
            }
        }
    }

    // Observation-layer accounting. Without an `observation` block the
    // counters must stay untouched (exactly-off contract). With one,
    // the health machine's hysteresis implies hard arithmetic bounds:
    // every suspect episode consumed at least `suspect_after`
    // consecutive misses (episodes that ended in a believed death
    // consumed at least `dead_after`), episodes are disjoint in misses,
    // and deaths/reinstatements only ever happen to suspects. A lossless
    // config (`heartbeat_loss == 0`) can never miss anything at all —
    // truth node failures are not telemetry loss.
    let obs = &metrics.observation;
    match &spec.observation {
        None => {
            if *obs != Default::default() {
                violations.push(format!(
                    "observation counters moved without an observation block: {obs:?}"
                ));
            }
        }
        Some(o) => {
            if obs.deaths > obs.suspects {
                violations.push(format!(
                    "{} believed deaths but only {} suspect transitions",
                    obs.deaths, obs.suspects
                ));
            }
            if obs.reinstatements > obs.suspects {
                violations.push(format!(
                    "{} reinstatements but only {} suspect transitions",
                    obs.reinstatements, obs.suspects
                ));
            } else if obs.deaths <= obs.suspects {
                let floor = obs.deaths * u64::from(o.dead_after)
                    + (obs.suspects - obs.deaths) * u64::from(o.suspect_after);
                if obs.missed_heartbeats < floor {
                    violations.push(format!(
                        "{} missed heartbeats cannot explain {} suspects / {} deaths \
                         (hysteresis floor {floor})",
                        obs.missed_heartbeats, obs.suspects, obs.deaths
                    ));
                }
            }
            if o.heartbeat_loss == 0.0 && (obs.lost_total() != 0 || obs.suspects != 0) {
                violations.push(format!(
                    "lossless telemetry lost {} reports / suspected {} nodes",
                    obs.lost_total(),
                    obs.suspects
                ));
            }
            if o.max_staleness_cycles == 0 && (obs.stale_holds != 0 || obs.fill_only_degrades != 0)
            {
                violations.push(format!(
                    "never-stale telemetry degraded anyway: {} holds, {} fill-only cycles",
                    obs.stale_holds, obs.fill_only_degrades
                ));
            }
            if o.degraded_mode == "hold" && obs.fill_only_degrades != 0 {
                violations.push(format!(
                    "hold-mode run recorded {} fill-only degrades",
                    obs.fill_only_degrades
                ));
            }
            if o.degraded_mode == "fill_only" && obs.stale_holds != 0 {
                violations.push(format!(
                    "fill_only-mode run recorded {} stale holds",
                    obs.stale_holds
                ));
            }
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// [`check_run`] folded into a single message, for use as a fuzz
/// oracle.
pub fn check_run_message(spec: &ScenarioSpec, metrics: &RunMetrics) -> Result<(), String> {
    check_run(spec, metrics).map_err(|violations| violations.join("\n"))
}

/// What [`first_divergence`] may ignore. The default ignores nothing
/// (beyond wall-clock compute time, which is never compared).
#[derive(Debug, Clone, Copy, Default)]
pub struct DiffOptions {
    /// Skip `rigid_utilization`: the slack-dimension metamorphic
    /// relation adds a dimension, which legitimately adds a sample
    /// entry without changing any decision.
    pub ignore_rigid_utilization: bool,
}

fn bits(v: f64) -> u64 {
    v.to_bits()
}

fn opt_bits(v: Option<f64>) -> Option<u64> {
    v.map(bits)
}

/// Returns the first place two runs differ, or `None` when they are
/// bit-identical (modulo `placement_compute_secs`, which is wall clock
/// and never comparable). All floats are compared via `to_bits`; the
/// message names the cycle, app, and field so a fuzz-scale failure is
/// actionable without re-running anything.
pub fn first_divergence(a: &RunMetrics, b: &RunMetrics, opts: DiffOptions) -> Option<String> {
    if a.samples.len() != b.samples.len() {
        return Some(format!(
            "run A has {} cycle samples, run B has {}",
            a.samples.len(),
            b.samples.len()
        ));
    }
    for (i, (sa, sb)) in a.samples.iter().zip(&b.samples).enumerate() {
        if let Some(msg) = sample_divergence(i, sa, sb, opts) {
            return Some(msg);
        }
    }
    if a.completions.len() != b.completions.len() {
        return Some(format!(
            "run A has {} completions, run B has {}",
            a.completions.len(),
            b.completions.len()
        ));
    }
    for (i, (ca, cb)) in a.completions.iter().zip(&b.completions).enumerate() {
        if let Some(msg) = completion_divergence(i, ca, cb) {
            return Some(msg);
        }
    }
    if a.changes != b.changes {
        return Some(format!(
            "change counters differ: {:?} vs {:?}",
            a.changes, b.changes
        ));
    }
    if a.actuation != b.actuation {
        return Some(format!(
            "actuation counters differ: {:?} vs {:?}",
            a.actuation, b.actuation
        ));
    }
    if a.observation != b.observation {
        return Some(format!(
            "observation counters differ: {:?} vs {:?}",
            a.observation, b.observation
        ));
    }
    if a.placements.len() != b.placements.len() {
        return Some(format!(
            "run A has {} placement records, run B has {}",
            a.placements.len(),
            b.placements.len()
        ));
    }
    let starvation_key = |m: &RunMetrics| {
        m.starvation
            .as_ref()
            .map(|s| (bits(s.time.as_secs()), s.apps.clone()))
    };
    if starvation_key(a) != starvation_key(b) {
        return Some(format!(
            "starvation reports differ: {:?} vs {:?}",
            a.starvation, b.starvation
        ));
    }
    for (i, (pa, pb)) in a.placements.iter().zip(&b.placements).enumerate() {
        if bits(pa.time.as_secs()) != bits(pb.time.as_secs()) {
            return Some(format!(
                "placement record {i}: time differs: {}s vs {}s",
                pa.time.as_secs(),
                pb.time.as_secs()
            ));
        }
        if pa.placement != pb.placement {
            return Some(format!(
                "cycle {i} (t={}s): placement differs:\n{}",
                pa.time.as_secs(),
                render_placement_diff(&pa.placement, &pb.placement)
            ));
        }
    }
    None
}

fn sample_divergence(
    i: usize,
    a: &CycleSample,
    b: &CycleSample,
    opts: DiffOptions,
) -> Option<String> {
    let t = a.time.as_secs();
    let diff = |field: &str, va: String, vb: String| {
        Some(format!("cycle {i} (t={t}s): {field} differs: {va} vs {vb}"))
    };
    if bits(t) != bits(b.time.as_secs()) {
        return diff("time", format!("{t}"), format!("{}", b.time.as_secs()));
    }
    let rp = |v: Option<dynaplace_rpf::value::Rp>| v.map(|r| r.value());
    if opt_bits(rp(a.batch_hypothetical_rp)) != opt_bits(rp(b.batch_hypothetical_rp)) {
        return diff(
            "batch_hypothetical_rp",
            format!("{:?}", rp(a.batch_hypothetical_rp)),
            format!("{:?}", rp(b.batch_hypothetical_rp)),
        );
    }
    if opt_bits(rp(a.txn_rp)) != opt_bits(rp(b.txn_rp)) {
        return diff(
            "txn_rp",
            format!("{:?}", rp(a.txn_rp)),
            format!("{:?}", rp(b.txn_rp)),
        );
    }
    if bits(a.batch_allocation.as_mhz()) != bits(b.batch_allocation.as_mhz()) {
        return diff(
            "batch_allocation",
            format!("{}MHz", a.batch_allocation.as_mhz()),
            format!("{}MHz", b.batch_allocation.as_mhz()),
        );
    }
    if bits(a.txn_allocation.as_mhz()) != bits(b.txn_allocation.as_mhz()) {
        return diff(
            "txn_allocation",
            format!("{}MHz", a.txn_allocation.as_mhz()),
            format!("{}MHz", b.txn_allocation.as_mhz()),
        );
    }
    if a.running_jobs != b.running_jobs {
        return diff(
            "running_jobs",
            a.running_jobs.to_string(),
            b.running_jobs.to_string(),
        );
    }
    if a.waiting_jobs != b.waiting_jobs {
        return diff(
            "waiting_jobs",
            a.waiting_jobs.to_string(),
            b.waiting_jobs.to_string(),
        );
    }
    // placement_compute_secs is wall clock: never compared.
    if a.pending_actions != b.pending_actions {
        return diff(
            "pending_actions",
            a.pending_actions.to_string(),
            b.pending_actions.to_string(),
        );
    }
    if !opts.ignore_rigid_utilization {
        if a.rigid_utilization.len() != b.rigid_utilization.len() {
            return diff(
                "rigid_utilization dimensions",
                a.rigid_utilization.len().to_string(),
                b.rigid_utilization.len().to_string(),
            );
        }
        for (ra, rb) in a.rigid_utilization.iter().zip(&b.rigid_utilization) {
            if ra.dim != rb.dim
                || bits(ra.used) != bits(rb.used)
                || bits(ra.capacity) != bits(rb.capacity)
            {
                return diff(
                    &format!("rigid_utilization[{}]", ra.dim),
                    format!("{}/{}", ra.used, ra.capacity),
                    format!("{}={}/{}", rb.dim, rb.used, rb.capacity),
                );
            }
        }
    }
    None
}

fn completion_divergence(i: usize, a: &CompletionRecord, b: &CompletionRecord) -> Option<String> {
    let diff = |field: &str, va: String, vb: String| {
        Some(format!(
            "completion {i} (app a{}): {field} differs: {va} vs {vb}",
            a.app.index()
        ))
    };
    if a.app != b.app {
        return Some(format!(
            "completion {i}: app differs: a{} vs a{}",
            a.app.index(),
            b.app.index()
        ));
    }
    let fields = [
        ("arrival", a.arrival.as_secs(), b.arrival.as_secs()),
        ("completion", a.completion.as_secs(), b.completion.as_secs()),
        ("deadline", a.deadline.as_secs(), b.deadline.as_secs()),
        ("distance", a.distance.as_secs(), b.distance.as_secs()),
        ("rp", a.rp.value(), b.rp.value()),
        ("goal_factor", a.goal_factor, b.goal_factor),
    ];
    for (name, va, vb) in fields {
        if bits(va) != bits(vb) {
            return diff(name, format!("{va}"), format!("{vb}"));
        }
    }
    if a.met_deadline != b.met_deadline {
        return diff(
            "met_deadline",
            a.met_deadline.to_string(),
            b.met_deadline.to_string(),
        );
    }
    None
}
