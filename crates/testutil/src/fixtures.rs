//! Randomized placement-problem fixtures shared by the property and
//! differential test suites.
//!
//! The distribution mirrors the original in-tree generator of the core
//! property suite: 1–4 heterogeneous nodes, up to six single-stage
//! batch jobs with partial progress and optional initial placements,
//! and optionally one transactional application. A fixture owns its
//! world (`Cluster`/`AppSet`/`Placement`), because
//! [`PlacementProblem`] borrows.

use std::collections::BTreeMap;
use std::sync::Arc;

use dynaplace_apc::problem::{PlacementProblem, WorkloadModel};
use dynaplace_batch::hypothetical::JobSnapshot;
use dynaplace_batch::job::JobProfile;
use dynaplace_model::prelude::*;
use dynaplace_rpf::goal::{CompletionGoal, ResponseTimeGoal};
use dynaplace_txn::model::{TxnPerformanceModel, TxnWorkload};
use proptest::prelude::*;

/// Parameters of one randomized batch job.
#[derive(Debug, Clone)]
pub struct JobParams {
    /// Total work, Mcycles.
    pub work: f64,
    /// Per-instance speed cap, MHz.
    pub max_speed: f64,
    /// Per-instance memory, MB.
    pub memory: f64,
    /// Deadline slack multiplier over the minimum execution time.
    pub goal_factor: f64,
    /// Fraction of `work` already consumed, `[0, 0.9]`.
    pub progress: f64,
    /// Requested initial node (modulo node count); dropped when
    /// infeasible so inputs stay valid.
    pub placed_on: Option<u32>,
}

/// Parameters of the optional transactional application.
#[derive(Debug, Clone)]
pub struct TxnParams {
    /// Request arrival rate, 1/s.
    pub rate: f64,
    /// CPU demand per request, Mcycles.
    pub demand: f64,
    /// Per-instance memory, MB.
    pub memory: f64,
}

/// A full randomized problem description, pre-materialization.
#[derive(Debug, Clone)]
pub struct ProblemParams {
    /// Per-node (cpu MHz, memory MB).
    pub nodes: Vec<(f64, f64)>,
    /// Batch jobs.
    pub jobs: Vec<JobParams>,
    /// Optional transactional app.
    pub txn: Option<TxnParams>,
}

/// Proptest strategy over [`ProblemParams`].
pub fn arb_problem() -> impl Strategy<Value = ProblemParams> {
    arb_problem_sized(1..5, 0..7)
}

/// Like [`arb_problem`] with explicit node/job count ranges.
pub fn arb_problem_sized(
    nodes: std::ops::Range<usize>,
    jobs: std::ops::Range<usize>,
) -> impl Strategy<Value = ProblemParams> {
    let node = (500.0..4_000.0f64, 1_000.0..8_000.0f64);
    let job = (
        1_000.0..500_000.0f64,
        100.0..2_000.0f64,
        100.0..3_000.0f64,
        1.1..5.0f64,
        0.0..0.9f64,
        proptest::option::of(0u32..4),
    )
        .prop_map(
            |(work, max_speed, memory, goal_factor, progress, placed_on)| JobParams {
                work,
                max_speed,
                memory,
                goal_factor,
                progress,
                placed_on,
            },
        );
    let txn = proptest::option::of((1.0..100.0f64, 1.0..20.0f64, 50.0..1_000.0f64).prop_map(
        |(rate, demand, memory)| TxnParams {
            rate,
            demand,
            memory,
        },
    ));
    (
        proptest::collection::vec(node, nodes),
        proptest::collection::vec(job, jobs),
        txn,
    )
        .prop_map(|(nodes, jobs, txn)| ProblemParams { nodes, jobs, txn })
}

/// A materialized world a [`PlacementProblem`] can borrow from.
pub struct ProblemFixture {
    /// The cluster.
    pub cluster: Cluster,
    /// Application specs.
    pub apps: AppSet,
    /// Live workload models.
    pub workloads: BTreeMap<AppId, WorkloadModel>,
    /// The incumbent placement.
    pub current: Placement,
    /// Cycle start.
    pub now: SimTime,
    /// Cycle length.
    pub cycle: SimDuration,
}

impl ProblemFixture {
    /// Materializes a parameter set.
    pub fn build(params: &ProblemParams) -> Self {
        let now = SimTime::from_secs(1_000.0);
        let cycle = SimDuration::from_secs(60.0);
        let mut cluster = Cluster::new();
        for &(cpu, mem) in &params.nodes {
            cluster.add_node(
                NodeSpec::try_new(CpuSpeed::from_mhz(cpu), Memory::from_mb(mem))
                    .expect("valid node capacities"),
            );
        }
        let mut apps = AppSet::new();
        let mut workloads = BTreeMap::new();
        let mut current = Placement::new();
        for jp in &params.jobs {
            let app = apps.add(ApplicationSpec::batch(
                Memory::from_mb(jp.memory),
                CpuSpeed::from_mhz(jp.max_speed),
            ));
            let profile = Arc::new(JobProfile::single_stage(
                Work::from_mcycles(jp.work),
                CpuSpeed::from_mhz(jp.max_speed),
                Memory::from_mb(jp.memory),
            ));
            let goal =
                CompletionGoal::from_goal_factor(now, profile.min_execution_time(), jp.goal_factor);
            let mut placed = false;
            if let Some(n) = jp.placed_on {
                let node = NodeId::new(n % params.nodes.len() as u32);
                if current.checked_place(app, node, &cluster, &apps).is_ok() {
                    placed = true;
                }
            }
            workloads.insert(
                app,
                WorkloadModel::Batch(JobSnapshot::new(
                    app,
                    goal,
                    profile,
                    Work::from_mcycles(jp.work * jp.progress),
                    if placed { SimDuration::ZERO } else { cycle },
                )),
            );
        }
        if let Some(tp) = &params.txn {
            let app = apps.add(ApplicationSpec::transactional(
                Memory::from_mb(tp.memory),
                CpuSpeed::from_mhz(f64::INFINITY),
                params.nodes.len() as u32,
            ));
            workloads.insert(
                app,
                WorkloadModel::Transactional(TxnPerformanceModel::new(
                    TxnWorkload::new(tp.rate, tp.demand, SimDuration::from_secs(0.004)),
                    ResponseTimeGoal::new(SimDuration::from_secs(0.05)),
                )),
            );
        }
        ProblemFixture {
            cluster,
            apps,
            workloads,
            current,
            now,
            cycle,
        }
    }

    /// Borrows the fixture as a [`PlacementProblem`].
    pub fn problem(&self) -> PlacementProblem<'_> {
        PlacementProblem {
            cluster: &self.cluster,
            apps: &self.apps,
            workloads: self.workloads.clone(),
            current: &self.current,
            now: self.now,
            cycle: self.cycle,
            forbidden: Default::default(),
        }
    }
}
