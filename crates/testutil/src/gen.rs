//! Generative scenario fuzzing: a compositional generator of random
//! **valid** [`ScenarioSpec`]s, a structured shrinker, and failing-spec
//! persistence.
//!
//! Every spec this module produces passes [`ScenarioSpec::validate`]
//! *by construction* — the generator never emits a value a later check
//! would reject — and satisfies three stronger guarantees the whole-run
//! oracles lean on:
//!
//! - **Placeability.** Every job task and txn instance fits on *every*
//!   node: memory and extra-rigid demands are drawn below the fleet-wide
//!   minimum capacity of each dimension. A generated workload can never
//!   be structurally impossible to run.
//! - **Survivability.** Permanent node failures hit distinct nodes and
//!   always leave at least one node alive, so no job is stranded.
//! - **Termination.** Horizon-free specs end when the last job
//!   completes; specs with a horizon are explicitly bounded. Actuation
//!   faults always carry a `fail_until` instant, after which the
//!   reconciliation loop provably converges.
//!
//! The shrinker is structural (the vendored proptest stub does not
//! shrink): it deletes txns, job groups, node groups, failures,
//! generative workload streams, and config blocks, then reduces counts
//! and simplifies fields, keeping
//! only mutations that still fail the caller's oracle. Minimized specs
//! are persisted as ready-to-bless JSON so every fuzz find can become a
//! permanent regression scenario under `tests/repro/`.

use std::collections::BTreeMap;
use std::path::PathBuf;

use dynaplace_sim::spec::{
    ActuationSpec, ArrivalSpec, BatchStreamSpec, GoalSpec, JobGroupSpec, NodeFailureSpec,
    NodeGroupSpec, ObservationSpec, ProcessSpec, RateSpec, ScenarioSpec, ShardingSpec, TraceSpec,
    TxnCurveSpec, TxnSpec, TxnStreamSpec, WorkloadSpec,
};
use proptest::{Strategy, TestCaseError, TestCaseResult, TestRng};

/// Tuning knobs for [`gen_scenario`]. Presets cover the common fuzzing
/// regimes; tests that need something else can build their own.
#[derive(Debug, Clone)]
pub struct GenProfile {
    /// Registry policy names to draw from (repeats weight the draw).
    pub schedulers: Vec<String>,
    /// Maximum heterogeneous node groups (at least one is generated).
    pub max_node_groups: usize,
    /// Maximum nodes per group (at least one).
    pub max_nodes_per_group: usize,
    /// Maximum job groups (at least one is generated, so every run has
    /// work to finish).
    pub max_job_groups: usize,
    /// Maximum jobs per group (at least one).
    pub max_jobs_per_group: usize,
    /// Maximum transactional applications (zero is allowed).
    pub max_txns: usize,
    /// Maximum extra rigid resource dimensions (zero = memory-only).
    pub max_extra_dims: usize,
    /// Script node outages (always survivable; see module docs).
    pub failures: bool,
    /// Draw fallible-actuation configs (always with a `fail_until`).
    pub chaos: bool,
    /// Draw imperfect-telemetry observation configs (APC only, always
    /// with a `loss_until` so telemetry provably recovers).
    pub observation: bool,
    /// Draw cell-sharded placement configs (APC only).
    pub sharding: bool,
    /// Draw multi-task parallel jobs (APC only).
    pub parallel_jobs: bool,
    /// Allow exponential (RNG-consuming) arrival processes. Disable for
    /// metamorphic relations that permute declaration order: the seed
    /// stream is consumed in declaration order.
    pub stochastic_arrivals: bool,
    /// Sometimes bound the run with an explicit horizon (only ever done
    /// when txns are present; horizon-free runs end at the last job
    /// completion, which the no-starvation oracle keys on).
    pub horizons: bool,
    /// Salt names with non-ASCII (including astral-plane) characters so
    /// JSON round-trips chew on the hard cases.
    pub unicode_names: bool,
    /// Rescale rigid demands so every app fits simultaneously on the
    /// smallest node. Under contention the greedy optimizer must choose
    /// which apps coexist, and that packing choice legitimately depends
    /// on iteration (declaration) order — so order-permutation
    /// metamorphic relations only hold on uncontended specs, where the
    /// optimum is unique.
    pub uncontended: bool,
    /// Draw generative `"workload"` blocks: streamed batch sources
    /// (Poisson/MMPP/diurnal/flash-crowd) and open-loop txn curves.
    /// Streams always carry a bounded `count` and placeable demands, so
    /// horizon-free runs still terminate at the last completion and the
    /// no-starvation oracle stays applicable. Never drawn on
    /// `uncontended` profiles (the uncontended rescale covers only the
    /// classic app lists).
    pub workloads: bool,
}

impl GenProfile {
    /// Everything on: the widest scenario space the oracles accept.
    pub fn full() -> Self {
        GenProfile {
            // APC triple-weighted (it is the system under test), then
            // every baseline in the registry so the whole-run oracles
            // sweep the full policy zoo.
            schedulers: [
                "apc",
                "apc",
                "apc",
                "fcfs",
                "edf",
                "static-partition",
                "vector-bin-packing",
                "yield-max",
                "dfrs",
            ]
            .map(str::to_string)
            .to_vec(),
            max_node_groups: 2,
            max_nodes_per_group: 3,
            max_job_groups: 3,
            max_jobs_per_group: 4,
            max_txns: 2,
            max_extra_dims: 2,
            failures: true,
            chaos: true,
            observation: true,
            sharding: true,
            parallel_jobs: true,
            stochastic_arrivals: true,
            horizons: true,
            unicode_names: true,
            uncontended: false,
            workloads: true,
        }
    }

    /// Small APC-only scenarios for the differential suites, which run
    /// each spec several times over.
    pub fn quick() -> Self {
        GenProfile {
            schedulers: vec!["apc".to_string()],
            max_node_groups: 2,
            max_nodes_per_group: 2,
            max_job_groups: 2,
            max_jobs_per_group: 3,
            max_txns: 1,
            max_extra_dims: 1,
            failures: true,
            chaos: false,
            observation: false,
            sharding: false,
            parallel_jobs: true,
            stochastic_arrivals: true,
            horizons: false,
            unicode_names: true,
            uncontended: false,
            workloads: true,
        }
    }

    /// Fully deterministic builds (no RNG-consuming arrivals, no chaos,
    /// no sharding) for metamorphic relations that permute declaration
    /// order. Single-node on purpose: with two or more nodes, *which*
    /// txn shares a node with a batch job is an objective tie between
    /// symmetric assignments, greedy placement breaks ties by iteration
    /// order, and the utility optimizer then legitimately allocates the
    /// job different CPU depending on its node-mates — so exact
    /// outcome invariance under reordering only holds when placement is
    /// forced.
    pub fn deterministic() -> Self {
        GenProfile {
            schedulers: vec!["apc".to_string()],
            max_node_groups: 1,
            max_nodes_per_group: 1,
            max_job_groups: 3,
            max_jobs_per_group: 3,
            max_txns: 2,
            max_extra_dims: 1,
            failures: false,
            chaos: false,
            observation: false,
            sharding: false,
            parallel_jobs: false,
            stochastic_arrivals: false,
            horizons: false,
            unicode_names: false,
            uncontended: true,
            workloads: false,
        }
    }
}

/// A [`Strategy`] over whole scenarios, so `proptest!` bodies can take
/// `spec in gen::scenarios(profile)` like any other input.
pub struct ScenarioStrategy {
    profile: GenProfile,
}

/// Strategy constructor: random valid scenarios under `profile`.
pub fn scenarios(profile: GenProfile) -> ScenarioStrategy {
    ScenarioStrategy { profile }
}

impl Strategy for ScenarioStrategy {
    type Value = ScenarioSpec;
    fn generate(&self, rng: &mut TestRng) -> ScenarioSpec {
        gen_scenario(rng, &self.profile)
    }
}

/// Uniform draw in `[lo, hi]`, rounded to an exact binary eighth so any
/// JSON printer round-trips the value bit-for-bit and shrunken specs
/// stay readable.
fn f8(rng: &mut TestRng, lo: f64, hi: f64) -> f64 {
    let raw = lo + rng.unit_f64() * (hi - lo);
    ((raw * 8.0).round() / 8.0).clamp(lo, hi)
}

/// Uniform integer in `[lo, hi]`.
fn int(rng: &mut TestRng, lo: usize, hi: usize) -> usize {
    debug_assert!(lo <= hi);
    lo + rng.below((hi - lo + 1) as u64) as usize
}

/// One-in-`n` coin.
fn chance(rng: &mut TestRng, n: u64) -> bool {
    rng.below(n) == 0
}

fn pick<'a, T>(rng: &mut TestRng, items: &'a [T]) -> &'a T {
    &items[rng.below(items.len() as u64) as usize]
}

/// Name bases; the astral-plane entries exist to stress the JSON
/// surrogate-pair path that PR 5's round-trip proptest caught a real
/// bug in.
const ASCII_NAMES: &[&str] = &["rack", "zone", "batch", "web", "analytics", "cad"];
const UNICODE_NAMES: &[&str] = &[
    "r\u{e4}ck",
    "z\u{14d}ne",
    "j\u{14f}b\u{1F600}",
    "tx\u{1F680}",
];

fn gen_name(rng: &mut TestRng, profile: &GenProfile, prefix: &str, index: usize) -> Option<String> {
    if !chance(rng, 2) {
        return None;
    }
    let base = if profile.unicode_names && chance(rng, 3) {
        pick(rng, UNICODE_NAMES)
    } else {
        pick(rng, ASCII_NAMES)
    };
    // The index suffix keeps names unique within their namespace, so
    // DuplicateName can never fire.
    Some(format!("{prefix}-{base}-{index}"))
}

const DIM_PALETTE: &[&str] = &["disk_mb", "net_mbps", "license_slots", "gpu_ram_mb"];

/// Draws one random scenario under `profile`. See the module docs for
/// the invariants the construction guarantees; [`scenarios`] wraps this
/// as a [`Strategy`].
pub fn gen_scenario(rng: &mut TestRng, profile: &GenProfile) -> ScenarioSpec {
    let scheduler = pick(rng, &profile.schedulers).clone();
    let apc = scheduler == "apc";
    let cycle_secs = f8(rng, 60.0, 300.0);

    // Extra rigid dimensions. The FCFS/EDF baselines are memory-only
    // schedulers, so extra dims are drawn for APC scenarios only.
    let n_dims = if apc {
        int(rng, 0, profile.max_extra_dims.min(DIM_PALETTE.len()))
    } else {
        0
    };
    let resources: Vec<String> = DIM_PALETTE[..n_dims]
        .iter()
        .map(|s| s.to_string())
        .collect();

    // Heterogeneous node fleet. Every declared dimension gets a strictly
    // positive capacity on every group so fleet-wide minima are positive.
    let n_groups = int(rng, 1, profile.max_node_groups);
    let mut nodes = Vec::with_capacity(n_groups);
    for g in 0..n_groups {
        let mut extra = BTreeMap::new();
        for dim in &resources {
            extra.insert(dim.clone(), f8(rng, 400.0, 4_000.0));
        }
        nodes.push(NodeGroupSpec {
            count: int(rng, 1, profile.max_nodes_per_group),
            name: gen_name(rng, profile, "n", g),
            cpu_mhz: f8(rng, 800.0, 3_200.0),
            memory_mb: f8(rng, 2_000.0, 8_000.0),
            resources: extra,
        });
    }
    let node_count: usize = nodes.iter().map(|g| g.count).sum();
    let min_mem = nodes.iter().map(|g| g.memory_mb).fold(f64::MAX, f64::min);
    let min_cap: BTreeMap<&str, f64> = resources
        .iter()
        .map(|dim| {
            let cap = nodes
                .iter()
                .map(|g| g.resources[dim])
                .fold(f64::MAX, f64::min);
            (dim.as_str(), cap)
        })
        .collect();

    // Placeable demands: at most `frac` of the fleet-wide minimum
    // capacity of each dimension, so one instance fits on any node.
    let rigid_demands = |rng: &mut TestRng, frac: f64, keep: u64| {
        let mut block = BTreeMap::new();
        for dim in &resources {
            if chance(rng, keep) {
                // A rare near-minimum draw makes the dimension *binding*
                // (forces spreading); the common case leaves it slack.
                let hi = if chance(rng, 8) { 0.95 } else { frac };
                block.insert(dim.clone(), f8(rng, 0.0, min_cap[dim.as_str()] * hi));
            }
        }
        block
    };

    // Batch job groups (always at least one: every run has work, so
    // horizon-free runs terminate at the last completion).
    let n_jobs = int(rng, 1, profile.max_job_groups);
    let mut jobs = Vec::with_capacity(n_jobs);
    for j in 0..n_jobs {
        let mut count = int(rng, 1, profile.max_jobs_per_group);
        let arrivals = match int(rng, 0, if profile.stochastic_arrivals { 2 } else { 1 }) {
            0 => ArrivalSpec::Periodic {
                every_secs: f8(rng, 0.0, 300.0),
            },
            1 => {
                // Explicit instants double as arrival *bursts*: a base
                // instant with tight spacing. `count` is defined by the
                // listed times for `at` arrivals.
                let base = f8(rng, 0.0, 600.0);
                let spacing = if chance(rng, 2) { 0.25 } else { 45.0 };
                let times: Vec<f64> = (0..count).map(|i| base + i as f64 * spacing).collect();
                count = times.len();
                ArrivalSpec::At(times)
            }
            _ => ArrivalSpec::Exponential {
                mean_secs: f8(rng, 30.0, 300.0),
            },
        };
        let tasks = if profile.parallel_jobs && apc && node_count > 1 && chance(rng, 4) {
            int(rng, 2, node_count.min(3)) as u32
        } else {
            1
        };
        jobs.push(JobGroupSpec {
            count,
            name: gen_name(rng, profile, "j", j),
            work_mcycles: f8(rng, 4_000.0, 30_000.0),
            max_speed_mhz: f8(rng, 300.0, 1_200.0),
            memory_mb: f8(rng, 64.0, min_mem * 0.6),
            goal: if chance(rng, 2) {
                GoalSpec::Factor(f8(rng, 2.0, 8.0))
            } else {
                GoalSpec::RelativeSecs(f8(rng, 600.0, 5_000.0))
            },
            arrivals,
            tasks,
            class: if chance(rng, 6) {
                Some(format!("class-{j}"))
            } else {
                None
            },
            resources: rigid_demands(rng, 0.4, 2),
        });
    }
    // Distinct per-group work values keep objective ties (and therefore
    // id-dependent tie-breaks) out of the metamorphic relations.
    let mut seen_work = std::collections::BTreeSet::new();
    for group in &mut jobs {
        while !seen_work.insert(group.work_mcycles.to_bits()) {
            group.work_mcycles += 0.125;
        }
    }

    // Transactional applications with shifting demand profiles.
    let n_txns = int(rng, 0, profile.max_txns);
    let mut txns = Vec::with_capacity(n_txns);
    for t in 0..n_txns {
        let rate = if chance(rng, 2) {
            RateSpec::Constant(f8(rng, 1.0, 25.0))
        } else {
            let mut steps = Vec::new();
            let mut at = 0.0;
            for _ in 0..int(rng, 2, 4) {
                steps.push((at, f8(rng, 1.0, 25.0)));
                at += f8(rng, 100.0, 500.0);
            }
            RateSpec::Steps(steps)
        };
        txns.push(TxnSpec {
            name: gen_name(rng, profile, "t", t),
            rate,
            demand_mcycles: f8(rng, 5.0, 40.0),
            floor_secs: f8(rng, 0.002, 0.01).max(0.002),
            goal_secs: f8(rng, 0.05, 0.3),
            memory_mb: f8(rng, 64.0, min_mem * 0.5),
            max_instances: int(rng, 1, node_count.min(4)) as u32,
            resources: rigid_demands(rng, 0.3, 3),
        });
    }

    // Generative workload streams: bounded batch sources over every
    // process family plus an optional open-loop txn curve. Counts stay
    // small (the streams ride inside full simulations) and every
    // template demand obeys the same placeability bound as the classic
    // lists, so the whole-run oracles apply unchanged.
    let workload = if profile.workloads && !profile.uncontended && chance(rng, 2) {
        let n_streams = int(rng, 1, 2);
        let mut batch_streams = Vec::with_capacity(n_streams);
        for s in 0..n_streams {
            let process = match int(rng, 0, 3) {
                0 => ProcessSpec::Poisson {
                    rate_per_sec: f8(rng, 0.125, 0.5),
                },
                1 => {
                    // First state always productive, so the stream is
                    // guaranteed to emit (validate requires one
                    // positive-rate state).
                    let mut states = vec![(f8(rng, 0.125, 0.5), f8(rng, 60.0, 600.0))];
                    for _ in 0..int(rng, 1, 2) {
                        states.push((f8(rng, 0.0, 0.375), f8(rng, 60.0, 600.0)));
                    }
                    ProcessSpec::Mmpp { states }
                }
                2 => {
                    let base = f8(rng, 0.125, 0.5);
                    ProcessSpec::Diurnal {
                        base_rate_per_sec: base,
                        // Amplitude may exceed nothing: troughs clamp
                        // at zero inside the process itself.
                        amplitude: f8(rng, 0.0, base),
                        period_secs: f8(rng, 600.0, 3_000.0),
                    }
                }
                _ => ProcessSpec::FlashCrowd {
                    base_rate_per_sec: f8(rng, 0.125, 0.375),
                    multiplier: f8(rng, 2.0, 8.0),
                    every_secs: f8(rng, 200.0, 800.0),
                    duration_secs: f8(rng, 30.0, 120.0),
                },
            };
            let tasks = if profile.parallel_jobs && apc && node_count > 1 && chance(rng, 4) {
                int(rng, 2, node_count.min(3)) as u32
            } else {
                1
            };
            batch_streams.push(BatchStreamSpec {
                name: gen_name(rng, profile, "ws", s),
                process,
                // Always bounded, so horizon-free runs terminate and
                // the no-starvation oracle covers every generated job.
                count: Some(int(rng, 1, 4) as u64),
                work_mcycles: f8(rng, 2_000.0, 12_000.0),
                max_speed_mhz: f8(rng, 300.0, 1_200.0),
                memory_mb: f8(rng, 64.0, min_mem * 0.5),
                goal: if chance(rng, 2) {
                    GoalSpec::Factor(f8(rng, 2.0, 8.0))
                } else {
                    GoalSpec::RelativeSecs(f8(rng, 600.0, 5_000.0))
                },
                tasks,
                class: if chance(rng, 6) {
                    Some(format!("stream-{s}"))
                } else {
                    None
                },
                resources: rigid_demands(rng, 0.3, 3),
            });
        }
        let mut txn_streams = Vec::new();
        if chance(rng, 2) {
            let curve = match int(rng, 0, 2) {
                0 => TxnCurveSpec::Constant {
                    rate_per_sec: f8(rng, 1.0, 25.0),
                },
                1 => {
                    let base = f8(rng, 5.0, 25.0);
                    TxnCurveSpec::Diurnal {
                        base_rate_per_sec: base,
                        amplitude_per_sec: f8(rng, 0.0, base),
                        period_secs: f8(rng, 600.0, 3_000.0),
                    }
                }
                _ => TxnCurveSpec::Population {
                    users: f8(rng, 10.0, 150.0),
                    think_time_secs: f8(rng, 2.0, 10.0),
                },
            };
            txn_streams.push(TxnStreamSpec {
                name: gen_name(rng, profile, "wt", 0),
                curve,
                demand_mcycles: f8(rng, 5.0, 40.0),
                floor_secs: f8(rng, 0.002, 0.01).max(0.002),
                goal_secs: f8(rng, 0.05, 0.3),
                memory_mb: f8(rng, 64.0, min_mem * 0.5),
                max_instances: int(rng, 1, node_count.min(4)) as u32,
                resources: rigid_demands(rng, 0.3, 3),
            });
        }
        Some(WorkloadSpec {
            batch_streams,
            txn_streams,
        })
    } else {
        None
    };

    // Uncontended profiles: rescale rigid demands so every instance of
    // every app fits on the *smallest* node simultaneously. With no
    // packing choice to make, the optimum is unique and outcomes cannot
    // depend on declaration order (see GenProfile::uncontended).
    if profile.uncontended {
        let floor8 = |v: f64| (v * 8.0).floor() / 8.0;
        let job_total = |jobs: &[JobGroupSpec], f: &dyn Fn(&JobGroupSpec) -> f64| -> f64 {
            jobs.iter()
                .map(|g| f(g) * g.count as f64 * f64::from(g.tasks))
                .sum()
        };
        let txn_total = |txns: &[TxnSpec], f: &dyn Fn(&TxnSpec) -> f64| -> f64 {
            txns.iter().map(|t| f(t) * f64::from(t.max_instances)).sum()
        };
        let mem_total = job_total(&jobs, &|g| g.memory_mb) + txn_total(&txns, &|t| t.memory_mb);
        if mem_total > min_mem * 0.85 {
            let scale = min_mem * 0.85 / mem_total;
            for g in &mut jobs {
                g.memory_mb = floor8(g.memory_mb * scale).max(1.0);
            }
            for t in &mut txns {
                t.memory_mb = floor8(t.memory_mb * scale).max(1.0);
            }
        }
        for dim in &resources {
            let cap = min_cap[dim.as_str()];
            let total = job_total(&jobs, &|g| g.resources.get(dim).copied().unwrap_or(0.0))
                + txn_total(&txns, &|t| t.resources.get(dim).copied().unwrap_or(0.0));
            if total > cap * 0.85 {
                let scale = cap * 0.85 / total;
                for g in &mut jobs {
                    if let Some(v) = g.resources.get_mut(dim) {
                        *v = floor8(*v * scale);
                    }
                }
                for t in &mut txns {
                    if let Some(v) = t.resources.get_mut(dim) {
                        *v = floor8(*v * scale);
                    }
                }
            }
        }
        // CPU is fluid, not rigid, but a saturated node still forces an
        // order-dependent division of speed among co-located apps: once
        // aggregate appetite exceeds capacity, the leftover after
        // goal-equalizing water-filling is handed out in ascending app-id
        // order (a documented tie-break), so relabeling changes who gets
        // the luxury. Keep the aggregate *saturation* appetite — every
        // job at max speed plus every txn at its full saturation demand
        // (peak arrival rate work plus the response-time-floor term
        // `d / floor_secs`, which dominates) — within the smallest node,
        // so every app can be driven to its maximum simultaneously and
        // the optimum is unique.
        let min_cpu = nodes.iter().map(|g| g.cpu_mhz).fold(f64::MAX, f64::min);
        let peak_rate = |t: &TxnSpec| match &t.rate {
            RateSpec::Constant(r) => *r,
            RateSpec::Steps(steps) => steps.iter().map(|(_, r)| *r).fold(0.0, f64::max),
        };
        let txn_appetite = |t: &TxnSpec| t.demand_mcycles * (peak_rate(t) + 1.0 / t.floor_secs);
        let cpu_total: f64 = jobs
            .iter()
            .map(|g| g.max_speed_mhz * g.count as f64 * f64::from(g.tasks))
            .sum::<f64>()
            + txns.iter().map(txn_appetite).sum::<f64>();
        if cpu_total > min_cpu * 0.85 {
            let scale = min_cpu * 0.85 / cpu_total;
            for g in &mut jobs {
                g.max_speed_mhz = floor8(g.max_speed_mhz * scale).max(8.0);
            }
            // Appetite is linear in the per-request demand for a fixed
            // floor and rate, so scaling `d` scales the whole term.
            for t in &mut txns {
                t.demand_mcycles = floor8(t.demand_mcycles * scale).max(0.125);
            }
        }
    }

    // Failure schedules: transient outages freely; permanent failures
    // only on distinct nodes and never the whole fleet.
    let mut node_failures = Vec::new();
    if profile.failures && chance(rng, 2) {
        let mut permanent_used = std::collections::BTreeSet::new();
        for i in 0..int(rng, 1, 2) {
            let node = int(rng, 0, node_count - 1) as u32;
            let permanent = chance(rng, 3)
                && permanent_used.len() + 1 < node_count
                && permanent_used.insert(node);
            node_failures.push(NodeFailureSpec {
                // The index offset keeps outage instants distinct, so
                // event order is independent of declaration order.
                at_secs: f8(rng, cycle_secs, 1_500.0) + i as f64 * 0.125,
                node,
                duration_secs: if permanent {
                    None
                } else {
                    Some(f8(rng, 60.0, 900.0))
                },
            });
        }
    }

    // Actuation faults: always bounded by `fail_until`, so the
    // desired/actual convergence oracle has a grace window to key on.
    let actuation = if profile.chaos && chance(rng, 2) {
        ActuationSpec {
            failure_rate: f8(rng, 0.05, 0.35),
            latency_jitter: f8(rng, 0.0, 0.2),
            timeout_secs: if chance(rng, 3) {
                Some(f8(rng, 5.0, 60.0))
            } else {
                None
            },
            fail_until_secs: Some(f8(rng, 500.0, 2_500.0)),
            seed: rng.next_u64() & 0xFFFF,
            base_backoff_secs: f8(rng, 2.0, 20.0),
            backoff_factor: f8(rng, 1.25, 2.5),
            max_backoff_secs: f8(rng, 30.0, 240.0),
            quarantine_after: int(rng, 2, 4) as u32,
            quarantine_secs: f8(rng, 60.0, 600.0),
            fallback_after: int(rng, 2, 4) as u32,
        }
    } else {
        ActuationSpec::default()
    };

    // Observation faults: always bounded by `loss_until`, so after it
    // telemetry is perfect, the health machine reinstates every
    // false-positive death, and the convergence oracle has a provable
    // grace window. Modest loss rates keep Dead declarations rare but
    // reachable within typical horizons.
    let observation = if profile.observation && apc && chance(rng, 2) {
        Some(ObservationSpec {
            heartbeat_loss: f8(rng, 0.125, 0.5),
            max_staleness_cycles: int(rng, 0, 2) as u32,
            noise: f8(rng, 0.0, 0.25),
            loss_until_secs: Some(f8(rng, 500.0, 2_000.0)),
            seed: rng.next_u64() & 0xFFFF,
            suspect_after: int(rng, 1, 2) as u32,
            dead_after: int(rng, 3, 5) as u32,
            reinstate_after: int(rng, 1, 3) as u32,
            ewma_alpha: f8(rng, 0.25, 1.0),
            headroom: f8(rng, 0.0, 0.25),
            staleness_budget_cycles: int(rng, 0, 2) as u32,
            degraded_mode: if chance(rng, 2) { "hold" } else { "fill_only" }.to_string(),
        })
    } else {
        None
    };

    let sharding = if profile.sharding && apc && chance(rng, 3) {
        Some(ShardingSpec {
            cell_size: int(rng, 1, node_count + 1),
            rebalance_moves: int(rng, 0, 4),
            rebalance_threshold: f8(rng, 0.0, 0.1),
        })
    } else {
        None
    };

    // A horizon only changes behavior when txns (classic or streamed)
    // keep the control loop armed; horizon-free runs end at the last
    // job completion and the no-starvation oracle requires every job to
    // finish.
    let has_txn_load =
        !txns.is_empty() || workload.as_ref().is_some_and(|w| !w.txn_streams.is_empty());
    let horizon_secs = if profile.horizons && has_txn_load && chance(rng, 4) {
        Some(f8(rng, 1_500.0, 3_000.0))
    } else {
        None
    };

    let spec = ScenarioSpec {
        seed: rng.next_u64() & 0xFFFF,
        scheduler,
        cycle_secs,
        horizon_secs,
        free_vm_costs: chance(rng, 2),
        resources,
        nodes,
        jobs,
        txns,
        node_failures,
        actuation,
        // Wall-clock optimizer deadlines make runs machine-dependent;
        // the fuzz harness never draws one.
        deadline_secs: None,
        workload,
        sharding,
        observation,
        trace: TraceSpec {
            path: None,
            level: if chance(rng, 4) {
                "verbose"
            } else {
                "decisions"
            }
            .to_string(),
        },
    };
    debug_assert_eq!(spec.validate(), Ok(()), "generator emitted an invalid spec");
    spec
}

/// Structurally shrinks a failing spec: tries deletions and reductions
/// in rough order of how much they simplify, keeping each mutation only
/// if the candidate is still valid *and* still fails. Deterministic,
/// and bounded to keep worst-case shrink time sane.
pub fn shrink_spec<F>(spec: &ScenarioSpec, fails: F) -> ScenarioSpec
where
    F: Fn(&ScenarioSpec) -> bool,
{
    let mut best = spec.clone();
    let mut budget = 600usize;
    loop {
        let mut improved = false;
        for candidate in mutations(&best) {
            if budget == 0 {
                return best;
            }
            budget -= 1;
            if candidate.validate().is_ok() && fails(&candidate) {
                best = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// One round of candidate mutations, most aggressive first.
fn mutations(spec: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let mut out = Vec::new();
    // Drop whole txns / job groups / node groups.
    for i in 0..spec.txns.len() {
        let mut s = spec.clone();
        s.txns.remove(i);
        if s.txns.is_empty() {
            s.horizon_secs = None;
        }
        out.push(s);
    }
    for i in 0..spec.jobs.len() {
        let mut s = spec.clone();
        s.jobs.remove(i);
        out.push(s);
    }
    if spec.nodes.len() > 1 {
        for i in 0..spec.nodes.len() {
            let mut s = spec.clone();
            s.nodes.remove(i);
            let remaining: usize = s.nodes.iter().map(|g| g.count).sum();
            s.node_failures.retain(|f| (f.node as usize) < remaining);
            out.push(s);
        }
    }
    // Drop scripted failures and config blocks.
    for i in 0..spec.node_failures.len() {
        let mut s = spec.clone();
        s.node_failures.remove(i);
        out.push(s);
    }
    if spec.actuation != ActuationSpec::default() {
        let mut s = spec.clone();
        s.actuation = ActuationSpec::default();
        out.push(s);
    }
    if spec.sharding.is_some() {
        let mut s = spec.clone();
        s.sharding = None;
        out.push(s);
    }
    if spec.observation.is_some() {
        let mut s = spec.clone();
        s.observation = None;
        out.push(s);
    }
    if spec.trace != TraceSpec::default() {
        let mut s = spec.clone();
        s.trace = TraceSpec::default();
        out.push(s);
    }
    // Drop the generative workload block, then its individual streams.
    if let Some(workload) = &spec.workload {
        let mut s = spec.clone();
        s.workload = None;
        out.push(s);
        for i in 0..workload.batch_streams.len() {
            let mut s = spec.clone();
            let w = s.workload.as_mut().expect("cloned with a workload");
            w.batch_streams.remove(i);
            if w.batch_streams.is_empty() && w.txn_streams.is_empty() {
                s.workload = None;
            }
            out.push(s);
        }
        for i in 0..workload.txn_streams.len() {
            let mut s = spec.clone();
            let w = s.workload.as_mut().expect("cloned with a workload");
            w.txn_streams.remove(i);
            if w.batch_streams.is_empty() && w.txn_streams.is_empty() {
                s.workload = None;
            }
            out.push(s);
        }
    }
    if spec.horizon_secs.is_some() {
        let mut s = spec.clone();
        s.horizon_secs = None;
        out.push(s);
    }
    // Remove one extra rigid dimension end to end.
    for dim in spec.resources.clone() {
        let mut s = spec.clone();
        s.resources.retain(|d| *d != dim);
        for g in &mut s.nodes {
            g.resources.remove(&dim);
        }
        for g in &mut s.jobs {
            g.resources.remove(&dim);
        }
        for t in &mut s.txns {
            t.resources.remove(&dim);
        }
        if let Some(w) = &mut s.workload {
            for b in &mut w.batch_streams {
                b.resources.remove(&dim);
            }
            for t in &mut w.txn_streams {
                t.resources.remove(&dim);
            }
        }
        out.push(s);
    }
    // Reduce counts toward one.
    for i in 0..spec.nodes.len() {
        if spec.nodes[i].count > 1 {
            let mut s = spec.clone();
            s.nodes[i].count /= 2;
            let remaining: usize = s.nodes.iter().map(|g| g.count).sum();
            s.node_failures.retain(|f| (f.node as usize) < remaining);
            out.push(s);
        }
    }
    for i in 0..spec.jobs.len() {
        let group = &spec.jobs[i];
        if group.count > 1 {
            let mut s = spec.clone();
            let halved = group.count / 2;
            if let ArrivalSpec::At(times) = &mut s.jobs[i].arrivals {
                times.truncate(halved);
            }
            s.jobs[i].count = halved;
            out.push(s);
        }
        if group.tasks > 1 {
            let mut s = spec.clone();
            s.jobs[i].tasks = 1;
            out.push(s);
        }
        if group.name.is_some() {
            let mut s = spec.clone();
            s.jobs[i].name = None;
            out.push(s);
        }
        if group.class.is_some() {
            let mut s = spec.clone();
            s.jobs[i].class = None;
            out.push(s);
        }
    }
    for i in 0..spec.txns.len() {
        if spec.txns[i].max_instances > 1 {
            let mut s = spec.clone();
            s.txns[i].max_instances = 1;
            out.push(s);
        }
        if spec.txns[i].name.is_some() {
            let mut s = spec.clone();
            s.txns[i].name = None;
            out.push(s);
        }
        if matches!(spec.txns[i].rate, RateSpec::Steps(_)) {
            let mut s = spec.clone();
            if let RateSpec::Steps(steps) = &spec.txns[i].rate {
                s.txns[i].rate = RateSpec::Constant(steps[0].1);
            }
            out.push(s);
        }
    }
    // Simplify surviving workload streams: halve counts, collapse
    // processes and curves to their simplest family, strip decorations.
    if let Some(workload) = &spec.workload {
        for i in 0..workload.batch_streams.len() {
            let stream = &workload.batch_streams[i];
            let with = |f: &dyn Fn(&mut BatchStreamSpec)| {
                let mut s = spec.clone();
                f(&mut s.workload.as_mut().expect("cloned").batch_streams[i]);
                s
            };
            if stream.count.is_some_and(|c| c > 1) {
                out.push(with(&|b| b.count = b.count.map(|c| c / 2)));
            }
            if !matches!(stream.process, ProcessSpec::Poisson { .. }) {
                out.push(with(&|b| {
                    b.process = ProcessSpec::Poisson { rate_per_sec: 0.25 }
                }));
            }
            if stream.tasks > 1 {
                out.push(with(&|b| b.tasks = 1));
            }
            if stream.name.is_some() {
                out.push(with(&|b| b.name = None));
            }
            if stream.class.is_some() {
                out.push(with(&|b| b.class = None));
            }
        }
        for i in 0..workload.txn_streams.len() {
            let stream = &workload.txn_streams[i];
            let with = |f: &dyn Fn(&mut TxnStreamSpec)| {
                let mut s = spec.clone();
                f(&mut s.workload.as_mut().expect("cloned").txn_streams[i]);
                s
            };
            if stream.max_instances > 1 {
                out.push(with(&|t| t.max_instances = 1));
            }
            if !matches!(stream.curve, TxnCurveSpec::Constant { .. }) {
                out.push(with(&|t| {
                    t.curve = TxnCurveSpec::Constant { rate_per_sec: 10.0 }
                }));
            }
            if stream.name.is_some() {
                out.push(with(&|t| t.name = None));
            }
        }
    }
    for i in 0..spec.nodes.len() {
        if spec.nodes[i].name.is_some() {
            let mut s = spec.clone();
            s.nodes[i].name = None;
            out.push(s);
        }
    }
    // Simplify surviving name strings one character at a time (keeps
    // the failing character when a specific one — e.g. an astral-plane
    // char — is what matters).
    let shorten = |name: &str| -> Vec<String> {
        name.char_indices()
            .map(|(i, c)| {
                let mut shorter = String::with_capacity(name.len());
                shorter.push_str(&name[..i]);
                shorter.push_str(&name[i + c.len_utf8()..]);
                shorter
            })
            .filter(|s| !s.is_empty())
            .collect()
    };
    for i in 0..spec.jobs.len() {
        if let Some(name) = &spec.jobs[i].name {
            for shorter in shorten(name) {
                let mut s = spec.clone();
                s.jobs[i].name = Some(shorter);
                out.push(s);
            }
        }
    }
    for i in 0..spec.nodes.len() {
        if let Some(name) = &spec.nodes[i].name {
            for shorter in shorten(name) {
                let mut s = spec.clone();
                s.nodes[i].name = Some(shorter);
                out.push(s);
            }
        }
    }
    out
}

/// Where minimized failing specs are persisted: `$FUZZ_FAILURE_DIR`
/// when set (CI uploads this directory as an artifact on failure), else
/// `target/fuzz/failures` under the workspace root.
pub fn failure_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("FUZZ_FAILURE_DIR") {
        return PathBuf::from(dir);
    }
    // crates/testutil -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("testutil lives two levels below the workspace root")
        .join("target/fuzz/failures")
}

/// Persists a minimized failing spec as pretty JSON, ready to copy into
/// `tests/repro/` as a permanent regression scenario. Returns the path.
pub fn persist_failure(property: &str, spec: &ScenarioSpec) -> PathBuf {
    let dir = failure_dir();
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
    let path = dir.join(format!("{property}.json"));
    let mut text = spec.to_json_string();
    text.push('\n');
    std::fs::write(&path, text).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    path
}

/// Runs `oracle` on `spec`, treating panics inside the oracle (an
/// engine crash is a finding, not a test error) as failures. On
/// failure, shrinks the spec against the same oracle, persists the
/// minimized JSON, and reports everything in one message.
pub fn check_scenario<O>(property: &str, spec: &ScenarioSpec, oracle: O) -> TestCaseResult
where
    O: Fn(&ScenarioSpec) -> Result<(), String> + std::panic::RefUnwindSafe,
{
    let outcome = |candidate: &ScenarioSpec| -> Result<(), String> {
        std::panic::catch_unwind(|| oracle(candidate))
            .unwrap_or_else(|payload| Err(format!("panicked: {}", panic_message(&payload))))
    };
    let first = match outcome(spec) {
        Ok(()) => return Ok(()),
        Err(message) => message,
    };
    let minimized = shrink_spec(spec, |candidate| outcome(candidate).is_err());
    let minimized_err = outcome(&minimized).err().unwrap_or_else(|| first.clone());
    let path = persist_failure(property, &minimized);
    Err(TestCaseError::fail(format!(
        "{property}: {first}\n\
         minimized failure: {minimized_err}\n\
         minimized spec persisted to {} — copy into tests/repro/ to bless it as a regression\n\
         minimized spec:\n{}",
        path.display(),
        minimized.to_json_string(),
    )))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
