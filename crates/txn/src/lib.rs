//! Transactional workload substrate: queueing performance model, request
//! router, work profiler, and traffic patterns.
//!
//! Together these reproduce the middleware components the paper's §3.1
//! architecture relies on for web workloads:
//!
//! - [`model::TxnPerformanceModel`] — response time as a function of
//!   allocated CPU (M/M/1 with a response-time floor) scored against a
//!   response-time goal; implements
//!   [`dynaplace_rpf::model::PerformanceModel`], so the placement
//!   controller can trade CPU between web applications and batch jobs.
//! - [`router::RequestRouter`] — allocation-proportional load balancing
//!   over instances with gateway overload protection.
//! - [`profiler::WorkProfiler`] — sliding-window regression estimating
//!   the per-request CPU demand from utilization and throughput.
//! - [`workload`] — deterministic arrival-rate patterns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod profiler;
pub mod router;
pub mod workload;

pub use model::{TxnPerformanceModel, TxnWorkload};
pub use profiler::{UtilizationSample, WorkProfiler};
pub use router::{InstanceLoad, RequestRouter, RoutingOutcome, DEFAULT_MAX_UTILIZATION};
pub use workload::{ArrivalPattern, ConstantRate, SinusoidPattern, StepPattern};
