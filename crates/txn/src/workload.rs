//! Time-varying arrival-rate patterns for transactional traffic.
//!
//! Experiment Three keeps the transactional load constant, but the
//! intro's motivating scenario — reacting to transactional intensity
//! changes at short control cycles — needs time-varying patterns, so the
//! simulator accepts any [`ArrivalPattern`].

use dynaplace_model::units::SimTime;

/// A deterministic arrival-rate curve λ(t), in requests per second.
pub trait ArrivalPattern {
    /// The arrival rate at simulated time `t`.
    fn rate_at(&self, t: SimTime) -> f64;
}

impl<F: Fn(SimTime) -> f64> ArrivalPattern for F {
    fn rate_at(&self, t: SimTime) -> f64 {
        self(t)
    }
}

/// Constant arrival rate (Experiment Three's transactional workload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantRate(pub f64);

impl ArrivalPattern for ConstantRate {
    fn rate_at(&self, _t: SimTime) -> f64 {
        self.0
    }
}

/// Piecewise-constant arrival rate: each `(start, rate)` step applies
/// from `start` until the next step. Before the first step the rate is
/// the first step's rate.
#[derive(Debug, Clone, PartialEq)]
pub struct StepPattern {
    steps: Vec<(SimTime, f64)>,
}

impl StepPattern {
    /// Creates a step pattern.
    ///
    /// # Panics
    ///
    /// Panics if no steps are given or starts are not strictly
    /// increasing.
    pub fn new(steps: Vec<(SimTime, f64)>) -> Self {
        assert!(!steps.is_empty(), "need at least one step");
        assert!(
            steps.windows(2).all(|w| w[0].0 < w[1].0),
            "step starts must be strictly increasing"
        );
        Self { steps }
    }

    /// The steps.
    pub fn steps(&self) -> &[(SimTime, f64)] {
        &self.steps
    }
}

impl ArrivalPattern for StepPattern {
    fn rate_at(&self, t: SimTime) -> f64 {
        let idx = self.steps.partition_point(|&(start, _)| start <= t);
        if idx == 0 {
            self.steps[0].1
        } else {
            self.steps[idx - 1].1
        }
    }
}

/// A diurnal-style sinusoid: `base + amplitude · sin(2π·t/period)`,
/// floored at zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinusoidPattern {
    /// Mean rate.
    pub base: f64,
    /// Peak deviation from the mean.
    pub amplitude: f64,
    /// Period in seconds.
    pub period_secs: f64,
}

impl ArrivalPattern for SinusoidPattern {
    fn rate_at(&self, t: SimTime) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * t.as_secs() / self.period_secs;
        (self.base + self.amplitude * phase.sin()).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn constant() {
        let p = ConstantRate(42.0);
        assert_eq!(p.rate_at(t(0.0)), 42.0);
        assert_eq!(p.rate_at(t(1e9)), 42.0);
    }

    #[test]
    fn steps_apply_from_their_start() {
        let p = StepPattern::new(vec![(t(0.0), 10.0), (t(100.0), 50.0), (t(200.0), 5.0)]);
        assert_eq!(p.rate_at(t(0.0)), 10.0);
        assert_eq!(p.rate_at(t(99.9)), 10.0);
        assert_eq!(p.rate_at(t(100.0)), 50.0);
        assert_eq!(p.rate_at(t(150.0)), 50.0);
        assert_eq!(p.rate_at(t(300.0)), 5.0);
    }

    #[test]
    fn before_first_step_uses_first_rate() {
        let p = StepPattern::new(vec![(t(10.0), 7.0)]);
        assert_eq!(p.rate_at(t(0.0)), 7.0);
    }

    #[test]
    fn sinusoid_stays_non_negative() {
        let p = SinusoidPattern {
            base: 10.0,
            amplitude: 50.0,
            period_secs: 100.0,
        };
        for i in 0..200 {
            assert!(p.rate_at(t(i as f64)) >= 0.0);
        }
        // Peak near t = 25.
        assert!((p.rate_at(t(25.0)) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn closures_are_patterns() {
        let p = |time: SimTime| time.as_secs() * 2.0;
        assert_eq!(p.rate_at(t(3.0)), 6.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_steps_rejected() {
        let _ = StepPattern::new(vec![(t(10.0), 1.0), (t(5.0), 2.0)]);
    }
}
