//! The work profiler (§3.1, after Pacifici et al. "Dynamic estimation of
//! CPU demand of web traffic"): estimates the average CPU demand of a
//! single request to each application from node utilization and
//! throughput observations, via sliding-window least squares.

use std::collections::VecDeque;

use dynaplace_solver::regression::{least_squares, through_origin, RegressionError};

/// One observation interval: per-application throughput and the total CPU
/// speed consumed serving it.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationSample {
    /// Observed throughput per application (req/s), in a fixed order.
    pub throughput: Vec<f64>,
    /// Total CPU consumed over the interval (MHz, i.e. Mcycles/s averaged
    /// over the interval).
    pub cpu_used_mhz: f64,
}

/// Sliding-window estimator of per-request CPU demand.
///
/// Feed one [`UtilizationSample`] per measurement interval; the estimator
/// regresses `cpu_used ≈ Σ_m d_m · throughput_m` over the most recent
/// window and reports the coefficient vector `d` (megacycles per
/// request).
///
/// ```
/// use dynaplace_txn::profiler::{UtilizationSample, WorkProfiler};
///
/// let mut profiler = WorkProfiler::new(2, 32);
/// for i in 1..=10 {
///     let t0 = i as f64;
///     let t1 = (i % 3) as f64;
///     profiler.record(UtilizationSample {
///         throughput: vec![t0, t1],
///         cpu_used_mhz: 25.0 * t0 + 60.0 * t1,
///     });
/// }
/// let d = profiler.estimate().unwrap();
/// assert!((d[0] - 25.0).abs() < 1e-6);
/// assert!((d[1] - 60.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct WorkProfiler {
    apps: usize,
    window: usize,
    samples: VecDeque<UtilizationSample>,
}

impl WorkProfiler {
    /// Creates a profiler for `apps` applications keeping the most recent
    /// `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `apps` or `window` is zero.
    pub fn new(apps: usize, window: usize) -> Self {
        assert!(apps > 0, "need at least one application");
        assert!(window > 0, "window must be positive");
        Self {
            apps,
            window,
            samples: VecDeque::with_capacity(window),
        }
    }

    /// Number of applications profiled.
    pub fn apps(&self) -> usize {
        self.apps
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Records a sample, evicting the oldest once the window is full.
    ///
    /// # Panics
    ///
    /// Panics if the sample's throughput vector has the wrong length.
    pub fn record(&mut self, sample: UtilizationSample) {
        assert_eq!(
            sample.throughput.len(),
            self.apps,
            "throughput vector length must match application count"
        );
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    /// Estimates per-request CPU demand (megacycles) for every
    /// application over the current window.
    ///
    /// # Errors
    ///
    /// Returns [`RegressionError`] when there are too few samples or the
    /// throughputs in the window are collinear.
    pub fn estimate(&self) -> Result<Vec<f64>, RegressionError> {
        let xs: Vec<Vec<f64>> = self.samples.iter().map(|s| s.throughput.clone()).collect();
        let ys: Vec<f64> = self.samples.iter().map(|s| s.cpu_used_mhz).collect();
        least_squares(&xs, &ys)
    }

    /// Single-application fast path: through-origin regression of CPU on
    /// throughput.
    ///
    /// # Errors
    ///
    /// Returns [`RegressionError`] when there are no samples or all
    /// throughputs are zero.
    ///
    /// # Panics
    ///
    /// Panics if the profiler tracks more than one application.
    pub fn estimate_single(&self) -> Result<f64, RegressionError> {
        assert_eq!(self.apps, 1, "estimate_single requires a 1-app profiler");
        let pts: Vec<(f64, f64)> = self
            .samples
            .iter()
            .map(|s| (s.throughput[0], s.cpu_used_mhz))
            .collect();
        through_origin(&pts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_app_recovers_demand_with_noise() {
        let mut p = WorkProfiler::new(1, 16);
        for i in 1..=16 {
            let rate = 10.0 + (i % 5) as f64 * 7.0;
            let noise = if i % 2 == 0 { 0.5 } else { -0.5 };
            p.record(UtilizationSample {
                throughput: vec![rate],
                cpu_used_mhz: 12.0 * rate + noise,
            });
        }
        let d = p.estimate_single().unwrap();
        assert!((d - 12.0).abs() < 0.05, "estimated {d}");
    }

    #[test]
    fn window_evicts_stale_samples() {
        let mut p = WorkProfiler::new(1, 4);
        // Old regime: d = 100.
        for _ in 0..4 {
            p.record(UtilizationSample {
                throughput: vec![10.0],
                cpu_used_mhz: 1_000.0,
            });
        }
        // New regime: d = 20. After 4 samples the old ones are gone.
        for _ in 0..4 {
            p.record(UtilizationSample {
                throughput: vec![10.0],
                cpu_used_mhz: 200.0,
            });
        }
        assert_eq!(p.len(), 4);
        let d = p.estimate_single().unwrap();
        assert!((d - 20.0).abs() < 1e-9);
    }

    #[test]
    fn multivariate_separates_applications() {
        let mut p = WorkProfiler::new(3, 32);
        let ds = [5.0, 50.0, 500.0];
        for i in 0..20 {
            let t = [(i % 4) as f64 + 1.0, (i % 5) as f64, ((i * 2) % 7) as f64];
            let cpu: f64 = t.iter().zip(&ds).map(|(x, d)| x * d).sum();
            p.record(UtilizationSample {
                throughput: t.to_vec(),
                cpu_used_mhz: cpu,
            });
        }
        let est = p.estimate().unwrap();
        for (e, d) in est.iter().zip(&ds) {
            assert!((e - d).abs() < 1e-6);
        }
    }

    #[test]
    fn insufficient_data_is_an_error() {
        let p = WorkProfiler::new(2, 8);
        assert!(p.estimate().is_err());
        let mut p1 = WorkProfiler::new(1, 8);
        p1.record(UtilizationSample {
            throughput: vec![0.0],
            cpu_used_mhz: 0.0,
        });
        assert!(p1.estimate_single().is_err()); // all-zero throughput
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn wrong_sample_shape_panics() {
        let mut p = WorkProfiler::new(2, 8);
        p.record(UtilizationSample {
            throughput: vec![1.0],
            cpu_used_mhz: 1.0,
        });
    }
}
