//! Queueing performance model for transactional applications (§3.3).
//!
//! The paper leverages the request router's performance model (Pacifici
//! et al.) to estimate response time as a function of allocated CPU
//! speed, then scores it against the response-time goal with
//! `u = (τ − t)/τ` (eq. 1). The router model itself is not published in
//! the paper; we substitute an M/M/1 processor-sharing model with a
//! response-time floor, which reproduces the two properties the paper
//! relies on (see DESIGN.md §2):
//!
//! - response time decreases monotonically with allocated CPU, and
//! - there is a maximum achievable relative performance — beyond a
//!   saturation allocation, extra CPU no longer reduces response time
//!   (the paper's Experiment Three: `u_max ≈ 0.66` at ≈130,000 MHz).
//!
//! With per-request demand `d` (megacycles), arrival rate `λ` (req/s) and
//! aggregate allocation `ω` (MHz), the service rate is `μ = ω/d` and
//!
//! ```text
//! t(ω) = max(t_floor, 1 / (μ − λ)) = max(t_floor, d / (ω − λ·d))
//! ```

use serde::{Deserialize, Serialize};

use dynaplace_model::units::{CpuSpeed, SimDuration};
use dynaplace_rpf::goal::ResponseTimeGoal;
use dynaplace_rpf::model::PerformanceModel;
use dynaplace_rpf::value::Rp;

/// Workload parameters of one transactional application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TxnWorkload {
    /// Request arrival rate λ, in requests per second.
    pub arrival_rate: f64,
    /// Average CPU demand of one request `d`, in megacycles.
    pub demand_per_request: f64,
    /// Response-time floor `t_floor`: the response time that remains even
    /// with unlimited CPU (minimum service plus network time).
    pub floor: SimDuration,
}

impl TxnWorkload {
    /// Creates a workload description.
    ///
    /// # Panics
    ///
    /// Panics if the arrival rate is negative, the per-request demand is
    /// not strictly positive, or the floor is not strictly positive.
    pub fn new(arrival_rate: f64, demand_per_request: f64, floor: SimDuration) -> Self {
        assert!(arrival_rate >= 0.0, "arrival rate must be non-negative");
        assert!(
            demand_per_request > 0.0,
            "per-request demand must be positive"
        );
        assert!(floor.is_positive(), "response-time floor must be positive");
        Self {
            arrival_rate,
            demand_per_request,
            floor,
        }
    }

    /// The CPU speed consumed just to keep up with arrivals (`λ·d`): below
    /// this allocation the queue grows without bound.
    pub fn saturation_load(&self) -> CpuSpeed {
        CpuSpeed::from_mhz(self.arrival_rate * self.demand_per_request)
    }

    /// Modeled mean response time under aggregate allocation `omega`.
    /// Returns `None` when the allocation cannot keep up with arrivals
    /// (`ω ≤ λ·d`), i.e. the system is overloaded.
    pub fn response_time(&self, omega: CpuSpeed) -> Option<SimDuration> {
        let headroom = omega.as_mhz() - self.saturation_load().as_mhz();
        if headroom <= 0.0 {
            return None;
        }
        let queueing = self.demand_per_request / headroom;
        Some(SimDuration::from_secs(queueing.max(self.floor.as_secs())))
    }

    /// The allocation at which the response time reaches the floor:
    /// `λ·d + d/t_floor`. More CPU than this is wasted on this workload.
    pub fn saturation_allocation(&self) -> CpuSpeed {
        CpuSpeed::from_mhz(
            self.arrival_rate * self.demand_per_request
                + self.demand_per_request / self.floor.as_secs(),
        )
    }
}

/// The complete performance model of a transactional application: its
/// workload plus its response-time goal. Implements [`PerformanceModel`],
/// so the placement controller can query it directly.
///
/// ```
/// use dynaplace_model::units::{CpuSpeed, SimDuration};
/// use dynaplace_rpf::goal::ResponseTimeGoal;
/// use dynaplace_rpf::model::PerformanceModel;
/// use dynaplace_txn::model::{TxnPerformanceModel, TxnWorkload};
///
/// // Experiment Three's transactional application (see DESIGN.md):
/// // λ·d = 100,000 MHz, floor chosen so u_max ≈ 0.66 at ≈130,000 MHz.
/// let workload = TxnWorkload::new(1_000.0, 100.0, SimDuration::from_secs(100.0 / 30_000.0));
/// let goal = ResponseTimeGoal::new(SimDuration::from_secs(100.0 / 30_000.0 / 0.34));
/// let model = TxnPerformanceModel::new(workload, goal);
/// let u_max = model.max_performance();
/// assert!((u_max.value() - 0.66).abs() < 0.01);
/// let at_saturation = model.max_useful_demand();
/// assert!((at_saturation.as_mhz() - 130_000.0).abs() < 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TxnPerformanceModel {
    workload: TxnWorkload,
    goal: ResponseTimeGoal,
}

impl TxnPerformanceModel {
    /// Combines a workload description with a response-time goal.
    pub fn new(workload: TxnWorkload, goal: ResponseTimeGoal) -> Self {
        Self { workload, goal }
    }

    /// The workload parameters.
    pub fn workload(&self) -> TxnWorkload {
        self.workload
    }

    /// The response-time goal.
    pub fn goal(&self) -> ResponseTimeGoal {
        self.goal
    }

    /// Relative performance for an *observed* response time (used by the
    /// simulator to report actual, rather than modeled, performance).
    pub fn performance_of_response(&self, response: SimDuration) -> Rp {
        self.goal.performance_at(response)
    }
}

impl PerformanceModel for TxnPerformanceModel {
    fn performance(&self, omega: CpuSpeed) -> Rp {
        // Overload scores exactly the healthy floor, never the sub-floor
        // band: txn requests are memoryless, so there is no accumulated
        // lateness to drain, and `ResponseTimeGoal::performance_at`
        // clamps at the floor for the same reason.
        match self.workload.response_time(omega) {
            Some(t) => self.goal.performance_at(t),
            None => Rp::FLOOR,
        }
    }

    fn demand(&self, u: Rp) -> CpuSpeed {
        let u = u.min(self.max_performance());
        // The RP floor is a plateau: every allocation from zero up to the
        // overload-exit point scores Rp::FLOOR, so the *cheapest*
        // allocation achieving the floor — or any sub-floor band target —
        // is zero (the leftmost point of the plateau, consistent with
        // SampledRpf's inverse).
        if u <= Rp::FLOOR {
            return CpuSpeed::ZERO;
        }
        let target = self.goal.response_for(u);
        if target <= self.workload.floor {
            return self.workload.saturation_allocation();
        }
        // Invert t = d/(ω − λd): ω = λd + d/t.
        CpuSpeed::from_mhz(
            self.workload.saturation_load().as_mhz()
                + self.workload.demand_per_request / target.as_secs(),
        )
    }

    fn max_performance(&self) -> Rp {
        self.goal.performance_at(self.workload.floor)
    }

    fn max_useful_demand(&self) -> CpuSpeed {
        self.workload.saturation_allocation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mhz(x: f64) -> CpuSpeed {
        CpuSpeed::from_mhz(x)
    }
    fn secs(x: f64) -> SimDuration {
        SimDuration::from_secs(x)
    }

    fn model() -> TxnPerformanceModel {
        // λ = 100 req/s, d = 10 Mcycles → λd = 1,000 MHz.
        // floor = 5 ms; goal = 20 ms.
        TxnPerformanceModel::new(
            TxnWorkload::new(100.0, 10.0, secs(0.005)),
            ResponseTimeGoal::new(secs(0.020)),
        )
    }

    #[test]
    fn response_time_decreases_with_cpu() {
        let w = model().workload();
        let t1 = w.response_time(mhz(1_500.0)).unwrap();
        let t2 = w.response_time(mhz(2_500.0)).unwrap();
        assert!(t2 < t1);
        // 10/(1500-1000) = 20 ms.
        assert!(t1.approx_eq(secs(0.02), 1e-12));
    }

    #[test]
    fn overload_returns_none() {
        let w = model().workload();
        assert!(w.response_time(mhz(1_000.0)).is_none());
        assert!(w.response_time(mhz(500.0)).is_none());
        assert!(w.response_time(CpuSpeed::ZERO).is_none());
    }

    #[test]
    fn floor_caps_response_time() {
        let w = model().workload();
        // Far beyond saturation the floor dominates.
        assert_eq!(w.response_time(mhz(1e9)).unwrap(), secs(0.005));
        // Saturation allocation: 1000 + 10/0.005 = 3,000 MHz.
        assert!(w.saturation_allocation().approx_eq(mhz(3_000.0), 1e-9));
    }

    #[test]
    fn performance_matches_goal_arithmetic() {
        let m = model();
        // At 1,500 MHz, t = 20 ms = goal → u = 0.
        assert!(m.performance(mhz(1_500.0)).approx_eq(Rp::GOAL, 1e-9));
        // At the floor, u = (20-5)/20 = 0.75 = u_max.
        assert!(m.max_performance().approx_eq(Rp::new(0.75), 1e-9));
        assert!(m.performance(mhz(1e6)).approx_eq(Rp::new(0.75), 1e-9));
        // Overloaded → the healthy floor, never the sub-floor band.
        assert_eq!(m.performance(mhz(900.0)), Rp::FLOOR);
    }

    #[test]
    fn demand_inverts_performance() {
        let m = model();
        for u in [-2.0, -0.5, 0.0, 0.3, 0.6, 0.74] {
            let omega = m.demand(Rp::new(u));
            let back = m.performance(omega);
            assert!(
                back.approx_eq(Rp::new(u), 1e-9),
                "demand/performance round trip failed at u={u}: {back}"
            );
        }
    }

    #[test]
    fn demand_saturates_at_max_performance() {
        let m = model();
        assert!(m
            .demand(Rp::new(0.9))
            .approx_eq(m.max_useful_demand(), 1e-9));
        assert!(m.demand(Rp::MAX).approx_eq(mhz(3_000.0), 1e-9));
    }

    #[test]
    fn performance_is_monotone() {
        let m = model();
        let mut prev = Rp::MIN;
        for omega in [0.0, 500.0, 1_000.5, 1_001.0, 1_200.0, 2_000.0, 5_000.0, 1e6] {
            let u = m.performance(mhz(omega));
            assert!(u >= prev, "performance dropped at {omega} MHz");
            prev = u;
        }
    }

    #[test]
    fn zero_arrival_rate_is_always_at_floor() {
        let w = TxnWorkload::new(0.0, 10.0, secs(0.005));
        // With no arrivals the "queueing" term is pure service time d/ω:
        // slow at a tiny allocation, floored once ω ≥ d/t_floor.
        assert_eq!(w.response_time(mhz(1.0)).unwrap(), secs(10.0));
        assert_eq!(w.response_time(mhz(10_000.0)).unwrap(), secs(0.005));
        assert_eq!(w.saturation_load(), CpuSpeed::ZERO);
    }

    #[test]
    #[should_panic(expected = "per-request demand must be positive")]
    fn zero_demand_rejected() {
        let _ = TxnWorkload::new(1.0, 0.0, secs(0.005));
    }
}
