//! The request router: entry-point load balancing across the instances of
//! a clustered transactional application (§3.1).
//!
//! The router distributes arriving requests across application instances
//! in proportion to the CPU speed each instance was allocated, models
//! per-instance response times, and applies overload protection by
//! admitting at most a configurable utilization per instance (requests
//! beyond that are queued/shed at the gateway rather than melting the
//! server, after Pacifici et al.).

use serde::{Deserialize, Serialize};

use dynaplace_model::units::{CpuSpeed, SimDuration};

use crate::model::TxnWorkload;

/// Default per-instance utilization cap for overload protection.
pub const DEFAULT_MAX_UTILIZATION: f64 = 0.99;

/// Load and modeled behaviour of one application instance after routing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceLoad {
    /// Request rate admitted to this instance (req/s).
    pub admitted_rate: f64,
    /// Offered rate before overload protection (req/s).
    pub offered_rate: f64,
    /// CPU utilization of the instance's allocation in `[0, 1]`.
    pub utilization: f64,
    /// Modeled mean response time for requests served by this instance.
    pub response_time: SimDuration,
}

/// Result of routing one application's traffic over its instances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingOutcome {
    /// Per-instance loads, in the order the allocations were given.
    pub instances: Vec<InstanceLoad>,
    /// Request rate admitted across all instances (req/s).
    pub admitted_rate: f64,
    /// Request rate shed (or gateway-queued) by overload protection.
    pub shed_rate: f64,
    /// Admission-weighted mean response time, `None` when nothing was
    /// admitted (no instances or zero allocation).
    pub mean_response: Option<SimDuration>,
}

impl RoutingOutcome {
    /// Whether overload protection engaged.
    pub fn is_overloaded(&self) -> bool {
        self.shed_rate > 1e-12
    }
}

/// Weighted-balancing request router for one transactional application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRouter {
    max_utilization: f64,
}

impl Default for RequestRouter {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_UTILIZATION)
    }
}

impl RequestRouter {
    /// Creates a router with the given per-instance utilization cap.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < max_utilization < 1`.
    pub fn new(max_utilization: f64) -> Self {
        assert!(
            max_utilization > 0.0 && max_utilization < 1.0,
            "utilization cap must be in (0, 1)"
        );
        Self { max_utilization }
    }

    /// The configured utilization cap.
    pub fn max_utilization(&self) -> f64 {
        self.max_utilization
    }

    /// Routes `workload` over instances with the given CPU allocations.
    ///
    /// Traffic is offered proportionally to allocation; each instance
    /// admits at most `max_utilization × ω_i / d` requests per second,
    /// and the rest is shed at the gateway. Instances with zero
    /// allocation receive no traffic.
    pub fn route(&self, workload: &TxnWorkload, allocations: &[CpuSpeed]) -> RoutingOutcome {
        let total: f64 = allocations.iter().map(|w| w.as_mhz()).sum();
        let lambda = workload.arrival_rate;
        let d = workload.demand_per_request;
        let floor = workload.floor;

        if total <= 0.0 || allocations.is_empty() {
            return RoutingOutcome {
                instances: allocations
                    .iter()
                    .map(|_| InstanceLoad {
                        admitted_rate: 0.0,
                        offered_rate: 0.0,
                        utilization: 0.0,
                        response_time: floor,
                    })
                    .collect(),
                admitted_rate: 0.0,
                shed_rate: lambda,
                mean_response: None,
            };
        }

        // Admission control is per instance; the response time model is a
        // single processor-sharing pool over the aggregate allocation
        // (Pacifici et al.'s cluster model, and the same function the
        // placement controller inverts): t = max(floor, d / headroom).
        let mut admitted_total = 0.0;
        let mut per_instance: Vec<(f64, f64, f64)> = Vec::with_capacity(allocations.len());
        for &omega in allocations {
            let share = omega.as_mhz() / total;
            let offered = lambda * share;
            let capacity_rate = self.max_utilization * omega.as_mhz() / d;
            let admitted = offered.min(capacity_rate);
            let utilization = if omega.as_mhz() > 0.0 {
                admitted * d / omega.as_mhz()
            } else {
                0.0
            };
            admitted_total += admitted;
            per_instance.push((offered, admitted, utilization));
        }

        let pool_headroom = total - admitted_total * d;
        let pool_response = if admitted_total <= 0.0 {
            floor
        } else if pool_headroom > 0.0 {
            SimDuration::from_secs((d / pool_headroom).max(floor.as_secs()))
        } else {
            // At the admission cap the residual headroom is at least
            // (1 − max_utilization)·total by construction; guard anyway.
            SimDuration::from_secs(
                (d / ((1.0 - self.max_utilization) * total)).max(floor.as_secs()),
            )
        };

        let instances: Vec<InstanceLoad> = per_instance
            .into_iter()
            .map(|(offered, admitted, utilization)| InstanceLoad {
                admitted_rate: admitted,
                offered_rate: offered,
                utilization,
                response_time: pool_response,
            })
            .collect();

        let mean_response = if admitted_total > 0.0 {
            Some(pool_response)
        } else {
            None
        };

        RoutingOutcome {
            instances,
            admitted_rate: admitted_total,
            shed_rate: (lambda - admitted_total).max(0.0),
            mean_response,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mhz(x: f64) -> CpuSpeed {
        CpuSpeed::from_mhz(x)
    }
    fn secs(x: f64) -> SimDuration {
        SimDuration::from_secs(x)
    }

    fn workload() -> TxnWorkload {
        // λ = 100 req/s, d = 10 Mcycles, floor 1 ms.
        TxnWorkload::new(100.0, 10.0, secs(0.001))
    }

    #[test]
    fn proportional_distribution() {
        let router = RequestRouter::default();
        let out = router.route(&workload(), &[mhz(2_000.0), mhz(1_000.0)]);
        assert!((out.instances[0].offered_rate - 66.666).abs() < 0.01);
        assert!((out.instances[1].offered_rate - 33.333).abs() < 0.01);
        assert!(!out.is_overloaded());
        assert!((out.admitted_rate - 100.0).abs() < 1e-9);
    }

    #[test]
    fn balanced_instances_have_equal_response() {
        let router = RequestRouter::default();
        let out = router.route(&workload(), &[mhz(1_500.0), mhz(1_500.0)]);
        let t0 = out.instances[0].response_time;
        let t1 = out.instances[1].response_time;
        assert!(t0.approx_eq(t1, 1e-12));
        // Pooled model: headroom = 3,000 − 100·10 = 2,000 → t = 5 ms,
        // identical to a single instance with the same total allocation.
        assert!(t0.approx_eq(secs(0.005), 1e-9));
        assert!(out.mean_response.unwrap().approx_eq(secs(0.005), 1e-9));
        let single = router.route(&workload(), &[mhz(3_000.0)]);
        assert!(single
            .mean_response
            .unwrap()
            .approx_eq(out.mean_response.unwrap(), 1e-12));
    }

    #[test]
    fn overload_protection_sheds() {
        let router = RequestRouter::new(0.9);
        // Capacity rate = 0.9 * 500 / 10 = 45 req/s < offered 100.
        let out = router.route(&workload(), &[mhz(500.0)]);
        assert!(out.is_overloaded());
        assert!((out.admitted_rate - 45.0).abs() < 1e-9);
        assert!((out.shed_rate - 55.0).abs() < 1e-9);
        assert!((out.instances[0].utilization - 0.9).abs() < 1e-9);
        // Response stays finite thanks to the admission cap.
        assert!(out.instances[0].response_time.as_secs().is_finite());
    }

    #[test]
    fn zero_allocation_sheds_everything() {
        let router = RequestRouter::default();
        let out = router.route(&workload(), &[CpuSpeed::ZERO, CpuSpeed::ZERO]);
        assert_eq!(out.admitted_rate, 0.0);
        assert!((out.shed_rate - 100.0).abs() < 1e-12);
        assert_eq!(out.mean_response, None);
    }

    #[test]
    fn no_instances() {
        let router = RequestRouter::default();
        let out = router.route(&workload(), &[]);
        assert!(out.instances.is_empty());
        assert_eq!(out.mean_response, None);
        assert!((out.shed_rate - 100.0).abs() < 1e-12);
    }

    #[test]
    fn zero_allocation_instance_gets_no_traffic() {
        let router = RequestRouter::default();
        let out = router.route(&workload(), &[mhz(3_000.0), CpuSpeed::ZERO]);
        assert_eq!(out.instances[1].offered_rate, 0.0);
        assert_eq!(out.instances[1].admitted_rate, 0.0);
        assert!((out.admitted_rate - 100.0).abs() < 1e-9);
    }

    #[test]
    fn floor_applies_at_high_allocation() {
        let router = RequestRouter::default();
        let out = router.route(&workload(), &[mhz(1e9)]);
        assert!(out.mean_response.unwrap().approx_eq(secs(0.001), 1e-12));
    }

    #[test]
    #[should_panic(expected = "utilization cap must be in (0, 1)")]
    fn bad_utilization_cap_rejected() {
        let _ = RequestRouter::new(1.0);
    }
}
