//! Property-based tests for the transactional substrate.

#![deny(deprecated)]

use dynaplace_model::units::{CpuSpeed, SimDuration};
use dynaplace_rpf::goal::ResponseTimeGoal;
use dynaplace_rpf::model::PerformanceModel;
use dynaplace_rpf::value::Rp;
use dynaplace_txn::model::{TxnPerformanceModel, TxnWorkload};
use dynaplace_txn::router::RequestRouter;
use proptest::prelude::*;

fn arb_workload() -> impl Strategy<Value = TxnWorkload> {
    (0.0..500.0f64, 0.5..100.0f64, 0.001..0.1f64).prop_map(|(rate, demand, floor)| {
        TxnWorkload::new(rate, demand, SimDuration::from_secs(floor))
    })
}

proptest! {
    /// Router conservation: admitted ≤ offered per instance, totals add
    /// up, and shed = λ − admitted.
    #[test]
    fn router_conserves_traffic(
        workload in arb_workload(),
        allocs in proptest::collection::vec(0.0..10_000.0f64, 0..6),
    ) {
        let router = RequestRouter::default();
        let allocations: Vec<CpuSpeed> =
            allocs.iter().map(|&a| CpuSpeed::from_mhz(a)).collect();
        let out = router.route(&workload, &allocations);
        let mut offered_total = 0.0;
        let mut admitted_total = 0.0;
        for i in &out.instances {
            prop_assert!(i.admitted_rate <= i.offered_rate + 1e-9);
            prop_assert!(i.utilization <= router.max_utilization() + 1e-9);
            offered_total += i.offered_rate;
            admitted_total += i.admitted_rate;
        }
        if !allocations.is_empty() && allocations.iter().any(|a| a.as_mhz() > 0.0) {
            prop_assert!((offered_total - workload.arrival_rate).abs() < 1e-6);
        }
        prop_assert!((admitted_total - out.admitted_rate).abs() < 1e-6);
        prop_assert!(
            (out.shed_rate - (workload.arrival_rate - out.admitted_rate).max(0.0)).abs() < 1e-6
        );
    }

    /// The pooled response time is monotone non-increasing in total
    /// allocation (splitting the same total differently cannot change
    /// it).
    #[test]
    fn pooled_response_monotone(
        workload in arb_workload(),
        total in 1.0..50_000.0f64,
        extra in 0.0..50_000.0f64,
        split in 0.01..0.99f64,
    ) {
        let router = RequestRouter::default();
        let one = router.route(&workload, &[CpuSpeed::from_mhz(total)]);
        let two = router.route(
            &workload,
            &[
                CpuSpeed::from_mhz(total * split),
                CpuSpeed::from_mhz(total * (1.0 - split)),
            ],
        );
        if let (Some(a), Some(b)) = (one.mean_response, two.mean_response) {
            prop_assert!(a.approx_eq(b, 1e-9), "split changed pooled response");
        }
        let bigger = router.route(&workload, &[CpuSpeed::from_mhz(total + extra)]);
        if let (Some(a), Some(b)) = (one.mean_response, bigger.mean_response) {
            prop_assert!(b <= a + SimDuration::from_secs(1e-12));
        }
    }

    /// Model round trip: performance(demand(u)) == u wherever u is
    /// attainable and above the floor plateau.
    #[test]
    fn model_round_trip(
        workload in arb_workload(),
        goal_scale in 1.5..30.0f64,
        u in -8.0..0.99f64,
    ) {
        let goal = ResponseTimeGoal::new(SimDuration::from_secs(
            workload.floor.as_secs() * goal_scale,
        ));
        let m = TxnPerformanceModel::new(workload, goal);
        let target = Rp::new(u).min(m.max_performance());
        if target <= Rp::FLOOR {
            return Ok(());
        }
        let back = m.performance(m.demand(target));
        prop_assert!(back.approx_eq(target, 1e-6));
    }

    /// Saturation: allocations beyond max_useful_demand never improve
    /// performance.
    #[test]
    fn saturation_is_flat(workload in arb_workload(), goal_scale in 1.5..30.0f64, surplus in 0.0..1e6f64) {
        let goal = ResponseTimeGoal::new(SimDuration::from_secs(
            workload.floor.as_secs() * goal_scale,
        ));
        let m = TxnPerformanceModel::new(workload, goal);
        let at_sat = m.performance(m.max_useful_demand());
        let beyond = m.performance(m.max_useful_demand() + CpuSpeed::from_mhz(surplus));
        prop_assert!(beyond.approx_eq(at_sat, 1e-9));
        prop_assert!(at_sat.approx_eq(m.max_performance(), 1e-9));
    }
}
