//! Dinic's maximum-flow algorithm on small graphs with `f64` capacities.
//!
//! The load distributor uses max-flow to decide whether a demand vector
//! (CPU each application wants) can be routed onto the nodes hosting its
//! instances without exceeding any node's CPU capacity. Graphs are tiny
//! (a few hundred vertices), so a straightforward adjacency-list Dinic is
//! more than fast enough.

/// Floating-point capacities below this are treated as exhausted.
const FLOW_EPS: f64 = 1e-9;

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    rev: usize,
    cap: f64,
}

/// A flow network under construction, and the solver.
///
/// ```
/// use dynaplace_solver::maxflow::FlowNetwork;
///
/// // s=0, t=3, two disjoint paths with capacities 3 and 4.
/// let mut net = FlowNetwork::new(4);
/// net.add_edge(0, 1, 3.0);
/// net.add_edge(1, 3, 3.0);
/// net.add_edge(0, 2, 5.0);
/// net.add_edge(2, 3, 4.0);
/// assert_eq!(net.max_flow(0, 3), 7.0);
/// ```
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    graph: Vec<Vec<Edge>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl FlowNetwork {
    /// Creates a network with `vertices` vertices and no edges.
    pub fn new(vertices: usize) -> Self {
        Self {
            graph: vec![Vec::new(); vertices],
            level: vec![0; vertices],
            iter: vec![0; vertices],
        }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.graph.len()
    }

    /// Adds a directed edge `from -> to` with the given capacity and
    /// returns an opaque handle usable with [`FlowNetwork::flow_on`].
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or the capacity is
    /// negative/NaN.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: f64) -> EdgeHandle {
        assert!(
            from < self.graph.len() && to < self.graph.len(),
            "vertex out of range"
        );
        assert!(cap >= 0.0, "capacity must be non-negative");
        let fwd = self.graph[from].len();
        let bwd = self.graph[to].len();
        self.graph[from].push(Edge { to, rev: bwd, cap });
        self.graph[to].push(Edge {
            to: from,
            rev: fwd,
            cap: 0.0,
        });
        EdgeHandle {
            from,
            index: fwd,
            original_cap: cap,
        }
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for e in &self.graph[v] {
                if e.cap > FLOW_EPS && self.level[e.to] < 0 {
                    self.level[e.to] = self.level[v] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, f: f64) -> f64 {
        if v == t {
            return f;
        }
        while self.iter[v] < self.graph[v].len() {
            let i = self.iter[v];
            let (to, cap, rev) = {
                let e = &self.graph[v][i];
                (e.to, e.cap, e.rev)
            };
            if cap > FLOW_EPS && self.level[v] < self.level[to] {
                let d = self.dfs(to, t, f.min(cap));
                if d > FLOW_EPS {
                    self.graph[v][i].cap -= d;
                    self.graph[to][rev].cap += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0.0
    }

    /// Computes the maximum flow from `s` to `t`, mutating residual
    /// capacities in place. Calling it twice continues from the previous
    /// residual state (returning 0 the second time).
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either is out of range.
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        assert!(s != t, "source and sink must differ");
        assert!(
            s < self.graph.len() && t < self.graph.len(),
            "vertex out of range"
        );
        let mut flow = 0.0;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, f64::INFINITY);
                if f <= FLOW_EPS {
                    break;
                }
                flow += f;
            }
        }
        flow
    }

    /// Flow currently routed on the edge identified by `handle`
    /// (original capacity minus residual capacity).
    pub fn flow_on(&self, handle: EdgeHandle) -> f64 {
        let residual = self.graph[handle.from][handle.index].cap;
        (handle.original_cap - residual).max(0.0)
    }
}

/// Identifies an edge added with [`FlowNetwork::add_edge`], for reading
/// its routed flow after solving.
#[derive(Debug, Clone, Copy)]
pub struct EdgeHandle {
    from: usize,
    index: usize,
    original_cap: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 5.5);
        assert_eq!(net.max_flow(0, 1), 5.5);
        assert_eq!(net.flow_on(e), 5.5);
    }

    #[test]
    fn bottleneck_limits_flow() {
        // 0 -> 1 -> 2 with caps 10 and 3.
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 10.0);
        net.add_edge(1, 2, 3.0);
        assert_eq!(net.max_flow(0, 2), 3.0);
    }

    #[test]
    fn classic_diamond_with_cross_edge() {
        // The textbook example where the cross edge enables more flow.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 10.0);
        net.add_edge(0, 2, 10.0);
        net.add_edge(1, 3, 10.0);
        net.add_edge(2, 3, 10.0);
        net.add_edge(1, 2, 1.0);
        assert_eq!(net.max_flow(0, 3), 20.0);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5.0);
        net.add_edge(2, 3, 5.0);
        assert_eq!(net.max_flow(0, 3), 0.0);
    }

    #[test]
    fn bipartite_assignment() {
        // 2 apps, 2 nodes: app0 can use either node (cap 4 each);
        // app1 only node1 (cap 5). Node capacities 6 and 5.
        // Demands: app0 wants 7, app1 wants 5.
        // s=0, apps=1,2, nodes=3,4, t=5.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 7.0);
        net.add_edge(0, 2, 5.0);
        net.add_edge(1, 3, 4.0);
        net.add_edge(1, 4, 4.0);
        net.add_edge(2, 4, 5.0);
        net.add_edge(3, 5, 6.0);
        net.add_edge(4, 5, 5.0);
        // app1 takes all of node4 (5); app0 gets 4 on node3 and 0 on node4.
        // Max total = 4 + 5 = 9 < 12.
        let flow = net.max_flow(0, 5);
        assert!((flow - 9.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_capacities() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 0.25);
        net.add_edge(0, 1, 0.5);
        net.add_edge(1, 2, 1.0);
        assert!((net.max_flow(0, 2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn flow_on_reports_per_edge_flow() {
        let mut net = FlowNetwork::new(4);
        let a = net.add_edge(0, 1, 3.0);
        let b = net.add_edge(0, 2, 3.0);
        net.add_edge(1, 3, 2.0);
        net.add_edge(2, 3, 3.0);
        let total = net.max_flow(0, 3);
        assert!((total - 5.0).abs() < 1e-9);
        assert!((net.flow_on(a) - 2.0).abs() < 1e-9);
        assert!((net.flow_on(b) - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "source and sink must differ")]
    fn same_source_sink_panics() {
        let mut net = FlowNetwork::new(2);
        let _ = net.max_flow(0, 0);
    }

    #[test]
    fn zero_capacity_edge_carries_nothing() {
        let mut net = FlowNetwork::new(3);
        let dead = net.add_edge(0, 1, 0.0);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 2, 5.0);
        assert_eq!(net.max_flow(0, 2), 2.0);
        assert_eq!(net.flow_on(dead), 0.0);
    }

    #[test]
    fn second_solve_continues_from_residual() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 4.0);
        net.add_edge(1, 2, 4.0);
        assert_eq!(net.max_flow(0, 2), 4.0);
        // The network is saturated; a re-solve finds no augmenting path.
        assert_eq!(net.max_flow(0, 2), 0.0);
    }

    #[test]
    fn unit_capacity_bipartite_matching() {
        // Perfect matching on a 3×3 bipartite graph where the naive
        // greedy order (each left vertex takes its first neighbor)
        // needs an augmenting path to recover: L0-{R0,R1}, L1-{R0},
        // L2-{R1,R2}. Matching of size 3 exists (L0-R1? no: L1 needs
        // R0, so L0-R1, L2-R2).
        let mut net = FlowNetwork::new(8);
        for l in 1..4 {
            net.add_edge(0, l, 1.0);
        }
        for r in 4..7 {
            net.add_edge(r, 7, 1.0);
        }
        net.add_edge(1, 4, 1.0);
        net.add_edge(1, 5, 1.0);
        net.add_edge(2, 4, 1.0);
        net.add_edge(3, 5, 1.0);
        net.add_edge(3, 6, 1.0);
        assert!((net.max_flow(0, 7) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-negative")]
    fn negative_capacity_panics() {
        let mut net = FlowNetwork::new(2);
        let _ = net.add_edge(0, 1, -1.0);
    }

    #[test]
    #[should_panic(expected = "vertex out of range")]
    fn out_of_range_vertex_panics() {
        let mut net = FlowNetwork::new(2);
        let _ = net.add_edge(0, 2, 1.0);
    }

    #[test]
    fn larger_random_ish_network_conserves() {
        // Max flow must not exceed either the source cut or the sink cut.
        let mut net = FlowNetwork::new(8);
        let mut source_cap = 0.0;
        let mut sink_cap = 0.0;
        for i in 1..4 {
            let c = i as f64 * 1.5;
            net.add_edge(0, i, c);
            source_cap += c;
        }
        for i in 1..4 {
            for j in 4..7 {
                net.add_edge(i, j, 1.0 + (i * j) as f64 * 0.1);
            }
        }
        for j in 4..7 {
            let c = j as f64;
            net.add_edge(j, 7, c);
            sink_cap += c;
        }
        let flow = net.max_flow(0, 7);
        assert!(flow <= source_cap + 1e-9);
        assert!(flow <= sink_cap + 1e-9);
        assert!(flow > 0.0);
    }
}
