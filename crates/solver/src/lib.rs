//! Numeric and combinatorial solvers backing the `dynaplace` workspace.
//!
//! Self-contained building blocks with no domain knowledge:
//!
//! - [`bisect`] — bisection over monotone predicates (used to find the
//!   highest feasible uniform relative-performance level),
//! - [`piecewise`] — monotone piecewise-linear functions with inversion
//!   (the representation of every sampled relative performance function),
//! - [`maxflow`] — Dinic's maximum flow with `f64` capacities (used to
//!   check whether a CPU demand vector can be routed onto the nodes that
//!   host each application's instances),
//! - [`regression`] — ordinary least squares (the work profiler's
//!   estimator for per-request CPU demand).
//!
//! # Example
//!
//! ```
//! use dynaplace_solver::bisect::bisect_max;
//! use dynaplace_solver::piecewise::PiecewiseLinear;
//!
//! let demand = PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 100.0)])?;
//! let capacity = 40.0;
//! let best = bisect_max(0.0, 1.0, 1e-9, |u| demand.eval(u) <= capacity)
//!     .expect("u = 0 is always feasible");
//! assert!((best.accepted - 0.4).abs() < 1e-6);
//! # Ok::<(), dynaplace_solver::piecewise::PiecewiseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bisect;
pub mod maxflow;
pub mod piecewise;
pub mod regression;

pub use bisect::{bisect_max, solve_monotone, Bisection};
pub use maxflow::{EdgeHandle, FlowNetwork};
pub use piecewise::{PiecewiseError, PiecewiseLinear};
pub use regression::{least_squares, solve_linear_system, through_origin, RegressionError};
