//! Monotone piecewise-linear functions with inversion.
//!
//! Relative performance functions in this workspace are represented as
//! sampled piecewise-linear curves (§4.2 of the paper interpolates between
//! sampling points of the hypothetical relative performance function).

use std::fmt;

/// Error constructing a [`PiecewiseLinear`] function.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PiecewiseError {
    /// Fewer than two points were supplied.
    TooFewPoints,
    /// The x coordinates are not strictly increasing.
    XNotStrictlyIncreasing,
    /// A coordinate is NaN.
    NanCoordinate,
}

impl fmt::Display for PiecewiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PiecewiseError::TooFewPoints => f.write_str("need at least two points"),
            PiecewiseError::XNotStrictlyIncreasing => {
                f.write_str("x coordinates must be strictly increasing")
            }
            PiecewiseError::NanCoordinate => f.write_str("coordinates must not be NaN"),
        }
    }
}

impl std::error::Error for PiecewiseError {}

/// A piecewise-linear function defined by sample points with strictly
/// increasing x coordinates. Evaluation clamps outside the sampled range
/// (the function is treated as constant beyond its endpoints).
///
/// ```
/// use dynaplace_solver::piecewise::PiecewiseLinear;
///
/// let f = PiecewiseLinear::new(vec![(0.0, 0.0), (10.0, 100.0)])?;
/// assert_eq!(f.eval(5.0), 50.0);
/// assert_eq!(f.eval(-1.0), 0.0);   // clamped
/// assert_eq!(f.eval(20.0), 100.0); // clamped
/// # Ok::<(), dynaplace_solver::piecewise::PiecewiseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    points: Vec<(f64, f64)>,
}

impl PiecewiseLinear {
    /// Builds the function from `(x, y)` sample points.
    ///
    /// # Errors
    ///
    /// Returns [`PiecewiseError`] if fewer than two points are given, any
    /// coordinate is NaN, or the x coordinates are not strictly
    /// increasing.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, PiecewiseError> {
        if points.len() < 2 {
            return Err(PiecewiseError::TooFewPoints);
        }
        if points.iter().any(|&(x, y)| x.is_nan() || y.is_nan()) {
            return Err(PiecewiseError::NanCoordinate);
        }
        if points.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err(PiecewiseError::XNotStrictlyIncreasing);
        }
        Ok(Self { points })
    }

    /// The sample points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Smallest sampled x.
    pub fn x_min(&self) -> f64 {
        self.points[0].0
    }

    /// Largest sampled x.
    pub fn x_max(&self) -> f64 {
        self.points[self.points.len() - 1].0
    }

    /// Evaluates the function at `x`, clamping outside the sampled range.
    pub fn eval(&self, x: f64) -> f64 {
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        if x >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Binary search for the segment containing x.
        let idx = match pts.binary_search_by(|&(px, _)| px.total_cmp(&x)) {
            Ok(i) => return pts[i].1,
            Err(i) => i, // pts[i-1].0 < x < pts[i].0
        };
        let (x0, y0) = pts[idx - 1];
        let (x1, y1) = pts[idx];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Returns whether the y values are non-decreasing in x.
    pub fn is_non_decreasing(&self) -> bool {
        self.points.windows(2).all(|w| w[0].1 <= w[1].1)
    }

    /// Inverts a non-decreasing function: finds the smallest `x` with
    /// `eval(x) >= y`, clamped to the sampled range.
    ///
    /// Flat segments (several x with the same y) return the left edge of
    /// the earliest such segment.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the function is not non-decreasing.
    pub fn inverse(&self, y: f64) -> f64 {
        debug_assert!(self.is_non_decreasing(), "inverse requires monotonicity");
        let pts = &self.points;
        if y <= pts[0].1 {
            return pts[0].0;
        }
        if y > pts[pts.len() - 1].1 {
            return pts[pts.len() - 1].0;
        }
        // Find first point with y-value >= y.
        let mut idx = pts.partition_point(|&(_, py)| py < y);
        // idx >= 1 because pts[0].1 < y.
        let (x1, y1) = pts[idx];
        if y1 == y {
            // Walk left across any flat run to the earliest x achieving y.
            while idx > 0 && pts[idx - 1].1 == y {
                idx -= 1;
            }
            return pts[idx].0;
        }
        let (x0, y0) = pts[idx - 1];
        x0 + (x1 - x0) * (y - y0) / (y1 - y0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f() -> PiecewiseLinear {
        PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 10.0), (3.0, 10.0), (4.0, 20.0)]).unwrap()
    }

    #[test]
    fn eval_interpolates() {
        let f = f();
        assert_eq!(f.eval(0.5), 5.0);
        assert_eq!(f.eval(2.0), 10.0); // flat segment
        assert_eq!(f.eval(3.5), 15.0);
    }

    #[test]
    fn eval_clamps_ends() {
        let f = f();
        assert_eq!(f.eval(-1.0), 0.0);
        assert_eq!(f.eval(9.0), 20.0);
    }

    #[test]
    fn eval_hits_sample_points_exactly() {
        let f = f();
        assert_eq!(f.eval(1.0), 10.0);
        assert_eq!(f.eval(4.0), 20.0);
    }

    #[test]
    fn inverse_round_trips() {
        let f = f();
        assert_eq!(f.inverse(5.0), 0.5);
        assert_eq!(f.inverse(15.0), 3.5);
        // Flat run: earliest x achieving 10.0 is x=1.
        assert_eq!(f.inverse(10.0), 1.0);
    }

    #[test]
    fn inverse_clamps() {
        let f = f();
        assert_eq!(f.inverse(-3.0), 0.0);
        assert_eq!(f.inverse(99.0), 4.0);
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            PiecewiseLinear::new(vec![(0.0, 0.0)]).unwrap_err(),
            PiecewiseError::TooFewPoints
        );
        assert_eq!(
            PiecewiseLinear::new(vec![(1.0, 0.0), (1.0, 1.0)]).unwrap_err(),
            PiecewiseError::XNotStrictlyIncreasing
        );
        assert_eq!(
            PiecewiseLinear::new(vec![(0.0, f64::NAN), (1.0, 1.0)]).unwrap_err(),
            PiecewiseError::NanCoordinate
        );
    }

    #[test]
    fn monotonicity_detection() {
        assert!(f().is_non_decreasing());
        let dec = PiecewiseLinear::new(vec![(0.0, 1.0), (1.0, 0.0)]).unwrap();
        assert!(!dec.is_non_decreasing());
    }
}
