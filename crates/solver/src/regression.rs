//! Ordinary least squares, backing the work profiler.
//!
//! The work profiler (§3.1, after Pacifici et al.) regresses observed node
//! CPU consumption against per-application throughput to estimate the
//! average CPU demand of a single request. That is a small multivariate
//! least-squares problem solved here with normal equations and Gaussian
//! elimination with partial pivoting.

use std::fmt;

/// Error from a least-squares fit.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RegressionError {
    /// No observations were provided.
    NoObservations,
    /// Observations have inconsistent dimension.
    DimensionMismatch,
    /// The normal equations are singular (features are collinear or there
    /// are fewer observations than features).
    Singular,
}

impl fmt::Display for RegressionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegressionError::NoObservations => f.write_str("no observations"),
            RegressionError::DimensionMismatch => {
                f.write_str("observations have inconsistent dimension")
            }
            RegressionError::Singular => f.write_str("normal equations are singular"),
        }
    }
}

impl std::error::Error for RegressionError {}

/// Solves `A x = b` for square `A` using Gaussian elimination with partial
/// pivoting. `a` is row-major.
///
/// # Errors
///
/// Returns [`RegressionError::Singular`] when a pivot is (numerically)
/// zero.
#[allow(clippy::needless_range_loop)] // index loops read naturally for matrix math
pub fn solve_linear_system(a: &[Vec<f64>], b: &[f64]) -> Result<Vec<f64>, RegressionError> {
    let n = b.len();
    if a.len() != n || a.iter().any(|row| row.len() != n) {
        return Err(RegressionError::DimensionMismatch);
    }
    let mut m: Vec<Vec<f64>> = a.to_vec();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))
            .unwrap();
        if m[pivot][col].abs() < 1e-12 {
            return Err(RegressionError::Singular);
        }
        m.swap(col, pivot);
        rhs.swap(col, pivot);
        for row in (col + 1)..n {
            let factor = m[row][col] / m[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row][k] -= factor * m[col][k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for col in (row + 1)..n {
            acc -= m[row][col] * x[col];
        }
        x[row] = acc / m[row][row];
    }
    Ok(x)
}

/// Least-squares fit of `y ≈ X·β` (no intercept; prepend a constant-1
/// feature to model one).
///
/// # Errors
///
/// Returns [`RegressionError`] when inputs are empty, inconsistent, or the
/// normal equations are singular.
///
/// ```
/// use dynaplace_solver::regression::least_squares;
///
/// // y = 2*x0 + 3*x1, exactly.
/// let xs = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
/// let ys = vec![2.0, 3.0, 5.0];
/// let beta = least_squares(&xs, &ys)?;
/// assert!((beta[0] - 2.0).abs() < 1e-9);
/// assert!((beta[1] - 3.0).abs() < 1e-9);
/// # Ok::<(), dynaplace_solver::regression::RegressionError>(())
/// ```
#[allow(clippy::needless_range_loop)] // index loops read naturally for matrix math
pub fn least_squares(xs: &[Vec<f64>], ys: &[f64]) -> Result<Vec<f64>, RegressionError> {
    if xs.is_empty() || ys.is_empty() {
        return Err(RegressionError::NoObservations);
    }
    if xs.len() != ys.len() {
        return Err(RegressionError::DimensionMismatch);
    }
    let k = xs[0].len();
    if k == 0 || xs.iter().any(|row| row.len() != k) {
        return Err(RegressionError::DimensionMismatch);
    }
    // Normal equations: (XᵀX) β = Xᵀy.
    let mut xtx = vec![vec![0.0; k]; k];
    let mut xty = vec![0.0; k];
    for (row, &y) in xs.iter().zip(ys) {
        for i in 0..k {
            xty[i] += row[i] * y;
            for j in i..k {
                xtx[i][j] += row[i] * row[j];
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..k {
        for j in 0..i {
            xtx[i][j] = xtx[j][i];
        }
    }
    solve_linear_system(&xtx, &xty)
}

/// Univariate least squares through the origin: the `d` minimizing
/// `Σ (y_i - d·x_i)²`, i.e. `Σxy / Σx²`.
///
/// # Errors
///
/// Returns [`RegressionError::NoObservations`] for empty input and
/// [`RegressionError::Singular`] when all `x` are zero.
pub fn through_origin(samples: &[(f64, f64)]) -> Result<f64, RegressionError> {
    if samples.is_empty() {
        return Err(RegressionError::NoObservations);
    }
    let sxx: f64 = samples.iter().map(|&(x, _)| x * x).sum();
    if sxx < 1e-12 {
        return Err(RegressionError::Singular);
    }
    let sxy: f64 = samples.iter().map(|&(x, y)| x * y).sum();
    Ok(sxy / sxx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_system() {
        // 2x + y = 5 ; x - y = 1  =>  x = 2, y = 1
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let b = vec![5.0, 1.0];
        let x = solve_linear_system(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let b = vec![1.0, 2.0];
        assert_eq!(solve_linear_system(&a, &b), Err(RegressionError::Singular));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let b = vec![3.0, 4.0];
        let x = solve_linear_system(&a, &b).unwrap();
        assert_eq!(x, vec![4.0, 3.0]);
    }

    #[test]
    fn least_squares_recovers_noisy_coefficients() {
        // y = 1.5 x0 + 0.5 x1 with deterministic "noise".
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..50 {
            let x0 = (i % 7) as f64;
            let x1 = (i % 5) as f64;
            let noise = if i % 2 == 0 { 0.01 } else { -0.01 };
            xs.push(vec![x0, x1]);
            ys.push(1.5 * x0 + 0.5 * x1 + noise);
        }
        let beta = least_squares(&xs, &ys).unwrap();
        assert!((beta[0] - 1.5).abs() < 0.01);
        assert!((beta[1] - 0.5).abs() < 0.01);
    }

    #[test]
    fn least_squares_errors() {
        assert_eq!(
            least_squares(&[], &[]),
            Err(RegressionError::NoObservations)
        );
        assert_eq!(
            least_squares(&[vec![1.0]], &[1.0, 2.0]),
            Err(RegressionError::DimensionMismatch)
        );
        assert_eq!(
            least_squares(&[vec![1.0, 2.0], vec![1.0]], &[1.0, 2.0]),
            Err(RegressionError::DimensionMismatch)
        );
    }

    #[test]
    fn through_origin_exact() {
        let d = through_origin(&[(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]).unwrap();
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn through_origin_errors() {
        assert_eq!(through_origin(&[]), Err(RegressionError::NoObservations));
        assert_eq!(
            through_origin(&[(0.0, 1.0), (0.0, 2.0)]),
            Err(RegressionError::Singular)
        );
    }
}
