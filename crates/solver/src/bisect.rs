//! Bisection over monotone predicates and functions.
//!
//! The load distributor searches for the highest uniform relative
//! performance level that still fits the cluster; that search is a
//! bisection over a monotone feasibility predicate.

/// Outcome of a bisection search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bisection {
    /// Largest input for which the predicate held.
    pub accepted: f64,
    /// Smallest probed input for which the predicate failed, if any probe
    /// failed; `None` when the predicate held on the whole interval.
    pub rejected: Option<f64>,
    /// Number of predicate evaluations performed.
    pub evaluations: u32,
}

/// Finds (approximately) the largest `x` in `[lo, hi]` such that
/// `pred(x)` holds, assuming `pred` is *downward closed*: if it holds at
/// `x` it holds at every `y < x`.
///
/// Returns `None` if `pred(lo)` is false (no feasible point).
/// The search stops when the bracket is narrower than `tol`.
///
/// # Panics
///
/// Panics if `lo > hi` or `tol <= 0`.
///
/// ```
/// use dynaplace_solver::bisect::bisect_max;
///
/// let r = bisect_max(0.0, 10.0, 1e-9, |x| x * x <= 2.0).unwrap();
/// assert!((r.accepted - 2f64.sqrt()).abs() < 1e-6);
/// ```
pub fn bisect_max(
    lo: f64,
    hi: f64,
    tol: f64,
    mut pred: impl FnMut(f64) -> bool,
) -> Option<Bisection> {
    assert!(lo <= hi, "bisection bounds inverted");
    assert!(tol > 0.0, "tolerance must be positive");
    let mut evaluations = 0;
    let mut check = |x: f64, evals: &mut u32| {
        *evals += 1;
        pred(x)
    };
    if !check(lo, &mut evaluations) {
        return None;
    }
    if check(hi, &mut evaluations) {
        return Some(Bisection {
            accepted: hi,
            rejected: None,
            evaluations,
        });
    }
    let mut good = lo;
    let mut bad = hi;
    while bad - good > tol {
        let mid = good + (bad - good) / 2.0;
        if mid <= good || mid >= bad {
            break; // ran out of float resolution
        }
        if check(mid, &mut evaluations) {
            good = mid;
        } else {
            bad = mid;
        }
    }
    Some(Bisection {
        accepted: good,
        rejected: Some(bad),
        evaluations,
    })
}

/// Finds `x` in `[lo, hi]` with `f(x) ≈ target` for a non-decreasing `f`,
/// to within `tol` on `x`.
///
/// Clamps to the interval ends when the target is outside `f`'s range on
/// the interval.
///
/// # Panics
///
/// Panics if `lo > hi` or `tol <= 0`.
pub fn solve_monotone(
    lo: f64,
    hi: f64,
    tol: f64,
    target: f64,
    mut f: impl FnMut(f64) -> f64,
) -> f64 {
    assert!(lo <= hi, "bisection bounds inverted");
    assert!(tol > 0.0, "tolerance must be positive");
    if f(lo) >= target {
        return lo;
    }
    if f(hi) <= target {
        return hi;
    }
    let mut a = lo;
    let mut b = hi;
    while b - a > tol {
        let mid = a + (b - a) / 2.0;
        if mid <= a || mid >= b {
            break;
        }
        if f(mid) < target {
            a = mid;
        } else {
            b = mid;
        }
    }
    a + (b - a) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_threshold() {
        let r = bisect_max(0.0, 100.0, 1e-9, |x| x <= 42.0).unwrap();
        assert!((r.accepted - 42.0).abs() < 1e-6);
        assert!(r.rejected.unwrap() > 42.0);
    }

    #[test]
    fn infeasible_returns_none() {
        assert!(bisect_max(0.0, 1.0, 1e-9, |_| false).is_none());
    }

    #[test]
    fn fully_feasible_returns_hi() {
        let r = bisect_max(0.0, 7.0, 1e-9, |_| true).unwrap();
        assert_eq!(r.accepted, 7.0);
        assert_eq!(r.rejected, None);
        assert_eq!(r.evaluations, 2);
    }

    #[test]
    fn degenerate_interval() {
        let r = bisect_max(3.0, 3.0, 1e-9, |x| x <= 3.0).unwrap();
        assert_eq!(r.accepted, 3.0);
    }

    #[test]
    #[should_panic(expected = "bisection bounds inverted")]
    fn inverted_bounds_panic() {
        let _ = bisect_max(1.0, 0.0, 1e-9, |_| true);
    }

    #[test]
    fn solve_monotone_hits_target() {
        let x = solve_monotone(0.0, 10.0, 1e-10, 9.0, |x| x * x);
        assert!((x - 3.0).abs() < 1e-6);
    }

    #[test]
    fn solve_monotone_clamps() {
        assert_eq!(solve_monotone(0.0, 10.0, 1e-10, -5.0, |x| x), 0.0);
        assert_eq!(solve_monotone(0.0, 10.0, 1e-10, 50.0, |x| x), 10.0);
    }
}
