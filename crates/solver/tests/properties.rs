//! Property-based tests for the solvers.

#![deny(deprecated)]

use dynaplace_solver::bisect::bisect_max;
use dynaplace_solver::maxflow::FlowNetwork;
use dynaplace_solver::piecewise::PiecewiseLinear;
use dynaplace_solver::regression::{least_squares, through_origin};
use proptest::prelude::*;

fn arb_monotone_points() -> impl Strategy<Value = Vec<(f64, f64)>> {
    // Strictly increasing x, non-decreasing y, built from positive deltas.
    (
        -100.0..100.0f64,
        -100.0..100.0f64,
        proptest::collection::vec((0.01..10.0f64, 0.0..10.0f64), 1..12),
    )
        .prop_map(|(x0, y0, deltas)| {
            let mut pts = vec![(x0, y0)];
            let (mut x, mut y) = (x0, y0);
            for (dx, dy) in deltas {
                x += dx;
                y += dy;
                pts.push((x, y));
            }
            pts
        })
}

proptest! {
    /// eval() stays within the sampled y-range for monotone functions.
    #[test]
    fn piecewise_eval_in_range(pts in arb_monotone_points(), x in -200.0..300.0f64) {
        let f = PiecewiseLinear::new(pts.clone()).unwrap();
        let y = f.eval(x);
        let y_min = pts.first().unwrap().1;
        let y_max = pts.last().unwrap().1;
        prop_assert!(y >= y_min - 1e-9 && y <= y_max + 1e-9);
    }

    /// inverse(eval(x)) maps back to a point with the same value.
    #[test]
    fn piecewise_inverse_consistent(pts in arb_monotone_points(), t in 0.0..1.0f64) {
        let f = PiecewiseLinear::new(pts).unwrap();
        let x = f.x_min() + t * (f.x_max() - f.x_min());
        let y = f.eval(x);
        let x_back = f.inverse(y);
        // On flat segments x_back may be earlier than x, but its value
        // must match (within tolerance scaled by the value range).
        let scale = 1.0 + y.abs();
        prop_assert!((f.eval(x_back) - y).abs() < 1e-6 * scale);
        prop_assert!(x_back <= x + 1e-6);
    }

    /// bisect_max returns a feasible point whose successor is infeasible.
    #[test]
    fn bisect_bracket_is_tight(threshold in 0.0..100.0f64) {
        let r = bisect_max(0.0, 100.0, 1e-7, |x| x <= threshold).unwrap();
        prop_assert!(r.accepted <= threshold + 1e-6);
        if let Some(rej) = r.rejected {
            prop_assert!(rej > threshold);
            prop_assert!(rej - r.accepted <= 1e-6);
        }
    }

    /// Max flow through a bipartite assignment never exceeds either side's
    /// capacity and is monotone in demand.
    #[test]
    fn maxflow_bounded_by_cuts(
        demands in proptest::collection::vec(0.0..50.0f64, 1..5),
        caps in proptest::collection::vec(1.0..50.0f64, 1..5),
    ) {
        let a = demands.len();
        let n = caps.len();
        // s=0, apps 1..=a, nodes a+1..=a+n, t=a+n+1.
        let t = a + n + 1;
        let mut net = FlowNetwork::new(t + 1);
        for (i, &d) in demands.iter().enumerate() {
            net.add_edge(0, 1 + i, d);
            for j in 0..n {
                net.add_edge(1 + i, 1 + a + j, f64::INFINITY);
            }
        }
        for (j, &c) in caps.iter().enumerate() {
            net.add_edge(1 + a + j, t, c);
        }
        let flow = net.max_flow(0, t);
        let total_demand: f64 = demands.iter().sum();
        let total_cap: f64 = caps.iter().sum();
        prop_assert!(flow <= total_demand + 1e-6);
        prop_assert!(flow <= total_cap + 1e-6);
        // With full bipartite connectivity the flow equals min(cut, cut).
        prop_assert!((flow - total_demand.min(total_cap)).abs() < 1e-6);
    }

    /// least_squares recovers exact coefficients from exact data.
    #[test]
    fn least_squares_exact_recovery(
        b0 in -10.0..10.0f64,
        b1 in -10.0..10.0f64,
    ) {
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64, ((i * 3) % 7) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| b0 * r[0] + b1 * r[1]).collect();
        let beta = least_squares(&xs, &ys).unwrap();
        prop_assert!((beta[0] - b0).abs() < 1e-6);
        prop_assert!((beta[1] - b1).abs() < 1e-6);
    }

    /// through_origin recovers the slope from exact proportional data.
    #[test]
    fn through_origin_recovers_slope(d in 0.01..100.0f64) {
        let samples: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, d * i as f64)).collect();
        let est = through_origin(&samples).unwrap();
        prop_assert!((est - d).abs() < 1e-9 * d.max(1.0));
    }
}
