//! The load distribution matrix `L` (§3.2): how much CPU speed each
//! application consumes on each node.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::cluster::{AppSet, Cluster};
use crate::error::ModelError;
use crate::ids::{AppId, NodeId};
use crate::placement::Placement;
use crate::units::CpuSpeed;

/// Tolerance used when validating CPU totals against capacities, to absorb
/// floating-point accumulation error.
pub const CPU_TOLERANCE_MHZ: f64 = 1e-6;

/// Sparse matrix of CPU allocations: cell `(m, n)` is the CPU speed
/// consumed by all instances of application `m` on node `n`.
///
/// ```
/// use dynaplace_model::load::LoadDistribution;
/// use dynaplace_model::ids::{AppId, NodeId};
/// use dynaplace_model::units::CpuSpeed;
///
/// let mut l = LoadDistribution::new();
/// l.set(AppId::new(0), NodeId::new(1), CpuSpeed::from_mhz(500.0));
/// assert_eq!(l.app_total(AppId::new(0)), CpuSpeed::from_mhz(500.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LoadDistribution {
    cells: BTreeMap<(AppId, NodeId), CpuSpeed>,
}

impl LoadDistribution {
    /// Creates an empty load distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// CPU speed consumed by `app` on `node` (zero if unset).
    pub fn get(&self, app: AppId, node: NodeId) -> CpuSpeed {
        self.cells
            .get(&(app, node))
            .copied()
            .unwrap_or(CpuSpeed::ZERO)
    }

    /// Sets the CPU speed consumed by `app` on `node`. Setting zero clears
    /// the cell.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is negative.
    pub fn set(&mut self, app: AppId, node: NodeId, speed: CpuSpeed) {
        assert!(speed.as_mhz() >= 0.0, "cpu allocation must be non-negative");
        if speed.is_zero() {
            self.cells.remove(&(app, node));
        } else {
            self.cells.insert((app, node), speed);
        }
    }

    /// Adds to the CPU speed consumed by `app` on `node`.
    pub fn add(&mut self, app: AppId, node: NodeId, speed: CpuSpeed) {
        let current = self.get(app, node);
        self.set(app, node, current + speed);
    }

    /// Removes every allocation of `app`.
    pub fn evict(&mut self, app: AppId) {
        let keys: Vec<_> = self
            .cells
            .range((app, NodeId::new(0))..=(app, NodeId::new(u32::MAX)))
            .map(|(&k, _)| k)
            .collect();
        for k in keys {
            self.cells.remove(&k);
        }
    }

    /// Total CPU allocated to `app` across all nodes (the paper's
    /// `ω_m = Σ_n L_{m,n}`).
    pub fn app_total(&self, app: AppId) -> CpuSpeed {
        self.cells
            .range((app, NodeId::new(0))..=(app, NodeId::new(u32::MAX)))
            .map(|(_, &s)| s)
            .sum()
    }

    /// Total CPU consumed on `node` across all applications.
    ///
    /// This scans all cells; callers on hot paths should maintain their own
    /// per-node totals.
    pub fn node_total(&self, node: NodeId) -> CpuSpeed {
        self.cells
            .iter()
            .filter(|(&(_, n), _)| n == node)
            .map(|(_, &s)| s)
            .sum()
    }

    /// Per-node allocations of `app`.
    pub fn allocations_of(&self, app: AppId) -> impl Iterator<Item = (NodeId, CpuSpeed)> + '_ {
        self.cells
            .range((app, NodeId::new(0))..=(app, NodeId::new(u32::MAX)))
            .map(|(&(_, node), &s)| (node, s))
    }

    /// Iterates over all non-zero cells.
    pub fn iter(&self) -> impl Iterator<Item = (AppId, NodeId, CpuSpeed)> + '_ {
        self.cells.iter().map(|(&(app, node), &s)| (app, node, s))
    }

    /// Total CPU allocated across the whole cluster.
    pub fn total(&self) -> CpuSpeed {
        self.cells.values().copied().sum()
    }

    /// Number of non-zero cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no CPU is allocated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Validates the load distribution against a placement and the cluster:
    /// load only where instances exist, per-cell speed within the
    /// instances' aggregate speed bounds, and node totals within capacity.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint in deterministic order.
    pub fn validate(
        &self,
        placement: &Placement,
        cluster: &Cluster,
        apps: &AppSet,
    ) -> Result<(), ModelError> {
        for (app, node, speed) in self.iter() {
            let count = placement.count(app, node);
            if count == 0 {
                return Err(ModelError::LoadWithoutInstance { app, node });
            }
            let spec = apps.get(app)?;
            let lo = spec.min_instance_speed() * f64::from(count);
            let hi = spec.max_instance_speed() * f64::from(count);
            if speed.as_mhz() < lo.as_mhz() - CPU_TOLERANCE_MHZ
                || speed.as_mhz() > hi.as_mhz() + CPU_TOLERANCE_MHZ
            {
                return Err(ModelError::SpeedOutOfBounds { app, node });
            }
        }
        for node in cluster.node_ids() {
            let total = self.node_total(node);
            if total.as_mhz() > cluster.node(node)?.cpu_capacity().as_mhz() + CPU_TOLERANCE_MHZ {
                return Err(ModelError::CpuExceeded { node });
            }
        }
        Ok(())
    }
}

impl FromIterator<(AppId, NodeId, CpuSpeed)> for LoadDistribution {
    fn from_iter<I: IntoIterator<Item = (AppId, NodeId, CpuSpeed)>>(iter: I) -> Self {
        let mut l = LoadDistribution::new();
        for (app, node, speed) in iter {
            if !speed.is_zero() {
                l.set(app, node, speed);
            }
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::ApplicationSpec;
    use crate::node::NodeSpec;
    use crate::units::Memory;

    fn app(i: u32) -> AppId {
        AppId::new(i)
    }
    fn node(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn small_world() -> (Cluster, AppSet, Placement) {
        let mut cluster = Cluster::new();
        cluster.add_node(
            NodeSpec::try_new(CpuSpeed::from_mhz(1_000.0), Memory::from_mb(2_000.0))
                .expect("valid node capacities"),
        );
        let mut apps = AppSet::new();
        apps.add(ApplicationSpec::batch(
            Memory::from_mb(750.0),
            CpuSpeed::from_mhz(500.0),
        ));
        let mut p = Placement::new();
        p.place(app(0), node(0));
        (cluster, apps, p)
    }

    #[test]
    fn set_get_totals() {
        let mut l = LoadDistribution::new();
        l.set(app(0), node(0), CpuSpeed::from_mhz(300.0));
        l.set(app(0), node(1), CpuSpeed::from_mhz(200.0));
        l.set(app(1), node(0), CpuSpeed::from_mhz(100.0));
        assert_eq!(l.app_total(app(0)), CpuSpeed::from_mhz(500.0));
        assert_eq!(l.node_total(node(0)), CpuSpeed::from_mhz(400.0));
        assert_eq!(l.total(), CpuSpeed::from_mhz(600.0));
        assert_eq!(l.allocations_of(app(0)).count(), 2);
    }

    #[test]
    fn set_zero_clears_cell() {
        let mut l = LoadDistribution::new();
        l.set(app(0), node(0), CpuSpeed::from_mhz(100.0));
        l.set(app(0), node(0), CpuSpeed::ZERO);
        assert!(l.is_empty());
    }

    #[test]
    fn add_accumulates() {
        let mut l = LoadDistribution::new();
        l.add(app(0), node(0), CpuSpeed::from_mhz(100.0));
        l.add(app(0), node(0), CpuSpeed::from_mhz(50.0));
        assert_eq!(l.get(app(0), node(0)), CpuSpeed::from_mhz(150.0));
    }

    #[test]
    fn evict_clears_app() {
        let mut l = LoadDistribution::new();
        l.set(app(0), node(0), CpuSpeed::from_mhz(100.0));
        l.set(app(0), node(1), CpuSpeed::from_mhz(100.0));
        l.set(app(1), node(0), CpuSpeed::from_mhz(100.0));
        l.evict(app(0));
        assert_eq!(l.app_total(app(0)), CpuSpeed::ZERO);
        assert_eq!(l.app_total(app(1)), CpuSpeed::from_mhz(100.0));
    }

    #[test]
    fn validate_accepts_consistent_load() {
        let (cluster, apps, p) = small_world();
        let mut l = LoadDistribution::new();
        l.set(app(0), node(0), CpuSpeed::from_mhz(400.0));
        l.validate(&p, &cluster, &apps).unwrap();
    }

    #[test]
    fn validate_rejects_load_without_instance() {
        let (cluster, apps, _) = small_world();
        let empty = Placement::new();
        let mut l = LoadDistribution::new();
        l.set(app(0), node(0), CpuSpeed::from_mhz(100.0));
        assert_eq!(
            l.validate(&empty, &cluster, &apps),
            Err(ModelError::LoadWithoutInstance {
                app: app(0),
                node: node(0)
            })
        );
    }

    #[test]
    fn validate_rejects_over_speed() {
        let (cluster, apps, p) = small_world();
        let mut l = LoadDistribution::new();
        l.set(app(0), node(0), CpuSpeed::from_mhz(501.0)); // max is 500
        assert_eq!(
            l.validate(&p, &cluster, &apps),
            Err(ModelError::SpeedOutOfBounds {
                app: app(0),
                node: node(0)
            })
        );
    }

    #[test]
    fn validate_rejects_under_min_speed() {
        let mut cluster = Cluster::new();
        cluster.add_node(
            NodeSpec::try_new(CpuSpeed::from_mhz(1_000.0), Memory::from_mb(2_000.0))
                .expect("valid node capacities"),
        );
        let mut apps = AppSet::new();
        apps.add(
            ApplicationSpec::batch(Memory::from_mb(10.0), CpuSpeed::from_mhz(500.0))
                .with_min_instance_speed(CpuSpeed::from_mhz(100.0)),
        );
        let mut p = Placement::new();
        p.place(app(0), node(0));
        let mut l = LoadDistribution::new();
        l.set(app(0), node(0), CpuSpeed::from_mhz(50.0));
        assert_eq!(
            l.validate(&p, &cluster, &apps),
            Err(ModelError::SpeedOutOfBounds {
                app: app(0),
                node: node(0)
            })
        );
    }

    #[test]
    fn validate_rejects_node_overload() {
        let (cluster, mut apps, mut p) = small_world();
        let big = apps.add(ApplicationSpec::batch(
            Memory::from_mb(10.0),
            CpuSpeed::from_mhz(900.0),
        ));
        p.place(big, node(0));
        let mut l = LoadDistribution::new();
        l.set(app(0), node(0), CpuSpeed::from_mhz(500.0));
        l.set(big, node(0), CpuSpeed::from_mhz(600.0)); // 1100 > 1000
        assert_eq!(
            l.validate(&p, &cluster, &apps),
            Err(ModelError::CpuExceeded { node: node(0) })
        );
    }

    #[test]
    #[should_panic(expected = "cpu allocation must be non-negative")]
    fn negative_allocation_rejected() {
        let mut l = LoadDistribution::new();
        l.set(app(0), node(0), CpuSpeed::from_mhz(-1.0));
    }
}
