//! N-dimensional rigid resource vectors.
//!
//! The paper's placement model allocates one *fluid* resource — CPU,
//! water-filled by the optimizer — under one *rigid* capacity
//! constraint, memory. This module generalizes the rigid side to an
//! extensible ordered set of dimensions (memory plus scenario-declared
//! dimensions such as disk, network bandwidth, or license slots) while
//! leaving the fluid CPU dimension exactly as the paper defines it.
//!
//! Two types carry the generalization:
//!
//! - [`ResourceDims`]: the ordered registry of rigid dimension names.
//!   Dimension `0` is always memory ([`ResourceDims::MEMORY`]); further
//!   dimensions are declared per deployment (typically by the scenario
//!   file) and identified by name.
//! - [`Resources`]: a quantity vector aligned with a [`ResourceDims`].
//!   Vectors shorter than the registry are *zero-extended*: an
//!   application that never declared a `license_slots` demand simply
//!   demands `0.0` of it, and a node that never declared `disk_mb`
//!   supplies none.
//!
//! # Equivalence contract
//!
//! For the memory-only case (`ResourceDims::memory_only()`), every
//! capacity check performed through [`Resources`] executes the same
//! floating-point operations in the same order as the pre-vector code
//! that compared [`Memory`] values directly, so placements and scores
//! are bit-for-bit identical. The `resource_differential` suite in
//! `crates/core` enforces this with `f64::to_bits` comparisons.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::Memory;

/// Error constructing a [`ResourceDims`] registry.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ResourceError {
    /// A dimension name appears twice (or shadows the implicit memory
    /// dimension).
    DuplicateDimension(String),
    /// A dimension name is empty.
    EmptyDimensionName,
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::DuplicateDimension(name) => {
                write!(f, "duplicate resource dimension {name:?}")
            }
            ResourceError::EmptyDimensionName => f.write_str("resource dimension name is empty"),
        }
    }
}

impl std::error::Error for ResourceError {}

/// The ordered registry of rigid resource dimensions.
///
/// Dimension `0` is always memory (named `"memory_mb"`), matching the
/// paper's single rigid constraint; extra dimensions keep the order they
/// were declared in. Registries are equal iff their name lists are
/// equal, so two components agree on what a [`Resources`] vector means
/// exactly when their registries compare equal.
///
/// ```
/// use dynaplace_model::resources::ResourceDims;
///
/// let dims = ResourceDims::with_extra(["disk_mb", "license_slots"]).unwrap();
/// assert_eq!(dims.len(), 3);
/// assert_eq!(dims.name(ResourceDims::MEMORY), "memory_mb");
/// assert_eq!(dims.index_of("license_slots"), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceDims {
    names: Vec<String>,
}

impl ResourceDims {
    /// Index of the implicit memory dimension.
    pub const MEMORY: usize = 0;

    /// Name of the implicit memory dimension.
    pub const MEMORY_NAME: &'static str = "memory_mb";

    /// The paper's registry: memory is the only rigid dimension.
    pub fn memory_only() -> Self {
        Self {
            names: vec![Self::MEMORY_NAME.to_string()],
        }
    }

    /// A registry of memory plus the given extra dimensions, in order.
    ///
    /// # Errors
    ///
    /// Returns [`ResourceError::DuplicateDimension`] if a name repeats
    /// (or restates `"memory_mb"`), [`ResourceError::EmptyDimensionName`]
    /// if a name is empty.
    pub fn with_extra<I, S>(extra: I) -> Result<Self, ResourceError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut names = vec![Self::MEMORY_NAME.to_string()];
        for name in extra {
            let name = name.into();
            if name.is_empty() {
                return Err(ResourceError::EmptyDimensionName);
            }
            if names.contains(&name) {
                return Err(ResourceError::DuplicateDimension(name));
            }
            names.push(name);
        }
        Ok(Self { names })
    }

    /// Number of rigid dimensions (always ≥ 1).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the registry is empty. Never true — memory is implicit —
    /// but provided for the conventional `len`/`is_empty` pair.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Whether memory is the only dimension (the paper's model).
    pub fn is_memory_only(&self) -> bool {
        self.names.len() == 1
    }

    /// The name of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn name(&self, dim: usize) -> &str {
        &self.names[dim]
    }

    /// The index of the dimension named `name`, if declared.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Iterates over `(dim, name)` pairs in dimension order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (i, n.as_str()))
    }

    /// The extra dimension names beyond memory, in declaration order.
    pub fn extra(&self) -> &[String] {
        &self.names[1..]
    }
}

impl Default for ResourceDims {
    fn default() -> Self {
        Self::memory_only()
    }
}

impl fmt::Display for ResourceDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.names.join(", "))
    }
}

/// A rigid resource quantity vector.
///
/// Index `0` is memory in MB; further indices follow the deployment's
/// [`ResourceDims`]. Reads beyond the stored length yield `0.0`
/// (zero-extension), so memory-only specs participate in
/// multi-dimensional checks without conversion.
///
/// ```
/// use dynaplace_model::resources::Resources;
/// use dynaplace_model::units::Memory;
///
/// let demand = Resources::new(vec![512.0, 100.0]); // memory + one extra
/// assert_eq!(demand.memory(), Memory::from_mb(512.0));
/// assert_eq!(demand.get(1), 100.0);
/// assert_eq!(demand.get(7), 0.0); // zero-extended
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resources {
    values: Vec<f64>,
}

impl Resources {
    /// A vector with every stored dimension zero (memory only).
    pub fn zero() -> Self {
        Self { values: vec![0.0] }
    }

    /// A memory-only vector — the paper's rigid demand.
    pub fn memory_only(memory: Memory) -> Self {
        Self {
            values: vec![memory.as_mb()],
        }
    }

    /// A vector from explicit per-dimension values (index 0 = memory MB).
    ///
    /// An empty vector is normalized to a single zero memory dimension.
    pub fn new(mut values: Vec<f64>) -> Self {
        if values.is_empty() {
            values.push(0.0);
        }
        Self { values }
    }

    /// The memory dimension as a typed quantity.
    pub fn memory(&self) -> Memory {
        Memory::from_mb(self.values[ResourceDims::MEMORY])
    }

    /// The quantity in dimension `dim`; `0.0` beyond the stored length.
    #[inline]
    pub fn get(&self, dim: usize) -> f64 {
        self.values.get(dim).copied().unwrap_or(0.0)
    }

    /// Number of stored dimensions (always ≥ 1).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no dimensions are stored. Never true after construction.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The stored per-dimension values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Whether every stored quantity is non-negative; on failure, the
    /// first offending dimension.
    pub fn first_negative(&self) -> Option<(usize, f64)> {
        self.values
            .iter()
            .enumerate()
            .find(|(_, v)| **v < 0.0)
            .map(|(d, v)| (d, *v))
    }

    /// Whether every stored quantity is finite.
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }

    /// Adds `count` instances' worth of `demand` to this accumulator,
    /// extending the stored length as needed. Dimension 0 performs
    /// exactly the `used += memory * count` accumulation of the
    /// memory-only model.
    pub fn add_scaled(&mut self, demand: &Resources, count: f64) {
        if demand.values.len() > self.values.len() {
            self.values.resize(demand.values.len(), 0.0);
        }
        for (d, v) in demand.values.iter().enumerate() {
            self.values[d] += v * count;
        }
    }

    /// Checks `self + demand` against `capacity` dimension by dimension
    /// (all three zero-extended), returning the first dimension that
    /// would overflow. Dimension 0 performs exactly the
    /// `used + demand > capacity` memory comparison of the memory-only
    /// model.
    pub fn first_overflow(&self, demand: &Resources, capacity: &Resources) -> Option<usize> {
        let dims = self
            .values
            .len()
            .max(demand.values.len())
            .max(capacity.values.len());
        (0..dims).find(|&d| self.get(d) + demand.get(d) > capacity.get(d))
    }

    /// Checks `self` against `capacity` dimension by dimension (both
    /// zero-extended), returning the first exceeded dimension.
    pub fn first_exceeding(&self, capacity: &Resources) -> Option<usize> {
        let dims = self.values.len().max(capacity.values.len());
        (0..dims).find(|&d| self.get(d) > capacity.get(d))
    }

    /// The element-wise remaining capacity `self − used`, clamped at
    /// zero, with `self`'s stored length.
    #[must_use]
    pub fn saturating_sub(&self, used: &Resources) -> Resources {
        Resources {
            values: self
                .values
                .iter()
                .enumerate()
                .map(|(d, v)| (v - used.get(d)).max(0.0))
                .collect(),
        }
    }

    /// The element-wise maximum of `self` and `other`, with the longer
    /// stored length.
    #[must_use]
    pub fn max(&self, other: &Resources) -> Resources {
        let dims = self.values.len().max(other.values.len());
        Resources {
            values: (0..dims).map(|d| self.get(d).max(other.get(d))).collect(),
        }
    }

    /// Iterates over stored `(dim, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.values.iter().copied().enumerate()
    }
}

impl Default for Resources {
    fn default() -> Self {
        Self::zero()
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (d, v) in self.values.iter().enumerate() {
            if d > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_is_dimension_zero() {
        let dims = ResourceDims::memory_only();
        assert_eq!(dims.len(), 1);
        assert!(dims.is_memory_only());
        assert_eq!(dims.name(ResourceDims::MEMORY), "memory_mb");
        assert_eq!(dims.index_of("memory_mb"), Some(0));
        assert!(dims.extra().is_empty());
    }

    #[test]
    fn extra_dimensions_keep_declaration_order() {
        let dims = ResourceDims::with_extra(["disk_mb", "net_mbps", "license_slots"]).unwrap();
        assert_eq!(dims.len(), 4);
        assert!(!dims.is_memory_only());
        assert_eq!(dims.name(2), "net_mbps");
        assert_eq!(dims.index_of("license_slots"), Some(3));
        assert_eq!(dims.extra(), &["disk_mb", "net_mbps", "license_slots"]);
    }

    #[test]
    fn duplicate_and_empty_names_rejected() {
        assert_eq!(
            ResourceDims::with_extra(["disk_mb", "disk_mb"]),
            Err(ResourceError::DuplicateDimension("disk_mb".to_string()))
        );
        assert_eq!(
            ResourceDims::with_extra(["memory_mb"]),
            Err(ResourceError::DuplicateDimension("memory_mb".to_string()))
        );
        assert_eq!(
            ResourceDims::with_extra([""]),
            Err(ResourceError::EmptyDimensionName)
        );
    }

    #[test]
    fn zero_extension_reads_zero() {
        let r = Resources::memory_only(Memory::from_mb(100.0));
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(0), 100.0);
        assert_eq!(r.get(3), 0.0);
    }

    #[test]
    fn add_scaled_matches_memory_arithmetic() {
        // The vector accumulation must produce the exact bits of the
        // scalar `used += mem * count` sequence it replaces.
        let demands = [750.1, 333.33, 0.25];
        let counts = [2.0, 1.0, 3.0];
        let mut scalar = 0.0f64;
        let mut vector = Resources::new(vec![0.0]);
        for (m, c) in demands.iter().zip(counts.iter()) {
            scalar += m * c;
            vector.add_scaled(&Resources::new(vec![*m]), *c);
        }
        assert_eq!(scalar.to_bits(), vector.get(0).to_bits());
    }

    #[test]
    fn first_overflow_finds_binding_dimension() {
        let used = Resources::new(vec![500.0, 10.0]);
        let demand = Resources::new(vec![100.0, 0.0, 2.0]);
        let cap = Resources::new(vec![1_000.0, 10.0, 1.0]);
        // Memory fits (600 ≤ 1000), dim 1 fits exactly (10 ≤ 10), dim 2
        // overflows (2 > 1).
        assert_eq!(used.first_overflow(&demand, &cap), Some(2));
        let slack_cap = Resources::new(vec![1_000.0, 10.0, 2.0]);
        assert_eq!(used.first_overflow(&demand, &slack_cap), None);
    }

    #[test]
    fn saturating_sub_and_max() {
        let cap = Resources::new(vec![1_000.0, 50.0]);
        let used = Resources::new(vec![400.0, 80.0, 3.0]);
        let free = cap.saturating_sub(&used);
        assert_eq!(free.values(), &[600.0, 0.0]);
        let m = used.max(&cap);
        assert_eq!(m.values(), &[1_000.0, 80.0, 3.0]);
    }

    #[test]
    fn negativity_and_finiteness_checks() {
        assert_eq!(
            Resources::new(vec![1.0, -2.0]).first_negative(),
            Some((1, -2.0))
        );
        assert_eq!(Resources::new(vec![1.0, 2.0]).first_negative(), None);
        assert!(!Resources::new(vec![f64::NAN]).all_finite());
        assert!(Resources::new(vec![0.0, 5.0]).all_finite());
    }

    #[test]
    fn empty_vector_normalizes_to_zero_memory() {
        let r = Resources::new(Vec::new());
        assert_eq!(r.len(), 1);
        assert_eq!(r.memory(), Memory::ZERO);
    }
}
