//! Physical machine descriptors.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::{CpuSpeed, Memory};

/// Static description of a physical machine: its CPU capacity (the sum of
/// all its cores' speeds, in MHz) and its memory capacity.
///
/// The paper's Experiment One uses nodes with four 3.9 GHz processors and
/// 16 GB of RAM:
///
/// ```
/// use dynaplace_model::node::NodeSpec;
/// use dynaplace_model::units::{CpuSpeed, Memory};
///
/// let node = NodeSpec::new(CpuSpeed::from_mhz(4.0 * 3_900.0), Memory::from_mb(16_384.0));
/// assert_eq!(node.cpu_capacity(), CpuSpeed::from_mhz(15_600.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    name: Option<String>,
    cpu: CpuSpeed,
    memory: Memory,
}

impl NodeSpec {
    /// Creates a node with the given total CPU speed and memory capacity.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is negative.
    pub fn new(cpu: CpuSpeed, memory: Memory) -> Self {
        assert!(cpu.as_mhz() >= 0.0, "cpu capacity must be non-negative");
        assert!(
            memory.as_mb() >= 0.0,
            "memory capacity must be non-negative"
        );
        Self {
            name: None,
            cpu,
            memory,
        }
    }

    /// Attaches a human-readable name (used only in diagnostics).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Total CPU speed of the node.
    #[inline]
    pub fn cpu_capacity(&self) -> CpuSpeed {
        self.cpu
    }

    /// Total memory of the node.
    #[inline]
    pub fn memory_capacity(&self) -> Memory {
        self.memory
    }

    /// The diagnostic name, if one was set.
    #[inline]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }
}

impl fmt::Display for NodeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(n) => write!(f, "{n} ({}, {})", self.cpu, self.memory),
            None => write!(f, "node ({}, {})", self.cpu, self.memory),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs_and_reads_back() {
        let n = NodeSpec::new(CpuSpeed::from_mhz(1_000.0), Memory::from_mb(2_000.0))
            .with_name("example");
        assert_eq!(n.cpu_capacity(), CpuSpeed::from_mhz(1_000.0));
        assert_eq!(n.memory_capacity(), Memory::from_mb(2_000.0));
        assert_eq!(n.name(), Some("example"));
        assert!(n.to_string().contains("example"));
    }

    #[test]
    #[should_panic(expected = "cpu capacity must be non-negative")]
    fn rejects_negative_cpu() {
        let _ = NodeSpec::new(CpuSpeed::from_mhz(-1.0), Memory::ZERO);
    }
}
