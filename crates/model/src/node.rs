//! Physical machine descriptors.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::resources::Resources;
use crate::units::{CpuSpeed, Memory};

/// A capacity passed to a [`NodeSpec`] constructor was invalid.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NodeSpecError {
    /// The CPU capacity is negative (or NaN).
    InvalidCpu {
        /// The offending capacity in MHz.
        mhz: f64,
    },
    /// A rigid capacity (memory or an extra dimension) is negative
    /// (or NaN).
    InvalidRigid {
        /// The offending dimension index (0 = memory).
        dim: usize,
        /// The offending capacity.
        value: f64,
    },
}

impl fmt::Display for NodeSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeSpecError::InvalidCpu { mhz } => {
                write!(f, "cpu capacity must be non-negative, got {mhz} MHz")
            }
            NodeSpecError::InvalidRigid { dim, value } => write!(
                f,
                "rigid capacity in dimension {dim} must be non-negative, got {value}"
            ),
        }
    }
}

impl std::error::Error for NodeSpecError {}

/// Static description of a physical machine: its CPU capacity (the sum of
/// all its cores' speeds, in MHz — the fluid dimension the optimizer
/// water-fills) and its rigid capacities (memory, plus any extra
/// dimensions the deployment's
/// [`ResourceDims`](crate::resources::ResourceDims) declares).
///
/// The paper's Experiment One uses nodes with four 3.9 GHz processors and
/// 16 GB of RAM:
///
/// ```
/// use dynaplace_model::node::NodeSpec;
/// use dynaplace_model::units::{CpuSpeed, Memory};
///
/// let node = NodeSpec::try_new(CpuSpeed::from_mhz(4.0 * 3_900.0), Memory::from_mb(16_384.0))
///     .unwrap();
/// assert_eq!(node.cpu_capacity(), CpuSpeed::from_mhz(15_600.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    name: Option<String>,
    cpu: CpuSpeed,
    rigid: Resources,
}

impl NodeSpec {
    /// Creates a node with the given total CPU speed and memory capacity.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is negative. Prefer
    /// [`NodeSpec::try_new`], which reports the defect as a typed error
    /// instead.
    #[deprecated(since = "0.6.0", note = "use `try_new` instead")]
    pub fn new(cpu: CpuSpeed, memory: Memory) -> Self {
        assert!(cpu.as_mhz() >= 0.0, "cpu capacity must be non-negative");
        assert!(
            memory.as_mb() >= 0.0,
            "memory capacity must be non-negative"
        );
        Self {
            name: None,
            cpu,
            rigid: Resources::memory_only(memory),
        }
    }

    /// Creates a node with the given total CPU speed and memory capacity,
    /// rejecting negative capacities with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`NodeSpecError::InvalidCpu`] or
    /// [`NodeSpecError::InvalidRigid`] when a capacity is negative or NaN.
    pub fn try_new(cpu: CpuSpeed, memory: Memory) -> Result<Self, NodeSpecError> {
        Self::try_with_resources(cpu, Resources::memory_only(memory))
    }

    /// Creates a node with the given CPU capacity and full rigid
    /// capacity vector (dimension 0 = memory MB).
    ///
    /// # Errors
    ///
    /// Returns [`NodeSpecError::InvalidCpu`] or
    /// [`NodeSpecError::InvalidRigid`] when a capacity is negative or NaN.
    pub fn try_with_resources(cpu: CpuSpeed, rigid: Resources) -> Result<Self, NodeSpecError> {
        if cpu.as_mhz() < 0.0 || cpu.as_mhz().is_nan() {
            return Err(NodeSpecError::InvalidCpu { mhz: cpu.as_mhz() });
        }
        if let Some((dim, value)) = rigid.first_negative() {
            return Err(NodeSpecError::InvalidRigid { dim, value });
        }
        if let Some(dim) = rigid.values().iter().position(|v| v.is_nan()) {
            return Err(NodeSpecError::InvalidRigid {
                dim,
                value: f64::NAN,
            });
        }
        Ok(Self {
            name: None,
            cpu,
            rigid,
        })
    }

    /// Attaches a human-readable name (used only in diagnostics).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Total CPU speed of the node.
    #[inline]
    pub fn cpu_capacity(&self) -> CpuSpeed {
        self.cpu
    }

    /// Total memory of the node (rigid dimension 0).
    #[inline]
    pub fn memory_capacity(&self) -> Memory {
        self.rigid.memory()
    }

    /// The full rigid capacity vector.
    #[inline]
    pub fn rigid_capacity(&self) -> &Resources {
        &self.rigid
    }

    /// The diagnostic name, if one was set.
    #[inline]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }
}

impl fmt::Display for NodeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(n) => write!(f, "{n} ({}, {})", self.cpu, self.rigid.memory()),
            None => write!(f, "node ({}, {})", self.cpu, self.rigid.memory()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs_and_reads_back() {
        let n = NodeSpec::try_new(CpuSpeed::from_mhz(1_000.0), Memory::from_mb(2_000.0))
            .unwrap()
            .with_name("example");
        assert_eq!(n.cpu_capacity(), CpuSpeed::from_mhz(1_000.0));
        assert_eq!(n.memory_capacity(), Memory::from_mb(2_000.0));
        assert_eq!(n.name(), Some("example"));
        assert!(n.to_string().contains("example"));
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "cpu capacity must be non-negative")]
    fn deprecated_new_still_rejects_negative_cpu() {
        let _ = NodeSpec::new(CpuSpeed::from_mhz(-1.0), Memory::ZERO);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        assert_eq!(
            NodeSpec::try_new(CpuSpeed::from_mhz(-1.0), Memory::ZERO),
            Err(NodeSpecError::InvalidCpu { mhz: -1.0 })
        );
        assert_eq!(
            NodeSpec::try_new(CpuSpeed::ZERO, Memory::from_mb(-5.0)),
            Err(NodeSpecError::InvalidRigid {
                dim: 0,
                value: -5.0
            })
        );
        assert!(NodeSpec::try_new(CpuSpeed::ZERO, Memory::ZERO).is_ok());
    }

    #[test]
    fn multi_dimensional_capacities_read_back() {
        let n = NodeSpec::try_with_resources(
            CpuSpeed::from_mhz(1_000.0),
            Resources::new(vec![2_000.0, 500.0, 2.0]),
        )
        .unwrap();
        assert_eq!(n.memory_capacity(), Memory::from_mb(2_000.0));
        assert_eq!(n.rigid_capacity().get(1), 500.0);
        assert_eq!(n.rigid_capacity().get(2), 2.0);
        assert_eq!(n.rigid_capacity().get(9), 0.0);
    }

    #[test]
    fn negative_extra_dimension_rejected() {
        let err = NodeSpec::try_with_resources(CpuSpeed::ZERO, Resources::new(vec![100.0, -1.0]))
            .unwrap_err();
        assert_eq!(
            err,
            NodeSpecError::InvalidRigid {
                dim: 1,
                value: -1.0
            }
        );
    }

    #[test]
    fn nan_rigid_capacity_rejected() {
        // (A NaN CpuSpeed cannot even be constructed — `from_mhz`
        // asserts finiteness — so only the raw rigid vector needs the
        // NaN guard here.)
        assert!(matches!(
            NodeSpec::try_with_resources(CpuSpeed::ZERO, Resources::new(vec![0.0, f64::NAN])),
            Err(NodeSpecError::InvalidRigid { dim: 1, .. })
        ));
    }
}
