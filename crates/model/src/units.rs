//! Typed physical units used throughout the workspace.
//!
//! The paper measures CPU power in MHz, work in megacycles, memory in
//! megabytes, and time in seconds. Because 1 MHz is one megacycle per
//! second, the units compose dimensionally:
//!
//! ```
//! use dynaplace_model::units::{CpuSpeed, SimDuration, Work};
//!
//! let work = Work::from_mcycles(4_000.0);
//! let speed = CpuSpeed::from_mhz(1_000.0);
//! assert_eq!(work / speed, SimDuration::from_secs(4.0));
//! assert_eq!(speed * SimDuration::from_secs(4.0), work);
//! ```
//!
//! All units are thin `f64` newtypes ([C-NEWTYPE]): free to copy, ordered,
//! and impossible to confuse with one another at compile time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Declares the shared boilerplate for an `f64` newtype unit.
macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $ctor:ident, $getter:ident, $suffix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl PartialOrd for $name {
            /// Mirrors `f64`'s IEEE partial order (`None` for NaN).
            /// Sorts must not unwrap this; order by the raw magnitude
            /// with [`f64::total_cmp`] instead.
            #[inline]
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                #[allow(clippy::disallowed_methods)] // the one sanctioned call: defines the wrapper's order
                self.0.partial_cmp(&other.0)
            }
        }

        impl $name {
            /// The zero value of this unit.
            pub const ZERO: Self = Self(0.0);

            /// Creates a value from the raw magnitude.
            ///
            /// # Panics
            ///
            /// Panics (in debug builds) if `value` is NaN; all unit
            /// arithmetic in this crate assumes non-NaN magnitudes.
            #[inline]
            pub fn $ctor(value: f64) -> Self {
                debug_assert!(!value.is_nan(), concat!(stringify!($name), " must not be NaN"));
                Self(value)
            }

            /// Returns the raw magnitude.
            #[inline]
            pub fn $getter(self) -> f64 {
                self.0
            }

            /// Returns whether the magnitude is exactly zero.
            #[inline]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// Returns the smaller of two values.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two values.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the value into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp bounds inverted");
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Saturating subtraction: never goes below zero.
            #[inline]
            pub fn saturating_sub(self, other: Self) -> Self {
                Self((self.0 - other.0).max(0.0))
            }

            /// Returns the ratio of `self` to `other` as a bare number.
            ///
            /// Returns `f64::INFINITY` when dividing a positive value by
            /// zero and `0.0` for `0 / 0` (a convention that suits the
            /// water-filling code, where zero demand over zero capacity
            /// means "no pressure").
            #[inline]
            pub fn ratio(self, other: Self) -> f64 {
                if other.0 == 0.0 {
                    if self.0 == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    self.0 / other.0
                }
            }

            /// True when the two magnitudes differ by at most `tol`.
            #[inline]
            pub fn approx_eq(self, other: Self, tol: f64) -> bool {
                (self.0 - other.0).abs() <= tol
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3}{}", self.0, $suffix)
            }
        }
    };
}

unit! {
    /// CPU processing speed in MHz (megacycles per second).
    ///
    /// Also used for CPU *capacity* (a node's total speed) and CPU
    /// *allocations* (the share of speed granted to an application).
    CpuSpeed, from_mhz, as_mhz, " MHz"
}

unit! {
    /// Memory size in megabytes.
    Memory, from_mb, as_mb, " MB"
}

unit! {
    /// An amount of computational work, in megacycles.
    Work, from_mcycles, as_mcycles, " Mcycles"
}

unit! {
    /// A span of simulated time, in seconds.
    SimDuration, from_secs, as_secs, " s"
}

impl SimDuration {
    /// One simulated second.
    pub const SECOND: Self = Self(1.0);

    /// Builds a duration from minutes.
    #[inline]
    pub fn from_mins(mins: f64) -> Self {
        Self::from_secs(mins * 60.0)
    }

    /// True when the duration is strictly positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 > 0.0
    }
}

/// An instant on the simulated timeline, in seconds since the start of the
/// simulation.
///
/// `SimTime` is distinct from [`SimDuration`] so that instants and spans
/// cannot be mixed up: subtracting two instants yields a duration, and a
/// duration can be added to an instant, but two instants cannot be added.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimTime(f64);

impl PartialOrd for SimTime {
    /// Mirrors `f64`'s IEEE partial order (`None` for NaN). Sorts must
    /// not unwrap this; use [`SimTime::total_cmp`] instead.
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        #[allow(clippy::disallowed_methods)] // the one sanctioned call: defines the wrapper's order
        self.0.partial_cmp(&other.0)
    }
}

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: Self = Self(0.0);

    /// Creates an instant at `secs` seconds since the simulation origin.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `secs` is NaN.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(!secs.is_nan(), "SimTime must not be NaN");
        Self(secs)
    }

    /// Seconds since the simulation origin.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the earlier of two instants.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Returns the later of two instants.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Duration from `earlier` to `self`, saturating at zero if `earlier`
    /// is actually later.
    #[inline]
    pub fn saturating_since(self, earlier: Self) -> SimDuration {
        SimDuration::from_secs((self.0 - earlier.0).max(0.0))
    }

    /// A total order over instants, delegating to [`f64::total_cmp`]
    /// (NaN sorts after every real instant). Sorts must use this rather
    /// than `partial_cmp(..).unwrap()` so that a NaN smuggled past the
    /// debug-only constructor check cannot panic mid-run in release
    /// builds.
    #[inline]
    pub fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: Self) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = Self;
    #[inline]
    fn add(self, rhs: SimDuration) -> Self {
        Self(self.0 + rhs.as_secs())
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_secs();
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: SimDuration) -> Self {
        Self(self.0 - rhs.as_secs())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

// Dimensional cross-type arithmetic: MHz ≡ Mcycles/s.

impl Div<CpuSpeed> for Work {
    type Output = SimDuration;
    /// Time needed to perform `self` megacycles at the given speed.
    #[inline]
    fn div(self, speed: CpuSpeed) -> SimDuration {
        SimDuration::from_secs(self.as_mcycles() / speed.as_mhz())
    }
}

impl Div<SimDuration> for Work {
    type Output = CpuSpeed;
    /// Average speed needed to perform `self` megacycles in the given time.
    #[inline]
    fn div(self, time: SimDuration) -> CpuSpeed {
        CpuSpeed::from_mhz(self.as_mcycles() / time.as_secs())
    }
}

impl Mul<SimDuration> for CpuSpeed {
    type Output = Work;
    /// Work performed at `self` for the given duration.
    #[inline]
    fn mul(self, time: SimDuration) -> Work {
        Work::from_mcycles(self.as_mhz() * time.as_secs())
    }
}

impl Mul<CpuSpeed> for SimDuration {
    type Output = Work;
    #[inline]
    fn mul(self, speed: CpuSpeed) -> Work {
        speed * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_over_speed_is_duration() {
        let w = Work::from_mcycles(68_640_000.0);
        let s = CpuSpeed::from_mhz(3_900.0);
        assert!((w / s).as_secs() - 17_600.0 < 1e-9);
    }

    #[test]
    fn speed_times_duration_is_work() {
        let s = CpuSpeed::from_mhz(500.0);
        let d = SimDuration::from_secs(4.0);
        assert_eq!(s * d, Work::from_mcycles(2_000.0));
        assert_eq!(d * s, Work::from_mcycles(2_000.0));
    }

    #[test]
    fn work_over_duration_is_speed() {
        let w = Work::from_mcycles(2_500.0);
        let d = SimDuration::from_secs(5.0);
        assert_eq!(w / d, CpuSpeed::from_mhz(500.0));
    }

    #[test]
    fn simtime_arithmetic() {
        let t0 = SimTime::from_secs(10.0);
        let t1 = t0 + SimDuration::from_secs(5.0);
        assert_eq!(t1.as_secs(), 15.0);
        assert_eq!(t1 - t0, SimDuration::from_secs(5.0));
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
        assert_eq!(t1.saturating_since(t0), SimDuration::from_secs(5.0));
        assert_eq!((t1 - SimDuration::from_secs(5.0)).as_secs(), 10.0);
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        let a = CpuSpeed::from_mhz(100.0);
        let b = CpuSpeed::from_mhz(250.0);
        assert_eq!(a.saturating_sub(b), CpuSpeed::ZERO);
        assert_eq!(b.saturating_sub(a), CpuSpeed::from_mhz(150.0));
    }

    #[test]
    fn ratio_conventions() {
        assert_eq!(Memory::from_mb(8.0).ratio(Memory::from_mb(2.0)), 4.0);
        assert_eq!(Memory::ZERO.ratio(Memory::ZERO), 0.0);
        assert_eq!(Memory::from_mb(1.0).ratio(Memory::ZERO), f64::INFINITY);
    }

    #[test]
    fn clamp_and_minmax() {
        let v = CpuSpeed::from_mhz(700.0);
        let lo = CpuSpeed::from_mhz(100.0);
        let hi = CpuSpeed::from_mhz(500.0);
        assert_eq!(v.clamp(lo, hi), hi);
        assert_eq!(lo.clamp(CpuSpeed::ZERO, hi), lo);
        assert_eq!(v.min(hi), hi);
        assert_eq!(v.max(hi), v);
    }

    #[test]
    #[should_panic(expected = "clamp bounds inverted")]
    fn clamp_panics_on_inverted_bounds() {
        let _ = CpuSpeed::from_mhz(1.0).clamp(CpuSpeed::from_mhz(2.0), CpuSpeed::from_mhz(1.0));
    }

    #[test]
    fn sum_over_iterators() {
        let total: CpuSpeed = [1.0, 2.0, 3.5].iter().map(|&m| CpuSpeed::from_mhz(m)).sum();
        assert_eq!(total, CpuSpeed::from_mhz(6.5));
        let values = [Work::from_mcycles(1.0), Work::from_mcycles(2.0)];
        let total: Work = values.iter().sum();
        assert_eq!(total, Work::from_mcycles(3.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(CpuSpeed::from_mhz(1000.0).to_string(), "1000.000 MHz");
        assert_eq!(SimTime::from_secs(1.5).to_string(), "t=1.500s");
        assert_eq!(SimDuration::from_mins(2.0).to_string(), "120.000 s");
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", CpuSpeed::ZERO).is_empty());
        assert!(!format!("{:?}", SimTime::ZERO).is_empty());
    }
}
