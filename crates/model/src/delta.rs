//! Placement deltas: the control actions that transform one placement into
//! another.
//!
//! The simulator maps these abstract actions onto virtualization
//! mechanisms: starting a not-yet-booted VM costs a boot, stopping an
//! unfinished job is a suspend, re-starting a suspended job is a resume,
//! and a migration is a live migration (§5 cost model).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{AppId, NodeId};
use crate::placement::Placement;

/// One abstract control action produced by diffing two placements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum PlacementAction {
    /// Start a new instance of `app` on `node`.
    Start { app: AppId, node: NodeId },
    /// Stop an instance of `app` on `node`.
    Stop { app: AppId, node: NodeId },
    /// Move an instance of `app` from one node to another.
    Migrate {
        app: AppId,
        from: NodeId,
        to: NodeId,
    },
}

impl PlacementAction {
    /// The application the action concerns.
    pub fn app(&self) -> AppId {
        match *self {
            PlacementAction::Start { app, .. }
            | PlacementAction::Stop { app, .. }
            | PlacementAction::Migrate { app, .. } => app,
        }
    }
}

impl fmt::Display for PlacementAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PlacementAction::Start { app, node } => write!(f, "start {app} on {node}"),
            PlacementAction::Stop { app, node } => write!(f, "stop {app} on {node}"),
            PlacementAction::Migrate { app, from, to } => {
                write!(f, "migrate {app} from {from} to {to}")
            }
        }
    }
}

/// Computes the actions transforming `from` into `to`.
///
/// For each application, per-node count decreases are matched with count
/// increases (in deterministic node order) and reported as migrations; any
/// surplus becomes stops or starts. The result is minimal in the sense
/// that it never stops and starts on the same node, and it pairs as many
/// stop/start pairs into migrations as possible.
pub fn diff_placements(from: &Placement, to: &Placement) -> Vec<PlacementAction> {
    use std::collections::BTreeMap;

    // Collect per-app node deltas.
    let mut deltas: BTreeMap<AppId, BTreeMap<NodeId, i64>> = BTreeMap::new();
    for (app, node, count) in from.iter() {
        *deltas.entry(app).or_default().entry(node).or_insert(0) -= i64::from(count);
    }
    for (app, node, count) in to.iter() {
        *deltas.entry(app).or_default().entry(node).or_insert(0) += i64::from(count);
    }

    let mut actions = Vec::new();
    for (app, nodes) in deltas {
        let mut decreases: Vec<(NodeId, i64)> = Vec::new();
        let mut increases: Vec<(NodeId, i64)> = Vec::new();
        for (node, delta) in nodes {
            if delta < 0 {
                decreases.push((node, -delta));
            } else if delta > 0 {
                increases.push((node, delta));
            }
        }
        let mut di = 0;
        let mut ii = 0;
        while di < decreases.len() && ii < increases.len() {
            let (from_node, ref mut avail) = decreases[di];
            let (to_node, ref mut need) = increases[ii];
            let moved = (*avail).min(*need);
            for _ in 0..moved {
                actions.push(PlacementAction::Migrate {
                    app,
                    from: from_node,
                    to: to_node,
                });
            }
            *avail -= moved;
            *need -= moved;
            if decreases[di].1 == 0 {
                di += 1;
            }
            if increases[ii].1 == 0 {
                ii += 1;
            }
        }
        for &(node, count) in &decreases[di..] {
            for _ in 0..count {
                actions.push(PlacementAction::Stop { app, node });
            }
        }
        for &(node, count) in &increases[ii..] {
            for _ in 0..count {
                actions.push(PlacementAction::Start { app, node });
            }
        }
    }
    actions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(i: u32) -> AppId {
        AppId::new(i)
    }
    fn node(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn identical_placements_no_actions() {
        let p: Placement = [(app(0), node(0), 1)].into_iter().collect();
        assert!(p.diff(&p).is_empty());
    }

    #[test]
    fn pure_start_and_stop() {
        let empty = Placement::new();
        let p: Placement = [(app(0), node(0), 1)].into_iter().collect();
        assert_eq!(
            empty.diff(&p),
            vec![PlacementAction::Start {
                app: app(0),
                node: node(0)
            }]
        );
        assert_eq!(
            p.diff(&empty),
            vec![PlacementAction::Stop {
                app: app(0),
                node: node(0)
            }]
        );
    }

    #[test]
    fn move_becomes_migration() {
        let a: Placement = [(app(0), node(0), 1)].into_iter().collect();
        let b: Placement = [(app(0), node(1), 1)].into_iter().collect();
        assert_eq!(
            a.diff(&b),
            vec![PlacementAction::Migrate {
                app: app(0),
                from: node(0),
                to: node(1)
            }]
        );
    }

    #[test]
    fn multi_instance_partial_move() {
        // 3 instances on node0 -> 1 on node0, 2 on node1: two migrations.
        let a: Placement = [(app(0), node(0), 3)].into_iter().collect();
        let b: Placement = [(app(0), node(0), 1), (app(0), node(1), 2)]
            .into_iter()
            .collect();
        let actions = a.diff(&b);
        assert_eq!(actions.len(), 2);
        assert!(actions.iter().all(|act| matches!(
            act,
            PlacementAction::Migrate { from, to, .. } if *from == node(0) && *to == node(1)
        )));
    }

    #[test]
    fn scale_down_is_stops() {
        let a: Placement = [(app(0), node(0), 2), (app(0), node(1), 1)]
            .into_iter()
            .collect();
        let b: Placement = [(app(0), node(0), 1)].into_iter().collect();
        let actions = a.diff(&b);
        assert_eq!(actions.len(), 2);
        assert_eq!(
            actions
                .iter()
                .filter(|a| matches!(a, PlacementAction::Stop { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn mixed_apps_are_independent() {
        let a: Placement = [(app(0), node(0), 1), (app(1), node(1), 1)]
            .into_iter()
            .collect();
        let b: Placement = [(app(0), node(1), 1), (app(1), node(1), 1)]
            .into_iter()
            .collect();
        let actions = a.diff(&b);
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].app(), app(0));
    }

    #[test]
    fn applying_diff_reaches_target() {
        // Apply actions to `a` and verify we arrive at `b`.
        let a: Placement = [
            (app(0), node(0), 2),
            (app(1), node(1), 1),
            (app(2), node(2), 1),
        ]
        .into_iter()
        .collect();
        let b: Placement = [
            (app(0), node(1), 2),
            (app(1), node(1), 1),
            (app(3), node(0), 1),
        ]
        .into_iter()
        .collect();
        let mut current = a.clone();
        for action in a.diff(&b) {
            match action {
                PlacementAction::Start { app, node } => current.place(app, node),
                PlacementAction::Stop { app, node } => current.remove(app, node).unwrap(),
                PlacementAction::Migrate { app, from, to } => {
                    current.remove(app, from).unwrap();
                    current.place(app, to);
                }
            }
        }
        assert_eq!(current, b);
    }

    #[test]
    fn display_is_informative() {
        let action = PlacementAction::Migrate {
            app: app(1),
            from: node(0),
            to: node(2),
        };
        assert_eq!(action.to_string(), "migrate app1 from node0 to node2");
    }
}
