//! Error types for model-level invariant violations.

use std::error::Error;
use std::fmt;

use crate::ids::{AppId, NodeId};

/// Violation of a cluster-model invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
#[allow(missing_docs)] // variant fields are self-describing
pub enum ModelError {
    /// The referenced node is not registered in the cluster.
    UnknownNode(NodeId),
    /// The referenced application is not registered.
    UnknownApp(AppId),
    /// Attempted to remove an instance that is not placed.
    InstanceNotPlaced { app: AppId, node: NodeId },
    /// Placing the instance would exceed the node's memory capacity
    /// (rigid dimension 0).
    MemoryExceeded { node: NodeId },
    /// Placing the instance would exceed the node's capacity in a rigid
    /// resource dimension beyond memory (`dim` indexes the cluster's
    /// [`ResourceDims`](crate::resources::ResourceDims)).
    ResourceExceeded { node: NodeId, dim: usize },
    /// The load distribution would exceed the node's CPU capacity.
    CpuExceeded { node: NodeId },
    /// The application already runs its maximum number of instances.
    MaxInstancesExceeded { app: AppId },
    /// The application is pinned elsewhere and may not run on this node.
    PinningViolated { app: AppId, node: NodeId },
    /// An anti-affinity constraint forbids collocating these applications.
    AntiAffinityViolated {
        app: AppId,
        other: AppId,
        node: NodeId,
    },
    /// Load was assigned to an application on a node where it has no
    /// instance.
    LoadWithoutInstance { app: AppId, node: NodeId },
    /// An instance was assigned less than its minimum speed or more than
    /// its maximum speed.
    SpeedOutOfBounds { app: AppId, node: NodeId },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownNode(n) => write!(f, "unknown node {n}"),
            ModelError::UnknownApp(a) => write!(f, "unknown application {a}"),
            ModelError::InstanceNotPlaced { app, node } => {
                write!(f, "{app} has no instance on {node}")
            }
            ModelError::MemoryExceeded { node } => {
                write!(f, "memory capacity exceeded on {node}")
            }
            ModelError::ResourceExceeded { node, dim } => {
                write!(f, "rigid resource dimension {dim} exceeded on {node}")
            }
            ModelError::CpuExceeded { node } => {
                write!(f, "cpu capacity exceeded on {node}")
            }
            ModelError::MaxInstancesExceeded { app } => {
                write!(f, "{app} already runs its maximum number of instances")
            }
            ModelError::PinningViolated { app, node } => {
                write!(f, "{app} is pinned away from {node}")
            }
            ModelError::AntiAffinityViolated { app, other, node } => {
                write!(f, "{app} may not share {node} with {other}")
            }
            ModelError::LoadWithoutInstance { app, node } => {
                write!(
                    f,
                    "load assigned to {app} on {node} where it has no instance"
                )
            }
            ModelError::SpeedOutOfBounds { app, node } => {
                write!(
                    f,
                    "speed assigned to {app} on {node} is outside its instance bounds"
                )
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_nonempty() {
        let samples = [
            ModelError::UnknownNode(NodeId::new(1)),
            ModelError::UnknownApp(AppId::new(2)),
            ModelError::MemoryExceeded {
                node: NodeId::new(0),
            },
            ModelError::MaxInstancesExceeded { app: AppId::new(3) },
        ];
        for err in samples {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
