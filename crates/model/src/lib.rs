//! Cluster model for dynamic application placement.
//!
//! This crate defines the vocabulary shared by the whole `dynaplace`
//! workspace, mirroring §3.2 of *Carrera et al., "Enabling Resource Sharing
//! between Transactional and Batch Workloads Using Dynamic Application
//! Placement" (Middleware 2008)*:
//!
//! - typed physical [`units`] (MHz, MB, megacycles, seconds),
//! - [`NodeId`]/[`AppId`] identifiers and registries ([`Cluster`],
//!   [`AppSet`]),
//! - the placement matrix [`Placement`] (instances per node) and load
//!   distribution matrix [`LoadDistribution`] (CPU per application per
//!   node), with full constraint validation,
//! - placement [`delta`]s describing control actions (start / stop /
//!   migrate).
//!
//! # Example
//!
//! ```
//! use dynaplace_model::prelude::*;
//!
//! // A node with one 1 GHz CPU and 2 GB of memory (the §4.3 example node).
//! let mut cluster = Cluster::new();
//! let n0 = cluster.add_node(
//!     NodeSpec::try_new(CpuSpeed::from_mhz(1_000.0), Memory::from_mb(2_000.0)).unwrap(),
//! );
//!
//! let mut apps = AppSet::new();
//! let j1 = apps.add(
//!     ApplicationSpec::batch(Memory::from_mb(750.0), CpuSpeed::from_mhz(1_000.0))
//!         .with_name("J1"),
//! );
//!
//! let mut placement = Placement::new();
//! placement.checked_place(j1, n0, &cluster, &apps)?;
//!
//! let mut load = LoadDistribution::new();
//! load.set(j1, n0, CpuSpeed::from_mhz(1_000.0));
//! load.validate(&placement, &cluster, &apps)?;
//! # Ok::<(), dynaplace_model::error::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod cluster;
pub mod delta;
pub mod error;
pub mod ids;
pub mod load;
pub mod node;
pub mod placement;
pub mod resources;
pub mod units;

pub use app::{AntiAffinityGroup, ApplicationSpec, WorkloadKind};
pub use cluster::{AppSet, Cluster};
pub use delta::{diff_placements, PlacementAction};
pub use error::ModelError;
pub use ids::{AppId, NodeId};
pub use load::LoadDistribution;
pub use node::{NodeSpec, NodeSpecError};
pub use placement::Placement;
pub use resources::{ResourceDims, ResourceError, Resources};
pub use units::{CpuSpeed, Memory, SimDuration, SimTime, Work};

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::app::{AntiAffinityGroup, ApplicationSpec, WorkloadKind};
    pub use crate::cluster::{AppSet, Cluster};
    pub use crate::delta::PlacementAction;
    pub use crate::error::ModelError;
    pub use crate::ids::{AppId, NodeId};
    pub use crate::load::LoadDistribution;
    pub use crate::node::{NodeSpec, NodeSpecError};
    pub use crate::placement::Placement;
    pub use crate::resources::{ResourceDims, ResourceError, Resources};
    pub use crate::units::{CpuSpeed, Memory, SimDuration, SimTime, Work};
}
