//! Application descriptors: the placement-relevant facts about a workload.
//!
//! Both transactional web applications and long-running batch jobs are
//! "applications" to the placement controller (§3.2). This module captures
//! only what placement needs: memory footprint, instance-count limits,
//! per-instance speed bounds, and placement constraints. Workload-specific
//! performance models live in the `dynaplace-txn` and `dynaplace-batch`
//! crates.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::NodeId;
use crate::resources::Resources;
use crate::units::{CpuSpeed, Memory};

/// The broad class of a workload, which determines which performance model
/// drives its relative performance function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Interactive request/response workload with a response-time goal.
    Transactional,
    /// Long-running job with a completion-time goal.
    Batch,
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadKind::Transactional => f.write_str("transactional"),
            WorkloadKind::Batch => f.write_str("batch"),
        }
    }
}

/// Anti-affinity group label: two applications carrying the same group may
/// never share a node (a form of the paper's "collocation constraints").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AntiAffinityGroup(pub u32);

impl Ord for AntiAffinityGroup {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl PartialOrd for AntiAffinityGroup {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Static placement-relevant description of one application.
///
/// Built with [`ApplicationSpec::transactional`] or
/// [`ApplicationSpec::batch`] and refined with the `with_*` methods:
///
/// ```
/// use dynaplace_model::app::ApplicationSpec;
/// use dynaplace_model::units::{CpuSpeed, Memory};
///
/// let spec = ApplicationSpec::batch(Memory::from_mb(4_320.0), CpuSpeed::from_mhz(3_900.0))
///     .with_name("portfolio-analysis");
/// assert_eq!(spec.max_instances(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicationSpec {
    name: Option<String>,
    kind: WorkloadKind,
    /// Load-independent demand: the rigid resources consumed by each
    /// started instance (dimension 0 = memory MB, further dimensions per
    /// the deployment's [`ResourceDims`](crate::resources::ResourceDims)).
    rigid_per_instance: Resources,
    /// Maximum number of concurrently running instances.
    max_instances: u32,
    /// Lowest speed an instance may run at whenever it runs.
    min_instance_speed: CpuSpeed,
    /// Highest speed a single instance can consume.
    max_instance_speed: CpuSpeed,
    /// If set, instances may only be placed on these nodes (pinning).
    allowed_nodes: Option<BTreeSet<NodeId>>,
    /// If set, this application refuses to share a node with any other
    /// application in the same group.
    anti_affinity: Option<AntiAffinityGroup>,
}

impl ApplicationSpec {
    /// Creates a transactional application that can be replicated on up to
    /// `max_instances` nodes, each instance able to consume up to
    /// `max_instance_speed`.
    ///
    /// # Panics
    ///
    /// Panics if `max_instances` is zero or any magnitude is negative.
    pub fn transactional(
        memory_per_instance: Memory,
        max_instance_speed: CpuSpeed,
        max_instances: u32,
    ) -> Self {
        assert!(max_instances > 0, "max_instances must be positive");
        Self::validate_magnitudes(memory_per_instance, CpuSpeed::ZERO, max_instance_speed);
        Self {
            name: None,
            kind: WorkloadKind::Transactional,
            rigid_per_instance: Resources::memory_only(memory_per_instance),
            max_instances,
            min_instance_speed: CpuSpeed::ZERO,
            max_instance_speed,
            allowed_nodes: None,
            anti_affinity: None,
        }
    }

    /// Creates a batch job: exactly one instance, able to run at up to
    /// `max_speed`.
    ///
    /// # Panics
    ///
    /// Panics if any magnitude is negative.
    pub fn batch(memory_per_instance: Memory, max_speed: CpuSpeed) -> Self {
        Self::batch_parallel(memory_per_instance, max_speed, 1)
    }

    /// Creates a *malleable parallel* batch job: up to `tasks` concurrent
    /// task instances, each pinning `memory_per_task` and running at up
    /// to `per_task_speed`; the job's progress rate is the sum of its
    /// placed tasks' speeds. (The paper lists parallel jobs as future
    /// work; see DESIGN.md.)
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is zero or any magnitude is negative.
    pub fn batch_parallel(memory_per_task: Memory, per_task_speed: CpuSpeed, tasks: u32) -> Self {
        assert!(tasks > 0, "tasks must be positive");
        Self::validate_magnitudes(memory_per_task, CpuSpeed::ZERO, per_task_speed);
        Self {
            name: None,
            kind: WorkloadKind::Batch,
            rigid_per_instance: Resources::memory_only(memory_per_task),
            max_instances: tasks,
            min_instance_speed: CpuSpeed::ZERO,
            max_instance_speed: per_task_speed,
            allowed_nodes: None,
            anti_affinity: None,
        }
    }

    fn validate_magnitudes(memory: Memory, min_speed: CpuSpeed, max_speed: CpuSpeed) {
        assert!(memory.as_mb() >= 0.0, "memory demand must be non-negative");
        assert!(
            min_speed.as_mhz() >= 0.0 && max_speed.as_mhz() >= 0.0,
            "speeds must be non-negative"
        );
        assert!(
            min_speed <= max_speed,
            "min instance speed must not exceed max instance speed"
        );
    }

    /// Attaches a human-readable name (used only in diagnostics).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Sets the minimum speed an instance must receive whenever it runs
    /// (the paper's `ω_min`).
    ///
    /// # Panics
    ///
    /// Panics if `min_speed` exceeds the maximum instance speed.
    #[must_use]
    pub fn with_min_instance_speed(mut self, min_speed: CpuSpeed) -> Self {
        Self::validate_magnitudes(
            self.rigid_per_instance.memory(),
            min_speed,
            self.max_instance_speed,
        );
        self.min_instance_speed = min_speed;
        self
    }

    /// Declares per-instance demand in rigid dimensions beyond memory
    /// (`extra[0]` is dimension 1 of the deployment's
    /// [`ResourceDims`](crate::resources::ResourceDims), and so on). The
    /// memory demand set by the constructor is preserved.
    ///
    /// # Panics
    ///
    /// Panics if any demand is negative or non-finite.
    #[must_use]
    pub fn with_extra_rigid_demand(mut self, extra: impl IntoIterator<Item = f64>) -> Self {
        let mut values = vec![self.rigid_per_instance.memory().as_mb()];
        values.extend(extra);
        let rigid = Resources::new(values);
        assert!(
            rigid.first_negative().is_none() && rigid.all_finite(),
            "rigid demands must be non-negative and finite"
        );
        self.rigid_per_instance = rigid;
        self
    }

    /// Restricts placement to the given nodes (application pinning).
    #[must_use]
    pub fn with_allowed_nodes(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.allowed_nodes = Some(nodes.into_iter().collect());
        self
    }

    /// Declares the application a member of an anti-affinity group.
    #[must_use]
    pub fn with_anti_affinity(mut self, group: AntiAffinityGroup) -> Self {
        self.anti_affinity = Some(group);
        self
    }

    /// The diagnostic name, if one was set.
    #[inline]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The workload class of this application.
    #[inline]
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Memory consumed by each started instance (the paper's
    /// load-independent demand; rigid dimension 0).
    #[inline]
    pub fn memory_per_instance(&self) -> Memory {
        self.rigid_per_instance.memory()
    }

    /// The full rigid per-instance demand vector.
    #[inline]
    pub fn rigid_per_instance(&self) -> &Resources {
        &self.rigid_per_instance
    }

    /// Maximum number of concurrently running instances.
    #[inline]
    pub fn max_instances(&self) -> u32 {
        self.max_instances
    }

    /// Lowest speed an instance may run at whenever it runs.
    #[inline]
    pub fn min_instance_speed(&self) -> CpuSpeed {
        self.min_instance_speed
    }

    /// Highest speed a single instance can consume.
    #[inline]
    pub fn max_instance_speed(&self) -> CpuSpeed {
        self.max_instance_speed
    }

    /// Nodes this application is pinned to, if restricted.
    #[inline]
    pub fn allowed_nodes(&self) -> Option<&BTreeSet<NodeId>> {
        self.allowed_nodes.as_ref()
    }

    /// Returns whether this application may be placed on `node`.
    #[inline]
    pub fn allows_node(&self, node: NodeId) -> bool {
        self.allowed_nodes
            .as_ref()
            .map_or(true, |set| set.contains(&node))
    }

    /// The anti-affinity group, if any.
    #[inline]
    pub fn anti_affinity(&self) -> Option<AntiAffinityGroup> {
        self.anti_affinity
    }

    /// Returns whether this application may share a node with `other`.
    pub fn may_share_node_with(&self, other: &ApplicationSpec) -> bool {
        match (self.anti_affinity, other.anti_affinity) {
            (Some(a), Some(b)) => a != b,
            _ => true,
        }
    }
}

impl fmt::Display for ApplicationSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = self.name.as_deref().unwrap_or("app");
        write!(
            f,
            "{name} ({}, mem {}, ≤{} inst, speed {}..{})",
            self.kind,
            self.rigid_per_instance.memory(),
            self.max_instances,
            self.min_instance_speed,
            self.max_instance_speed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_is_single_instance() {
        let spec = ApplicationSpec::batch(Memory::from_mb(750.0), CpuSpeed::from_mhz(500.0));
        assert_eq!(spec.kind(), WorkloadKind::Batch);
        assert_eq!(spec.max_instances(), 1);
        assert_eq!(spec.max_instance_speed(), CpuSpeed::from_mhz(500.0));
    }

    #[test]
    fn transactional_replicates() {
        let spec = ApplicationSpec::transactional(
            Memory::from_mb(2_000.0),
            CpuSpeed::from_mhz(15_600.0),
            25,
        );
        assert_eq!(spec.kind(), WorkloadKind::Transactional);
        assert_eq!(spec.max_instances(), 25);
    }

    #[test]
    fn pinning_restricts_nodes() {
        let spec = ApplicationSpec::batch(Memory::ZERO, CpuSpeed::from_mhz(1.0))
            .with_allowed_nodes([NodeId::new(1), NodeId::new(3)]);
        assert!(spec.allows_node(NodeId::new(1)));
        assert!(!spec.allows_node(NodeId::new(0)));
    }

    #[test]
    fn unpinned_allows_everything() {
        let spec = ApplicationSpec::batch(Memory::ZERO, CpuSpeed::from_mhz(1.0));
        assert!(spec.allows_node(NodeId::new(42)));
    }

    #[test]
    fn anti_affinity_blocks_same_group_only() {
        let g = AntiAffinityGroup(7);
        let a = ApplicationSpec::batch(Memory::ZERO, CpuSpeed::from_mhz(1.0)).with_anti_affinity(g);
        let b = ApplicationSpec::batch(Memory::ZERO, CpuSpeed::from_mhz(1.0)).with_anti_affinity(g);
        let c = ApplicationSpec::batch(Memory::ZERO, CpuSpeed::from_mhz(1.0))
            .with_anti_affinity(AntiAffinityGroup(8));
        let free = ApplicationSpec::batch(Memory::ZERO, CpuSpeed::from_mhz(1.0));
        assert!(!a.may_share_node_with(&b));
        assert!(a.may_share_node_with(&c));
        assert!(a.may_share_node_with(&free));
        assert!(free.may_share_node_with(&b));
    }

    #[test]
    fn min_speed_validated() {
        let spec = ApplicationSpec::batch(Memory::ZERO, CpuSpeed::from_mhz(500.0))
            .with_min_instance_speed(CpuSpeed::from_mhz(100.0));
        assert_eq!(spec.min_instance_speed(), CpuSpeed::from_mhz(100.0));
    }

    #[test]
    #[should_panic(expected = "min instance speed must not exceed max")]
    fn min_speed_above_max_rejected() {
        let _ = ApplicationSpec::batch(Memory::ZERO, CpuSpeed::from_mhz(500.0))
            .with_min_instance_speed(CpuSpeed::from_mhz(501.0));
    }

    #[test]
    #[should_panic(expected = "max_instances must be positive")]
    fn zero_instances_rejected() {
        let _ = ApplicationSpec::transactional(Memory::ZERO, CpuSpeed::from_mhz(1.0), 0);
    }

    #[test]
    fn extra_rigid_demand_preserves_memory() {
        let spec = ApplicationSpec::batch(Memory::from_mb(750.0), CpuSpeed::from_mhz(500.0))
            .with_extra_rigid_demand([40.0, 1.0]);
        assert_eq!(spec.memory_per_instance(), Memory::from_mb(750.0));
        assert_eq!(spec.rigid_per_instance().get(1), 40.0);
        assert_eq!(spec.rigid_per_instance().get(2), 1.0);
        assert_eq!(spec.rigid_per_instance().get(3), 0.0);
    }

    #[test]
    fn default_rigid_demand_is_memory_only() {
        let spec = ApplicationSpec::batch(Memory::from_mb(10.0), CpuSpeed::from_mhz(1.0));
        assert_eq!(spec.rigid_per_instance().len(), 1);
    }

    #[test]
    #[should_panic(expected = "rigid demands must be non-negative")]
    fn negative_extra_rigid_demand_rejected() {
        let _ = ApplicationSpec::batch(Memory::ZERO, CpuSpeed::from_mhz(1.0))
            .with_extra_rigid_demand([-1.0]);
    }
}
