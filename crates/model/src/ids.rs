//! Identifier newtypes for nodes and applications.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a physical machine ("node" in the paper's terminology).
///
/// Node ids are dense indices assigned by [`crate::cluster::Cluster`] in
/// registration order, which keeps every per-node table a plain `Vec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(u32);

impl Ord for NodeId {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl PartialOrd for NodeId {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl NodeId {
    /// Creates a node id from a dense index.
    #[inline]
    pub fn new(index: u32) -> Self {
        Self(index)
    }

    /// The dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifier of an application.
///
/// Both transactional applications and batch jobs are "applications" from
/// the placement controller's point of view (§3.2 of the paper); the id
/// space is shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AppId(u32);

impl Ord for AppId {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl PartialOrd for AppId {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl AppId {
    /// Creates an application id from a dense index.
    #[inline]
    pub fn new(index: u32) -> Self {
        Self(index)
    }

    /// The dense index of this application.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_and_order() {
        let a = NodeId::new(3);
        assert_eq!(a.index(), 3);
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(AppId::new(7).index(), 7);
        assert!(AppId::new(0) < AppId::new(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId::new(4).to_string(), "node4");
        assert_eq!(AppId::new(9).to_string(), "app9");
    }
}
