//! The placement matrix `P` (§3.2): how many instances of each application
//! run on each node.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::app::ApplicationSpec;
use crate::cluster::{AppSet, Cluster};
use crate::delta::{diff_placements, PlacementAction};
use crate::error::ModelError;
use crate::ids::{AppId, NodeId};
use crate::resources::Resources;
use crate::units::Memory;

/// Sparse matrix of instance counts: cell `(m, n)` is the number of
/// instances of application `m` running on node `n`.
///
/// Backed by a `BTreeMap` so iteration order is deterministic, which keeps
/// the whole control loop reproducible run-to-run.
///
/// ```
/// use dynaplace_model::placement::Placement;
/// use dynaplace_model::ids::{AppId, NodeId};
///
/// let mut p = Placement::new();
/// p.place(AppId::new(0), NodeId::new(2));
/// assert_eq!(p.count(AppId::new(0), NodeId::new(2)), 1);
/// assert_eq!(p.total_instances(AppId::new(0)), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    cells: BTreeMap<(AppId, NodeId), u32>,
}

impl Placement {
    /// Creates an empty placement.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instances of `app` on `node`.
    pub fn count(&self, app: AppId, node: NodeId) -> u32 {
        self.cells.get(&(app, node)).copied().unwrap_or(0)
    }

    /// Adds one instance of `app` on `node` without checking constraints.
    ///
    /// Prefer [`Placement::checked_place`] unless the caller has already
    /// validated the move.
    pub fn place(&mut self, app: AppId, node: NodeId) {
        *self.cells.entry((app, node)).or_insert(0) += 1;
    }

    /// Adds one instance after validating every placement constraint:
    /// registration, pinning, instance limit, anti-affinity, and every
    /// rigid resource capacity (memory first, then the cluster's extra
    /// dimensions).
    ///
    /// # Errors
    ///
    /// Returns the specific [`ModelError`] describing the violated
    /// constraint; on error the placement is unchanged. Rigid dimension 0
    /// reports [`ModelError::MemoryExceeded`], further dimensions
    /// [`ModelError::ResourceExceeded`].
    pub fn checked_place(
        &mut self,
        app: AppId,
        node: NodeId,
        cluster: &Cluster,
        apps: &AppSet,
    ) -> Result<(), ModelError> {
        let spec = apps.get(app)?;
        let node_spec = cluster.node(node)?;
        if !spec.allows_node(node) {
            return Err(ModelError::PinningViolated { app, node });
        }
        if self.total_instances(app) >= spec.max_instances() {
            return Err(ModelError::MaxInstancesExceeded { app });
        }
        for (other, _count) in self.apps_on(node) {
            if other == app {
                continue;
            }
            let other_spec = apps.get(other)?;
            if !spec.may_share_node_with(other_spec) {
                return Err(ModelError::AntiAffinityViolated { app, other, node });
            }
        }
        let used = self.rigid_used(node, apps)?;
        if let Some(dim) =
            used.first_overflow(spec.rigid_per_instance(), node_spec.rigid_capacity())
        {
            return Err(Self::rigid_error(node, dim));
        }
        self.place(app, node);
        Ok(())
    }

    /// Maps an exceeded rigid dimension to its error variant (memory
    /// keeps its dedicated variant for backwards compatibility).
    fn rigid_error(node: NodeId, dim: usize) -> ModelError {
        if dim == crate::resources::ResourceDims::MEMORY {
            ModelError::MemoryExceeded { node }
        } else {
            ModelError::ResourceExceeded { node, dim }
        }
    }

    /// Removes one instance of `app` from `node`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InstanceNotPlaced`] if no instance is there.
    pub fn remove(&mut self, app: AppId, node: NodeId) -> Result<(), ModelError> {
        match self.cells.get_mut(&(app, node)) {
            Some(count) if *count > 1 => {
                *count -= 1;
                Ok(())
            }
            Some(_) => {
                self.cells.remove(&(app, node));
                Ok(())
            }
            None => Err(ModelError::InstanceNotPlaced { app, node }),
        }
    }

    /// Removes every instance of `app` from every node, returning how many
    /// instances were removed.
    pub fn evict(&mut self, app: AppId) -> u32 {
        let keys: Vec<_> = self
            .cells
            .range((app, NodeId::new(0))..=(app, NodeId::new(u32::MAX)))
            .map(|(&k, _)| k)
            .collect();
        let mut removed = 0;
        for k in keys {
            removed += self.cells.remove(&k).unwrap_or(0);
        }
        removed
    }

    /// Iterates over the nodes hosting `app`, with instance counts.
    pub fn instances_of(&self, app: AppId) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.cells
            .range((app, NodeId::new(0))..=(app, NodeId::new(u32::MAX)))
            .map(|(&(_, node), &count)| (node, count))
    }

    /// Iterates over the applications on `node`, with instance counts.
    ///
    /// This scans all cells; callers on hot paths should maintain their own
    /// per-node index.
    pub fn apps_on(&self, node: NodeId) -> impl Iterator<Item = (AppId, u32)> + '_ {
        self.cells
            .iter()
            .filter(move |(&(_, n), _)| n == node)
            .map(|(&(app, _), &count)| (app, count))
    }

    /// Total number of instances of `app` across all nodes.
    pub fn total_instances(&self, app: AppId) -> u32 {
        self.instances_of(app).map(|(_, c)| c).sum()
    }

    /// Whether `app` has at least one instance placed.
    pub fn is_placed(&self, app: AppId) -> bool {
        self.instances_of(app).next().is_some()
    }

    /// For single-instance applications: the node hosting the instance,
    /// if placed. Returns the first node in id order for multi-instance
    /// applications.
    pub fn single_node_of(&self, app: AppId) -> Option<NodeId> {
        self.instances_of(app).next().map(|(node, _)| node)
    }

    /// Memory consumed on `node` by all placed instances (rigid
    /// dimension 0).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownApp`] if a placed application is not
    /// registered in `apps`.
    pub fn memory_used(&self, node: NodeId, apps: &AppSet) -> Result<Memory, ModelError> {
        Ok(self.rigid_used(node, apps)?.memory())
    }

    /// Rigid resources consumed on `node` by all placed instances, per
    /// dimension. Accumulates in ascending [`AppId`] order with exactly
    /// the `used += demand × count` arithmetic of the memory-only model,
    /// so dimension 0 is bit-identical to the historical `memory_used`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownApp`] if a placed application is not
    /// registered in `apps`.
    pub fn rigid_used(&self, node: NodeId, apps: &AppSet) -> Result<Resources, ModelError> {
        let mut used = Resources::zero();
        for (app, count) in self.apps_on(node) {
            used.add_scaled(apps.get(app)?.rigid_per_instance(), f64::from(count));
        }
        Ok(used)
    }

    /// Iterates over all non-empty cells `((app, node), count)`.
    pub fn iter(&self) -> impl Iterator<Item = (AppId, NodeId, u32)> + '_ {
        self.cells
            .iter()
            .map(|(&(app, node), &count)| (app, node, count))
    }

    /// Total number of placed instances.
    pub fn total_placed(&self) -> u32 {
        self.cells.values().sum()
    }

    /// Number of non-empty cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether nothing is placed.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Validates the whole placement against every constraint.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint in deterministic order.
    pub fn validate(&self, cluster: &Cluster, apps: &AppSet) -> Result<(), ModelError> {
        // Per-app checks.
        let mut totals: BTreeMap<AppId, u32> = BTreeMap::new();
        for (app, node, count) in self.iter() {
            let spec = apps.get(app)?;
            cluster.node(node)?;
            if !spec.allows_node(node) {
                return Err(ModelError::PinningViolated { app, node });
            }
            *totals.entry(app).or_insert(0) += count;
        }
        for (app, total) in totals {
            if total > apps.get(app)?.max_instances() {
                return Err(ModelError::MaxInstancesExceeded { app });
            }
        }
        // Per-node checks.
        for node in cluster.node_ids() {
            let used = self.rigid_used(node, apps)?;
            if let Some(dim) = used.first_exceeding(cluster.node(node)?.rigid_capacity()) {
                return Err(Self::rigid_error(node, dim));
            }
            let residents: Vec<(AppId, &ApplicationSpec)> = self
                .apps_on(node)
                .map(|(app, _)| apps.get(app).map(|s| (app, s)))
                .collect::<Result<_, _>>()?;
            for (i, (app_a, spec_a)) in residents.iter().enumerate() {
                for (app_b, spec_b) in residents.iter().skip(i + 1) {
                    if !spec_a.may_share_node_with(spec_b) {
                        return Err(ModelError::AntiAffinityViolated {
                            app: *app_a,
                            other: *app_b,
                            node,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Computes the control actions that transform `self` into `target`.
    ///
    /// Single-instance moves are reported as migrations; surplus removals
    /// and additions become stops and starts. See [`PlacementAction`].
    pub fn diff(&self, target: &Placement) -> Vec<PlacementAction> {
        diff_placements(self, target)
    }
}

impl FromIterator<(AppId, NodeId, u32)> for Placement {
    fn from_iter<I: IntoIterator<Item = (AppId, NodeId, u32)>>(iter: I) -> Self {
        let mut p = Placement::new();
        for (app, node, count) in iter {
            if count > 0 {
                p.cells.insert((app, node), count);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AntiAffinityGroup;
    use crate::node::NodeSpec;
    use crate::units::{CpuSpeed, Memory};

    fn setup() -> (Cluster, AppSet, AppId, AppId) {
        let mut cluster = Cluster::new();
        for _ in 0..2 {
            cluster.add_node(
                NodeSpec::try_new(CpuSpeed::from_mhz(1_000.0), Memory::from_mb(2_000.0)).unwrap(),
            );
        }
        let mut apps = AppSet::new();
        let j1 = apps.add(ApplicationSpec::batch(
            Memory::from_mb(750.0),
            CpuSpeed::from_mhz(1_000.0),
        ));
        let j2 = apps.add(ApplicationSpec::batch(
            Memory::from_mb(750.0),
            CpuSpeed::from_mhz(500.0),
        ));
        (cluster, apps, j1, j2)
    }

    #[test]
    fn place_count_remove_round_trip() {
        let (_, _, j1, _) = setup();
        let n = NodeId::new(0);
        let mut p = Placement::new();
        assert_eq!(p.count(j1, n), 0);
        p.place(j1, n);
        assert_eq!(p.count(j1, n), 1);
        assert!(p.is_placed(j1));
        assert_eq!(p.single_node_of(j1), Some(n));
        p.remove(j1, n).unwrap();
        assert!(!p.is_placed(j1));
        assert!(p.remove(j1, n).is_err());
    }

    #[test]
    fn memory_constraint_enforced() {
        let (cluster, apps, j1, j2) = setup();
        let n = NodeId::new(0);
        let mut p = Placement::new();
        p.checked_place(j1, n, &cluster, &apps).unwrap();
        p.checked_place(j2, n, &cluster, &apps).unwrap();
        // Third 750 MB instance would need 2250 MB > 2000 MB.
        let mut apps2 = apps.clone();
        let j3 = apps2.add(ApplicationSpec::batch(
            Memory::from_mb(750.0),
            CpuSpeed::from_mhz(500.0),
        ));
        assert_eq!(
            p.checked_place(j3, n, &cluster, &apps2),
            Err(ModelError::MemoryExceeded { node: n })
        );
    }

    #[test]
    fn max_instances_enforced() {
        let (cluster, apps, j1, _) = setup();
        let mut p = Placement::new();
        p.checked_place(j1, NodeId::new(0), &cluster, &apps)
            .unwrap();
        assert_eq!(
            p.checked_place(j1, NodeId::new(1), &cluster, &apps),
            Err(ModelError::MaxInstancesExceeded { app: j1 })
        );
    }

    #[test]
    fn pinning_enforced() {
        let (cluster, mut apps, _, _) = setup();
        let pinned = apps.add(
            ApplicationSpec::batch(Memory::from_mb(100.0), CpuSpeed::from_mhz(100.0))
                .with_allowed_nodes([NodeId::new(1)]),
        );
        let mut p = Placement::new();
        assert_eq!(
            p.checked_place(pinned, NodeId::new(0), &cluster, &apps),
            Err(ModelError::PinningViolated {
                app: pinned,
                node: NodeId::new(0)
            })
        );
        p.checked_place(pinned, NodeId::new(1), &cluster, &apps)
            .unwrap();
    }

    #[test]
    fn anti_affinity_enforced() {
        let (cluster, mut apps, _, _) = setup();
        let g = AntiAffinityGroup(1);
        let a = apps.add(
            ApplicationSpec::batch(Memory::from_mb(10.0), CpuSpeed::from_mhz(10.0))
                .with_anti_affinity(g),
        );
        let b = apps.add(
            ApplicationSpec::batch(Memory::from_mb(10.0), CpuSpeed::from_mhz(10.0))
                .with_anti_affinity(g),
        );
        let n = NodeId::new(0);
        let mut p = Placement::new();
        p.checked_place(a, n, &cluster, &apps).unwrap();
        assert_eq!(
            p.checked_place(b, n, &cluster, &apps),
            Err(ModelError::AntiAffinityViolated {
                app: b,
                other: a,
                node: n
            })
        );
        p.checked_place(b, NodeId::new(1), &cluster, &apps).unwrap();
        p.validate(&cluster, &apps).unwrap();
    }

    #[test]
    fn validate_catches_manual_violations() {
        let (cluster, apps, j1, j2) = setup();
        let n = NodeId::new(0);
        let mut p = Placement::new();
        p.place(j1, n);
        p.place(j2, n);
        p.place(j2, NodeId::new(1)); // j2 is single-instance: 2 > 1
        assert_eq!(
            p.validate(&cluster, &apps),
            Err(ModelError::MaxInstancesExceeded { app: j2 })
        );
    }

    #[test]
    fn evict_removes_all_instances() {
        let (_, mut apps, _, _) = setup();
        let web = apps.add(ApplicationSpec::transactional(
            Memory::from_mb(10.0),
            CpuSpeed::from_mhz(100.0),
            4,
        ));
        let mut p = Placement::new();
        p.place(web, NodeId::new(0));
        p.place(web, NodeId::new(0));
        p.place(web, NodeId::new(1));
        assert_eq!(p.total_instances(web), 3);
        assert_eq!(p.evict(web), 3);
        assert!(!p.is_placed(web));
    }

    #[test]
    fn memory_used_sums_per_instance_demand() {
        let (_, apps, j1, j2) = setup();
        let n = NodeId::new(0);
        let mut p = Placement::new();
        p.place(j1, n);
        p.place(j2, n);
        assert_eq!(p.memory_used(n, &apps).unwrap(), Memory::from_mb(1_500.0));
        assert_eq!(p.memory_used(NodeId::new(1), &apps).unwrap(), Memory::ZERO);
    }

    #[test]
    fn extra_rigid_dimension_enforced() {
        use crate::resources::{ResourceDims, Resources};
        // Two nodes, both with ample memory; only n1 has license slots.
        let mut cluster =
            Cluster::new().with_dims(ResourceDims::with_extra(["license_slots"]).unwrap());
        let n0 = cluster.add_node(
            NodeSpec::try_with_resources(
                CpuSpeed::from_mhz(1_000.0),
                Resources::new(vec![4_000.0]),
            )
            .unwrap(),
        );
        let n1 = cluster.add_node(
            NodeSpec::try_with_resources(
                CpuSpeed::from_mhz(1_000.0),
                Resources::new(vec![4_000.0, 1.0]),
            )
            .unwrap(),
        );
        let mut apps = AppSet::new();
        let licensed = apps.add(
            ApplicationSpec::batch(Memory::from_mb(100.0), CpuSpeed::from_mhz(500.0))
                .with_extra_rigid_demand([1.0]),
        );
        let mut p = Placement::new();
        // n0 supplies zero license slots: rejected per-dimension, with
        // the dimension index in the error.
        assert_eq!(
            p.checked_place(licensed, n0, &cluster, &apps),
            Err(ModelError::ResourceExceeded { node: n0, dim: 1 })
        );
        p.checked_place(licensed, n1, &cluster, &apps).unwrap();
        p.validate(&cluster, &apps).unwrap();
        assert_eq!(p.rigid_used(n1, &apps).unwrap().values(), &[100.0, 1.0]);
        // A second licensed tenant exhausts the slot pool on n1.
        let mut apps2 = apps.clone();
        let second = apps2.add(
            ApplicationSpec::batch(Memory::from_mb(100.0), CpuSpeed::from_mhz(500.0))
                .with_extra_rigid_demand([1.0]),
        );
        assert_eq!(
            p.checked_place(second, n1, &cluster, &apps2),
            Err(ModelError::ResourceExceeded { node: n1, dim: 1 })
        );
        // validate() catches a manually forced violation the same way.
        p.place(second, n1);
        assert_eq!(
            p.validate(&cluster, &apps2),
            Err(ModelError::ResourceExceeded { node: n1, dim: 1 })
        );
    }

    #[test]
    fn from_iterator_skips_zero_counts() {
        let p: Placement = [
            (AppId::new(0), NodeId::new(0), 2),
            (AppId::new(1), NodeId::new(0), 0),
        ]
        .into_iter()
        .collect();
        assert_eq!(p.total_placed(), 2);
        assert_eq!(p.len(), 1);
    }
}
