//! Registries of nodes and applications.

use serde::{Deserialize, Serialize};

use crate::app::ApplicationSpec;
use crate::error::ModelError;
use crate::ids::{AppId, NodeId};
use crate::node::NodeSpec;
use crate::resources::{ResourceDims, Resources};
use crate::units::{CpuSpeed, Memory};

/// The set of physical machines under management.
///
/// Nodes receive dense [`NodeId`]s in registration order.
///
/// ```
/// use dynaplace_model::cluster::Cluster;
/// use dynaplace_model::node::NodeSpec;
/// use dynaplace_model::units::{CpuSpeed, Memory};
///
/// let mut cluster = Cluster::new();
/// for _ in 0..25 {
///     cluster.add_node(
///         NodeSpec::try_new(CpuSpeed::from_mhz(15_600.0), Memory::from_mb(16_384.0)).unwrap(),
///     );
/// }
/// assert_eq!(cluster.len(), 25);
/// assert_eq!(cluster.total_cpu(), CpuSpeed::from_mhz(390_000.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    nodes: Vec<NodeSpec>,
    /// The rigid dimension registry every node's (and tenant
    /// application's) resource vector is interpreted against. Memory-only
    /// by default, matching the paper.
    dims: ResourceDims,
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cluster of `count` identical nodes.
    pub fn homogeneous(count: usize, spec: NodeSpec) -> Self {
        Self {
            nodes: vec![spec; count],
            dims: ResourceDims::default(),
        }
    }

    /// Declares the rigid dimension registry of this cluster (memory-only
    /// by default). Node and application resource vectors are interpreted
    /// against it; vectors shorter than the registry are zero-extended.
    #[must_use]
    pub fn with_dims(mut self, dims: ResourceDims) -> Self {
        self.dims = dims;
        self
    }

    /// Replaces the rigid dimension registry in place.
    pub fn set_dims(&mut self, dims: ResourceDims) {
        self.dims = dims;
    }

    /// The rigid dimension registry.
    #[inline]
    pub fn dims(&self) -> &ResourceDims {
        &self.dims
    }

    /// Aggregate rigid capacity of the cluster, per dimension.
    pub fn total_rigid(&self) -> Resources {
        let mut total = Resources::new(vec![0.0; self.dims.len()]);
        for node in &self.nodes {
            total.add_scaled(node.rigid_capacity(), 1.0);
        }
        total
    }

    /// Registers a node and returns its id.
    pub fn add_node(&mut self, spec: NodeSpec) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(spec);
        id
    }

    /// Looks up a node.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownNode`] if the id is not registered.
    pub fn node(&self, id: NodeId) -> Result<&NodeSpec, ModelError> {
        self.nodes
            .get(id.index())
            .ok_or(ModelError::UnknownNode(id))
    }

    /// Returns whether the node id is registered.
    pub fn contains(&self, id: NodeId) -> bool {
        id.index() < self.nodes.len()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over `(id, spec)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeSpec)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::new(i as u32), n))
    }

    /// All node ids in order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId::new(i as u32))
    }

    /// Aggregate CPU capacity of the cluster.
    pub fn total_cpu(&self) -> CpuSpeed {
        self.nodes.iter().map(NodeSpec::cpu_capacity).sum()
    }

    /// Aggregate memory capacity of the cluster.
    pub fn total_memory(&self) -> Memory {
        self.nodes.iter().map(NodeSpec::memory_capacity).sum()
    }
}

/// The set of applications known to the placement controller.
///
/// Applications receive dense [`AppId`]s in registration order. In
/// lock-step simulations completed jobs stay registered (their ids
/// remain valid in historical records) but are excluded from placement
/// by the caller. Constant-memory streaming runs instead [`retire`]
/// finished applications, freeing their slots for reuse; [`add`] hands
/// out the smallest free id first so the id space stays dense no matter
/// how many applications pass through over a run's lifetime.
///
/// [`retire`]: AppSet::retire
/// [`add`]: AppSet::add
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AppSet {
    apps: Vec<Option<ApplicationSpec>>,
    /// Vacant slot indices (retired ids), kept sorted so reuse is
    /// deterministic: the smallest free id is always handed out first.
    free: std::collections::BTreeSet<u32>,
    live: usize,
}

impl AppSet {
    /// Creates an empty application set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The id the next [`AppSet::add`] call will hand out.
    pub fn peek_next_id(&self) -> AppId {
        match self.free.iter().next() {
            Some(&slot) => AppId::new(slot),
            None => AppId::new(self.apps.len() as u32),
        }
    }

    /// Registers an application and returns its id (the smallest free
    /// slot, or a fresh one at the end).
    pub fn add(&mut self, spec: ApplicationSpec) -> AppId {
        match self.free.pop_first() {
            Some(slot) => {
                self.apps[slot as usize] = Some(spec);
                self.live += 1;
                AppId::new(slot)
            }
            None => {
                let id = AppId::new(self.apps.len() as u32);
                self.apps.push(Some(spec));
                self.live += 1;
                id
            }
        }
    }

    /// Registers an application under a caller-chosen id, growing the
    /// slot table as needed. Replaces any previous occupant.
    pub fn insert_at(&mut self, id: AppId, spec: ApplicationSpec) {
        let idx = id.index();
        if idx >= self.apps.len() {
            for vacant in self.apps.len()..idx {
                self.free.insert(vacant as u32);
            }
            self.apps.resize_with(idx + 1, || None);
        }
        if self.apps[idx].replace(spec).is_none() {
            self.live += 1;
        }
        self.free.remove(&(idx as u32));
    }

    /// Reserves ids `0..count` for later [`AppSet::insert_at`] calls:
    /// grows the slot table without marking the empty slots free, so
    /// [`AppSet::add`] / [`AppSet::peek_next_id`] skip past them. Lets a
    /// workload source pre-assign a block of ids while the engine keeps
    /// assigning fresh ids above the block.
    pub fn reserve(&mut self, count: u32) {
        if count as usize > self.apps.len() {
            self.apps.resize_with(count as usize, || None);
        }
    }

    /// Unregisters an application, freeing its id for reuse by a later
    /// [`AppSet::add`]. Returns the removed spec, or `None` if the id
    /// was not registered.
    pub fn retire(&mut self, id: AppId) -> Option<ApplicationSpec> {
        let slot = self.apps.get_mut(id.index())?;
        let spec = slot.take()?;
        self.live -= 1;
        self.free.insert(id.index() as u32);
        Some(spec)
    }

    /// Looks up an application.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownApp`] if the id is not registered.
    pub fn get(&self, id: AppId) -> Result<&ApplicationSpec, ModelError> {
        self.apps
            .get(id.index())
            .and_then(Option::as_ref)
            .ok_or(ModelError::UnknownApp(id))
    }

    /// Returns whether the application id is registered.
    pub fn contains(&self, id: AppId) -> bool {
        matches!(self.apps.get(id.index()), Some(Some(_)))
    }

    /// Number of registered applications.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no applications are registered.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over `(id, spec)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AppId, &ApplicationSpec)> {
        self.apps
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.as_ref().map(|a| (AppId::new(i as u32), a)))
    }

    /// All application ids in order.
    pub fn app_ids(&self) -> impl Iterator<Item = AppId> + '_ {
        self.iter().map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> NodeSpec {
        NodeSpec::try_new(CpuSpeed::from_mhz(1_000.0), Memory::from_mb(2_000.0)).unwrap()
    }

    #[test]
    fn dense_ids_in_registration_order() {
        let mut cluster = Cluster::new();
        let a = cluster.add_node(node());
        let b = cluster.add_node(node());
        assert_eq!(a, NodeId::new(0));
        assert_eq!(b, NodeId::new(1));
        assert!(cluster.contains(b));
        assert!(!cluster.contains(NodeId::new(2)));
        assert!(cluster.node(NodeId::new(2)).is_err());
    }

    #[test]
    fn homogeneous_builds_identical_nodes() {
        let cluster = Cluster::homogeneous(4, node());
        assert_eq!(cluster.len(), 4);
        assert_eq!(cluster.total_cpu(), CpuSpeed::from_mhz(4_000.0));
        assert_eq!(cluster.total_memory(), Memory::from_mb(8_000.0));
        assert_eq!(cluster.node_ids().count(), 4);
    }

    #[test]
    fn empty_cluster() {
        let cluster = Cluster::new();
        assert!(cluster.is_empty());
        assert_eq!(cluster.total_cpu(), CpuSpeed::ZERO);
        assert!(cluster.dims().is_memory_only());
    }

    #[test]
    fn dims_registry_and_rigid_totals() {
        use crate::resources::{ResourceDims, Resources};
        let mut cluster = Cluster::new()
            .with_dims(ResourceDims::with_extra(["disk_mb", "license_slots"]).unwrap());
        cluster.add_node(
            NodeSpec::try_with_resources(
                CpuSpeed::from_mhz(1_000.0),
                Resources::new(vec![2_000.0, 500.0, 2.0]),
            )
            .unwrap(),
        );
        cluster.add_node(node()); // memory-only node: zero extra capacity
        assert_eq!(cluster.dims().len(), 3);
        assert_eq!(cluster.total_rigid().values(), &[4_000.0, 500.0, 2.0]);
        assert_eq!(cluster.total_memory(), Memory::from_mb(4_000.0));
    }

    #[test]
    fn app_set_round_trips() {
        let mut apps = AppSet::new();
        let id = apps.add(ApplicationSpec::batch(
            Memory::from_mb(750.0),
            CpuSpeed::from_mhz(500.0),
        ));
        assert_eq!(id, AppId::new(0));
        assert_eq!(
            apps.get(id).unwrap().memory_per_instance(),
            Memory::from_mb(750.0)
        );
        assert!(apps.get(AppId::new(1)).is_err());
        assert_eq!(apps.iter().count(), 1);
        assert!(!apps.is_empty());
    }

    fn batch_app(mb: f64) -> ApplicationSpec {
        ApplicationSpec::batch(Memory::from_mb(mb), CpuSpeed::from_mhz(500.0))
    }

    #[test]
    fn retire_frees_smallest_id_first() {
        let mut apps = AppSet::new();
        let a = apps.add(batch_app(100.0));
        let b = apps.add(batch_app(200.0));
        let c = apps.add(batch_app(300.0));
        assert_eq!(apps.peek_next_id(), AppId::new(3));
        assert!(apps.retire(c).is_some());
        assert!(apps.retire(a).is_some());
        assert_eq!(apps.len(), 1);
        assert!(!apps.contains(a));
        assert!(apps.get(a).is_err());
        assert!(apps.contains(b));
        // Smallest free slot (0) is reused before slot 2.
        assert_eq!(apps.peek_next_id(), AppId::new(0));
        assert_eq!(apps.add(batch_app(400.0)), AppId::new(0));
        assert_eq!(apps.peek_next_id(), AppId::new(2));
        assert_eq!(apps.add(batch_app(500.0)), AppId::new(2));
        assert_eq!(apps.peek_next_id(), AppId::new(3));
        // Retiring an unknown id is a no-op.
        assert!(apps.retire(AppId::new(9)).is_none());
        let ids: Vec<AppId> = apps.app_ids().collect();
        assert_eq!(ids, vec![AppId::new(0), AppId::new(1), AppId::new(2)]);
    }

    #[test]
    fn insert_at_grows_and_tracks_vacancies() {
        let mut apps = AppSet::new();
        apps.insert_at(AppId::new(2), batch_app(100.0));
        assert_eq!(apps.len(), 1);
        assert!(apps.contains(AppId::new(2)));
        assert!(!apps.contains(AppId::new(0)));
        // The skipped slots are free and handed out smallest-first.
        assert_eq!(apps.peek_next_id(), AppId::new(0));
        assert_eq!(apps.add(batch_app(200.0)), AppId::new(0));
        assert_eq!(apps.add(batch_app(300.0)), AppId::new(1));
        assert_eq!(apps.add(batch_app(400.0)), AppId::new(3));
        // Replacing an occupied slot keeps the count stable.
        apps.insert_at(AppId::new(2), batch_app(900.0));
        assert_eq!(apps.len(), 4);
    }

    #[test]
    fn reserve_keeps_fresh_ids_above_the_block() {
        let mut apps = AppSet::new();
        apps.reserve(3);
        // Reserved slots are empty but not free: fresh ids start above.
        assert_eq!(apps.len(), 0);
        assert_eq!(apps.peek_next_id(), AppId::new(3));
        assert_eq!(apps.add(batch_app(100.0)), AppId::new(3));
        // The reserved block is still available for explicit placement,
        // and retiring a reserved id returns it to the free pool.
        apps.insert_at(AppId::new(1), batch_app(200.0));
        assert_eq!(apps.len(), 2);
        apps.retire(AppId::new(1));
        assert_eq!(apps.peek_next_id(), AppId::new(1));
    }
}
