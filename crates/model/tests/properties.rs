//! Property-based tests for the cluster model.

#![deny(deprecated)]

use dynaplace_model::prelude::*;
use proptest::prelude::*;

fn arb_speed() -> impl Strategy<Value = CpuSpeed> {
    (0.0..1.0e6f64).prop_map(CpuSpeed::from_mhz)
}

fn arb_duration() -> impl Strategy<Value = SimDuration> {
    (0.0..1.0e6f64).prop_map(SimDuration::from_secs)
}

fn arb_work() -> impl Strategy<Value = Work> {
    (0.0..1.0e9f64).prop_map(Work::from_mcycles)
}

proptest! {
    /// speed * (work / speed) == work (within floating-point tolerance).
    #[test]
    fn work_speed_duration_round_trip(
        work in arb_work(),
        speed in (1.0..1.0e6f64).prop_map(CpuSpeed::from_mhz),
    ) {
        let t = work / speed;
        let back = speed * t;
        prop_assert!((back.as_mcycles() - work.as_mcycles()).abs()
            <= 1e-9 * work.as_mcycles().max(1.0));
    }

    /// Unit addition is commutative and associative within tolerance.
    #[test]
    fn addition_laws(a in arb_speed(), b in arb_speed(), c in arb_speed()) {
        prop_assert_eq!(a + b, b + a);
        let l = (a + b) + c;
        let r = a + (b + c);
        prop_assert!(l.approx_eq(r, 1e-6 * (l.as_mhz().abs() + 1.0)));
    }

    /// Saturating subtraction never yields a negative magnitude.
    #[test]
    fn saturating_sub_non_negative(a in arb_speed(), b in arb_speed()) {
        prop_assert!(a.saturating_sub(b).as_mhz() >= 0.0);
    }

    /// SimTime +/- duration round-trips.
    #[test]
    fn time_shift_round_trip(
        t in (0.0..1.0e7f64).prop_map(SimTime::from_secs),
        d in arb_duration(),
    ) {
        let shifted = t + d;
        prop_assert!((shifted - t).as_secs() - d.as_secs() <= 1e-6);
        prop_assert!(((shifted - d).as_secs() - t.as_secs()).abs() <= 1e-6);
    }

    /// Clamp always lands inside the bounds.
    #[test]
    fn clamp_in_bounds(v in arb_speed(), a in arb_speed(), b in arb_speed()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let c = v.clamp(lo, hi);
        prop_assert!(c >= lo && c <= hi);
    }
}

/// Strategy for a random placement over `apps x nodes` with counts 0..3.
fn arb_placement(apps: u32, nodes: u32) -> impl Strategy<Value = Placement> {
    proptest::collection::vec(
        (0..apps, 0..nodes, 0u32..3),
        0..(apps as usize * nodes as usize).min(32),
    )
    .prop_map(|cells| {
        cells
            .into_iter()
            .map(|(a, n, c)| (AppId::new(a), NodeId::new(n), c))
            .collect()
    })
}

proptest! {
    /// Applying the diff of (from -> to) to `from` always produces `to`.
    #[test]
    fn diff_apply_reaches_target(
        from in arb_placement(6, 4),
        to in arb_placement(6, 4),
    ) {
        let mut current = from.clone();
        for action in from.diff(&to) {
            match action {
                PlacementAction::Start { app, node } => current.place(app, node),
                PlacementAction::Stop { app, node } => {
                    current.remove(app, node).expect("diff stops placed instance");
                }
                PlacementAction::Migrate { app, from, to } => {
                    current.remove(app, from).expect("diff migrates placed instance");
                    current.place(app, to);
                }
            }
        }
        prop_assert_eq!(current, to);
    }

    /// The diff of a placement with itself is empty.
    #[test]
    fn diff_self_is_empty(p in arb_placement(6, 4)) {
        prop_assert!(p.diff(&p).is_empty());
    }

    /// Total instance counts agree between iter() and total_placed().
    #[test]
    fn placement_totals_consistent(p in arb_placement(6, 4)) {
        let by_iter: u32 = p.iter().map(|(_, _, c)| c).sum();
        prop_assert_eq!(by_iter, p.total_placed());
        let by_apps: u32 = (0..6).map(|a| p.total_instances(AppId::new(a))).sum();
        prop_assert_eq!(by_apps, p.total_placed());
    }

    /// Load distribution totals are consistent across views.
    #[test]
    fn load_totals_consistent(
        cells in proptest::collection::vec((0u32..5, 0u32..4, 0.0..1e4f64), 0..24),
    ) {
        let l: LoadDistribution = cells
            .iter()
            .map(|&(a, n, s)| (AppId::new(a), NodeId::new(n), CpuSpeed::from_mhz(s)))
            .collect();
        let by_apps: CpuSpeed = (0..5).map(|a| l.app_total(AppId::new(a))).sum();
        let by_nodes: CpuSpeed = (0..4).map(|n| l.node_total(NodeId::new(n))).sum();
        prop_assert!(by_apps.approx_eq(l.total(), 1e-6));
        prop_assert!(by_nodes.approx_eq(l.total(), 1e-6));
    }
}
