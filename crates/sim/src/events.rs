//! The discrete-event queue.
//!
//! The control plane is driven by a typed [`SimEvent`] stream drained
//! from a deterministic priority queue. Ordering is by
//! `(time, class, seq)`:
//!
//! - `time` — earliest first (total order over finite `f64` seconds);
//! - `class` — at equal times, job arrivals fire before every other
//!   event kind. In lock-step runs this is a no-op (all arrivals are
//!   scheduled before the control-cycle chain starts, so their `seq`s
//!   are already globally smallest); in streaming runs it restores the
//!   same arrival-before-cycle semantics for arrivals injected lazily
//!   from a [`crate::source::WorkloadSource`];
//! - `seq` — the insertion sequence, a deterministic tie-break that
//!   makes same-instant, same-class events fire in scheduling order
//!   regardless of heap internals, run count, or solver thread count.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dynaplace_model::ids::{AppId, NodeId};
use dynaplace_model::units::SimTime;

/// What happens at an event.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum SimEvent {
    /// A job is submitted (index into the scenario's job list).
    JobArrival(AppId),
    /// A running job is projected to finish. Stale completions are
    /// filtered with the generation counter: the event only fires if the
    /// job's allocation has not changed since it was scheduled.
    JobCompletion { app: AppId, generation: u64 },
    /// A periodic control cycle of the placement controller (also used
    /// as the metric sampling tick for the baseline schedulers).
    ControlCycle,
    /// A node fails: its capacity drops to zero and every instance on it
    /// is evicted. Permanent unless a matching [`SimEvent::NodeRecovery`]
    /// is scheduled.
    NodeFailure(NodeId),
    /// A transiently failed node recovers: its capacity is restored and
    /// the scheduler re-places work onto it through the normal optimizer
    /// path.
    NodeRecovery(NodeId),
    /// A failed actuation's backoff (or quarantine) window elapsed: run a
    /// reconciliation pass over the desired-vs-actual diff.
    ActuationRetry,
    /// End of the simulation horizon.
    Horizon,
}

/// Backwards-compatible alias for the pre-refactor name.
pub type EventKind = SimEvent;

impl SimEvent {
    /// The same-instant ordering class: arrivals (0) fire before all
    /// other event kinds (1) at an equal timestamp. See the module docs
    /// for why this preserves lock-step ordering bit-for-bit.
    fn class(&self) -> u8 {
        match self {
            SimEvent::JobArrival(_) => 0,
            _ => 1,
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    time: SimTime,
    class: u8,
    seq: u64,
    kind: SimEvent,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.class == other.class && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first, with the
        // event class and insertion sequence as deterministic
        // tie-breaks.
        other
            .time
            .as_secs()
            .total_cmp(&self.time.as_secs())
            .then_with(|| other.class.cmp(&self.class))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic earliest-first event queue.
///
/// Events at the same instant fire arrivals-first, then in insertion
/// order.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at `time`.
    pub fn push(&mut self, time: SimTime, kind: SimEvent) {
        let seq = self.seq;
        self.seq += 1;
        let class = kind.class();
        self.heap.push(Entry {
            time,
            class,
            seq,
            kind,
        });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, SimEvent)> {
        self.heap.pop().map(|e| (e.time, e.kind))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5.0), SimEvent::ControlCycle);
        q.push(t(1.0), SimEvent::Horizon);
        q.push(t(3.0), SimEvent::JobArrival(AppId::new(0)));
        assert_eq!(q.pop().unwrap().0, t(1.0));
        assert_eq!(q.pop().unwrap().0, t(3.0));
        assert_eq!(q.pop().unwrap().0, t(5.0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_time_fires_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(t(2.0), SimEvent::JobArrival(AppId::new(1)));
        q.push(t(2.0), SimEvent::JobArrival(AppId::new(2)));
        q.push(t(2.0), SimEvent::ControlCycle);
        assert_eq!(q.pop().unwrap().1, SimEvent::JobArrival(AppId::new(1)));
        assert_eq!(q.pop().unwrap().1, SimEvent::JobArrival(AppId::new(2)));
        assert_eq!(q.pop().unwrap().1, SimEvent::ControlCycle);
    }

    #[test]
    fn same_time_arrivals_fire_before_other_classes() {
        // A late-scheduled arrival (high seq — as happens when a
        // streaming source injects it lazily) still fires before
        // same-instant non-arrival events.
        let mut q = EventQueue::new();
        q.push(t(7.0), SimEvent::ControlCycle);
        q.push(t(7.0), SimEvent::NodeFailure(NodeId::new(3)));
        q.push(t(7.0), SimEvent::JobArrival(AppId::new(9)));
        assert_eq!(q.pop().unwrap().1, SimEvent::JobArrival(AppId::new(9)));
        assert_eq!(q.pop().unwrap().1, SimEvent::ControlCycle);
        assert_eq!(q.pop().unwrap().1, SimEvent::NodeFailure(NodeId::new(3)));
    }

    #[test]
    fn same_timestamp_completion_and_failure_resolve_deterministically() {
        // Satellite: a completion and a node failure in the same
        // instant must resolve identically across runs via the
        // `(time, class, seq)` tie-break — insertion order wins within
        // a class, independent of heap internals.
        let drain = |flip: bool| -> Vec<SimEvent> {
            let mut q = EventQueue::new();
            // Unrelated padding at other times to shuffle heap shape.
            q.push(t(1.0), SimEvent::ControlCycle);
            q.push(t(9.0), SimEvent::Horizon);
            if flip {
                // Same scheduling order for the contested pair in both
                // runs; only the surrounding pushes differ.
                q.push(t(4.0), SimEvent::ActuationRetry);
            }
            q.push(
                t(5.0),
                SimEvent::JobCompletion {
                    app: AppId::new(2),
                    generation: 1,
                },
            );
            q.push(t(5.0), SimEvent::NodeFailure(NodeId::new(0)));
            if !flip {
                q.push(t(4.0), SimEvent::ActuationRetry);
            }
            let mut out = Vec::new();
            while let Some((_, kind)) = q.pop() {
                out.push(kind);
            }
            out
        };
        let a = drain(false);
        let b = drain(true);
        assert_eq!(a, b);
        // And the contested pair fired in insertion order.
        let at5: Vec<&SimEvent> = a
            .iter()
            .filter(|k| matches!(k, SimEvent::JobCompletion { .. } | SimEvent::NodeFailure(_)))
            .collect();
        assert_eq!(
            at5[0],
            &SimEvent::JobCompletion {
                app: AppId::new(2),
                generation: 1
            }
        );
        assert_eq!(at5[1], &SimEvent::NodeFailure(NodeId::new(0)));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(t(4.0), SimEvent::Horizon);
        q.push(t(2.0), SimEvent::ControlCycle);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        assert_eq!(q.len(), 2);
    }
}
