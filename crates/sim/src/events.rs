//! The discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dynaplace_model::ids::{AppId, NodeId};
use dynaplace_model::units::SimTime;

/// What happens at an event.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum EventKind {
    /// A job is submitted (index into the scenario's job list).
    JobArrival(AppId),
    /// A running job is projected to finish. Stale completions are
    /// filtered with the generation counter: the event only fires if the
    /// job's allocation has not changed since it was scheduled.
    JobCompletion { app: AppId, generation: u64 },
    /// A periodic control cycle of the placement controller (also used
    /// as the metric sampling tick for the baseline schedulers).
    ControlCycle,
    /// A node fails: its capacity drops to zero and every instance on it
    /// is evicted. Permanent unless a matching [`EventKind::NodeRecovery`]
    /// is scheduled.
    NodeFailure(NodeId),
    /// A transiently failed node recovers: its capacity is restored and
    /// the scheduler re-places work onto it through the normal optimizer
    /// path.
    NodeRecovery(NodeId),
    /// A failed actuation's backoff (or quarantine) window elapsed: run a
    /// reconciliation pass over the desired-vs-actual diff.
    ActuationRetry,
    /// End of the simulation horizon.
    Horizon,
}

#[derive(Debug, Clone)]
struct Entry {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first, with the
        // insertion sequence as a deterministic tie-break.
        other
            .time
            .as_secs()
            .total_cmp(&self.time.as_secs())
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic earliest-first event queue.
///
/// Events at the same instant fire in insertion order.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, kind });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        self.heap.pop().map(|e| (e.time, e.kind))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5.0), EventKind::ControlCycle);
        q.push(t(1.0), EventKind::Horizon);
        q.push(t(3.0), EventKind::JobArrival(AppId::new(0)));
        assert_eq!(q.pop().unwrap().0, t(1.0));
        assert_eq!(q.pop().unwrap().0, t(3.0));
        assert_eq!(q.pop().unwrap().0, t(5.0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_time_fires_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(t(2.0), EventKind::JobArrival(AppId::new(1)));
        q.push(t(2.0), EventKind::JobArrival(AppId::new(2)));
        q.push(t(2.0), EventKind::ControlCycle);
        assert_eq!(q.pop().unwrap().1, EventKind::JobArrival(AppId::new(1)));
        assert_eq!(q.pop().unwrap().1, EventKind::JobArrival(AppId::new(2)));
        assert_eq!(q.pop().unwrap().1, EventKind::ControlCycle);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(t(4.0), EventKind::Horizon);
        q.push(t(2.0), EventKind::ControlCycle);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        assert_eq!(q.len(), 2);
    }
}
