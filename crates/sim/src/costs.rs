//! The virtualization control cost model (§5).
//!
//! The paper measured a popular Intel virtualization product and found
//! simple linear relationships between a VM's memory footprint and the
//! latency of each control operation:
//!
//! ```text
//! suspend = footprint × 0.0353 s/MB
//! resume  = footprint × 0.0333 s/MB
//! migrate = footprint × 0.0132 s/MB
//! boot    = 3.6 s
//! ```
//!
//! While an operation is in flight the affected instance makes no
//! progress.

use serde::{Deserialize, Serialize};

use dynaplace_model::units::{Memory, SimDuration};

/// The kind of virtualization control operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmOperation {
    /// Cold-start a new VM.
    Boot,
    /// Serialize a running VM off its node.
    Suspend,
    /// Bring a suspended VM back onto a node.
    Resume,
    /// Live-migrate a running VM between nodes.
    Migrate,
}

impl VmOperation {
    /// Stable lowercase name, used by the decision trace.
    pub fn name(self) -> &'static str {
        match self {
            VmOperation::Boot => "boot",
            VmOperation::Suspend => "suspend",
            VmOperation::Resume => "resume",
            VmOperation::Migrate => "migrate",
        }
    }
}

/// Linear cost model for VM control operations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmCostModel {
    /// Seconds per MB of footprint for a suspend.
    pub suspend_secs_per_mb: f64,
    /// Seconds per MB of footprint for a resume.
    pub resume_secs_per_mb: f64,
    /// Seconds per MB of footprint for a migration.
    pub migrate_secs_per_mb: f64,
    /// Flat boot latency.
    pub boot: SimDuration,
}

impl Default for VmCostModel {
    /// The constants measured in the paper.
    fn default() -> Self {
        Self {
            suspend_secs_per_mb: 0.0353,
            resume_secs_per_mb: 0.0333,
            migrate_secs_per_mb: 0.0132,
            boot: SimDuration::from_secs(3.6),
        }
    }
}

impl VmCostModel {
    /// A cost model where every operation is free (used to isolate
    /// algorithmic effects, as the paper does in Experiment Two).
    pub fn free() -> Self {
        Self {
            suspend_secs_per_mb: 0.0,
            resume_secs_per_mb: 0.0,
            migrate_secs_per_mb: 0.0,
            boot: SimDuration::ZERO,
        }
    }

    /// Latency of `op` for a VM with the given memory footprint.
    pub fn latency(&self, op: VmOperation, footprint: Memory) -> SimDuration {
        let mb = footprint.as_mb();
        match op {
            VmOperation::Boot => self.boot,
            VmOperation::Suspend => SimDuration::from_secs(mb * self.suspend_secs_per_mb),
            VmOperation::Resume => SimDuration::from_secs(mb * self.resume_secs_per_mb),
            VmOperation::Migrate => SimDuration::from_secs(mb * self.migrate_secs_per_mb),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let m = VmCostModel::default();
        let footprint = Memory::from_mb(1_000.0);
        assert!((m.latency(VmOperation::Suspend, footprint).as_secs() - 35.3).abs() < 1e-9);
        assert!((m.latency(VmOperation::Resume, footprint).as_secs() - 33.3).abs() < 1e-9);
        assert!((m.latency(VmOperation::Migrate, footprint).as_secs() - 13.2).abs() < 1e-9);
        assert_eq!(m.latency(VmOperation::Boot, footprint).as_secs(), 3.6);
    }

    #[test]
    fn boot_is_footprint_independent() {
        let m = VmCostModel::default();
        assert_eq!(
            m.latency(VmOperation::Boot, Memory::ZERO),
            m.latency(VmOperation::Boot, Memory::from_mb(1e6)),
        );
    }

    #[test]
    fn free_model_is_free() {
        let m = VmCostModel::free();
        for op in [
            VmOperation::Boot,
            VmOperation::Suspend,
            VmOperation::Resume,
            VmOperation::Migrate,
        ] {
            assert_eq!(m.latency(op, Memory::from_mb(4_320.0)), SimDuration::ZERO);
        }
    }
}
