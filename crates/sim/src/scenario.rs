//! Scenario builders for the paper's evaluation (§4.3 and §5).
//!
//! Every scenario returns a fully configured [`Simulation`]; the bench
//! harness and the examples only choose which scenario and which
//! scheduler to run.

use dynaplace_batch::job::{JobProfile, JobSpec};
use dynaplace_model::cluster::Cluster;
use dynaplace_model::ids::NodeId;
use dynaplace_model::node::NodeSpec;
use dynaplace_model::units::{CpuSpeed, Memory, SimDuration, SimTime};
use dynaplace_rpf::goal::{CompletionGoal, ResponseTimeGoal};
use dynaplace_txn::workload::ConstantRate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::{SimConfig, Simulation};

/// The §4.3 example's two scenarios, differing in J2's goal factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExampleScenario {
    /// J2 has relative goal factor 4 (deadline t = 17).
    S1,
    /// J2 has relative goal factor 3 (deadline t = 13).
    S2,
}

/// Builds the §4.3 worked example (Table 1): one node with a 1,000 MHz
/// CPU and 2,000 MB of memory; jobs J1 (4,000 Mc @ ≤1,000 MHz, goal 20),
/// J2 (2,000 Mc @ ≤500 MHz, goal 17 or 13), J3 (4,000 Mc @ ≤500 MHz,
/// goal 10), arriving at t = 0, 1, 2; control cycle T = 1 s; VM costs
/// disabled for clarity, matching the paper's idealized arithmetic.
pub fn paper_example(scenario: ExampleScenario, config: SimConfig) -> Simulation {
    let mut cluster = Cluster::new();
    cluster.add_node(
        NodeSpec::try_new(CpuSpeed::from_mhz(1_000.0), Memory::from_mb(2_000.0))
            .expect("valid node capacities")
            .with_name("node"),
    );
    let mut sim = Simulation::new(cluster, config);
    let mem = Memory::from_mb(750.0);
    let j2_deadline = match scenario {
        ExampleScenario::S1 => 17.0,
        ExampleScenario::S2 => 13.0,
    };
    // J1: factor 5 over a 4 s best run.
    sim.add_job(|app| {
        JobSpec::new(
            app,
            JobProfile::single_stage(
                dynaplace_model::units::Work::from_mcycles(4_000.0),
                CpuSpeed::from_mhz(1_000.0),
                mem,
            ),
            SimTime::ZERO,
            CompletionGoal::new(SimTime::ZERO, SimTime::from_secs(20.0)),
        )
    });
    sim.add_job(|app| {
        JobSpec::new(
            app,
            JobProfile::single_stage(
                dynaplace_model::units::Work::from_mcycles(2_000.0),
                CpuSpeed::from_mhz(500.0),
                mem,
            ),
            SimTime::from_secs(1.0),
            CompletionGoal::new(SimTime::from_secs(1.0), SimTime::from_secs(j2_deadline)),
        )
    });
    sim.add_job(|app| {
        JobSpec::new(
            app,
            JobProfile::single_stage(
                dynaplace_model::units::Work::from_mcycles(4_000.0),
                CpuSpeed::from_mhz(500.0),
                mem,
            ),
            SimTime::from_secs(2.0),
            CompletionGoal::new(SimTime::from_secs(2.0), SimTime::from_secs(10.0)),
        )
    });
    sim
}

/// The Experiment One cluster: 25 nodes, each with four 3.9 GHz
/// processors (15,600 MHz) and 16 GB (16,384 MB).
pub fn experiment_one_cluster() -> Cluster {
    Cluster::homogeneous(
        25,
        NodeSpec::try_new(CpuSpeed::from_mhz(4.0 * 3_900.0), Memory::from_mb(16_384.0))
            .expect("valid node capacities"),
    )
}

/// The Experiment One job (Table 2): 68,640,000 Mcycles at ≤3,900 MHz
/// (17,600 s best), 4,320 MB, relative goal factor 2.7 (47,520 s).
pub fn experiment_one_job(app: dynaplace_model::ids::AppId, arrival: SimTime) -> JobSpec {
    JobSpec::with_goal_factor(
        app,
        JobProfile::single_stage(
            dynaplace_model::units::Work::from_mcycles(68_640_000.0),
            CpuSpeed::from_mhz(3_900.0),
            Memory::from_mb(4_320.0),
        ),
        arrival,
        2.7,
    )
}

/// Draws exponential inter-arrival times with the given mean.
fn exponential_arrivals(
    rng: &mut StdRng,
    count: usize,
    mean_secs: f64,
    start: SimTime,
) -> Vec<SimTime> {
    let mut t = start;
    (0..count)
        .map(|_| {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            t += SimDuration::from_secs(-mean_secs * u.ln());
            t
        })
        .collect()
}

/// Builds Experiment One (§5.1): `count` identical jobs (Table 2)
/// submitted with exponential inter-arrival times (mean
/// `inter_arrival_secs`, the paper uses 260 s and 800 jobs) to the
/// 25-node cluster, scheduled per `config` (the paper uses APC with a
/// 600 s control cycle).
pub fn experiment_one(
    seed: u64,
    count: usize,
    inter_arrival_secs: f64,
    config: SimConfig,
) -> Simulation {
    let mut sim = Simulation::new(experiment_one_cluster(), config);
    let mut rng = StdRng::seed_from_u64(seed);
    for arrival in exponential_arrivals(&mut rng, count, inter_arrival_secs, SimTime::ZERO) {
        sim.add_job(|app| experiment_one_job(app, arrival));
    }
    sim
}

/// One of Experiment Two's three job shapes (§5.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobShape {
    /// Best-case execution time in seconds.
    pub min_exec_secs: f64,
    /// Maximum execution speed in MHz.
    pub max_speed_mhz: f64,
    /// Selection probability.
    pub probability: f64,
}

/// The §5.2 job mix: (9,000 s @ 3,900 MHz, 10%), (17,600 s @ 1,560 MHz,
/// 40%), (600 s @ 2,340 MHz, 50%).
pub const EXPERIMENT_TWO_SHAPES: [JobShape; 3] = [
    JobShape {
        min_exec_secs: 9_000.0,
        max_speed_mhz: 3_900.0,
        probability: 0.10,
    },
    JobShape {
        min_exec_secs: 17_600.0,
        max_speed_mhz: 1_560.0,
        probability: 0.40,
    },
    JobShape {
        min_exec_secs: 600.0,
        max_speed_mhz: 2_340.0,
        probability: 0.50,
    },
];

/// The §5.2 goal factors: 1.3 (10%), 2.5 (30%), 4.0 (60%).
pub const EXPERIMENT_TWO_FACTORS: [(f64, f64); 3] = [(1.3, 0.10), (2.5, 0.30), (4.0, 0.60)];

fn pick<'a, T>(rng: &mut StdRng, options: impl IntoIterator<Item = (&'a T, f64)>) -> &'a T {
    let options: Vec<(&T, f64)> = options.into_iter().collect();
    let total: f64 = options.iter().map(|(_, p)| p).sum();
    let mut x: f64 = rng.gen::<f64>() * total;
    for (item, p) in &options {
        x -= p;
        if x <= 0.0 {
            return item;
        }
    }
    options.last().expect("non-empty options").0
}

/// Builds Experiment Two (§5.2): `count` jobs with randomly mixed shapes
/// and goal factors, exponential inter-arrival times with mean
/// `inter_arrival_secs` (the paper sweeps 400 → 50 s), on the 25-node
/// cluster. All jobs use the Experiment One memory footprint (4,320 MB).
pub fn experiment_two(
    seed: u64,
    count: usize,
    inter_arrival_secs: f64,
    config: SimConfig,
) -> Simulation {
    let mut sim = Simulation::new(experiment_one_cluster(), config);
    let mut rng = StdRng::seed_from_u64(seed);
    let arrivals = exponential_arrivals(&mut rng, count, inter_arrival_secs, SimTime::ZERO);
    for arrival in arrivals {
        let shape = *pick(
            &mut rng,
            EXPERIMENT_TWO_SHAPES.iter().map(|s| (s, s.probability)),
        );
        let factor = *pick(
            &mut rng,
            EXPERIMENT_TWO_FACTORS.iter().map(|(f, p)| (f, *p)),
        );
        let work = shape.min_exec_secs * shape.max_speed_mhz;
        sim.add_job(move |app| {
            JobSpec::with_goal_factor(
                app,
                JobProfile::single_stage(
                    dynaplace_model::units::Work::from_mcycles(work),
                    CpuSpeed::from_mhz(shape.max_speed_mhz),
                    Memory::from_mb(4_320.0),
                ),
                arrival,
                factor,
            )
        });
    }
    sim
}

/// The three system configurations of Experiment Three (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingConfig {
    /// APC with dynamic resource sharing across all 25 nodes.
    Dynamic,
    /// Static partition: 9 nodes for the transactional workload (enough
    /// to fully satisfy it), 16 for batch under FCFS.
    StaticTx9,
    /// Static partition: 6 nodes transactional, 19 batch under FCFS.
    StaticTx6,
}

/// Parameters of Experiment Three's constant transactional workload,
/// calibrated to the paper's anchor points (see DESIGN.md §2):
///
/// - maximum achievable relative performance ≈ 0.66, reached at a
///   saturation allocation of ≈ 130,000 MHz (< 9 nodes), and
/// - on a 6-node partition (93,600 MHz) the workload still functions but
///   sits well below the maximum (u ≈ 0.45, "consistently lower" per
///   §5.3).
///
/// That pins λ·d = 34,700 MHz and d/t_floor = 95,300 MHz, with the goal
/// τ = t_floor / 0.34.
pub fn experiment_three_txn() -> (f64, f64, SimDuration, ResponseTimeGoal) {
    let rate = 200.0; // req/s
    let demand = 173.5; // Mcycles/request → λ·d = 34,700 MHz
    let floor = SimDuration::from_secs(demand / 95_300.0);
    let goal = ResponseTimeGoal::new(SimDuration::from_secs(floor.as_secs() / 0.34));
    (rate, demand, floor, goal)
}

/// Builds Experiment Three (§5.3): the Experiment One batch workload
/// plus one constant transactional application whose single instance per
/// node is small enough (1,024 MB) to collocate with three jobs.
///
/// `jobs` and `inter_arrival_secs` control the batch load (the paper
/// uses the Experiment One workload with queuing); `tail_inter_arrival`
/// applies to the last quarter of jobs (the paper slows submissions at
/// the end so the queue drains).
pub fn experiment_three(
    seed: u64,
    jobs: usize,
    inter_arrival_secs: f64,
    tail_inter_arrival: f64,
    sharing: SharingConfig,
    mut config: SimConfig,
) -> Simulation {
    let cluster = experiment_one_cluster();
    let all_nodes: Vec<NodeId> = cluster.node_ids().collect();
    let (txn_nodes, batch_nodes): (Vec<NodeId>, Vec<NodeId>) = match sharing {
        SharingConfig::Dynamic => (all_nodes.clone(), all_nodes.clone()),
        SharingConfig::StaticTx9 => (all_nodes[..9].to_vec(), all_nodes[9..].to_vec()),
        SharingConfig::StaticTx6 => (all_nodes[..6].to_vec(), all_nodes[6..].to_vec()),
    };
    if sharing != SharingConfig::Dynamic {
        config.batch_nodes = Some(batch_nodes.clone());
        config.static_txn_nodes = Some(txn_nodes.clone());
    }

    let mut sim = Simulation::new(cluster, config);
    let (rate, demand, floor, goal) = experiment_three_txn();
    sim.add_txn(
        Memory::from_mb(1_024.0),
        25,
        demand,
        floor,
        goal,
        Box::new(ConstantRate(rate)),
        match sharing {
            SharingConfig::Dynamic => None,
            _ => Some(txn_nodes),
        },
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let head = jobs - jobs / 4;
    let mut arrivals = exponential_arrivals(&mut rng, head, inter_arrival_secs, SimTime::ZERO);
    let last = arrivals.last().copied().unwrap_or(SimTime::ZERO);
    arrivals.extend(exponential_arrivals(
        &mut rng,
        jobs - head,
        tail_inter_arrival,
        last,
    ));
    for arrival in arrivals {
        let pinned = match sharing {
            SharingConfig::Dynamic => None,
            _ => Some(batch_nodes.clone()),
        };
        sim.add_job_pinned(|app| experiment_one_job(app, arrival), pinned);
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::VmCostModel;
    use crate::engine::{MetricsRetention, DEFAULT_STALL_LIMIT};
    use dynaplace_apc::optimizer::ApcConfig;
    use dynaplace_apc::PolicyHandle;

    fn tiny_apc_config() -> SimConfig {
        SimConfig {
            cycle: SimDuration::from_secs(1.0),
            horizon: Some(SimDuration::from_secs(100.0)),
            costs: VmCostModel::free(),
            scheduler: PolicyHandle::apc_with(ApcConfig::paper_narrative(), false),
            batch_nodes: None,
            static_txn_nodes: None,
            noise: crate::engine::EstimationNoise::NONE,
            profile_from_history: false,
            node_failures: Vec::new(),
            estimate_txn_demand: false,
            record_placements: false,
            actuation: Default::default(),
            observation: Default::default(),
            trace: Default::default(),
            stall_limit: DEFAULT_STALL_LIMIT,
            retention: MetricsRetention::Full,
        }
    }

    #[test]
    fn example_scenarios_complete_all_jobs() {
        for scenario in [ExampleScenario::S1, ExampleScenario::S2] {
            let sim = paper_example(scenario, tiny_apc_config());
            let metrics = sim.run();
            assert_eq!(metrics.completions.len(), 3, "{scenario:?}");
        }
    }

    #[test]
    fn experiment_builders_are_deterministic() {
        let a = experiment_one(7, 10, 260.0, tiny_apc_config());
        let b = experiment_one(7, 10, 260.0, tiny_apc_config());
        // Same seed → same arrival schedule → same completions.
        let ma = a.run();
        let mb = b.run();
        assert_eq!(ma.completions.len(), mb.completions.len());
        for (x, y) in ma.completions.iter().zip(&mb.completions) {
            assert_eq!(x.app, y.app);
            assert_eq!(x.completion, y.completion);
        }
    }

    #[test]
    fn experiment_two_mixes_shapes() {
        let sim = experiment_two(3, 40, 50.0, tiny_apc_config());
        // Jobs registered: 40.
        assert_eq!(sim.cluster().len(), 25);
    }

    #[test]
    fn pick_respects_support() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let shape = pick(
                &mut rng,
                EXPERIMENT_TWO_SHAPES.iter().map(|s| (s, s.probability)),
            );
            assert!(EXPERIMENT_TWO_SHAPES.iter().any(|s| s == shape));
        }
    }
}
