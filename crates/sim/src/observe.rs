//! The imperfect-telemetry observation layer.
//!
//! The paper's controller acts on *measured* state: every node and
//! application reports through heartbeats, and the placement problem is
//! built from that observed snapshot, never from the simulated ground
//! truth. This module models the sensing path: per-source/per-cycle
//! deterministic (splitmix64) report loss, staleness, and multiplicative
//! noise on demand estimates; a node-health state machine
//! (Healthy → Suspect → Dead with confirmation thresholds and
//! flap-damping hysteresis); and an EWMA demand estimator with a
//! configurable safety-margin headroom.
//!
//! Everything here is a pure function of the configuration seed and the
//! (source, cycle) pair — two runs of the same scenario are
//! bit-identical. With the default configuration the layer is
//! **exactly off**: [`ObservationConfig::is_active`] is `false`, the
//! engine never consults the observed snapshot, and runs are
//! bit-identical to a simulator without an observation layer at all.
//! Even an *active* configuration whose fault knobs are all zero keeps
//! bit-identity, because fresh, noiseless, unsmoothed reports yield
//! [`JobView::Live`] / [`TxnView::Live`] views that tell the engine to
//! read the truth directly (important for between-cycle advice passes,
//! which build problems at instants where any cached value would
//! diverge from the live truth).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dynaplace_model::ids::{AppId, NodeId};
use dynaplace_model::units::SimTime;

/// What the engine does when the observed snapshot is older than the
/// staleness budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedMode {
    /// Hold all placement changes for the cycle: no optimization pass
    /// runs; reconciliation of already-desired state continues.
    Hold,
    /// Drop to a non-disruptive `fill_only` pass for the cycle.
    FillOnly,
}

impl DegradedMode {
    /// Wire name (`hold` / `fill_only`).
    pub fn name(self) -> &'static str {
        match self {
            DegradedMode::Hold => "hold",
            DegradedMode::FillOnly => "fill_only",
        }
    }

    /// Parses a wire name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "hold" => Some(DegradedMode::Hold),
            "fill_only" => Some(DegradedMode::FillOnly),
            _ => None,
        }
    }
}

/// Configuration of the observation layer.
///
/// The default models perfect telemetry: every heartbeat and report
/// arrives fresh and exact, the health machine never leaves Healthy,
/// the estimator passes demand through unsmoothed and uninflated — and
/// [`ObservationConfig::is_active`] is `false`, so the engine skips the
/// layer entirely and behaves bit-identically to the pre-observation
/// simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservationConfig {
    /// Probability that one source's (node heartbeat or app report)
    /// transmission for one cycle is lost, drawn deterministically per
    /// (source, cycle). `0.0` disables loss. Must be `< 1.0` or
    /// telemetry never recovers.
    pub heartbeat_loss: f64,
    /// Maximum delivery lag of an app report, in control cycles: each
    /// delivered report carries data from `s` cycles ago with `s` drawn
    /// uniformly in `0..=max_staleness_cycles`. `0` means always fresh.
    pub max_staleness_cycles: u32,
    /// Relative multiplicative noise on delivered demand values: each
    /// report is scaled by a deterministic factor in
    /// `[1 - noise, 1 + noise]`. `0.0` disables noise.
    pub noise: f64,
    /// Faults (loss, staleness, noise) only affect transmissions at
    /// instants strictly before this; from then on telemetry is perfect
    /// — the "faults stop" switch that makes convergence provable.
    /// `None` means faults for the whole run.
    pub loss_until: Option<SimTime>,
    /// Seed for the deterministic loss/staleness/noise draws.
    pub seed: u64,
    /// Consecutive missed heartbeats before a Healthy node becomes
    /// Suspect (frozen for new placements, residents kept). Must be
    /// at least 1.
    pub suspect_after: u32,
    /// Consecutive missed heartbeats before a Suspect node is declared
    /// Dead (residents evicted, capacity zeroed in the controller's
    /// view). Must exceed `suspect_after`.
    pub dead_after: u32,
    /// Consecutive delivered heartbeats before a Suspect or Dead node
    /// is reinstated to Healthy (flap damping: a single heartbeat never
    /// reinstates). Must be at least 1.
    pub reinstate_after: u32,
    /// EWMA smoothing factor for transactional demand estimates:
    /// `estimate = alpha * observed + (1 - alpha) * previous`. `1.0`
    /// (the default) disables smoothing.
    pub ewma_alpha: f64,
    /// Safety-margin headroom: the presented transactional demand is
    /// the smoothed estimate times `1 + headroom`. `0.0` disables it.
    pub headroom: f64,
    /// Degrade when the observed snapshot is older than this many
    /// cycles (the maximum app-report age). `0` disables the budget.
    pub staleness_budget_cycles: u32,
    /// What to do on a budget breach.
    pub degraded_mode: DegradedMode,
}

impl Default for ObservationConfig {
    fn default() -> Self {
        Self {
            heartbeat_loss: 0.0,
            max_staleness_cycles: 0,
            noise: 0.0,
            loss_until: None,
            seed: 0,
            suspect_after: 2,
            dead_after: 4,
            reinstate_after: 2,
            ewma_alpha: 1.0,
            headroom: 0.0,
            staleness_budget_cycles: 0,
            degraded_mode: DegradedMode::Hold,
        }
    }
}

impl ObservationConfig {
    /// Whether the engine routes decisions through the observed
    /// snapshot at all. `false` for the default configuration: the
    /// exactly-off contract.
    pub fn is_active(&self) -> bool {
        *self != Self::default()
    }

    /// Whether transmissions at `now` can be lost, stale, or noisy.
    pub fn faults_active(&self, now: SimTime) -> bool {
        (self.heartbeat_loss > 0.0 || self.max_staleness_cycles > 0 || self.noise > 0.0)
            && self.loss_until.map_or(true, |until| now < until)
    }

    /// Whether `node`'s heartbeat for `cycle` is lost.
    pub fn heartbeat_missed(&self, node: NodeId, cycle: u64, now: SimTime) -> bool {
        self.faults_active(now)
            && self.heartbeat_loss > 0.0
            && unit(mix(self.seed, &[1, node.index() as u64, cycle])) < self.heartbeat_loss
    }

    /// Whether `app`'s state report for `cycle` is lost.
    pub fn report_lost(&self, app: AppId, cycle: u64, now: SimTime) -> bool {
        self.faults_active(now)
            && self.heartbeat_loss > 0.0
            && unit(mix(self.seed, &[2, app.index() as u64, cycle])) < self.heartbeat_loss
    }

    /// Delivery lag (in cycles) of `app`'s report for `cycle`.
    pub fn staleness(&self, app: AppId, cycle: u64, now: SimTime) -> u32 {
        if !self.faults_active(now) || self.max_staleness_cycles == 0 {
            return 0;
        }
        (mix(self.seed, &[3, app.index() as u64, cycle]) % u64::from(self.max_staleness_cycles + 1))
            as u32
    }

    /// Multiplicative noise factor on `app`'s delivered demand for
    /// `cycle`, in `[1 - noise, 1 + noise]`; exactly `1.0` when noise
    /// is disabled (or faults are over), preserving bit-identity.
    pub fn noise_factor(&self, app: AppId, cycle: u64, now: SimTime) -> f64 {
        if !self.faults_active(now) || self.noise == 0.0 {
            return 1.0;
        }
        let u = unit(mix(self.seed, &[4, app.index() as u64, cycle]));
        1.0 + self.noise * (2.0 * u - 1.0)
    }
}

/// Controller-side belief about one node's health.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeHealth {
    /// Heartbeats arriving normally; fully schedulable.
    #[default]
    Healthy,
    /// Enough consecutive heartbeats missed to freeze the node for new
    /// placements; residents are kept.
    Suspect,
    /// Enough consecutive heartbeats missed to declare the node dead:
    /// residents evicted, capacity zeroed in the controller's view.
    Dead,
}

/// A health-state transition reported by [`ObservationState::observe_node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthTransition {
    /// Healthy → Suspect.
    Suspected,
    /// Suspect → Dead.
    Died,
    /// Suspect or Dead → Healthy (heartbeats resumed long enough).
    Reinstated,
}

/// Per-node counters of the health state machine.
#[derive(Debug, Clone, Copy, Default)]
struct HealthEntry {
    state: NodeHealth,
    /// Consecutive missed heartbeats (resets on any delivery).
    misses: u32,
    /// Consecutive delivered heartbeats while not Healthy (resets on
    /// any miss), driving reinstatement hysteresis.
    oks: u32,
}

impl HealthEntry {
    fn step(&mut self, miss: bool, cfg: &ObservationConfig) -> Option<HealthTransition> {
        if miss {
            self.oks = 0;
            self.misses = self.misses.saturating_add(1);
            match self.state {
                NodeHealth::Healthy if self.misses >= cfg.suspect_after => {
                    self.state = NodeHealth::Suspect;
                    Some(HealthTransition::Suspected)
                }
                NodeHealth::Suspect if self.misses >= cfg.dead_after => {
                    self.state = NodeHealth::Dead;
                    Some(HealthTransition::Died)
                }
                _ => None,
            }
        } else {
            self.misses = 0;
            if self.state == NodeHealth::Healthy {
                self.oks = 0;
                return None;
            }
            self.oks = self.oks.saturating_add(1);
            if self.oks >= cfg.reinstate_after {
                self.state = NodeHealth::Healthy;
                self.oks = 0;
                Some(HealthTransition::Reinstated)
            } else {
                None
            }
        }
    }
}

/// How the controller should read one batch job's progress this cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobView {
    /// The report was fresh and exact: read the live truth directly
    /// (keeps bit-identity, including for between-cycle advice passes).
    Live,
    /// The report was stale or noisy: present this consumed work (in
    /// megacycles, from `age` cycles ago) with the profile scaled by
    /// `factor`.
    Snapshot {
        /// Observed consumed work, megacycles.
        consumed_mcycles: f64,
        /// Multiplicative noise on the job's total work.
        factor: f64,
    },
}

/// How the controller should read one transactional application's
/// arrival rate this cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TxnView {
    /// Fresh, exact, unsmoothed, uninflated: read the live arrival
    /// pattern directly.
    Live,
    /// Present this estimated rate (EWMA-smoothed, headroom-inflated).
    Estimate(f64),
}

/// One source reading: the view plus whether the transmission was lost
/// and how old the delivered data is (for the staleness budget).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reading<V> {
    /// What the controller should see.
    pub view: V,
    /// Whether this cycle's transmission was lost (the cached previous
    /// report was reused).
    pub lost: bool,
    /// Age of the delivered data, in cycles.
    pub age: u32,
}

/// Cached last-delivered job report (reused when a transmission drops).
#[derive(Debug, Clone, Copy)]
struct JobReport {
    consumed_mcycles: f64,
    factor: f64,
    age: u32,
}

/// Per-app transactional estimator state.
#[derive(Debug, Clone, Copy)]
struct TxnEstimator {
    ewma: f64,
    age: u32,
}

/// All controller-side observation state for one run: node-health
/// beliefs, the believed-dead set, report caches, estimator state, and
/// the per-cycle views. All maps are ordered, so iteration (and
/// therefore the whole engine) stays deterministic.
#[derive(Debug, Default)]
pub struct ObservationState {
    health: BTreeMap<NodeId, HealthEntry>,
    /// Nodes the controller currently believes dead. The engine zeroes
    /// their capacity in its observed cluster; reinstatement removes
    /// them again.
    pub believed_dead: BTreeSet<NodeId>,
    /// Ring buffer of each job's true consumed work (megacycles), one
    /// entry per cycle, newest at the back — the staleness draw indexes
    /// backwards into it.
    job_truth: BTreeMap<AppId, VecDeque<f64>>,
    job_cache: BTreeMap<AppId, JobReport>,
    txn_state: BTreeMap<AppId, TxnEstimator>,
    job_views: BTreeMap<AppId, JobView>,
    txn_views: BTreeMap<AppId, TxnView>,
    /// Oldest app report delivered (or carried) this cycle.
    cycle_max_age: u32,
}

impl ObservationState {
    /// Creates an empty state (all nodes believed Healthy).
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new observation cycle: clears the per-cycle views and
    /// the snapshot-age high-water mark.
    pub fn begin_cycle(&mut self) {
        self.job_views.clear();
        self.txn_views.clear();
        self.cycle_max_age = 0;
    }

    /// Feeds one node heartbeat (delivered or missed) into the health
    /// state machine. Returns any transition plus the node's current
    /// consecutive-miss count.
    pub fn observe_node(
        &mut self,
        cfg: &ObservationConfig,
        node: NodeId,
        miss: bool,
    ) -> (Option<HealthTransition>, u32) {
        let entry = self.health.entry(node).or_default();
        let transition = entry.step(miss, cfg);
        (transition, entry.misses)
    }

    /// The controller's current belief about `node` (Healthy when it
    /// has never been observed).
    pub fn node_state(&self, node: NodeId) -> NodeHealth {
        self.health.get(&node).map(|e| e.state).unwrap_or_default()
    }

    /// Nodes currently believed Suspect, in id order.
    pub fn suspect_nodes(&self) -> Vec<NodeId> {
        self.health
            .iter()
            .filter(|(_, e)| e.state == NodeHealth::Suspect)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Processes one job's state report for `cycle`: records the true
    /// consumed work into the staleness ring, resolves the loss /
    /// staleness / noise draws, and produces the view the controller
    /// gets.
    pub fn observe_job(
        &mut self,
        cfg: &ObservationConfig,
        app: AppId,
        truth_consumed_mcycles: f64,
        cycle: u64,
        now: SimTime,
    ) -> Reading<JobView> {
        let depth = cfg.max_staleness_cycles as usize + 1;
        let ring = self.job_truth.entry(app).or_default();
        ring.push_back(truth_consumed_mcycles);
        while ring.len() > depth {
            ring.pop_front();
        }
        let reading = if cfg.report_lost(app, cycle, now) {
            match self.job_cache.get_mut(&app) {
                Some(cache) => {
                    // Reuse the last delivered report, one cycle older.
                    cache.age = cache.age.saturating_add(1);
                    Reading {
                        view: JobView::Snapshot {
                            consumed_mcycles: cache.consumed_mcycles,
                            factor: cache.factor,
                        },
                        lost: true,
                        age: cache.age,
                    }
                }
                // Nothing ever delivered: the controller bootstraps
                // from the live truth rather than inventing a zero.
                None => Reading {
                    view: JobView::Live,
                    lost: true,
                    age: 0,
                },
            }
        } else {
            let s = cfg.staleness(app, cycle, now).min(ring.len() as u32 - 1);
            let consumed = ring[ring.len() - 1 - s as usize];
            let factor = cfg.noise_factor(app, cycle, now);
            self.job_cache.insert(
                app,
                JobReport {
                    consumed_mcycles: consumed,
                    factor,
                    age: s,
                },
            );
            let view = if s == 0 && factor == 1.0 {
                JobView::Live
            } else {
                JobView::Snapshot {
                    consumed_mcycles: consumed,
                    factor,
                }
            };
            Reading {
                view,
                lost: false,
                age: s,
            }
        };
        self.job_views.insert(app, reading.view);
        self.cycle_max_age = self.cycle_max_age.max(reading.age);
        reading
    }

    /// Processes one transactional application's report for `cycle`.
    /// `rate_at_lag(s)` must return the true arrival rate `s` cycles
    /// ago (staleness is time-indexed for rates, so no history buffer
    /// is needed).
    pub fn observe_txn(
        &mut self,
        cfg: &ObservationConfig,
        app: AppId,
        cycle: u64,
        now: SimTime,
        mut rate_at_lag: impl FnMut(u32) -> f64,
    ) -> Reading<TxnView> {
        let reading = if cfg.report_lost(app, cycle, now) {
            match self.txn_state.get_mut(&app) {
                Some(est) => {
                    est.age = est.age.saturating_add(1);
                    Reading {
                        view: TxnView::Estimate(est.ewma * (1.0 + cfg.headroom)),
                        lost: true,
                        age: est.age,
                    }
                }
                None => Reading {
                    view: TxnView::Live,
                    lost: true,
                    age: 0,
                },
            }
        } else {
            let s = cfg.staleness(app, cycle, now);
            let delivered = rate_at_lag(s) * cfg.noise_factor(app, cycle, now);
            let est = match self.txn_state.get(&app) {
                Some(prev) => cfg.ewma_alpha * delivered + (1.0 - cfg.ewma_alpha) * prev.ewma,
                None => delivered,
            };
            self.txn_state
                .insert(app, TxnEstimator { ewma: est, age: s });
            let fresh_and_exact =
                s == 0 && cfg.noise == 0.0 && cfg.ewma_alpha == 1.0 && cfg.headroom == 0.0;
            let view = if fresh_and_exact {
                TxnView::Live
            } else {
                TxnView::Estimate(est * (1.0 + cfg.headroom))
            };
            Reading {
                view,
                lost: false,
                age: s,
            }
        };
        self.txn_views.insert(app, reading.view);
        self.cycle_max_age = self.cycle_max_age.max(reading.age);
        reading
    }

    /// The controller's view of `app`'s progress this cycle. `Live`
    /// for apps without a report (e.g. jobs that arrived between
    /// cycles): the bootstrap is the truth, never an invented zero.
    pub fn job_view(&self, app: AppId) -> JobView {
        self.job_views.get(&app).copied().unwrap_or(JobView::Live)
    }

    /// The controller's view of `app`'s arrival rate this cycle.
    pub fn txn_view(&self, app: AppId) -> TxnView {
        self.txn_views.get(&app).copied().unwrap_or(TxnView::Live)
    }

    /// Age of the oldest app report in this cycle's snapshot (node
    /// heartbeats are deliberately excluded: a believed-dead node would
    /// otherwise pin the snapshot stale forever).
    pub fn snapshot_age(&self) -> u32 {
        self.cycle_max_age
    }
}

// Deterministic draw helpers — same construction as the actuation
// layer's, so faults everywhere in the simulator share one idiom.

/// splitmix64 finalizer — the standard 64-bit avalanche mix.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix(seed: u64, parts: &[u64]) -> u64 {
    let mut h = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
    for &p in parts {
        h = splitmix64(h ^ p);
    }
    h
}

/// Uniform draw in `[0, 1)` from a mixed hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: u32) -> NodeId {
        NodeId::new(i)
    }
    fn app(i: u32) -> AppId {
        AppId::new(i)
    }

    fn lossy(loss: f64) -> ObservationConfig {
        ObservationConfig {
            heartbeat_loss: loss,
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn default_is_exactly_off_and_seed_activates() {
        assert!(!ObservationConfig::default().is_active());
        let cfg = ObservationConfig {
            seed: 7,
            ..Default::default()
        };
        assert!(cfg.is_active(), "any non-default field activates the layer");
        assert!(!cfg.faults_active(SimTime::ZERO), "zero knobs: no faults");
    }

    #[test]
    fn draws_are_pure_functions_of_source_and_cycle() {
        let cfg = ObservationConfig {
            heartbeat_loss: 0.4,
            max_staleness_cycles: 3,
            noise: 0.2,
            seed: 42,
            ..Default::default()
        };
        for cycle in 0..50 {
            let a = cfg.heartbeat_missed(node(1), cycle, SimTime::ZERO);
            let b = cfg.heartbeat_missed(node(1), cycle, SimTime::ZERO);
            assert_eq!(a, b);
            let s = cfg.staleness(app(2), cycle, SimTime::ZERO);
            assert_eq!(s, cfg.staleness(app(2), cycle, SimTime::ZERO));
            assert!(s <= 3);
            let f = cfg.noise_factor(app(2), cycle, SimTime::ZERO);
            assert_eq!(
                f.to_bits(),
                cfg.noise_factor(app(2), cycle, SimTime::ZERO).to_bits()
            );
            assert!((0.8..=1.2).contains(&f));
        }
    }

    #[test]
    fn loss_until_stops_all_faults() {
        let cfg = ObservationConfig {
            heartbeat_loss: 0.999,
            max_staleness_cycles: 4,
            noise: 0.5,
            loss_until: Some(SimTime::from_secs(100.0)),
            seed: 3,
            ..Default::default()
        };
        let after = SimTime::from_secs(100.0);
        for cycle in 0..100 {
            assert!(!cfg.heartbeat_missed(node(0), cycle, after));
            assert!(!cfg.report_lost(app(0), cycle, after));
            assert_eq!(cfg.staleness(app(0), cycle, after), 0);
            assert_eq!(cfg.noise_factor(app(0), cycle, after), 1.0);
        }
        // And at least some fault fires before the cutoff.
        assert!((0..100).any(|c| cfg.heartbeat_missed(node(0), c, SimTime::ZERO)));
    }

    #[test]
    fn health_machine_confirmation_thresholds() {
        let cfg = ObservationConfig {
            suspect_after: 2,
            dead_after: 4,
            reinstate_after: 2,
            ..Default::default()
        };
        let mut state = ObservationState::new();
        let n = node(0);
        assert_eq!(state.observe_node(&cfg, n, true), (None, 1));
        assert_eq!(
            state.observe_node(&cfg, n, true),
            (Some(HealthTransition::Suspected), 2)
        );
        assert_eq!(state.node_state(n), NodeHealth::Suspect);
        assert_eq!(state.suspect_nodes(), vec![n]);
        assert_eq!(state.observe_node(&cfg, n, true), (None, 3));
        assert_eq!(
            state.observe_node(&cfg, n, true),
            (Some(HealthTransition::Died), 4)
        );
        assert_eq!(state.node_state(n), NodeHealth::Dead);
    }

    #[test]
    fn dead_requires_consecutive_misses() {
        // The safety invariant: any delivered heartbeat resets the miss
        // count, so a node is never declared Dead with fewer than
        // `dead_after` *consecutive* misses.
        let cfg = ObservationConfig {
            suspect_after: 1,
            dead_after: 3,
            reinstate_after: 2,
            ..Default::default()
        };
        let mut state = ObservationState::new();
        let n = node(5);
        // Alternating miss/ok forever: never Dead.
        for _ in 0..50 {
            state.observe_node(&cfg, n, true);
            state.observe_node(&cfg, n, false);
            assert_ne!(state.node_state(n), NodeHealth::Dead);
        }
    }

    #[test]
    fn reinstatement_needs_hysteresis_and_damps_flaps() {
        let cfg = ObservationConfig {
            suspect_after: 1,
            dead_after: 2,
            reinstate_after: 3,
            ..Default::default()
        };
        let mut state = ObservationState::new();
        let n = node(1);
        state.observe_node(&cfg, n, true);
        state.observe_node(&cfg, n, true);
        assert_eq!(state.node_state(n), NodeHealth::Dead);
        // Two oks are not enough; a miss resets the streak.
        state.observe_node(&cfg, n, false);
        state.observe_node(&cfg, n, false);
        assert_eq!(state.node_state(n), NodeHealth::Dead);
        state.observe_node(&cfg, n, true);
        state.observe_node(&cfg, n, false);
        state.observe_node(&cfg, n, false);
        assert_eq!(state.node_state(n), NodeHealth::Dead);
        let (t, _) = state.observe_node(&cfg, n, false);
        assert_eq!(t, Some(HealthTransition::Reinstated));
        assert_eq!(state.node_state(n), NodeHealth::Healthy);
    }

    #[test]
    fn fresh_exact_reports_are_live_views() {
        // An active config whose fault knobs are all zero must produce
        // Live views — the bit-identity contract for the differential.
        let cfg = ObservationConfig {
            seed: 9,
            ..Default::default()
        };
        assert!(cfg.is_active());
        let mut state = ObservationState::new();
        state.begin_cycle();
        let jr = state.observe_job(&cfg, app(0), 123.0, 0, SimTime::ZERO);
        assert_eq!(jr.view, JobView::Live);
        assert!(!jr.lost);
        let tr = state.observe_txn(&cfg, app(1), 0, SimTime::ZERO, |_| 40.0);
        assert_eq!(tr.view, TxnView::Live);
        assert_eq!(state.snapshot_age(), 0);
    }

    #[test]
    fn stale_job_reports_read_backwards_and_loss_reuses_cache() {
        let cfg = ObservationConfig {
            max_staleness_cycles: 2,
            seed: 1,
            ..Default::default()
        };
        let mut state = ObservationState::new();
        let a = app(3);
        // Find a cycle where the staleness draw is non-zero.
        let mut consumed = 0.0;
        let mut saw_stale = false;
        for cycle in 0..40u64 {
            state.begin_cycle();
            consumed += 10.0;
            let r = state.observe_job(&cfg, a, consumed, cycle, SimTime::ZERO);
            let s = cfg.staleness(a, cycle, SimTime::ZERO);
            assert_eq!(r.age, s.min(cycle as u32));
            match r.view {
                JobView::Live => assert_eq!(r.age, 0),
                JobView::Snapshot {
                    consumed_mcycles, ..
                } => {
                    saw_stale = true;
                    // Stale consumed is conservative: never ahead of truth.
                    assert!(consumed_mcycles <= consumed);
                    assert_eq!(consumed_mcycles, consumed - 10.0 * f64::from(r.age));
                }
            }
        }
        assert!(saw_stale, "expected at least one stale draw in 40 cycles");
        // Heavy loss: the cached report is reused and ages.
        let cfg = ObservationConfig {
            heartbeat_loss: 0.999_999,
            seed: 2,
            ..Default::default()
        };
        let mut state = ObservationState::new();
        state.begin_cycle();
        let first = state.observe_job(&cfg, a, 5.0, 0, SimTime::ZERO);
        assert!(first.lost && first.view == JobView::Live, "bootstrap");
        state.begin_cycle();
        let second = state.observe_job(&cfg, a, 15.0, 1, SimTime::ZERO);
        // Still lost and still nothing cached: stays on live bootstrap.
        assert!(second.lost);
    }

    #[test]
    fn txn_estimator_smooths_and_inflates() {
        let cfg = ObservationConfig {
            ewma_alpha: 0.5,
            headroom: 0.1,
            seed: 1,
            ..Default::default()
        };
        let mut state = ObservationState::new();
        let a = app(0);
        state.begin_cycle();
        let r1 = state.observe_txn(&cfg, a, 0, SimTime::ZERO, |_| 100.0);
        assert_eq!(r1.view, TxnView::Estimate(100.0 * 1.1));
        state.begin_cycle();
        let r2 = state.observe_txn(&cfg, a, 1, SimTime::ZERO, |_| 200.0);
        // ewma = 0.5*200 + 0.5*100 = 150, inflated by 10%.
        assert_eq!(r2.view, TxnView::Estimate(150.0 * 1.1));
    }

    #[test]
    fn snapshot_age_tracks_oldest_report() {
        let cfg = ObservationConfig {
            heartbeat_loss: 0.999_999,
            seed: 4,
            ..Default::default()
        };
        let mut state = ObservationState::new();
        let a = app(0);
        // Deliver once with faults off, then lose everything.
        let quiet = ObservationConfig {
            seed: 4,
            ..Default::default()
        };
        state.begin_cycle();
        state.observe_job(&quiet, a, 1.0, 0, SimTime::ZERO);
        assert_eq!(state.snapshot_age(), 0);
        for cycle in 1..4u64 {
            state.begin_cycle();
            let r = state.observe_job(&cfg, a, 1.0 + cycle as f64, cycle, SimTime::ZERO);
            assert!(r.lost);
            assert_eq!(state.snapshot_age(), cycle as u32);
        }
    }

    #[test]
    fn loss_probability_roughly_matches_draws() {
        let cfg = lossy(0.3);
        let misses = (0..1_000)
            .filter(|&c| cfg.heartbeat_missed(node(0), c, SimTime::ZERO))
            .count();
        assert!(
            (200..400).contains(&misses),
            "≈30% of 1000 draws should miss, got {misses}"
        );
    }
}
