//! Declarative scenario specifications: build a [`Simulation`] from a
//! serializable description instead of code, so experiments can be
//! defined in JSON files and run by the `simulate` harness binary.

use serde::{Deserialize, Serialize};

use dynaplace_json::{obj, FromJson, Json, JsonError, ToJson};

use dynaplace_batch::job::{JobProfile, JobSpec};
use dynaplace_model::cluster::Cluster;
use dynaplace_model::ids::NodeId;
use dynaplace_model::node::NodeSpec;
use dynaplace_model::units::{CpuSpeed, Memory, SimDuration, SimTime, Work};
use dynaplace_rpf::goal::{CompletionGoal, ResponseTimeGoal};
use dynaplace_txn::workload::{ConstantRate, StepPattern};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::costs::VmCostModel;
use crate::engine::{SchedulerKind, SimConfig, Simulation};

/// A group of identical nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeGroupSpec {
    /// How many nodes in this group.
    pub count: usize,
    /// CPU capacity per node, MHz.
    pub cpu_mhz: f64,
    /// Memory per node, MB.
    pub memory_mb: f64,
}

/// Which scheduler drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum SchedulerSpec {
    /// The paper's placement controller.
    Apc,
    /// First-Come, First-Served.
    Fcfs,
    /// Earliest Deadline First.
    Edf,
}

/// How job arrival times are generated.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ArrivalSpec {
    /// Exponential inter-arrival times with the given mean (seconds).
    Exponential {
        /// Mean inter-arrival time in seconds.
        mean_secs: f64,
    },
    /// Fixed inter-arrival spacing (seconds).
    Periodic {
        /// Spacing in seconds.
        every_secs: f64,
    },
    /// Explicit submission instants (seconds); `count` is ignored beyond
    /// the listed times.
    At(Vec<f64>),
}

/// How a job's deadline is derived.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum GoalSpec {
    /// Deadline = arrival + factor × best execution time (the paper's
    /// relative goal factor).
    Factor(f64),
    /// Deadline = arrival + this many seconds.
    RelativeSecs(f64),
}

/// A group of identical batch jobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobGroupSpec {
    /// Number of jobs submitted.
    pub count: usize,
    /// Total work per job, megacycles.
    pub work_mcycles: f64,
    /// Maximum speed per task, MHz.
    pub max_speed_mhz: f64,
    /// Memory per task, MB.
    pub memory_mb: f64,
    /// Deadline derivation.
    pub goal: GoalSpec,
    /// Arrival process for this group.
    pub arrivals: ArrivalSpec,
    /// Parallel tasks per job (1 = ordinary job).
    #[serde(default = "one")]
    pub tasks: u32,
    /// Optional job class tag (for on-the-fly profile estimation).
    #[serde(default)]
    pub class: Option<String>,
}

fn one() -> u32 {
    1
}

/// A transactional application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TxnSpec {
    /// Arrival rate, requests per second. A single value means constant;
    /// multiple (time, rate) steps describe a piecewise-constant curve.
    pub rate: RateSpec,
    /// Per-request CPU demand, megacycles.
    pub demand_mcycles: f64,
    /// Response-time floor, seconds.
    pub floor_secs: f64,
    /// Response-time goal, seconds.
    pub goal_secs: f64,
    /// Memory per instance, MB.
    pub memory_mb: f64,
    /// Maximum instances (usually the node count).
    pub max_instances: u32,
}

/// Constant or stepped arrival rate.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(untagged)]
pub enum RateSpec {
    /// Constant rate.
    Constant(f64),
    /// `(start_secs, rate)` steps, strictly increasing starts.
    Steps(Vec<(f64, f64)>),
}

/// A complete, self-contained scenario.
///
/// ```
/// use dynaplace_sim::spec::*;
///
/// let json = r#"{
///   "seed": 7,
///   "scheduler": "apc",
///   "cycle_secs": 60.0,
///   "nodes": [{ "count": 2, "cpu_mhz": 2000.0, "memory_mb": 4000.0 }],
///   "jobs": [{
///     "count": 3, "work_mcycles": 30000.0, "max_speed_mhz": 1000.0,
///     "memory_mb": 1000.0, "goal": { "factor": 3.0 },
///     "arrivals": { "periodic": { "every_secs": 10.0 } }
///   }],
///   "txns": []
/// }"#;
/// let spec = ScenarioSpec::from_json_str(json).unwrap();
/// let metrics = spec.build().run();
/// assert_eq!(metrics.completions.len(), 3);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// RNG seed for stochastic arrival processes.
    #[serde(default)]
    pub seed: u64,
    /// The scheduler.
    pub scheduler: SchedulerSpec,
    /// Control cycle length, seconds.
    pub cycle_secs: f64,
    /// Optional hard stop, seconds.
    #[serde(default)]
    pub horizon_secs: Option<f64>,
    /// Disable the paper's VM operation costs.
    #[serde(default)]
    pub free_vm_costs: bool,
    /// Node groups.
    pub nodes: Vec<NodeGroupSpec>,
    /// Batch job groups.
    pub jobs: Vec<JobGroupSpec>,
    /// Transactional applications.
    pub txns: Vec<TxnSpec>,
    /// Scripted node failures: `(offset_secs, node_index)`.
    #[serde(default)]
    pub node_failures: Vec<(f64, u32)>,
}

impl ScenarioSpec {
    /// Materializes the scenario into a ready-to-run [`Simulation`].
    ///
    /// # Panics
    ///
    /// Panics on inconsistent specifications (no nodes, non-positive
    /// magnitudes, parallel jobs under a baseline scheduler) with a
    /// message naming the offending field.
    pub fn build(&self) -> Simulation {
        assert!(
            !self.nodes.is_empty(),
            "scenario needs at least one node group"
        );
        let mut cluster = Cluster::new();
        for group in &self.nodes {
            for _ in 0..group.count {
                cluster.add_node(NodeSpec::new(
                    CpuSpeed::from_mhz(group.cpu_mhz),
                    Memory::from_mb(group.memory_mb),
                ));
            }
        }
        let config = SimConfig {
            cycle: SimDuration::from_secs(self.cycle_secs),
            horizon: self.horizon_secs.map(SimDuration::from_secs),
            costs: if self.free_vm_costs {
                VmCostModel::free()
            } else {
                VmCostModel::default()
            },
            scheduler: match self.scheduler {
                SchedulerSpec::Apc => SchedulerKind::Apc {
                    config: Default::default(),
                    advice_between_cycles: true,
                },
                SchedulerSpec::Fcfs => SchedulerKind::Fcfs,
                SchedulerSpec::Edf => SchedulerKind::Edf,
            },
            node_failures: self
                .node_failures
                .iter()
                .map(|&(secs, node)| (SimDuration::from_secs(secs), NodeId::new(node)))
                .collect(),
            ..SimConfig::apc_default()
        };
        let mut sim = Simulation::new(cluster, config);
        let mut rng = StdRng::seed_from_u64(self.seed);

        for group in &self.jobs {
            let arrivals = arrival_times(&mut rng, &group.arrivals, group.count);
            for arrival in arrivals {
                let group = group.clone();
                let build = move |app| {
                    let profile = JobProfile::single_stage(
                        Work::from_mcycles(group.work_mcycles),
                        CpuSpeed::from_mhz(group.max_speed_mhz),
                        Memory::from_mb(group.memory_mb),
                    );
                    let goal = match group.goal {
                        // Parallel jobs: the "best execution time" the
                        // factor multiplies is the parallel one.
                        GoalSpec::Factor(f) => CompletionGoal::from_goal_factor(
                            arrival,
                            profile.min_execution_time() / f64::from(group.tasks),
                            f,
                        ),
                        GoalSpec::RelativeSecs(secs) => {
                            CompletionGoal::new(arrival, arrival + SimDuration::from_secs(secs))
                        }
                    };
                    let mut spec = JobSpec::new(app, profile, arrival, goal);
                    if let Some(class) = &group.class {
                        spec = spec.with_class(class.clone());
                    }
                    spec
                };
                if group.tasks > 1 {
                    sim.add_parallel_job(group.tasks, build);
                } else {
                    sim.add_job(build);
                }
            }
        }

        for txn in &self.txns {
            let pattern: Box<dyn dynaplace_txn::workload::ArrivalPattern + Send> = match &txn.rate {
                RateSpec::Constant(rate) => Box::new(ConstantRate(*rate)),
                RateSpec::Steps(steps) => Box::new(StepPattern::new(
                    steps
                        .iter()
                        .map(|&(t, r)| (SimTime::from_secs(t), r))
                        .collect(),
                )),
            };
            sim.add_txn(
                Memory::from_mb(txn.memory_mb),
                txn.max_instances,
                txn.demand_mcycles,
                SimDuration::from_secs(txn.floor_secs),
                ResponseTimeGoal::new(SimDuration::from_secs(txn.goal_secs)),
                pattern,
                None,
            );
        }
        sim
    }
}

impl ScenarioSpec {
    /// Parses a scenario from its JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Renders the scenario as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }
}

// Explicit JSON conversions. The wire format is the one the checked-in
// scenario files use: lowercase scheduler names, externally tagged
// snake_case enum payloads, an untagged constant-or-steps rate, and
// defaults for seed / horizon_secs / free_vm_costs / tasks / class /
// node_failures.

impl ToJson for NodeGroupSpec {
    fn to_json(&self) -> Json {
        obj([
            ("count", self.count.to_json()),
            ("cpu_mhz", self.cpu_mhz.to_json()),
            ("memory_mb", self.memory_mb.to_json()),
        ])
    }
}

impl FromJson for NodeGroupSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(NodeGroupSpec {
            count: v.field("count")?,
            cpu_mhz: v.field("cpu_mhz")?,
            memory_mb: v.field("memory_mb")?,
        })
    }
}

impl ToJson for SchedulerSpec {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                SchedulerSpec::Apc => "apc",
                SchedulerSpec::Fcfs => "fcfs",
                SchedulerSpec::Edf => "edf",
            }
            .to_string(),
        )
    }
}

impl FromJson for SchedulerSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("apc") => Ok(SchedulerSpec::Apc),
            Some("fcfs") => Ok(SchedulerSpec::Fcfs),
            Some("edf") => Ok(SchedulerSpec::Edf),
            _ => Err(JsonError {
                message: format!("unknown scheduler {v:?}; expected apc|fcfs|edf"),
            }),
        }
    }
}

impl ToJson for ArrivalSpec {
    fn to_json(&self) -> Json {
        match self {
            ArrivalSpec::Exponential { mean_secs } => {
                obj([("exponential", obj([("mean_secs", mean_secs.to_json())]))])
            }
            ArrivalSpec::Periodic { every_secs } => {
                obj([("periodic", obj([("every_secs", every_secs.to_json())]))])
            }
            ArrivalSpec::At(times) => obj([("at", times.to_json())]),
        }
    }
}

impl FromJson for ArrivalSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(inner) = v.get("exponential") {
            Ok(ArrivalSpec::Exponential {
                mean_secs: inner.field("mean_secs")?,
            })
        } else if let Some(inner) = v.get("periodic") {
            Ok(ArrivalSpec::Periodic {
                every_secs: inner.field("every_secs")?,
            })
        } else if let Some(times) = v.get("at") {
            Ok(ArrivalSpec::At(Vec::from_json(times)?))
        } else {
            Err(JsonError {
                message: "arrivals must be exponential|periodic|at".to_string(),
            })
        }
    }
}

impl ToJson for GoalSpec {
    fn to_json(&self) -> Json {
        match self {
            GoalSpec::Factor(f) => obj([("factor", f.to_json())]),
            GoalSpec::RelativeSecs(s) => obj([("relative_secs", s.to_json())]),
        }
    }
}

impl FromJson for GoalSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(f) = v.get("factor") {
            Ok(GoalSpec::Factor(f64::from_json(f)?))
        } else if let Some(s) = v.get("relative_secs") {
            Ok(GoalSpec::RelativeSecs(f64::from_json(s)?))
        } else {
            Err(JsonError {
                message: "goal must be factor|relative_secs".to_string(),
            })
        }
    }
}

impl ToJson for JobGroupSpec {
    fn to_json(&self) -> Json {
        obj([
            ("count", self.count.to_json()),
            ("work_mcycles", self.work_mcycles.to_json()),
            ("max_speed_mhz", self.max_speed_mhz.to_json()),
            ("memory_mb", self.memory_mb.to_json()),
            ("goal", self.goal.to_json()),
            ("arrivals", self.arrivals.to_json()),
            ("tasks", self.tasks.to_json()),
            ("class", self.class.to_json()),
        ])
    }
}

impl FromJson for JobGroupSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(JobGroupSpec {
            count: v.field("count")?,
            work_mcycles: v.field("work_mcycles")?,
            max_speed_mhz: v.field("max_speed_mhz")?,
            memory_mb: v.field("memory_mb")?,
            goal: v.field("goal")?,
            arrivals: v.field("arrivals")?,
            tasks: match v.get("tasks") {
                None => one(),
                Some(t) => u32::from_json(t)?,
            },
            class: v.field_or("class")?,
        })
    }
}

impl ToJson for TxnSpec {
    fn to_json(&self) -> Json {
        obj([
            ("rate", self.rate.to_json()),
            ("demand_mcycles", self.demand_mcycles.to_json()),
            ("floor_secs", self.floor_secs.to_json()),
            ("goal_secs", self.goal_secs.to_json()),
            ("memory_mb", self.memory_mb.to_json()),
            ("max_instances", self.max_instances.to_json()),
        ])
    }
}

impl FromJson for TxnSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(TxnSpec {
            rate: v.field("rate")?,
            demand_mcycles: v.field("demand_mcycles")?,
            floor_secs: v.field("floor_secs")?,
            goal_secs: v.field("goal_secs")?,
            memory_mb: v.field("memory_mb")?,
            max_instances: v.field("max_instances")?,
        })
    }
}

impl ToJson for RateSpec {
    fn to_json(&self) -> Json {
        match self {
            RateSpec::Constant(rate) => rate.to_json(),
            RateSpec::Steps(steps) => steps.to_json(),
        }
    }
}

impl FromJson for RateSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Num(rate) => Ok(RateSpec::Constant(*rate)),
            Json::Arr(_) => Ok(RateSpec::Steps(Vec::from_json(v)?)),
            _ => Err(JsonError {
                message: "rate must be a number or a list of (secs, rate) steps".to_string(),
            }),
        }
    }
}

impl ToJson for ScenarioSpec {
    fn to_json(&self) -> Json {
        obj([
            ("seed", self.seed.to_json()),
            ("scheduler", self.scheduler.to_json()),
            ("cycle_secs", self.cycle_secs.to_json()),
            ("horizon_secs", self.horizon_secs.to_json()),
            ("free_vm_costs", self.free_vm_costs.to_json()),
            ("nodes", self.nodes.to_json()),
            ("jobs", self.jobs.to_json()),
            ("txns", self.txns.to_json()),
            ("node_failures", self.node_failures.to_json()),
        ])
    }
}

impl FromJson for ScenarioSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ScenarioSpec {
            seed: v.field_or("seed")?,
            scheduler: v.field("scheduler")?,
            cycle_secs: v.field("cycle_secs")?,
            horizon_secs: v.field_or("horizon_secs")?,
            free_vm_costs: v.field_or("free_vm_costs")?,
            nodes: v.field("nodes")?,
            jobs: v.field("jobs")?,
            txns: v.field("txns")?,
            node_failures: v.field_or("node_failures")?,
        })
    }
}

fn arrival_times(rng: &mut StdRng, spec: &ArrivalSpec, count: usize) -> Vec<SimTime> {
    match spec {
        ArrivalSpec::Exponential { mean_secs } => {
            let mut t = SimTime::ZERO;
            (0..count)
                .map(|_| {
                    let u: f64 = rng.gen::<f64>().max(1e-12);
                    t += SimDuration::from_secs(-mean_secs * u.ln());
                    t
                })
                .collect()
        }
        ArrivalSpec::Periodic { every_secs } => (0..count)
            .map(|i| SimTime::from_secs(i as f64 * every_secs))
            .collect(),
        ArrivalSpec::At(times) => times.iter().map(|&t| SimTime::from_secs(t)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(scheduler: SchedulerSpec) -> ScenarioSpec {
        ScenarioSpec {
            seed: 1,
            scheduler,
            cycle_secs: 10.0,
            horizon_secs: Some(10_000.0),
            free_vm_costs: true,
            nodes: vec![NodeGroupSpec {
                count: 2,
                cpu_mhz: 2_000.0,
                memory_mb: 4_000.0,
            }],
            jobs: vec![JobGroupSpec {
                count: 4,
                work_mcycles: 20_000.0,
                max_speed_mhz: 1_000.0,
                memory_mb: 1_000.0,
                goal: GoalSpec::Factor(4.0),
                arrivals: ArrivalSpec::Periodic { every_secs: 15.0 },
                tasks: 1,
                class: None,
            }],
            txns: vec![],
            node_failures: vec![],
        }
    }

    #[test]
    fn builds_and_runs_every_scheduler() {
        for scheduler in [SchedulerSpec::Apc, SchedulerSpec::Fcfs, SchedulerSpec::Edf] {
            let metrics = minimal(scheduler).build().run();
            assert_eq!(metrics.completions.len(), 4, "{scheduler:?}");
        }
    }

    #[test]
    fn round_trips_through_json() {
        let spec = minimal(SchedulerSpec::Apc);
        let json = spec.to_json_string();
        let back = ScenarioSpec::from_json_str(&json).unwrap();
        let a = spec.build().run();
        let b = back.build().run();
        assert_eq!(a.completions.len(), b.completions.len());
        for (x, y) in a.completions.iter().zip(&b.completions) {
            assert_eq!(x.completion, y.completion);
        }
    }

    #[test]
    fn explicit_arrivals_and_relative_goals() {
        let mut spec = minimal(SchedulerSpec::Apc);
        spec.jobs[0].arrivals = ArrivalSpec::At(vec![0.0, 5.0, 7.5]);
        spec.jobs[0].count = 3;
        spec.jobs[0].goal = GoalSpec::RelativeSecs(500.0);
        let metrics = spec.build().run();
        assert_eq!(metrics.completions.len(), 3);
        assert!(metrics.completions.iter().all(|c| c.met_deadline));
    }

    #[test]
    fn parallel_group_under_apc() {
        let mut spec = minimal(SchedulerSpec::Apc);
        spec.jobs[0].tasks = 2;
        spec.jobs[0].count = 2;
        let metrics = spec.build().run();
        assert_eq!(metrics.completions.len(), 2);
    }

    #[test]
    fn txn_steps_pattern() {
        let mut spec = minimal(SchedulerSpec::Apc);
        spec.txns = vec![TxnSpec {
            rate: RateSpec::Steps(vec![(0.0, 10.0), (100.0, 50.0)]),
            demand_mcycles: 10.0,
            floor_secs: 0.005,
            goal_secs: 0.05,
            memory_mb: 500.0,
            max_instances: 2,
        }];
        let metrics = spec.build().run();
        assert!(metrics.samples.iter().any(|s| s.txn_rp.is_some()));
    }
}
