//! Declarative scenario specifications: build a [`Simulation`] from a
//! serializable description instead of code, so experiments can be
//! defined in JSON files and run by the `simulate` harness binary.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use dynaplace_json::{obj, FromJson, Json, JsonError, ToJson};

use dynaplace_model::cluster::Cluster;
use dynaplace_model::ids::{AppId, NodeId};
use dynaplace_model::node::NodeSpec;
use dynaplace_model::resources::{ResourceDims, Resources};
use dynaplace_model::units::{CpuSpeed, SimDuration, SimTime};

use dynaplace_txn::workload::{ConstantRate, SinusoidPattern, StepPattern};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dynaplace_trace::{TraceConfig, TraceLevel};

use dynaplace_apc::policy::registry as policy_registry;
use dynaplace_apc::{PolicyClass, PolicyHandle};

use crate::actuation::ActuationConfig;
use crate::costs::VmCostModel;
use crate::engine::{NodeOutage, SimConfig, Simulation};
use crate::observe::{DegradedMode, ObservationConfig};
use crate::source::{
    ArrivalProcess, GenerativeSource, GoalSubmission, JobSubmission, JobTemplate, MergedSource,
    ScenarioSource, Submission, TxnSubmission, WorkloadSource,
};

/// A group of identical nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeGroupSpec {
    /// How many nodes in this group.
    pub count: usize,
    /// Optional group name (diagnostics and duplicate detection).
    #[serde(default)]
    pub name: Option<String>,
    /// CPU capacity per node, MHz.
    pub cpu_mhz: f64,
    /// Memory per node, MB.
    pub memory_mb: f64,
    /// Capacity per node in each *extra* rigid dimension, keyed by the
    /// dimension names [`ScenarioSpec::resources`] declares. Undeclared
    /// names are a load-time error; declared dimensions missing here
    /// default to zero capacity. On the wire the block also accepts
    /// `cpu_mhz` / `memory_mb` entries, which canonicalize to the
    /// dedicated fields above.
    #[serde(default)]
    pub resources: BTreeMap<String, f64>,
}

/// Which scheduler drives the run.
///
/// Retired: [`ScenarioSpec::scheduler`] is a policy *name* now, resolved
/// against the [`dynaplace_apc::PolicyRegistry`], so any registered
/// policy (builtin or custom) can drive a scenario.
#[deprecated(
    since = "0.6.0",
    note = "set `ScenarioSpec::scheduler` to a registry policy name (e.g. \"apc\", \"fcfs\") instead"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum SchedulerSpec {
    /// The paper's placement controller.
    Apc,
    /// First-Come, First-Served.
    Fcfs,
    /// Earliest Deadline First.
    Edf,
}

#[allow(deprecated)]
impl SchedulerSpec {
    /// The registry name this variant maps to.
    pub fn policy_name(&self) -> &'static str {
        match self {
            SchedulerSpec::Apc => "apc",
            SchedulerSpec::Fcfs => "fcfs",
            SchedulerSpec::Edf => "edf",
        }
    }
}

#[allow(deprecated)]
impl From<SchedulerSpec> for String {
    fn from(spec: SchedulerSpec) -> Self {
        spec.policy_name().to_string()
    }
}

/// How job arrival times are generated.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ArrivalSpec {
    /// Exponential inter-arrival times with the given mean (seconds).
    Exponential {
        /// Mean inter-arrival time in seconds.
        mean_secs: f64,
    },
    /// Fixed inter-arrival spacing (seconds).
    Periodic {
        /// Spacing in seconds.
        every_secs: f64,
    },
    /// Explicit submission instants (seconds); `count` is ignored beyond
    /// the listed times.
    At(Vec<f64>),
}

/// How a job's deadline is derived.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum GoalSpec {
    /// Deadline = arrival + factor × best execution time (the paper's
    /// relative goal factor).
    Factor(f64),
    /// Deadline = arrival + this many seconds.
    RelativeSecs(f64),
}

/// A group of identical batch jobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobGroupSpec {
    /// Number of jobs submitted.
    pub count: usize,
    /// Optional group name (diagnostics and duplicate detection; shares
    /// a namespace with [`TxnSpec::name`]).
    #[serde(default)]
    pub name: Option<String>,
    /// Total work per job, megacycles.
    pub work_mcycles: f64,
    /// Maximum speed per task, MHz.
    pub max_speed_mhz: f64,
    /// Memory per task, MB.
    pub memory_mb: f64,
    /// Deadline derivation.
    pub goal: GoalSpec,
    /// Arrival process for this group.
    pub arrivals: ArrivalSpec,
    /// Parallel tasks per job (1 = ordinary job).
    #[serde(default = "one")]
    pub tasks: u32,
    /// Optional job class tag (for on-the-fly profile estimation).
    #[serde(default)]
    pub class: Option<String>,
    /// Per-task demand in each *extra* rigid dimension (beyond memory),
    /// keyed by declared dimension name; missing dimensions demand zero.
    /// The wire block also accepts a `memory_mb` entry, canonicalized to
    /// the dedicated field.
    #[serde(default)]
    pub resources: BTreeMap<String, f64>,
}

fn one() -> u32 {
    1
}

/// A transactional application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TxnSpec {
    /// Optional application name (diagnostics and duplicate detection;
    /// shares a namespace with [`JobGroupSpec::name`]).
    #[serde(default)]
    pub name: Option<String>,
    /// Arrival rate, requests per second. A single value means constant;
    /// multiple (time, rate) steps describe a piecewise-constant curve.
    pub rate: RateSpec,
    /// Per-request CPU demand, megacycles.
    pub demand_mcycles: f64,
    /// Response-time floor, seconds.
    pub floor_secs: f64,
    /// Response-time goal, seconds.
    pub goal_secs: f64,
    /// Memory per instance, MB.
    pub memory_mb: f64,
    /// Maximum instances (usually the node count).
    pub max_instances: u32,
    /// Per-instance demand in each *extra* rigid dimension (beyond
    /// memory), keyed by declared dimension name; missing dimensions
    /// demand zero. The wire block also accepts a `memory_mb` entry,
    /// canonicalized to the dedicated field.
    #[serde(default)]
    pub resources: BTreeMap<String, f64>,
}

/// Constant or stepped arrival rate.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(untagged)]
pub enum RateSpec {
    /// Constant rate.
    Constant(f64),
    /// `(start_secs, rate)` steps, strictly increasing starts.
    Steps(Vec<(f64, f64)>),
}

/// The optional `"workload"` block: generative streaming workload on
/// top of (or instead of) the classic `jobs`/`txns` lists. Streams are
/// drawn lazily by a [`crate::source::GenerativeSource`], so a scenario
/// can describe day-long traces with hundreds of thousands of jobs
/// without ever materializing them.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Generated batch job streams.
    #[serde(default)]
    pub batch_streams: Vec<BatchStreamSpec>,
    /// Generated transactional applications (registered at time zero).
    #[serde(default)]
    pub txn_streams: Vec<TxnStreamSpec>,
}

/// One generated batch stream: an arrival process plus the job template
/// every arrival instantiates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchStreamSpec {
    /// Optional stream name (diagnostics and duplicate detection; shares
    /// the application namespace with jobs and txns).
    #[serde(default)]
    pub name: Option<String>,
    /// The arrival process.
    pub process: ProcessSpec,
    /// Number of jobs to generate; `None` = unbounded, in which case the
    /// scenario must set `horizon_secs` to bound the stream.
    #[serde(default)]
    pub count: Option<u64>,
    /// Total work per job, megacycles.
    pub work_mcycles: f64,
    /// Maximum speed per task, MHz.
    pub max_speed_mhz: f64,
    /// Memory per task, MB.
    pub memory_mb: f64,
    /// Deadline derivation.
    pub goal: GoalSpec,
    /// Parallel tasks per job (1 = ordinary job).
    #[serde(default = "one")]
    pub tasks: u32,
    /// Optional job class tag.
    #[serde(default)]
    pub class: Option<String>,
    /// Per-task demand in each *extra* rigid dimension (beyond memory).
    #[serde(default)]
    pub resources: BTreeMap<String, f64>,
}

/// The stochastic arrival process of a generated batch stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ProcessSpec {
    /// Homogeneous Poisson arrivals.
    Poisson {
        /// Arrival rate, jobs per second.
        rate_per_sec: f64,
    },
    /// Cyclic Markov-modulated Poisson process: `(rate_per_sec,
    /// mean_dwell_secs)` states visited in order with exponential
    /// dwells. Two states give the classic on/off burst model.
    Mmpp {
        /// The states, visited cyclically.
        states: Vec<(f64, f64)>,
    },
    /// Diurnal curve: rate `base + amplitude·sin(2π·t/period)`, floored
    /// at zero (86 400 s period = one day).
    Diurnal {
        /// Mean rate, jobs per second.
        base_rate_per_sec: f64,
        /// Peak deviation from the mean, jobs per second.
        amplitude: f64,
        /// Period, seconds.
        period_secs: f64,
    },
    /// Flash crowds: a baseline rate with a `multiplier`× spike of
    /// `duration_secs` starting every `every_secs`.
    FlashCrowd {
        /// Baseline rate, jobs per second.
        base_rate_per_sec: f64,
        /// Rate multiplier during a spike.
        multiplier: f64,
        /// Spike spacing, seconds.
        every_secs: f64,
        /// Spike length, seconds.
        duration_secs: f64,
    },
}

impl ProcessSpec {
    fn to_process(&self) -> ArrivalProcess {
        match self {
            ProcessSpec::Poisson { rate_per_sec } => ArrivalProcess::Poisson {
                rate_per_sec: *rate_per_sec,
            },
            ProcessSpec::Mmpp { states } => ArrivalProcess::Mmpp {
                states: states.clone(),
            },
            ProcessSpec::Diurnal {
                base_rate_per_sec,
                amplitude,
                period_secs,
            } => ArrivalProcess::Diurnal {
                base_rate_per_sec: *base_rate_per_sec,
                amplitude: *amplitude,
                period_secs: *period_secs,
            },
            ProcessSpec::FlashCrowd {
                base_rate_per_sec,
                multiplier,
                every_secs,
                duration_secs,
            } => ArrivalProcess::FlashCrowd {
                base_rate_per_sec: *base_rate_per_sec,
                multiplier: *multiplier,
                every_secs: *every_secs,
                duration_secs: *duration_secs,
            },
        }
    }
}

/// One generated transactional application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TxnStreamSpec {
    /// Optional name (shares the application namespace with jobs and
    /// txns).
    #[serde(default)]
    pub name: Option<String>,
    /// The request-rate curve.
    pub curve: TxnCurveSpec,
    /// Per-request CPU demand, megacycles.
    pub demand_mcycles: f64,
    /// Response-time floor, seconds.
    pub floor_secs: f64,
    /// Response-time goal, seconds.
    pub goal_secs: f64,
    /// Memory per instance, MB.
    pub memory_mb: f64,
    /// Maximum instances.
    pub max_instances: u32,
    /// Per-instance demand in each *extra* rigid dimension.
    #[serde(default)]
    pub resources: BTreeMap<String, f64>,
}

/// The request-rate curve of a generated transactional application.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum TxnCurveSpec {
    /// Constant request rate.
    Constant {
        /// Requests per second.
        rate_per_sec: f64,
    },
    /// Diurnal rate `base + amplitude·sin(2π·t/period)`, floored at
    /// zero.
    Diurnal {
        /// Mean rate, requests per second.
        base_rate_per_sec: f64,
        /// Peak deviation from the mean, requests per second.
        amplitude_per_sec: f64,
        /// Period, seconds.
        period_secs: f64,
    },
    /// An open-loop user population: `users` users each issuing one
    /// request per `think_time_secs`, i.e. an offered rate of
    /// `users / think_time_secs` independent of response times.
    Population {
        /// Number of users.
        users: f64,
        /// Mean think time between requests, seconds.
        think_time_secs: f64,
    },
}

impl TxnCurveSpec {
    fn to_pattern(&self) -> Box<dyn dynaplace_txn::workload::ArrivalPattern + Send> {
        match self {
            TxnCurveSpec::Constant { rate_per_sec } => Box::new(ConstantRate(*rate_per_sec)),
            TxnCurveSpec::Diurnal {
                base_rate_per_sec,
                amplitude_per_sec,
                period_secs,
            } => Box::new(SinusoidPattern {
                base: *base_rate_per_sec,
                amplitude: *amplitude_per_sec,
                period_secs: *period_secs,
            }),
            TxnCurveSpec::Population {
                users,
                think_time_secs,
            } => Box::new(ConstantRate(users / think_time_secs)),
        }
    }
}

/// One scripted node outage. The wire format is a 2- or 3-element array:
/// `[offset_secs, node]` is a permanent failure (the historical form),
/// `[offset_secs, node, duration_secs]` a transient one that recovers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeFailureSpec {
    /// Offset of the failure from the start of the run, seconds.
    pub at_secs: f64,
    /// Index of the failing node.
    pub node: u32,
    /// Outage length in seconds; `None` means permanent.
    pub duration_secs: Option<f64>,
}

impl NodeFailureSpec {
    fn to_outage(self) -> NodeOutage {
        NodeOutage {
            at: SimDuration::from_secs(self.at_secs),
            node: NodeId::new(self.node),
            duration: self.duration_secs.map(SimDuration::from_secs),
        }
    }
}

/// The fallible actuation layer, in scenario-file units. Every field
/// defaults to the exactly-off [`ActuationConfig::default`], so scenarios
/// written before this block existed behave bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActuationSpec {
    /// Per-operation failure probability, `[0, 1)`.
    pub failure_rate: f64,
    /// Relative latency inflation factor bound.
    pub latency_jitter: f64,
    /// Operation timeout, seconds.
    pub timeout_secs: Option<f64>,
    /// Operations issued at or after this instant never fail.
    pub fail_until_secs: Option<f64>,
    /// Seed for the failure/jitter draws.
    pub seed: u64,
    /// First retry delay, seconds.
    pub base_backoff_secs: f64,
    /// Backoff multiplier per consecutive failure.
    pub backoff_factor: f64,
    /// Backoff cap, seconds.
    pub max_backoff_secs: f64,
    /// Consecutive failures before an (app, node) pair is quarantined.
    pub quarantine_after: u32,
    /// Quarantine length, seconds.
    pub quarantine_secs: f64,
    /// Stalled control cycles before the `fill_only` fallback.
    pub fallback_after: u32,
}

impl Default for ActuationSpec {
    fn default() -> Self {
        let c = ActuationConfig::default();
        Self {
            failure_rate: c.failure_rate,
            latency_jitter: c.latency_jitter,
            timeout_secs: c.timeout.map(|d| d.as_secs()),
            fail_until_secs: c.fail_until.map(|t| t.as_secs()),
            seed: c.seed,
            base_backoff_secs: c.base_backoff.as_secs(),
            backoff_factor: c.backoff_factor,
            max_backoff_secs: c.max_backoff.as_secs(),
            quarantine_after: c.quarantine_after,
            quarantine_secs: c.quarantine.as_secs(),
            fallback_after: c.fallback_after,
        }
    }
}

impl ActuationSpec {
    fn to_config(self) -> ActuationConfig {
        ActuationConfig {
            failure_rate: self.failure_rate,
            latency_jitter: self.latency_jitter,
            timeout: self.timeout_secs.map(SimDuration::from_secs),
            fail_until: self.fail_until_secs.map(SimTime::from_secs),
            seed: self.seed,
            base_backoff: SimDuration::from_secs(self.base_backoff_secs),
            backoff_factor: self.backoff_factor,
            max_backoff: SimDuration::from_secs(self.max_backoff_secs),
            quarantine_after: self.quarantine_after,
            quarantine: SimDuration::from_secs(self.quarantine_secs),
            fallback_after: self.fallback_after,
        }
    }
}

/// The imperfect-telemetry observation layer, in scenario-file units.
/// Absent means perfect telemetry — the engine skips the layer entirely
/// and runs bit-identically to a simulator without one (APC only, like
/// `sharding`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservationSpec {
    /// Per-source/per-cycle report loss probability, `[0, 1)`.
    pub heartbeat_loss: f64,
    /// Maximum app-report delivery lag, control cycles.
    pub max_staleness_cycles: u32,
    /// Relative multiplicative noise bound on demand values, `[0, 1)`.
    pub noise: f64,
    /// Transport faults stop at this instant; `None` = whole run.
    pub loss_until_secs: Option<f64>,
    /// Seed for the loss/staleness/noise draws.
    pub seed: u64,
    /// Consecutive misses before Healthy → Suspect; at least 1.
    pub suspect_after: u32,
    /// Consecutive misses before Suspect → Dead; `> suspect_after`.
    pub dead_after: u32,
    /// Consecutive delivered heartbeats before reinstatement; at
    /// least 1.
    pub reinstate_after: u32,
    /// EWMA smoothing factor for txn demand, `(0, 1]`; `1.0` = off.
    pub ewma_alpha: f64,
    /// Safety-margin inflation on presented txn demand; `>= 0`.
    pub headroom: f64,
    /// Degrade when the snapshot is older than this many cycles;
    /// `0` disables the budget.
    pub staleness_budget_cycles: u32,
    /// Budget-breach behavior: `"hold"` or `"fill_only"`.
    pub degraded_mode: String,
}

impl Default for ObservationSpec {
    fn default() -> Self {
        let c = ObservationConfig::default();
        Self {
            heartbeat_loss: c.heartbeat_loss,
            max_staleness_cycles: c.max_staleness_cycles,
            noise: c.noise,
            loss_until_secs: c.loss_until.map(|t| t.as_secs()),
            seed: c.seed,
            suspect_after: c.suspect_after,
            dead_after: c.dead_after,
            reinstate_after: c.reinstate_after,
            ewma_alpha: c.ewma_alpha,
            headroom: c.headroom,
            staleness_budget_cycles: c.staleness_budget_cycles,
            degraded_mode: c.degraded_mode.name().to_string(),
        }
    }
}

impl ObservationSpec {
    /// The engine-side [`ObservationConfig`] this block denotes. An
    /// unrecognized `degraded_mode` (already rejected by `validate`)
    /// falls back to `Hold`.
    pub fn to_config(&self) -> ObservationConfig {
        ObservationConfig {
            heartbeat_loss: self.heartbeat_loss,
            max_staleness_cycles: self.max_staleness_cycles,
            noise: self.noise,
            loss_until: self.loss_until_secs.map(SimTime::from_secs),
            seed: self.seed,
            suspect_after: self.suspect_after,
            dead_after: self.dead_after,
            reinstate_after: self.reinstate_after,
            ewma_alpha: self.ewma_alpha,
            headroom: self.headroom,
            staleness_budget_cycles: self.staleness_budget_cycles,
            // `validate` has already rejected unknown names.
            degraded_mode: DegradedMode::from_name(&self.degraded_mode)
                .unwrap_or(DegradedMode::Hold),
        }
    }
}

/// Decision-provenance tracing (see `dynaplace-trace`), in scenario-file
/// form. Absent, or present without a `path`, means tracing is off and
/// the run is bit-identical to an untraced one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// JSONL output path; `None` disables tracing entirely.
    pub path: Option<String>,
    /// Verbosity: `"decisions"` (the default) or `"verbose"`.
    pub level: String,
}

impl Default for TraceSpec {
    fn default() -> Self {
        Self {
            path: None,
            level: TraceLevel::Decisions.name().to_string(),
        }
    }
}

impl TraceSpec {
    fn to_config(&self) -> TraceConfig {
        TraceConfig {
            path: self.path.clone(),
            // `validate` has already rejected unknown names.
            level: TraceLevel::from_name(&self.level).unwrap_or(TraceLevel::Decisions),
        }
    }
}

/// Cell-sharded placement (APC only), in scenario-file form. Absent
/// means the classic single-cell search — bit-identical to every
/// scenario written before sharding existed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardingSpec {
    /// Nodes per cell (see `dynaplace_apc::ShardingPolicy::cell_size`).
    pub cell_size: usize,
    /// Maximum cross-cell rebalance moves per cycle; `0` disables the
    /// rebalancer.
    #[serde(default = "default_rebalance_moves")]
    pub rebalance_moves: usize,
    /// Minimum global satisfaction gain a rebalance move must clear.
    #[serde(default = "default_rebalance_threshold")]
    pub rebalance_threshold: f64,
}

fn default_rebalance_moves() -> usize {
    dynaplace_apc::ShardingPolicy::default().rebalance_moves
}

fn default_rebalance_threshold() -> f64 {
    dynaplace_apc::ShardingPolicy::default().rebalance_threshold
}

impl ShardingSpec {
    /// A spec with the given cell size and default rebalancing.
    pub fn new(cell_size: usize) -> Self {
        ShardingSpec {
            cell_size,
            rebalance_moves: default_rebalance_moves(),
            rebalance_threshold: default_rebalance_threshold(),
        }
    }

    fn to_policy(&self) -> dynaplace_apc::ShardingPolicy {
        dynaplace_apc::ShardingPolicy {
            cell_size: self.cell_size,
            rebalance_moves: self.rebalance_moves,
            rebalance_threshold: self.rebalance_threshold,
        }
    }
}

/// A structurally invalid scenario, detected at load time instead of as
/// a mid-run panic (or, worse, a silent no-op).
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The `nodes` list is empty.
    NoNodes,
    /// `node_failures[failure_index]` names a node the cluster does not
    /// have. Historically this was silently ignored.
    NodeFailureOutOfRange {
        /// Index into `node_failures`.
        failure_index: usize,
        /// The out-of-range node index.
        node: u32,
        /// Number of nodes the cluster actually has.
        nodes: usize,
    },
    /// `actuation.failure_rate` is outside `[0, 1)` (at 1.0 retries can
    /// never converge).
    FailureRateOutOfRange {
        /// The offending rate.
        rate: f64,
    },
    /// `scheduler` names no policy in the registry.
    UnknownPolicy {
        /// The unresolvable name.
        name: String,
        /// The closest registered name or alias, when one is plausibly
        /// a typo away.
        suggestion: Option<String>,
    },
    /// `jobs[group_index]` asks for parallel tasks under a baseline
    /// scheduler, which only models single-instance jobs.
    ParallelJobsNeedApc {
        /// Index into `jobs`.
        group_index: usize,
    },
    /// `trace.level` is not a known trace verbosity name.
    UnknownTraceLevel {
        /// The unrecognized name.
        level: String,
    },
    /// The `sharding` block is structurally invalid or used with a
    /// baseline scheduler (only APC shards).
    InvalidSharding {
        /// What is wrong with it.
        message: String,
    },
    /// The `observation` block is structurally invalid or used with a
    /// baseline scheduler (only the APC control loop reads the observed
    /// snapshot).
    InvalidObservation {
        /// What is wrong with it.
        message: String,
    },
    /// A numeric field that feeds simulated time is NaN or infinite.
    /// Letting these through used to panic deep inside the baseline
    /// schedulers' comparison sorts instead of failing at load time.
    NonFiniteNumber {
        /// Dotted path of the offending field, e.g. `jobs[0].arrivals.at[2]`.
        field: String,
        /// The non-finite value.
        value: f64,
    },
    /// Two named entries of the same kind share a name. Jobs and txns
    /// share one application namespace; node groups have their own.
    DuplicateName {
        /// Which list: `nodes` or `applications`.
        kind: &'static str,
        /// The repeated name.
        name: String,
    },
    /// The top-level `resources` registry is malformed (an empty name, a
    /// duplicate, or a restatement of the implicit `memory_mb`).
    InvalidResources {
        /// What is wrong with it.
        message: String,
    },
    /// A `resources` block names a dimension the top-level `resources`
    /// list does not declare — almost always a typo that would otherwise
    /// silently demand (or supply) nothing.
    UnknownResource {
        /// Dotted path of the offending block, e.g. `nodes[1].resources`.
        field: String,
        /// The undeclared dimension name.
        name: String,
    },
    /// A numeric field that must be strictly positive is zero or
    /// negative: a zero control cycle would never advance time, a
    /// zero-work job has no best execution time to derive a deadline
    /// from, and a zero-task job silently degrades to an ordinary one.
    NonPositiveNumber {
        /// Dotted path of the offending field, e.g. `cycle_secs`.
        field: String,
        /// The non-positive value.
        value: f64,
    },
    /// A capacity, demand, rate, or delay is negative. Negative node
    /// capacities used to panic inside `build` instead of failing at
    /// load time; negative backoffs and arrival instants would move
    /// simulated time backwards.
    NegativeNumber {
        /// Dotted path of the offending field, e.g. `nodes[0].memory_mb`.
        field: String,
        /// The negative value.
        value: f64,
    },
    /// The node groups sum to more nodes than the `u32` id space (and
    /// the sharded cell partitioner) can index.
    TooManyNodes {
        /// The declared total node count.
        nodes: usize,
    },
    /// The `workload` block is structurally invalid: a degenerate
    /// arrival process, a parallel stream under a baseline scheduler, or
    /// an unbounded stream in a scenario without `horizon_secs` (such a
    /// run would generate arrivals forever).
    InvalidWorkload {
        /// What is wrong with it.
        message: String,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::NoNodes => write!(
                f,
                "scenario needs at least one node (a non-empty nodes list with a positive \
                 total count)"
            ),
            ScenarioError::NodeFailureOutOfRange {
                failure_index,
                node,
                nodes,
            } => write!(
                f,
                "node_failures[{failure_index}] names node {node}, but the cluster has only \
                 {nodes} nodes (indices 0..{nodes})"
            ),
            ScenarioError::FailureRateOutOfRange { rate } => {
                write!(f, "actuation.failure_rate must be in [0, 1), got {rate}")
            }
            ScenarioError::UnknownPolicy { name, suggestion } => {
                write!(f, "unknown scheduler policy {name:?}")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean {s:?}?)")?;
                }
                write!(
                    f,
                    "; registered policies: {}",
                    policy_registry::policy_names().join(", ")
                )
            }
            ScenarioError::ParallelJobsNeedApc { group_index } => write!(
                f,
                "jobs[{group_index}] uses parallel tasks, which only the apc scheduler supports"
            ),
            ScenarioError::UnknownTraceLevel { level } => {
                write!(f, "trace.level must be decisions|verbose, got {level:?}")
            }
            ScenarioError::InvalidSharding { message } => {
                write!(f, "sharding: {message}")
            }
            ScenarioError::InvalidObservation { message } => {
                write!(f, "observation: {message}")
            }
            ScenarioError::NonFiniteNumber { field, value } => {
                write!(f, "{field} must be finite, got {value}")
            }
            ScenarioError::DuplicateName { kind, name } => {
                write!(f, "{kind} contain the name {name:?} more than once")
            }
            ScenarioError::InvalidResources { message } => {
                write!(f, "resources: {message}")
            }
            ScenarioError::UnknownResource { field, name } => {
                write!(
                    f,
                    "{field} names {name:?}, which the scenario's resources list does not declare"
                )
            }
            ScenarioError::NonPositiveNumber { field, value } => {
                write!(f, "{field} must be > 0, got {value}")
            }
            ScenarioError::NegativeNumber { field, value } => {
                write!(f, "{field} must be >= 0, got {value}")
            }
            ScenarioError::TooManyNodes { nodes } => {
                write!(
                    f,
                    "scenario declares {nodes} nodes, more than the u32 node-id space can index"
                )
            }
            ScenarioError::InvalidWorkload { message } => {
                write!(f, "invalid workload block: {message}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A complete, self-contained scenario.
///
/// ```
/// use dynaplace_sim::spec::*;
///
/// let json = r#"{
///   "seed": 7,
///   "scheduler": "apc",
///   "cycle_secs": 60.0,
///   "nodes": [{ "count": 2, "cpu_mhz": 2000.0, "memory_mb": 4000.0 }],
///   "jobs": [{
///     "count": 3, "work_mcycles": 30000.0, "max_speed_mhz": 1000.0,
///     "memory_mb": 1000.0, "goal": { "factor": 3.0 },
///     "arrivals": { "periodic": { "every_secs": 10.0 } }
///   }],
///   "txns": []
/// }"#;
/// let spec = ScenarioSpec::from_json_str(json).unwrap();
/// let metrics = spec.build().run();
/// assert_eq!(metrics.completions.len(), 3);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// RNG seed for stochastic arrival processes.
    #[serde(default)]
    pub seed: u64,
    /// The scheduler: a policy name (or alias) resolved against the
    /// [`dynaplace_apc::PolicyRegistry`] — `"apc"`, `"fcfs"`, `"edf"`,
    /// `"static-partition"`, `"vector-bin-packing"`, `"yield-max"`,
    /// `"dfrs"`, or any policy registered at runtime. Unknown names are
    /// a validate-time [`ScenarioError::UnknownPolicy`].
    pub scheduler: String,
    /// Control cycle length, seconds.
    pub cycle_secs: f64,
    /// Optional hard stop, seconds.
    #[serde(default)]
    pub horizon_secs: Option<f64>,
    /// Disable the paper's VM operation costs.
    #[serde(default)]
    pub free_vm_costs: bool,
    /// Extra rigid resource dimensions, in registry order. `memory_mb`
    /// is always implicit (dimension 0) and must not be restated here.
    /// An empty list is the classic memory-only model, bit-identical to
    /// scenarios written before this field existed.
    #[serde(default)]
    pub resources: Vec<String>,
    /// Node groups.
    pub nodes: Vec<NodeGroupSpec>,
    /// Batch job groups.
    pub jobs: Vec<JobGroupSpec>,
    /// Transactional applications.
    pub txns: Vec<TxnSpec>,
    /// Generative streaming workload (see [`WorkloadSpec`]); absent =
    /// the classic fully materialized model, bit-identical to scenarios
    /// written before this block existed.
    #[serde(default)]
    pub workload: Option<WorkloadSpec>,
    /// Scripted node failures (see [`NodeFailureSpec`] for the wire
    /// format). Node indices are validated against the cluster size at
    /// load time.
    #[serde(default)]
    pub node_failures: Vec<NodeFailureSpec>,
    /// The fallible actuation layer; defaults to exactly-off.
    #[serde(default)]
    pub actuation: ActuationSpec,
    /// Optional wall-clock budget for each optimization run, seconds
    /// (APC only). Makes the chosen placement depend on machine speed —
    /// leave unset for reproducible runs.
    #[serde(default)]
    pub deadline_secs: Option<f64>,
    /// Cell-sharded placement (APC only); absent = classic single-cell.
    #[serde(default)]
    pub sharding: Option<ShardingSpec>,
    /// The imperfect-telemetry observation layer (APC only); absent =
    /// perfect telemetry, bit-identical to scenarios written before the
    /// layer existed.
    #[serde(default)]
    pub observation: Option<ObservationSpec>,
    /// Decision-provenance tracing; defaults to off.
    #[serde(default)]
    pub trace: TraceSpec,
}

impl ScenarioSpec {
    /// Total number of nodes across all groups.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().map(|g| g.count).sum()
    }

    /// Total number of *classic* batch jobs the scenario will submit:
    /// each group spawns [`JobGroupSpec::count`] instances, except
    /// explicit [`ArrivalSpec::At`] groups, which spawn one per listed
    /// instant. Generated streams are excluded (the classic id layout
    /// depends on this count) — see
    /// [`ScenarioSpec::generated_job_cap`] for their contribution.
    pub fn job_count(&self) -> usize {
        self.jobs
            .iter()
            .map(|g| match &g.arrivals {
                ArrivalSpec::At(times) => times.len(),
                _ => g.count,
            })
            .sum()
    }

    /// Total count cap across generated batch streams. Exact for
    /// horizon-free scenarios (where validation forces every stream to
    /// carry a cap); an upper bound when a horizon can cut a stream
    /// short; zero contribution from uncapped streams.
    pub fn generated_job_cap(&self) -> usize {
        self.workload
            .as_ref()
            .map(|w| {
                w.batch_streams
                    .iter()
                    .map(|s| s.count.unwrap_or(0) as usize)
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Checks the scenario's structural consistency: at least one node
    /// (an all-`count: 0` fleet is as empty as no `nodes` list at all),
    /// a node total the `u32` id space can index, every scripted node
    /// failure inside the cluster, a convergent actuation failure rate,
    /// parallel jobs only under APC, a known trace level, finite values
    /// everywhere a number feeds simulated time (NaN arrivals or
    /// deadlines used to surface as panics inside the baseline
    /// schedulers' sorts), and sign constraints on every quantity with
    /// one (negative node capacities used to panic inside `build`; a
    /// zero `cycle_secs` would spin the control loop without advancing
    /// time).
    ///
    /// # Errors
    ///
    /// Returns the first violation in field order.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let policy = self.resolve_scheduler()?;
        let is_apc = policy.class() == PolicyClass::Apc;
        let nodes = self.node_count();
        if nodes == 0 {
            return Err(ScenarioError::NoNodes);
        }
        if nodes > u32::MAX as usize {
            return Err(ScenarioError::TooManyNodes { nodes });
        }
        for (failure_index, failure) in self.node_failures.iter().enumerate() {
            if failure.node as usize >= nodes {
                return Err(ScenarioError::NodeFailureOutOfRange {
                    failure_index,
                    node: failure.node,
                    nodes,
                });
            }
        }
        if !(0.0..1.0).contains(&self.actuation.failure_rate) {
            return Err(ScenarioError::FailureRateOutOfRange {
                rate: self.actuation.failure_rate,
            });
        }
        if !is_apc {
            for (group_index, group) in self.jobs.iter().enumerate() {
                if group.tasks > 1 {
                    return Err(ScenarioError::ParallelJobsNeedApc { group_index });
                }
            }
        }
        if TraceLevel::from_name(&self.trace.level).is_none() {
            return Err(ScenarioError::UnknownTraceLevel {
                level: self.trace.level.clone(),
            });
        }
        if let Some(sharding) = &self.sharding {
            if !is_apc {
                return Err(ScenarioError::InvalidSharding {
                    message: "only the apc scheduler supports sharding".to_string(),
                });
            }
            if sharding.cell_size == 0 {
                return Err(ScenarioError::InvalidSharding {
                    message: "cell_size must be at least 1".to_string(),
                });
            }
            if !sharding.rebalance_threshold.is_finite() || sharding.rebalance_threshold < 0.0 {
                return Err(ScenarioError::InvalidSharding {
                    message: format!(
                        "rebalance_threshold must be finite and >= 0, got {}",
                        sharding.rebalance_threshold
                    ),
                });
            }
        }
        self.validate_observation(is_apc)?;
        self.validate_workload(is_apc)?;
        self.validate_names()?;
        self.validate_resources()?;
        self.validate_finite()?;
        self.validate_signs()
    }

    /// Rejects degenerate `workload` blocks: arrival processes that can
    /// never produce (or never stop producing) arrivals, unbounded
    /// streams without a horizon to cut them, parallel streams under a
    /// baseline scheduler, and the usual finiteness / sign constraints
    /// on every generator parameter.
    fn validate_workload(&self, is_apc: bool) -> Result<(), ScenarioError> {
        let Some(workload) = &self.workload else {
            return Ok(());
        };
        let bad = |message: String| Err(ScenarioError::InvalidWorkload { message });
        let finite_positive = |field: &str, value: f64| {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                bad(format!("{field} must be finite and > 0, got {value}"))
            }
        };
        let finite_non_negative = |field: &str, value: f64| {
            if value.is_finite() && value >= 0.0 {
                Ok(())
            } else {
                bad(format!("{field} must be finite and >= 0, got {value}"))
            }
        };
        let check_resources = |field: &str, block: &BTreeMap<String, f64>| {
            for (name, &value) in block {
                if !self.resources.contains(name) {
                    return Err(ScenarioError::UnknownResource {
                        field: field.to_string(),
                        name: name.clone(),
                    });
                }
                finite_non_negative(&format!("{field}.{name}"), value)?;
            }
            Ok(())
        };
        for (i, stream) in workload.batch_streams.iter().enumerate() {
            let at = |leaf: &str| format!("workload.batch_streams[{i}].{leaf}");
            if stream.tasks == 0 {
                return bad(format!("{} must be at least 1", at("tasks")));
            }
            if stream.tasks > 1 && !is_apc {
                return bad(format!(
                    "{} asks for parallel tasks under a baseline scheduler",
                    at("tasks")
                ));
            }
            if stream.count.is_none() && self.horizon_secs.is_none() {
                return bad(format!(
                    "workload.batch_streams[{i}] is unbounded (no count) in a scenario \
                     without horizon_secs"
                ));
            }
            finite_positive(&at("work_mcycles"), stream.work_mcycles)?;
            finite_positive(&at("max_speed_mhz"), stream.max_speed_mhz)?;
            finite_non_negative(&at("memory_mb"), stream.memory_mb)?;
            match stream.goal {
                GoalSpec::Factor(f) => finite_positive(&at("goal.factor"), f)?,
                GoalSpec::RelativeSecs(s) => finite_positive(&at("goal.relative_secs"), s)?,
            }
            match &stream.process {
                ProcessSpec::Poisson { rate_per_sec } => {
                    finite_positive(&at("process.poisson.rate_per_sec"), *rate_per_sec)?;
                }
                ProcessSpec::Mmpp { states } => {
                    if states.is_empty() {
                        return bad(format!(
                            "{} must have at least one state",
                            at("process.mmpp")
                        ));
                    }
                    let mut any_positive = false;
                    for (j, &(rate, dwell)) in states.iter().enumerate() {
                        let leaf = format!("process.mmpp.states[{j}]");
                        finite_non_negative(&at(&format!("{leaf}.rate")), rate)?;
                        finite_positive(&at(&format!("{leaf}.mean_dwell_secs")), dwell)?;
                        any_positive |= rate > 0.0;
                    }
                    if !any_positive {
                        return bad(format!(
                            "{} has no state with a positive rate, so the stream \
                             never produces an arrival",
                            at("process.mmpp")
                        ));
                    }
                }
                ProcessSpec::Diurnal {
                    base_rate_per_sec,
                    amplitude,
                    period_secs,
                } => {
                    finite_positive(&at("process.diurnal.base_rate_per_sec"), *base_rate_per_sec)?;
                    if !amplitude.is_finite() {
                        return bad(format!(
                            "{} must be finite, got {amplitude}",
                            at("process.diurnal.amplitude")
                        ));
                    }
                    finite_positive(&at("process.diurnal.period_secs"), *period_secs)?;
                }
                ProcessSpec::FlashCrowd {
                    base_rate_per_sec,
                    multiplier,
                    every_secs,
                    duration_secs,
                } => {
                    finite_positive(
                        &at("process.flash_crowd.base_rate_per_sec"),
                        *base_rate_per_sec,
                    )?;
                    finite_positive(&at("process.flash_crowd.multiplier"), *multiplier)?;
                    finite_positive(&at("process.flash_crowd.every_secs"), *every_secs)?;
                    finite_non_negative(&at("process.flash_crowd.duration_secs"), *duration_secs)?;
                }
            }
            check_resources(
                &format!("workload.batch_streams[{i}].resources"),
                &stream.resources,
            )?;
        }
        for (i, stream) in workload.txn_streams.iter().enumerate() {
            let at = |leaf: &str| format!("workload.txn_streams[{i}].{leaf}");
            if stream.max_instances == 0 {
                return bad(format!("{} must be at least 1", at("max_instances")));
            }
            finite_positive(&at("demand_mcycles"), stream.demand_mcycles)?;
            finite_non_negative(&at("floor_secs"), stream.floor_secs)?;
            finite_positive(&at("goal_secs"), stream.goal_secs)?;
            finite_non_negative(&at("memory_mb"), stream.memory_mb)?;
            match &stream.curve {
                TxnCurveSpec::Constant { rate_per_sec } => {
                    finite_non_negative(&at("curve.constant.rate_per_sec"), *rate_per_sec)?;
                }
                TxnCurveSpec::Diurnal {
                    base_rate_per_sec,
                    amplitude_per_sec,
                    period_secs,
                } => {
                    finite_non_negative(
                        &at("curve.diurnal.base_rate_per_sec"),
                        *base_rate_per_sec,
                    )?;
                    if !amplitude_per_sec.is_finite() {
                        return bad(format!(
                            "{} must be finite, got {amplitude_per_sec}",
                            at("curve.diurnal.amplitude_per_sec")
                        ));
                    }
                    finite_positive(&at("curve.diurnal.period_secs"), *period_secs)?;
                }
                TxnCurveSpec::Population {
                    users,
                    think_time_secs,
                } => {
                    finite_non_negative(&at("curve.population.users"), *users)?;
                    finite_positive(&at("curve.population.think_time_secs"), *think_time_secs)?;
                }
            }
            check_resources(
                &format!("workload.txn_streams[{i}].resources"),
                &stream.resources,
            )?;
        }
        Ok(())
    }

    /// Rejects degenerate observation-layer parameters: probabilities
    /// that can never recover (a loss rate of 1.0 means telemetry is
    /// permanently dark), thresholds that break the state machine's
    /// ordering (`dead_after <= suspect_after` would skip Suspect), and
    /// a smoothing factor of zero (the estimate would never track
    /// demand at all).
    fn validate_observation(&self, is_apc: bool) -> Result<(), ScenarioError> {
        let Some(o) = &self.observation else {
            return Ok(());
        };
        let bad = |message: String| Err(ScenarioError::InvalidObservation { message });
        if !is_apc {
            return bad("only the apc scheduler supports an observation layer".to_string());
        }
        if !(0.0..1.0).contains(&o.heartbeat_loss) {
            return bad(format!(
                "heartbeat_loss must be in [0, 1), got {}",
                o.heartbeat_loss
            ));
        }
        if !o.noise.is_finite() || !(0.0..1.0).contains(&o.noise) {
            return bad(format!("noise must be in [0, 1), got {}", o.noise));
        }
        if !o.ewma_alpha.is_finite() || o.ewma_alpha <= 0.0 || o.ewma_alpha > 1.0 {
            return bad(format!(
                "ewma_alpha must be in (0, 1], got {}",
                o.ewma_alpha
            ));
        }
        if !o.headroom.is_finite() || o.headroom < 0.0 {
            return bad(format!(
                "headroom must be finite and >= 0, got {}",
                o.headroom
            ));
        }
        if o.suspect_after == 0 {
            return bad("suspect_after must be at least 1".to_string());
        }
        if o.dead_after <= o.suspect_after {
            return bad(format!(
                "dead_after ({}) must exceed suspect_after ({})",
                o.dead_after, o.suspect_after
            ));
        }
        if o.reinstate_after == 0 {
            return bad("reinstate_after must be at least 1".to_string());
        }
        if let Some(until) = o.loss_until_secs {
            if !until.is_finite() || until < 0.0 {
                return bad(format!(
                    "loss_until_secs must be finite and >= 0, got {until}"
                ));
            }
        }
        if DegradedMode::from_name(&o.degraded_mode).is_none() {
            return bad(format!(
                "degraded_mode must be hold|fill_only, got {:?}",
                o.degraded_mode
            ));
        }
        Ok(())
    }

    /// Rejects repeated names: node groups among themselves, and jobs +
    /// txns across their shared application namespace. A repeated name
    /// is almost always a copy-paste slip that would otherwise make
    /// per-name diagnostics ambiguous.
    fn validate_names(&self) -> Result<(), ScenarioError> {
        fn first_duplicate<'a>(
            kind: &'static str,
            names: impl Iterator<Item = &'a String>,
        ) -> Result<(), ScenarioError> {
            let mut seen = std::collections::BTreeSet::new();
            for name in names {
                if !seen.insert(name.as_str()) {
                    return Err(ScenarioError::DuplicateName {
                        kind,
                        name: name.clone(),
                    });
                }
            }
            Ok(())
        }
        first_duplicate("nodes", self.nodes.iter().filter_map(|g| g.name.as_ref()))?;
        first_duplicate(
            "applications",
            self.jobs
                .iter()
                .filter_map(|g| g.name.as_ref())
                .chain(self.txns.iter().filter_map(|t| t.name.as_ref()))
                .chain(self.workload.iter().flat_map(|w| {
                    w.batch_streams
                        .iter()
                        .filter_map(|s| s.name.as_ref())
                        .chain(w.txn_streams.iter().filter_map(|s| s.name.as_ref()))
                })),
        )
    }

    /// Checks the resource registry constructs and that every per-group
    /// `resources` block only references declared dimensions.
    fn validate_resources(&self) -> Result<(), ScenarioError> {
        if let Err(e) = ResourceDims::with_extra(self.resources.iter().cloned()) {
            return Err(ScenarioError::InvalidResources {
                message: e.to_string(),
            });
        }
        let declared = |name: &String| self.resources.contains(name);
        let check = |field: String, block: &BTreeMap<String, f64>| {
            for name in block.keys() {
                if !declared(name) {
                    return Err(ScenarioError::UnknownResource {
                        field,
                        name: name.clone(),
                    });
                }
            }
            Ok(())
        };
        for (i, group) in self.nodes.iter().enumerate() {
            check(format!("nodes[{i}].resources"), &group.resources)?;
        }
        for (i, group) in self.jobs.iter().enumerate() {
            check(format!("jobs[{i}].resources"), &group.resources)?;
        }
        for (i, txn) in self.txns.iter().enumerate() {
            check(format!("txns[{i}].resources"), &txn.resources)?;
        }
        Ok(())
    }

    /// The finiteness half of [`ScenarioSpec::validate`]: every number
    /// that ends up on a simulated timeline must be finite.
    fn validate_finite(&self) -> Result<(), ScenarioError> {
        fn finite(field: String, value: f64) -> Result<(), ScenarioError> {
            if value.is_finite() {
                Ok(())
            } else {
                Err(ScenarioError::NonFiniteNumber { field, value })
            }
        }
        finite("cycle_secs".to_string(), self.cycle_secs)?;
        if let Some(h) = self.horizon_secs {
            finite("horizon_secs".to_string(), h)?;
        }
        if let Some(d) = self.deadline_secs {
            // A NaN deadline used to panic inside Duration::from_secs_f64
            // mid-build.
            finite("deadline_secs".to_string(), d)?;
        }
        for (i, group) in self.nodes.iter().enumerate() {
            finite(format!("nodes[{i}].cpu_mhz"), group.cpu_mhz)?;
            finite(format!("nodes[{i}].memory_mb"), group.memory_mb)?;
            for (name, &value) in &group.resources {
                finite(format!("nodes[{i}].resources.{name}"), value)?;
            }
        }
        for (i, group) in self.jobs.iter().enumerate() {
            for (name, &value) in &group.resources {
                finite(format!("jobs[{i}].resources.{name}"), value)?;
            }
        }
        for (i, txn) in self.txns.iter().enumerate() {
            for (name, &value) in &txn.resources {
                finite(format!("txns[{i}].resources.{name}"), value)?;
            }
        }
        for (i, group) in self.jobs.iter().enumerate() {
            finite(format!("jobs[{i}].work_mcycles"), group.work_mcycles)?;
            finite(format!("jobs[{i}].max_speed_mhz"), group.max_speed_mhz)?;
            finite(format!("jobs[{i}].memory_mb"), group.memory_mb)?;
            match group.goal {
                GoalSpec::Factor(f) => finite(format!("jobs[{i}].goal.factor"), f)?,
                GoalSpec::RelativeSecs(s) => {
                    finite(format!("jobs[{i}].goal.relative_secs"), s)?;
                }
            }
            match &group.arrivals {
                ArrivalSpec::Exponential { mean_secs } => {
                    finite(
                        format!("jobs[{i}].arrivals.exponential.mean_secs"),
                        *mean_secs,
                    )?;
                }
                ArrivalSpec::Periodic { every_secs } => {
                    finite(
                        format!("jobs[{i}].arrivals.periodic.every_secs"),
                        *every_secs,
                    )?;
                }
                ArrivalSpec::At(times) => {
                    for (j, &t) in times.iter().enumerate() {
                        finite(format!("jobs[{i}].arrivals.at[{j}]"), t)?;
                    }
                }
            }
        }
        for (i, txn) in self.txns.iter().enumerate() {
            finite(format!("txns[{i}].demand_mcycles"), txn.demand_mcycles)?;
            finite(format!("txns[{i}].memory_mb"), txn.memory_mb)?;
            finite(format!("txns[{i}].floor_secs"), txn.floor_secs)?;
            finite(format!("txns[{i}].goal_secs"), txn.goal_secs)?;
            match &txn.rate {
                RateSpec::Constant(r) => finite(format!("txns[{i}].rate"), *r)?,
                RateSpec::Steps(steps) => {
                    for (j, &(t, r)) in steps.iter().enumerate() {
                        finite(format!("txns[{i}].rate[{j}].start_secs"), t)?;
                        finite(format!("txns[{i}].rate[{j}].rate"), r)?;
                    }
                }
            }
        }
        for (i, failure) in self.node_failures.iter().enumerate() {
            finite(format!("node_failures[{i}].at_secs"), failure.at_secs)?;
            if let Some(d) = failure.duration_secs {
                finite(format!("node_failures[{i}].duration_secs"), d)?;
            }
        }
        let a = &self.actuation;
        finite("actuation.latency_jitter".to_string(), a.latency_jitter)?;
        if let Some(t) = a.timeout_secs {
            finite("actuation.timeout_secs".to_string(), t)?;
        }
        if let Some(t) = a.fail_until_secs {
            finite("actuation.fail_until_secs".to_string(), t)?;
        }
        finite(
            "actuation.base_backoff_secs".to_string(),
            a.base_backoff_secs,
        )?;
        finite("actuation.backoff_factor".to_string(), a.backoff_factor)?;
        finite("actuation.max_backoff_secs".to_string(), a.max_backoff_secs)?;
        finite("actuation.quarantine_secs".to_string(), a.quarantine_secs)?;
        Ok(())
    }

    /// The sign half of [`ScenarioSpec::validate`]: strictly positive
    /// where zero is meaningless (`cycle_secs`, per-job work and speed,
    /// per-request demand, response-time goals, task and instance
    /// counts), non-negative everywhere else a negative value would
    /// either panic mid-build (node capacities) or move simulated time
    /// backwards (arrival instants, backoffs, outage offsets).
    fn validate_signs(&self) -> Result<(), ScenarioError> {
        fn positive(field: String, value: f64) -> Result<(), ScenarioError> {
            if value > 0.0 {
                Ok(())
            } else {
                Err(ScenarioError::NonPositiveNumber { field, value })
            }
        }
        fn non_negative(field: String, value: f64) -> Result<(), ScenarioError> {
            if value >= 0.0 {
                Ok(())
            } else {
                Err(ScenarioError::NegativeNumber { field, value })
            }
        }
        positive("cycle_secs".to_string(), self.cycle_secs)?;
        if let Some(h) = self.horizon_secs {
            non_negative("horizon_secs".to_string(), h)?;
        }
        if let Some(d) = self.deadline_secs {
            positive("deadline_secs".to_string(), d)?;
        }
        for (i, group) in self.nodes.iter().enumerate() {
            non_negative(format!("nodes[{i}].cpu_mhz"), group.cpu_mhz)?;
            non_negative(format!("nodes[{i}].memory_mb"), group.memory_mb)?;
            for (name, &value) in &group.resources {
                non_negative(format!("nodes[{i}].resources.{name}"), value)?;
            }
        }
        for (i, group) in self.jobs.iter().enumerate() {
            if group.tasks == 0 {
                return Err(ScenarioError::NonPositiveNumber {
                    field: format!("jobs[{i}].tasks"),
                    value: 0.0,
                });
            }
            positive(format!("jobs[{i}].work_mcycles"), group.work_mcycles)?;
            positive(format!("jobs[{i}].max_speed_mhz"), group.max_speed_mhz)?;
            non_negative(format!("jobs[{i}].memory_mb"), group.memory_mb)?;
            if let GoalSpec::Factor(factor) = group.goal {
                positive(format!("jobs[{i}].goal.factor"), factor)?;
            }
            match &group.arrivals {
                ArrivalSpec::Exponential { mean_secs } => {
                    positive(
                        format!("jobs[{i}].arrivals.exponential.mean_secs"),
                        *mean_secs,
                    )?;
                }
                ArrivalSpec::Periodic { every_secs } => {
                    non_negative(
                        format!("jobs[{i}].arrivals.periodic.every_secs"),
                        *every_secs,
                    )?;
                }
                ArrivalSpec::At(times) => {
                    for (j, &t) in times.iter().enumerate() {
                        non_negative(format!("jobs[{i}].arrivals.at[{j}]"), t)?;
                    }
                }
            }
            for (name, &value) in &group.resources {
                non_negative(format!("jobs[{i}].resources.{name}"), value)?;
            }
        }
        for (i, txn) in self.txns.iter().enumerate() {
            if txn.max_instances == 0 {
                return Err(ScenarioError::NonPositiveNumber {
                    field: format!("txns[{i}].max_instances"),
                    value: 0.0,
                });
            }
            positive(format!("txns[{i}].demand_mcycles"), txn.demand_mcycles)?;
            non_negative(format!("txns[{i}].floor_secs"), txn.floor_secs)?;
            positive(format!("txns[{i}].goal_secs"), txn.goal_secs)?;
            non_negative(format!("txns[{i}].memory_mb"), txn.memory_mb)?;
            match &txn.rate {
                RateSpec::Constant(rate) => non_negative(format!("txns[{i}].rate"), *rate)?,
                RateSpec::Steps(steps) => {
                    for (j, &(start, rate)) in steps.iter().enumerate() {
                        non_negative(format!("txns[{i}].rate[{j}].start_secs"), start)?;
                        non_negative(format!("txns[{i}].rate[{j}].rate"), rate)?;
                    }
                }
            }
            for (name, &value) in &txn.resources {
                non_negative(format!("txns[{i}].resources.{name}"), value)?;
            }
        }
        for (i, failure) in self.node_failures.iter().enumerate() {
            non_negative(format!("node_failures[{i}].at_secs"), failure.at_secs)?;
            if let Some(d) = failure.duration_secs {
                non_negative(format!("node_failures[{i}].duration_secs"), d)?;
            }
        }
        let a = &self.actuation;
        non_negative("actuation.latency_jitter".to_string(), a.latency_jitter)?;
        if let Some(t) = a.timeout_secs {
            positive("actuation.timeout_secs".to_string(), t)?;
        }
        if let Some(t) = a.fail_until_secs {
            non_negative("actuation.fail_until_secs".to_string(), t)?;
        }
        non_negative(
            "actuation.base_backoff_secs".to_string(),
            a.base_backoff_secs,
        )?;
        non_negative("actuation.backoff_factor".to_string(), a.backoff_factor)?;
        non_negative("actuation.max_backoff_secs".to_string(), a.max_backoff_secs)?;
        non_negative("actuation.quarantine_secs".to_string(), a.quarantine_secs)?;
        Ok(())
    }

    /// Resolves [`ScenarioSpec::scheduler`] against the global policy
    /// registry.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::UnknownPolicy`] (with a did-you-mean suggestion
    /// where one is plausible) when the name matches no registered
    /// policy or alias.
    pub fn resolve_scheduler(&self) -> Result<PolicyHandle, ScenarioError> {
        policy_registry::resolve(&self.scheduler).ok_or_else(|| ScenarioError::UnknownPolicy {
            name: self.scheduler.clone(),
            suggestion: policy_registry::suggest(&self.scheduler),
        })
    }

    /// Materializes the scenario into a ready-to-run [`Simulation`].
    ///
    /// # Panics
    ///
    /// Panics on inconsistent specifications with a message naming the
    /// offending field; use [`ScenarioSpec::build_checked`] to handle the
    /// error instead.
    pub fn build(&self) -> Simulation {
        self.build_checked()
            .unwrap_or_else(|e| panic!("invalid scenario: {e}"))
    }

    /// Validates and materializes the scenario.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScenarioError`] found by
    /// [`ScenarioSpec::validate`].
    pub fn build_checked(&self) -> Result<Simulation, ScenarioError> {
        self.validate()?;
        let mut sim = self.empty_simulation();
        for submission in self.classic_submissions().0 {
            sim.admit(submission);
        }
        // Lock-step compatibility mode for generative workloads: drain
        // the source streaming mode would attach, registering every
        // generated submission up front through the same admission path
        // (and therefore under the same application ids).
        let mut generated = self.generative_source();
        while let Some(submission) = generated.next() {
            sim.admit(submission);
        }
        Ok(sim)
    }

    /// Materializes the scenario in streaming mode: submissions are
    /// admitted lazily from a [`WorkloadSource`] just before they
    /// arrive, instead of all being registered up front. Proven
    /// bit-equal to [`ScenarioSpec::build`] for every scenario (the
    /// `streaming_vs_lockstep` differential family); combine with
    /// [`crate::engine::MetricsRetention::Aggregate`] for constant-memory
    /// runs over unbounded generated traces.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent specifications; use
    /// [`ScenarioSpec::build_streaming_checked`] to handle the error
    /// instead.
    pub fn build_streaming(&self) -> Simulation {
        self.build_streaming_checked()
            .unwrap_or_else(|e| panic!("invalid scenario: {e}"))
    }

    /// Validates and materializes the scenario in streaming mode (see
    /// [`ScenarioSpec::build_streaming`]).
    ///
    /// # Errors
    ///
    /// Returns the first [`ScenarioError`] found by
    /// [`ScenarioSpec::validate`].
    pub fn build_streaming_checked(&self) -> Result<Simulation, ScenarioError> {
        self.validate()?;
        let mut sim = self.empty_simulation();
        let (mut classic, reserved) = self.classic_submissions();
        // Stable sort: same-instant submissions keep declaration order,
        // and the zero-time txn registrations move ahead of every job —
        // the order the lock-step event queue fires them in.
        classic.sort_by(|a, b| a.time().as_secs().total_cmp(&b.time().as_secs()));
        let mut merged = MergedSource::new();
        merged.push(Box::new(ScenarioSource::from_parts(classic, reserved)));
        if self.workload.is_some() {
            merged.push(Box::new(self.generative_source()));
        }
        sim.attach_source(Box::new(merged));
        Ok(sim)
    }

    /// Materializes every submission the `workload` block generates, in
    /// admission order — the order the lock-step build drains the
    /// [`GenerativeSource`] in, which is also the order streaming mode
    /// assigns their application ids (time order: zero-time txn
    /// registrations first, then batch jobs by arrival). Intended for
    /// oracles and tests that re-derive per-app expectations from the
    /// spec alone; streaming runs themselves never materialize this
    /// list.
    pub fn generated_submissions(&self) -> Vec<Submission> {
        let mut source = self.generative_source();
        let mut out = Vec::new();
        while let Some(submission) = source.next() {
            out.push(submission);
        }
        out
    }

    /// The classic (`jobs`/`txns`) submissions with their pre-assigned
    /// application ids, in declaration order (all jobs, then all txns —
    /// the id layout every lock-step build has always produced), plus
    /// the size of the id block they reserve.
    fn classic_submissions(&self) -> (Vec<Submission>, u32) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut submissions = Vec::new();
        let mut next = 0u32;
        for group in &self.jobs {
            let extra = self.extra_rigid(&group.resources);
            for arrival in arrival_times(&mut rng, &group.arrivals, group.count) {
                submissions.push(Submission::Job(JobSubmission {
                    id: Some(AppId::new(next)),
                    arrival,
                    work_mcycles: group.work_mcycles,
                    max_speed_mhz: group.max_speed_mhz,
                    memory_mb: group.memory_mb,
                    goal: goal_submission(&group.goal),
                    tasks: group.tasks,
                    class: group.class.clone(),
                    extra_rigid: extra.clone(),
                }));
                next += 1;
            }
        }
        for txn in &self.txns {
            let pattern: Box<dyn dynaplace_txn::workload::ArrivalPattern + Send> = match &txn.rate {
                RateSpec::Constant(rate) => Box::new(ConstantRate(*rate)),
                RateSpec::Steps(steps) => Box::new(StepPattern::new(
                    steps
                        .iter()
                        .map(|&(t, r)| (SimTime::from_secs(t), r))
                        .collect(),
                )),
            };
            submissions.push(Submission::Txn(TxnSubmission {
                id: Some(AppId::new(next)),
                memory_mb: txn.memory_mb,
                max_instances: txn.max_instances,
                demand_mcycles: txn.demand_mcycles,
                floor_secs: txn.floor_secs,
                goal_secs: txn.goal_secs,
                pattern,
                extra_rigid: self.extra_rigid(&txn.resources),
            }));
            next += 1;
        }
        (submissions, next)
    }

    /// The generative source described by the `workload` block (empty
    /// when the scenario has none). Each stream draws from its own RNG
    /// seeded from `(seed, stream index)`, independent of the classic
    /// arrival RNG — so adding a workload block never perturbs the
    /// classic jobs.
    fn generative_source(&self) -> GenerativeSource {
        let mut source = GenerativeSource::new();
        let Some(workload) = &self.workload else {
            return source;
        };
        for txn in &workload.txn_streams {
            source.push_txn(TxnSubmission {
                id: None,
                memory_mb: txn.memory_mb,
                max_instances: txn.max_instances,
                demand_mcycles: txn.demand_mcycles,
                floor_secs: txn.floor_secs,
                goal_secs: txn.goal_secs,
                pattern: txn.curve.to_pattern(),
                extra_rigid: self.extra_rigid(&txn.resources),
            });
        }
        let horizon = self.horizon_secs.map(SimTime::from_secs);
        for (index, stream) in workload.batch_streams.iter().enumerate() {
            source.push_batch(
                stream.process.to_process(),
                JobTemplate {
                    work_mcycles: stream.work_mcycles,
                    max_speed_mhz: stream.max_speed_mhz,
                    memory_mb: stream.memory_mb,
                    goal: goal_submission(&stream.goal),
                    tasks: stream.tasks,
                    class: stream.class.clone(),
                    extra_rigid: self.extra_rigid(&stream.resources),
                },
                GenerativeSource::stream_seed(self.seed, index),
                stream.count,
                horizon,
            );
        }
        source
    }

    /// An empty [`Simulation`] over the scenario's cluster and
    /// configuration, ready for submissions — the part of `build` shared
    /// by the lock-step and streaming modes.
    fn empty_simulation(&self) -> Simulation {
        let mut cluster = Cluster::new();
        if !self.resources.is_empty() {
            cluster.set_dims(
                ResourceDims::with_extra(self.resources.iter().cloned())
                    .expect("validate() accepted the resource registry"),
            );
        }
        for group in &self.nodes {
            // Memory-only groups keep the scalar constructor's exact
            // vector shape; declared dimensions missing from the block
            // contribute zero capacity.
            let mut rigid = vec![group.memory_mb];
            rigid.extend(
                self.resources
                    .iter()
                    .map(|name| group.resources.get(name).copied().unwrap_or(0.0)),
            );
            let mut spec = NodeSpec::try_with_resources(
                CpuSpeed::from_mhz(group.cpu_mhz),
                Resources::new(rigid),
            )
            .expect("valid node capacities");
            if let Some(name) = &group.name {
                spec = spec.with_name(name.clone());
            }
            for _ in 0..group.count {
                cluster.add_node(spec.clone());
            }
        }
        let config = SimConfig {
            cycle: SimDuration::from_secs(self.cycle_secs),
            horizon: self.horizon_secs.map(SimDuration::from_secs),
            costs: if self.free_vm_costs {
                VmCostModel::free()
            } else {
                VmCostModel::default()
            },
            scheduler: {
                let policy = self
                    .resolve_scheduler()
                    .expect("validate() resolved the scheduler");
                if policy.class() == PolicyClass::Apc {
                    let apc = dynaplace_apc::optimizer::ApcConfig::builder()
                        .deadline(self.deadline_secs.map(std::time::Duration::from_secs_f64))
                        .sharding(self.sharding.as_ref().map(ShardingSpec::to_policy))
                        .build()
                        .expect("validated scenario yields a valid APC config");
                    policy.with_apc_config(apc).unwrap_or(policy)
                } else {
                    policy
                }
            },
            node_failures: self.node_failures.iter().map(|f| f.to_outage()).collect(),
            actuation: self.actuation.to_config(),
            observation: self
                .observation
                .as_ref()
                .map(ObservationSpec::to_config)
                .unwrap_or_default(),
            trace: self.trace.to_config(),
            ..SimConfig::apc_default()
        };
        Simulation::new(cluster, config)
    }

    /// A group's extra-rigid demand vector in registry order; empty when
    /// the scenario declares no extra dimensions, so memory-only specs
    /// take the exact legacy code path.
    fn extra_rigid(&self, block: &BTreeMap<String, f64>) -> Vec<f64> {
        if self.resources.is_empty() {
            return Vec::new();
        }
        self.resources
            .iter()
            .map(|name| block.get(name).copied().unwrap_or(0.0))
            .collect()
    }
}

impl ScenarioSpec {
    /// Parses a scenario from its JSON text and validates it, so a bad
    /// file fails at load time rather than silently misbehaving mid-run.
    pub fn from_json_str(text: &str) -> Result<Self, JsonError> {
        let spec = Self::from_json(&Json::parse(text)?)?;
        spec.validate().map_err(|e| JsonError {
            message: format!("invalid scenario: {e}"),
        })?;
        Ok(spec)
    }

    /// Renders the scenario as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }
}

// Explicit JSON conversions. The wire format is the one the checked-in
// scenario files use: lowercase scheduler names, externally tagged
// snake_case enum payloads, an untagged constant-or-steps rate, and
// defaults for seed / horizon_secs / free_vm_costs / tasks / class /
// node_failures.

/// Serializes an extras block (`{name: value}`); callers emit it only
/// when non-empty so legacy scenarios render byte-identically.
fn resources_to_json(block: &BTreeMap<String, f64>) -> Json {
    Json::Obj(
        block
            .iter()
            .map(|(name, value)| (name.clone(), value.to_json()))
            .collect(),
    )
}

/// Parses an optional extras block into a name → value map.
fn resources_from_json(v: Option<&Json>) -> Result<BTreeMap<String, f64>, JsonError> {
    match v {
        None | Some(Json::Null) => Ok(BTreeMap::new()),
        Some(Json::Obj(fields)) => fields
            .iter()
            .map(|(name, value)| Ok((name.clone(), f64::from_json(value)?)))
            .collect(),
        Some(other) => Err(JsonError {
            message: format!("resources must be an object of name: value pairs, got {other:?}"),
        }),
    }
}

/// Canonicalizes one legacy scalar out of an extras block: the value may
/// sit at the top level (the historical layout) or inside `resources`;
/// the top level wins when both are present, and the block entry is
/// consumed either way so only true extras remain in the map.
fn canonical_scalar(
    v: &Json,
    block: &mut BTreeMap<String, f64>,
    key: &str,
    context: &str,
) -> Result<f64, JsonError> {
    let from_block = block.remove(key);
    match v.get(key) {
        Some(value) => f64::from_json(value),
        None => from_block.ok_or_else(|| JsonError {
            message: format!("{context} is missing {key}"),
        }),
    }
}

impl ToJson for NodeGroupSpec {
    fn to_json(&self) -> Json {
        let mut fields = vec![("count", self.count.to_json())];
        if let Some(name) = &self.name {
            fields.push(("name", Json::Str(name.clone())));
        }
        fields.push(("cpu_mhz", self.cpu_mhz.to_json()));
        fields.push(("memory_mb", self.memory_mb.to_json()));
        if !self.resources.is_empty() {
            fields.push(("resources", resources_to_json(&self.resources)));
        }
        obj(fields)
    }
}

impl FromJson for NodeGroupSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut resources = resources_from_json(v.get("resources"))?;
        let cpu_mhz = canonical_scalar(v, &mut resources, "cpu_mhz", "node group")?;
        let memory_mb = canonical_scalar(v, &mut resources, "memory_mb", "node group")?;
        Ok(NodeGroupSpec {
            count: v.field("count")?,
            name: v.field_or("name")?,
            cpu_mhz,
            memory_mb,
            resources,
        })
    }
}

#[allow(deprecated)]
impl ToJson for SchedulerSpec {
    fn to_json(&self) -> Json {
        Json::Str(self.policy_name().to_string())
    }
}

#[allow(deprecated)]
impl FromJson for SchedulerSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("apc") => Ok(SchedulerSpec::Apc),
            Some("fcfs") => Ok(SchedulerSpec::Fcfs),
            Some("edf") => Ok(SchedulerSpec::Edf),
            _ => Err(JsonError {
                message: format!("unknown scheduler {v:?}; expected apc|fcfs|edf"),
            }),
        }
    }
}

impl ToJson for ArrivalSpec {
    fn to_json(&self) -> Json {
        match self {
            ArrivalSpec::Exponential { mean_secs } => {
                obj([("exponential", obj([("mean_secs", mean_secs.to_json())]))])
            }
            ArrivalSpec::Periodic { every_secs } => {
                obj([("periodic", obj([("every_secs", every_secs.to_json())]))])
            }
            ArrivalSpec::At(times) => obj([("at", times.to_json())]),
        }
    }
}

impl FromJson for ArrivalSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(inner) = v.get("exponential") {
            Ok(ArrivalSpec::Exponential {
                mean_secs: inner.field("mean_secs")?,
            })
        } else if let Some(inner) = v.get("periodic") {
            Ok(ArrivalSpec::Periodic {
                every_secs: inner.field("every_secs")?,
            })
        } else if let Some(times) = v.get("at") {
            Ok(ArrivalSpec::At(Vec::from_json(times)?))
        } else {
            Err(JsonError {
                message: "arrivals must be exponential|periodic|at".to_string(),
            })
        }
    }
}

impl ToJson for GoalSpec {
    fn to_json(&self) -> Json {
        match self {
            GoalSpec::Factor(f) => obj([("factor", f.to_json())]),
            GoalSpec::RelativeSecs(s) => obj([("relative_secs", s.to_json())]),
        }
    }
}

impl FromJson for GoalSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(f) = v.get("factor") {
            Ok(GoalSpec::Factor(f64::from_json(f)?))
        } else if let Some(s) = v.get("relative_secs") {
            Ok(GoalSpec::RelativeSecs(f64::from_json(s)?))
        } else {
            Err(JsonError {
                message: "goal must be factor|relative_secs".to_string(),
            })
        }
    }
}

impl ToJson for JobGroupSpec {
    fn to_json(&self) -> Json {
        let mut fields = vec![("count", self.count.to_json())];
        if let Some(name) = &self.name {
            fields.push(("name", Json::Str(name.clone())));
        }
        fields.extend([
            ("work_mcycles", self.work_mcycles.to_json()),
            ("max_speed_mhz", self.max_speed_mhz.to_json()),
            ("memory_mb", self.memory_mb.to_json()),
            ("goal", self.goal.to_json()),
            ("arrivals", self.arrivals.to_json()),
            ("tasks", self.tasks.to_json()),
            ("class", self.class.to_json()),
        ]);
        if !self.resources.is_empty() {
            fields.push(("resources", resources_to_json(&self.resources)));
        }
        obj(fields)
    }
}

impl FromJson for JobGroupSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut resources = resources_from_json(v.get("resources"))?;
        let memory_mb = canonical_scalar(v, &mut resources, "memory_mb", "job group")?;
        Ok(JobGroupSpec {
            count: v.field("count")?,
            name: v.field_or("name")?,
            work_mcycles: v.field("work_mcycles")?,
            max_speed_mhz: v.field("max_speed_mhz")?,
            memory_mb,
            goal: v.field("goal")?,
            arrivals: v.field("arrivals")?,
            tasks: match v.get("tasks") {
                None => one(),
                Some(t) => u32::from_json(t)?,
            },
            class: v.field_or("class")?,
            resources,
        })
    }
}

impl ToJson for TxnSpec {
    fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        if let Some(name) = &self.name {
            fields.push(("name", Json::Str(name.clone())));
        }
        fields.extend([
            ("rate", self.rate.to_json()),
            ("demand_mcycles", self.demand_mcycles.to_json()),
            ("floor_secs", self.floor_secs.to_json()),
            ("goal_secs", self.goal_secs.to_json()),
            ("memory_mb", self.memory_mb.to_json()),
            ("max_instances", self.max_instances.to_json()),
        ]);
        if !self.resources.is_empty() {
            fields.push(("resources", resources_to_json(&self.resources)));
        }
        obj(fields)
    }
}

impl FromJson for TxnSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut resources = resources_from_json(v.get("resources"))?;
        let memory_mb = canonical_scalar(v, &mut resources, "memory_mb", "txn")?;
        Ok(TxnSpec {
            name: v.field_or("name")?,
            rate: v.field("rate")?,
            demand_mcycles: v.field("demand_mcycles")?,
            floor_secs: v.field("floor_secs")?,
            goal_secs: v.field("goal_secs")?,
            memory_mb,
            max_instances: v.field("max_instances")?,
            resources,
        })
    }
}

impl ToJson for WorkloadSpec {
    fn to_json(&self) -> Json {
        obj([
            ("batch_streams", self.batch_streams.to_json()),
            ("txn_streams", self.txn_streams.to_json()),
        ])
    }
}

impl FromJson for WorkloadSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(WorkloadSpec {
            batch_streams: v.field_or("batch_streams")?,
            txn_streams: v.field_or("txn_streams")?,
        })
    }
}

impl ToJson for BatchStreamSpec {
    fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        if let Some(name) = &self.name {
            fields.push(("name", Json::Str(name.clone())));
        }
        fields.extend([
            ("process", self.process.to_json()),
            ("count", self.count.to_json()),
            ("work_mcycles", self.work_mcycles.to_json()),
            ("max_speed_mhz", self.max_speed_mhz.to_json()),
            ("memory_mb", self.memory_mb.to_json()),
            ("goal", self.goal.to_json()),
            ("tasks", self.tasks.to_json()),
            ("class", self.class.to_json()),
        ]);
        if !self.resources.is_empty() {
            fields.push(("resources", resources_to_json(&self.resources)));
        }
        obj(fields)
    }
}

impl FromJson for BatchStreamSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(BatchStreamSpec {
            name: v.field_or("name")?,
            process: v.field("process")?,
            count: v.field_or("count")?,
            work_mcycles: v.field("work_mcycles")?,
            max_speed_mhz: v.field("max_speed_mhz")?,
            memory_mb: v.field("memory_mb")?,
            goal: v.field("goal")?,
            tasks: match v.get("tasks") {
                None => one(),
                Some(t) => u32::from_json(t)?,
            },
            class: v.field_or("class")?,
            resources: resources_from_json(v.get("resources"))?,
        })
    }
}

impl ToJson for ProcessSpec {
    fn to_json(&self) -> Json {
        match self {
            ProcessSpec::Poisson { rate_per_sec } => {
                obj([("poisson", obj([("rate_per_sec", rate_per_sec.to_json())]))])
            }
            ProcessSpec::Mmpp { states } => obj([("mmpp", obj([("states", states.to_json())]))]),
            ProcessSpec::Diurnal {
                base_rate_per_sec,
                amplitude,
                period_secs,
            } => obj([(
                "diurnal",
                obj([
                    ("base_rate_per_sec", base_rate_per_sec.to_json()),
                    ("amplitude", amplitude.to_json()),
                    ("period_secs", period_secs.to_json()),
                ]),
            )]),
            ProcessSpec::FlashCrowd {
                base_rate_per_sec,
                multiplier,
                every_secs,
                duration_secs,
            } => obj([(
                "flash_crowd",
                obj([
                    ("base_rate_per_sec", base_rate_per_sec.to_json()),
                    ("multiplier", multiplier.to_json()),
                    ("every_secs", every_secs.to_json()),
                    ("duration_secs", duration_secs.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for ProcessSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(inner) = v.get("poisson") {
            Ok(ProcessSpec::Poisson {
                rate_per_sec: inner.field("rate_per_sec")?,
            })
        } else if let Some(inner) = v.get("mmpp") {
            Ok(ProcessSpec::Mmpp {
                states: inner.field("states")?,
            })
        } else if let Some(inner) = v.get("diurnal") {
            Ok(ProcessSpec::Diurnal {
                base_rate_per_sec: inner.field("base_rate_per_sec")?,
                amplitude: inner.field("amplitude")?,
                period_secs: inner.field("period_secs")?,
            })
        } else if let Some(inner) = v.get("flash_crowd") {
            Ok(ProcessSpec::FlashCrowd {
                base_rate_per_sec: inner.field("base_rate_per_sec")?,
                multiplier: inner.field("multiplier")?,
                every_secs: inner.field("every_secs")?,
                duration_secs: inner.field("duration_secs")?,
            })
        } else {
            Err(JsonError {
                message: "process must be poisson|mmpp|diurnal|flash_crowd".to_string(),
            })
        }
    }
}

impl ToJson for TxnStreamSpec {
    fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        if let Some(name) = &self.name {
            fields.push(("name", Json::Str(name.clone())));
        }
        fields.extend([
            ("curve", self.curve.to_json()),
            ("demand_mcycles", self.demand_mcycles.to_json()),
            ("floor_secs", self.floor_secs.to_json()),
            ("goal_secs", self.goal_secs.to_json()),
            ("memory_mb", self.memory_mb.to_json()),
            ("max_instances", self.max_instances.to_json()),
        ]);
        if !self.resources.is_empty() {
            fields.push(("resources", resources_to_json(&self.resources)));
        }
        obj(fields)
    }
}

impl FromJson for TxnStreamSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(TxnStreamSpec {
            name: v.field_or("name")?,
            curve: v.field("curve")?,
            demand_mcycles: v.field("demand_mcycles")?,
            floor_secs: v.field("floor_secs")?,
            goal_secs: v.field("goal_secs")?,
            memory_mb: v.field("memory_mb")?,
            max_instances: v.field("max_instances")?,
            resources: resources_from_json(v.get("resources"))?,
        })
    }
}

impl ToJson for TxnCurveSpec {
    fn to_json(&self) -> Json {
        match self {
            TxnCurveSpec::Constant { rate_per_sec } => {
                obj([("constant", obj([("rate_per_sec", rate_per_sec.to_json())]))])
            }
            TxnCurveSpec::Diurnal {
                base_rate_per_sec,
                amplitude_per_sec,
                period_secs,
            } => obj([(
                "diurnal",
                obj([
                    ("base_rate_per_sec", base_rate_per_sec.to_json()),
                    ("amplitude_per_sec", amplitude_per_sec.to_json()),
                    ("period_secs", period_secs.to_json()),
                ]),
            )]),
            TxnCurveSpec::Population {
                users,
                think_time_secs,
            } => obj([(
                "population",
                obj([
                    ("users", users.to_json()),
                    ("think_time_secs", think_time_secs.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for TxnCurveSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(inner) = v.get("constant") {
            Ok(TxnCurveSpec::Constant {
                rate_per_sec: inner.field("rate_per_sec")?,
            })
        } else if let Some(inner) = v.get("diurnal") {
            Ok(TxnCurveSpec::Diurnal {
                base_rate_per_sec: inner.field("base_rate_per_sec")?,
                amplitude_per_sec: inner.field("amplitude_per_sec")?,
                period_secs: inner.field("period_secs")?,
            })
        } else if let Some(inner) = v.get("population") {
            Ok(TxnCurveSpec::Population {
                users: inner.field("users")?,
                think_time_secs: inner.field("think_time_secs")?,
            })
        } else {
            Err(JsonError {
                message: "curve must be constant|diurnal|population".to_string(),
            })
        }
    }
}

impl ToJson for NodeFailureSpec {
    fn to_json(&self) -> Json {
        let mut parts = vec![self.at_secs.to_json(), f64::from(self.node).to_json()];
        if let Some(duration) = self.duration_secs {
            parts.push(duration.to_json());
        }
        Json::Arr(parts)
    }
}

impl FromJson for NodeFailureSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let Json::Arr(parts) = v else {
            return Err(JsonError {
                message: "node failure must be [offset_secs, node] or \
                          [offset_secs, node, duration_secs]"
                    .to_string(),
            });
        };
        if parts.len() != 2 && parts.len() != 3 {
            return Err(JsonError {
                message: format!(
                    "node failure must have 2 or 3 elements, got {}",
                    parts.len()
                ),
            });
        }
        Ok(NodeFailureSpec {
            at_secs: f64::from_json(&parts[0])?,
            node: u32::from_json(&parts[1])?,
            duration_secs: parts.get(2).map(f64::from_json).transpose()?,
        })
    }
}

impl ToJson for ActuationSpec {
    fn to_json(&self) -> Json {
        obj([
            ("failure_rate", self.failure_rate.to_json()),
            ("latency_jitter", self.latency_jitter.to_json()),
            ("timeout_secs", self.timeout_secs.to_json()),
            ("fail_until_secs", self.fail_until_secs.to_json()),
            ("seed", self.seed.to_json()),
            ("base_backoff_secs", self.base_backoff_secs.to_json()),
            ("backoff_factor", self.backoff_factor.to_json()),
            ("max_backoff_secs", self.max_backoff_secs.to_json()),
            ("quarantine_after", self.quarantine_after.to_json()),
            ("quarantine_secs", self.quarantine_secs.to_json()),
            ("fallback_after", self.fallback_after.to_json()),
        ])
    }
}

impl FromJson for ActuationSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let d = ActuationSpec::default();
        Ok(ActuationSpec {
            failure_rate: v.field_or_else("failure_rate", || d.failure_rate)?,
            latency_jitter: v.field_or_else("latency_jitter", || d.latency_jitter)?,
            timeout_secs: v.field_or("timeout_secs")?,
            fail_until_secs: v.field_or("fail_until_secs")?,
            seed: v.field_or_else("seed", || d.seed)?,
            base_backoff_secs: v.field_or_else("base_backoff_secs", || d.base_backoff_secs)?,
            backoff_factor: v.field_or_else("backoff_factor", || d.backoff_factor)?,
            max_backoff_secs: v.field_or_else("max_backoff_secs", || d.max_backoff_secs)?,
            quarantine_after: v.field_or_else("quarantine_after", || d.quarantine_after)?,
            quarantine_secs: v.field_or_else("quarantine_secs", || d.quarantine_secs)?,
            fallback_after: v.field_or_else("fallback_after", || d.fallback_after)?,
        })
    }
}

impl ToJson for ObservationSpec {
    fn to_json(&self) -> Json {
        obj([
            ("heartbeat_loss", self.heartbeat_loss.to_json()),
            ("max_staleness_cycles", self.max_staleness_cycles.to_json()),
            ("noise", self.noise.to_json()),
            ("loss_until_secs", self.loss_until_secs.to_json()),
            ("seed", self.seed.to_json()),
            ("suspect_after", self.suspect_after.to_json()),
            ("dead_after", self.dead_after.to_json()),
            ("reinstate_after", self.reinstate_after.to_json()),
            ("ewma_alpha", self.ewma_alpha.to_json()),
            ("headroom", self.headroom.to_json()),
            (
                "staleness_budget_cycles",
                self.staleness_budget_cycles.to_json(),
            ),
            ("degraded_mode", Json::Str(self.degraded_mode.clone())),
        ])
    }
}

impl FromJson for ObservationSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let d = ObservationSpec::default();
        Ok(ObservationSpec {
            heartbeat_loss: v.field_or_else("heartbeat_loss", || d.heartbeat_loss)?,
            max_staleness_cycles: v
                .field_or_else("max_staleness_cycles", || d.max_staleness_cycles)?,
            noise: v.field_or_else("noise", || d.noise)?,
            loss_until_secs: v.field_or("loss_until_secs")?,
            seed: v.field_or_else("seed", || d.seed)?,
            suspect_after: v.field_or_else("suspect_after", || d.suspect_after)?,
            dead_after: v.field_or_else("dead_after", || d.dead_after)?,
            reinstate_after: v.field_or_else("reinstate_after", || d.reinstate_after)?,
            ewma_alpha: v.field_or_else("ewma_alpha", || d.ewma_alpha)?,
            headroom: v.field_or_else("headroom", || d.headroom)?,
            staleness_budget_cycles: v
                .field_or_else("staleness_budget_cycles", || d.staleness_budget_cycles)?,
            degraded_mode: v.field_or_else("degraded_mode", || d.degraded_mode.clone())?,
        })
    }
}

impl ToJson for TraceSpec {
    fn to_json(&self) -> Json {
        obj([
            ("path", self.path.to_json()),
            ("level", Json::Str(self.level.clone())),
        ])
    }
}

impl FromJson for TraceSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let d = TraceSpec::default();
        Ok(TraceSpec {
            path: v.field_or("path")?,
            level: v.field_or_else("level", || d.level)?,
        })
    }
}

impl ToJson for ShardingSpec {
    fn to_json(&self) -> Json {
        obj([
            ("cell_size", self.cell_size.to_json()),
            ("rebalance_moves", self.rebalance_moves.to_json()),
            ("rebalance_threshold", self.rebalance_threshold.to_json()),
        ])
    }
}

impl FromJson for ShardingSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ShardingSpec {
            cell_size: v.field("cell_size")?,
            rebalance_moves: v.field_or_else("rebalance_moves", default_rebalance_moves)?,
            rebalance_threshold: v
                .field_or_else("rebalance_threshold", default_rebalance_threshold)?,
        })
    }
}

impl ToJson for RateSpec {
    fn to_json(&self) -> Json {
        match self {
            RateSpec::Constant(rate) => rate.to_json(),
            RateSpec::Steps(steps) => steps.to_json(),
        }
    }
}

impl FromJson for RateSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Num(rate) => Ok(RateSpec::Constant(*rate)),
            Json::Arr(_) => Ok(RateSpec::Steps(Vec::from_json(v)?)),
            _ => Err(JsonError {
                message: "rate must be a number or a list of (secs, rate) steps".to_string(),
            }),
        }
    }
}

impl ToJson for ScenarioSpec {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("seed", self.seed.to_json()),
            ("scheduler", self.scheduler.to_json()),
            ("cycle_secs", self.cycle_secs.to_json()),
            ("horizon_secs", self.horizon_secs.to_json()),
            ("free_vm_costs", self.free_vm_costs.to_json()),
        ];
        if !self.resources.is_empty() {
            fields.push(("resources", self.resources.to_json()));
        }
        fields.extend([
            ("nodes", self.nodes.to_json()),
            ("jobs", self.jobs.to_json()),
            ("txns", self.txns.to_json()),
        ]);
        if let Some(workload) = &self.workload {
            fields.push(("workload", workload.to_json()));
        }
        fields.extend([
            ("node_failures", self.node_failures.to_json()),
            ("actuation", self.actuation.to_json()),
            ("deadline_secs", self.deadline_secs.to_json()),
            ("sharding", self.sharding.to_json()),
        ]);
        if let Some(observation) = &self.observation {
            fields.push(("observation", observation.to_json()));
        }
        fields.push(("trace", self.trace.to_json()));
        obj(fields)
    }
}

impl FromJson for ScenarioSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ScenarioSpec {
            seed: v.field_or("seed")?,
            scheduler: v.field("scheduler")?,
            cycle_secs: v.field("cycle_secs")?,
            horizon_secs: v.field_or("horizon_secs")?,
            free_vm_costs: v.field_or("free_vm_costs")?,
            resources: v.field_or("resources")?,
            nodes: v.field("nodes")?,
            jobs: v.field("jobs")?,
            txns: v.field("txns")?,
            workload: v.field_or("workload")?,
            node_failures: v.field_or("node_failures")?,
            actuation: v.field_or_else("actuation", ActuationSpec::default)?,
            deadline_secs: v.field_or("deadline_secs")?,
            sharding: v.field_or("sharding")?,
            observation: v.field_or("observation")?,
            trace: v.field_or_else("trace", TraceSpec::default)?,
        })
    }
}

/// Converts a scenario goal into its submission form.
fn goal_submission(goal: &GoalSpec) -> GoalSubmission {
    match goal {
        GoalSpec::Factor(f) => GoalSubmission::Factor(*f),
        GoalSpec::RelativeSecs(s) => GoalSubmission::RelativeSecs(*s),
    }
}

fn arrival_times(rng: &mut StdRng, spec: &ArrivalSpec, count: usize) -> Vec<SimTime> {
    match spec {
        ArrivalSpec::Exponential { mean_secs } => {
            let mut t = SimTime::ZERO;
            (0..count)
                .map(|_| {
                    let u: f64 = rng.gen::<f64>().max(1e-12);
                    t += SimDuration::from_secs(-mean_secs * u.ln());
                    t
                })
                .collect()
        }
        ArrivalSpec::Periodic { every_secs } => (0..count)
            .map(|i| SimTime::from_secs(i as f64 * every_secs))
            .collect(),
        ArrivalSpec::At(times) => times.iter().map(|&t| SimTime::from_secs(t)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(scheduler: &str) -> ScenarioSpec {
        ScenarioSpec {
            seed: 1,
            scheduler: scheduler.to_string(),
            cycle_secs: 10.0,
            horizon_secs: Some(10_000.0),
            free_vm_costs: true,
            resources: vec![],
            nodes: vec![NodeGroupSpec {
                count: 2,
                name: None,
                cpu_mhz: 2_000.0,
                memory_mb: 4_000.0,
                resources: BTreeMap::new(),
            }],
            jobs: vec![JobGroupSpec {
                count: 4,
                name: None,
                work_mcycles: 20_000.0,
                max_speed_mhz: 1_000.0,
                memory_mb: 1_000.0,
                goal: GoalSpec::Factor(4.0),
                arrivals: ArrivalSpec::Periodic { every_secs: 15.0 },
                tasks: 1,
                class: None,
                resources: BTreeMap::new(),
            }],
            txns: vec![],
            workload: None,
            node_failures: vec![],
            actuation: ActuationSpec::default(),
            deadline_secs: None,
            sharding: None,
            observation: None,
            trace: TraceSpec::default(),
        }
    }

    #[test]
    fn builds_and_runs_every_scheduler() {
        for scheduler in ["apc", "fcfs", "edf"] {
            let metrics = minimal(scheduler).build().run();
            assert_eq!(metrics.completions.len(), 4, "{scheduler:?}");
        }
    }

    #[test]
    fn unknown_policy_is_a_typed_error_with_a_suggestion() {
        let spec = minimal("apx");
        match spec.build_checked() {
            Err(ScenarioError::UnknownPolicy { name, suggestion }) => {
                assert_eq!(name, "apx");
                assert_eq!(suggestion.as_deref(), Some("apc"));
            }
            Err(other) => panic!("expected UnknownPolicy, got {other:?}"),
            Ok(_) => panic!("expected UnknownPolicy, got a simulation"),
        }
        let msg = spec.validate().unwrap_err().to_string();
        assert!(msg.contains("did you mean \"apc\"?"), "{msg}");
        assert!(msg.contains("registered policies"), "{msg}");
    }

    #[test]
    fn aliases_resolve_in_scenarios() {
        // The registry's alias layer works end to end from a spec.
        let metrics = minimal("VBP").build().run();
        assert_eq!(metrics.completions.len(), 4);
    }

    #[test]
    fn round_trips_through_json() {
        let spec = minimal("apc");
        let json = spec.to_json_string();
        let back = ScenarioSpec::from_json_str(&json).unwrap();
        let a = spec.build().run();
        let b = back.build().run();
        assert_eq!(a.completions.len(), b.completions.len());
        for (x, y) in a.completions.iter().zip(&b.completions) {
            assert_eq!(x.completion, y.completion);
        }
    }

    #[test]
    fn explicit_arrivals_and_relative_goals() {
        let mut spec = minimal("apc");
        spec.jobs[0].arrivals = ArrivalSpec::At(vec![0.0, 5.0, 7.5]);
        spec.jobs[0].count = 3;
        spec.jobs[0].goal = GoalSpec::RelativeSecs(500.0);
        let metrics = spec.build().run();
        assert_eq!(metrics.completions.len(), 3);
        assert!(metrics.completions.iter().all(|c| c.met_deadline));
    }

    #[test]
    fn parallel_group_under_apc() {
        let mut spec = minimal("apc");
        spec.jobs[0].tasks = 2;
        spec.jobs[0].count = 2;
        let metrics = spec.build().run();
        assert_eq!(metrics.completions.len(), 2);
    }

    #[test]
    fn out_of_range_node_failure_is_a_typed_error() {
        let mut spec = minimal("apc");
        spec.node_failures = vec![NodeFailureSpec {
            at_secs: 30.0,
            node: 7, // cluster has 2 nodes
            duration_secs: None,
        }];
        assert_eq!(
            spec.validate(),
            Err(ScenarioError::NodeFailureOutOfRange {
                failure_index: 0,
                node: 7,
                nodes: 2,
            })
        );
        let err = ScenarioSpec::from_json_str(&spec.to_json_string()).unwrap_err();
        assert!(err.message.contains("node_failures[0]"), "{}", err.message);
    }

    #[test]
    fn failure_rate_of_one_is_rejected() {
        let mut spec = minimal("apc");
        spec.actuation.failure_rate = 1.0;
        assert_eq!(
            spec.validate(),
            Err(ScenarioError::FailureRateOutOfRange { rate: 1.0 })
        );
    }

    #[test]
    fn parallel_jobs_under_baseline_rejected_at_load_time() {
        let mut spec = minimal("fcfs");
        spec.jobs[0].tasks = 2;
        assert_eq!(
            spec.validate(),
            Err(ScenarioError::ParallelJobsNeedApc { group_index: 0 })
        );
    }

    #[test]
    fn sharding_block_round_trips_and_validates() {
        let mut spec = minimal("apc");
        spec.sharding = Some(ShardingSpec::new(1));
        let back = ScenarioSpec::from_json_str(&spec.to_json_string()).unwrap();
        assert_eq!(back.sharding, spec.sharding);

        // Omitted rebalance fields fall back to the policy defaults.
        let json = r#"{
            "scheduler": "apc", "cycle_secs": 10.0,
            "nodes": [{ "count": 2, "cpu_mhz": 2000.0, "memory_mb": 4000.0 }],
            "jobs": [], "txns": [],
            "sharding": { "cell_size": 8 }
        }"#;
        let parsed = ScenarioSpec::from_json_str(json).unwrap();
        assert_eq!(parsed.sharding, Some(ShardingSpec::new(8)));

        // Degenerate blocks and baseline schedulers are load-time errors.
        spec.sharding = Some(ShardingSpec::new(0));
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::InvalidSharding { .. })
        ));
        let mut baseline = minimal("fcfs");
        baseline.sharding = Some(ShardingSpec::new(1));
        assert!(matches!(
            baseline.validate(),
            Err(ScenarioError::InvalidSharding { .. })
        ));
        let mut nan = minimal("apc");
        nan.sharding = Some(ShardingSpec {
            cell_size: 1,
            rebalance_moves: 2,
            rebalance_threshold: f64::NAN,
        });
        assert!(matches!(
            nan.validate(),
            Err(ScenarioError::InvalidSharding { .. })
        ));
    }

    #[test]
    fn sharded_scenario_builds_and_completes_jobs() {
        let mut spec = minimal("apc");
        spec.sharding = Some(ShardingSpec::new(1));
        let metrics = spec.build().run();
        assert_eq!(metrics.completions.len(), 4);
    }

    #[test]
    fn node_failure_wire_formats_round_trip() {
        let permanent = NodeFailureSpec {
            at_secs: 30.0,
            node: 1,
            duration_secs: None,
        };
        let transient = NodeFailureSpec {
            at_secs: 30.0,
            node: 1,
            duration_secs: Some(600.0),
        };
        assert_eq!(permanent.to_json(), Json::parse("[30.0, 1]").unwrap());
        assert_eq!(
            transient.to_json(),
            Json::parse("[30.0, 1, 600.0]").unwrap()
        );
        for spec in [permanent, transient] {
            let back = NodeFailureSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(back, spec);
        }
        // The historical 2-element tuples still parse.
        let legacy = Json::parse("[[45.5, 0]]").unwrap();
        let parsed = Vec::<NodeFailureSpec>::from_json(&legacy).unwrap();
        assert_eq!(parsed[0].at_secs, 45.5);
        assert_eq!(parsed[0].duration_secs, None);
    }

    #[test]
    fn actuation_block_defaults_to_exactly_off() {
        // A scenario without an actuation block gets the exactly-off
        // default, and the default round-trips unchanged.
        let spec = minimal("apc");
        let back = ScenarioSpec::from_json_str(&spec.to_json_string()).unwrap();
        assert_eq!(back.actuation, ActuationSpec::default());
        assert_eq!(back.deadline_secs, None);
        // A partial block inherits every other default.
        let partial = Json::parse(r#"{ "failure_rate": 0.25 }"#).unwrap();
        let parsed = ActuationSpec::from_json(&partial).unwrap();
        assert_eq!(parsed.failure_rate, 0.25);
        assert_eq!(
            parsed.backoff_factor,
            ActuationSpec::default().backoff_factor
        );
    }

    #[test]
    fn trace_block_defaults_to_off_and_round_trips() {
        // No trace block: off, and the default round-trips unchanged.
        let spec = minimal("apc");
        let back = ScenarioSpec::from_json_str(&spec.to_json_string()).unwrap();
        assert_eq!(back.trace, TraceSpec::default());
        assert_eq!(back.trace.path, None);
        // A partial block inherits the decisions default level.
        let partial = Json::parse(r#"{ "path": "out.jsonl" }"#).unwrap();
        let parsed = TraceSpec::from_json(&partial).unwrap();
        assert_eq!(parsed.path.as_deref(), Some("out.jsonl"));
        assert_eq!(parsed.level, "decisions");
    }

    #[test]
    fn unknown_trace_level_is_a_typed_error() {
        let mut spec = minimal("apc");
        spec.trace.level = "chatty".to_string();
        assert_eq!(
            spec.validate(),
            Err(ScenarioError::UnknownTraceLevel {
                level: "chatty".to_string(),
            })
        );
        let err = ScenarioSpec::from_json_str(&spec.to_json_string()).unwrap_err();
        assert!(err.message.contains("trace.level"), "{}", err.message);
    }

    #[test]
    fn non_finite_times_are_rejected_at_load_time() {
        // A NaN explicit arrival used to reach the FCFS/EDF sort and
        // panic mid-run; now it is a typed load-time error.
        let mut spec = minimal("fcfs");
        spec.jobs[0].arrivals = ArrivalSpec::At(vec![0.0, f64::NAN]);
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::NonFiniteNumber { ref field, value })
                if field == "jobs[0].arrivals.at[1]" && value.is_nan()
        ));

        let mut spec = minimal("edf");
        spec.jobs[0].goal = GoalSpec::RelativeSecs(f64::INFINITY);
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::NonFiniteNumber { ref field, .. })
                if field == "jobs[0].goal.relative_secs"
        ));

        let mut spec = minimal("apc");
        spec.cycle_secs = f64::NAN;
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::NonFiniteNumber { ref field, .. }) if field == "cycle_secs"
        ));
    }

    #[test]
    fn transient_failure_recovers_and_jobs_complete() {
        let mut spec = minimal("apc");
        spec.free_vm_costs = false;
        spec.node_failures = vec![NodeFailureSpec {
            at_secs: 40.0,
            node: 0,
            duration_secs: Some(200.0),
        }];
        let metrics = spec.build().run();
        assert_eq!(metrics.completions.len(), 4);
    }

    #[test]
    fn txn_steps_pattern() {
        let mut spec = minimal("apc");
        spec.txns = vec![TxnSpec {
            name: None,
            rate: RateSpec::Steps(vec![(0.0, 10.0), (100.0, 50.0)]),
            demand_mcycles: 10.0,
            floor_secs: 0.005,
            goal_secs: 0.05,
            memory_mb: 500.0,
            max_instances: 2,
            resources: BTreeMap::new(),
        }];
        let metrics = spec.build().run();
        assert!(metrics.samples.iter().any(|s| s.txn_rp.is_some()));
    }

    #[test]
    fn duplicate_names_are_typed_errors() {
        // Node groups sharing a name.
        let mut spec = minimal("apc");
        spec.nodes[0].name = Some("rack".to_string());
        spec.nodes.push(spec.nodes[0].clone());
        assert_eq!(
            spec.validate(),
            Err(ScenarioError::DuplicateName {
                kind: "nodes",
                name: "rack".to_string(),
            })
        );

        // A job and a txn collide in the shared application namespace.
        let mut spec = minimal("apc");
        spec.jobs[0].name = Some("web".to_string());
        spec.txns = vec![TxnSpec {
            name: Some("web".to_string()),
            rate: RateSpec::Constant(5.0),
            demand_mcycles: 10.0,
            floor_secs: 0.005,
            goal_secs: 0.05,
            memory_mb: 500.0,
            max_instances: 2,
            resources: BTreeMap::new(),
        }];
        assert_eq!(
            spec.validate(),
            Err(ScenarioError::DuplicateName {
                kind: "applications",
                name: "web".to_string(),
            })
        );

        // Distinct names (and the all-anonymous default) stay valid.
        spec.txns[0].name = Some("db".to_string());
        assert_eq!(spec.validate(), Ok(()));
        assert_eq!(minimal("apc").validate(), Ok(()));
    }

    #[test]
    fn undeclared_resource_is_a_typed_error() {
        let mut spec = minimal("apc");
        spec.jobs[0].resources.insert("disk_mb".to_string(), 100.0);
        assert_eq!(
            spec.validate(),
            Err(ScenarioError::UnknownResource {
                field: "jobs[0].resources".to_string(),
                name: "disk_mb".to_string(),
            })
        );
        // Declaring the dimension fixes it; nodes default to zero
        // capacity for it, which is still structurally valid.
        spec.resources = vec!["disk_mb".to_string()];
        assert_eq!(spec.validate(), Ok(()));
        // Restating the implicit memory dimension is rejected.
        spec.resources = vec!["disk_mb".to_string(), "memory_mb".to_string()];
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::InvalidResources { .. })
        ));
    }

    #[test]
    fn multi_resource_scenario_builds_runs_and_round_trips() {
        let mut spec = minimal("apc");
        spec.resources = vec!["disk_mb".to_string(), "net_mbps".to_string()];
        spec.nodes[0].resources = BTreeMap::from([
            ("disk_mb".to_string(), 10_000.0),
            ("net_mbps".to_string(), 1_000.0),
        ]);
        spec.jobs[0]
            .resources
            .insert("disk_mb".to_string(), 2_000.0);
        spec.txns = vec![TxnSpec {
            name: Some("frontend".to_string()),
            rate: RateSpec::Constant(20.0),
            demand_mcycles: 10.0,
            floor_secs: 0.005,
            goal_secs: 0.05,
            memory_mb: 500.0,
            max_instances: 2,
            resources: BTreeMap::from([("net_mbps".to_string(), 200.0)]),
        }];
        let metrics = spec.build().run();
        assert_eq!(metrics.completions.len(), 4);
        // Per-dimension utilization is sampled for the extra dimensions.
        assert!(metrics
            .samples
            .iter()
            .any(|s| s.rigid_utilization.iter().any(|r| r.dim == "disk_mb")));
        let back = ScenarioSpec::from_json_str(&spec.to_json_string()).unwrap();
        assert_eq!(back.resources, spec.resources);
        assert_eq!(back.nodes[0].resources, spec.nodes[0].resources);
        assert_eq!(back.txns[0].resources, spec.txns[0].resources);
    }

    #[test]
    fn zero_node_fleet_is_rejected_like_an_empty_one() {
        // `nodes: [{count: 0, ...}]` parses fine but builds an empty
        // cluster; it must fail exactly like a missing nodes list.
        let mut spec = minimal("apc");
        spec.nodes[0].count = 0;
        assert_eq!(spec.validate(), Err(ScenarioError::NoNodes));
        spec.nodes.clear();
        assert_eq!(spec.validate(), Err(ScenarioError::NoNodes));
    }

    #[test]
    fn node_total_beyond_u32_id_space_is_rejected() {
        let mut spec = minimal("apc");
        spec.nodes[0].count = u32::MAX as usize;
        spec.nodes.push(NodeGroupSpec {
            count: 2,
            name: None,
            cpu_mhz: 1_000.0,
            memory_mb: 1_000.0,
            resources: BTreeMap::new(),
        });
        assert_eq!(
            spec.validate(),
            Err(ScenarioError::TooManyNodes {
                nodes: u32::MAX as usize + 2,
            })
        );
    }

    #[test]
    fn zero_cycle_secs_is_rejected() {
        // A zero control cycle would re-arm forever without advancing
        // simulated time.
        let mut spec = minimal("apc");
        spec.cycle_secs = 0.0;
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::NonPositiveNumber { ref field, .. }) if field == "cycle_secs"
        ));
    }

    #[test]
    fn negative_node_capacity_is_a_typed_error_not_a_build_panic() {
        // Negative capacities used to reach NodeSpec::try_with_resources
        // and panic via its expect() inside build().
        let mut spec = minimal("apc");
        spec.nodes[0].memory_mb = -1.0;
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::NegativeNumber { ref field, value })
                if field == "nodes[0].memory_mb" && value == -1.0
        ));
        assert!(spec.build_checked().is_err());
    }

    #[test]
    fn empty_registry_with_resource_blocks_is_rejected() {
        // With no top-level `resources` list, any per-group block is
        // necessarily undeclared: the demand would silently bind to
        // nothing.
        let mut spec = minimal("apc");
        assert!(spec.resources.is_empty());
        spec.nodes[0]
            .resources
            .insert("gpu_ram_mb".to_string(), 8_000.0);
        assert_eq!(
            spec.validate(),
            Err(ScenarioError::UnknownResource {
                field: "nodes[0].resources".to_string(),
                name: "gpu_ram_mb".to_string(),
            })
        );
    }

    #[test]
    fn zero_tasks_and_zero_max_instances_are_rejected() {
        // `tasks: 0` used to silently degrade to an ordinary job.
        let mut spec = minimal("apc");
        spec.jobs[0].tasks = 0;
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::NonPositiveNumber { ref field, .. }) if field == "jobs[0].tasks"
        ));

        // A txn capped at zero instances can never be placed at all.
        let mut spec = minimal("apc");
        spec.txns = vec![TxnSpec {
            name: None,
            rate: RateSpec::Constant(5.0),
            demand_mcycles: 10.0,
            floor_secs: 0.005,
            goal_secs: 0.05,
            memory_mb: 500.0,
            max_instances: 0,
            resources: BTreeMap::new(),
        }];
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::NonPositiveNumber { ref field, .. })
                if field == "txns[0].max_instances"
        ));
    }

    #[test]
    fn degenerate_arrival_processes_are_rejected() {
        // A non-positive exponential mean draws negative inter-arrival
        // gaps: simulated time would run backwards.
        let mut spec = minimal("apc");
        spec.jobs[0].arrivals = ArrivalSpec::Exponential { mean_secs: 0.0 };
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::NonPositiveNumber { ref field, .. })
                if field == "jobs[0].arrivals.exponential.mean_secs"
        ));
        spec.jobs[0].arrivals = ArrivalSpec::At(vec![10.0, -5.0]);
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::NegativeNumber { ref field, .. })
                if field == "jobs[0].arrivals.at[1]"
        ));
        // An all-at-once burst (zero periodic spacing) stays legal.
        spec.jobs[0].arrivals = ArrivalSpec::Periodic { every_secs: 0.0 };
        assert_eq!(spec.validate(), Ok(()));
    }

    #[test]
    fn degenerate_optimizer_deadline_is_rejected() {
        // Duration::from_secs_f64 panics on negatives and NaN; both now
        // fail at load time instead.
        let mut spec = minimal("apc");
        spec.deadline_secs = Some(-0.5);
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::NonPositiveNumber { ref field, .. }) if field == "deadline_secs"
        ));
        spec.deadline_secs = Some(f64::NAN);
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::NonFiniteNumber { ref field, .. }) if field == "deadline_secs"
        ));
    }

    #[test]
    fn degenerate_actuation_timings_are_rejected() {
        let mut spec = minimal("apc");
        spec.actuation.base_backoff_secs = -1.0;
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::NegativeNumber { ref field, .. })
                if field == "actuation.base_backoff_secs"
        ));
        let mut spec = minimal("apc");
        spec.actuation.timeout_secs = Some(0.0);
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::NonPositiveNumber { ref field, .. })
                if field == "actuation.timeout_secs"
        ));
        let mut spec = minimal("apc");
        spec.actuation.quarantine_secs = f64::INFINITY;
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::NonFiniteNumber { ref field, .. })
                if field == "actuation.quarantine_secs"
        ));
    }

    #[test]
    fn partial_observation_block_fills_defaults_and_activates() {
        let json = r#"{
            "scheduler": "apc", "cycle_secs": 10.0, "horizon_secs": 500.0,
            "nodes": [{ "count": 2, "cpu_mhz": 2000.0, "memory_mb": 4000.0 }],
            "jobs": [], "txns": [],
            "observation": { "heartbeat_loss": 0.2, "seed": 9 }
        }"#;
        let spec = ScenarioSpec::from_json_str(json).unwrap();
        let o = spec.observation.as_ref().unwrap();
        assert_eq!(o.heartbeat_loss, 0.2);
        assert_eq!(o.seed, 9);
        // Unstated knobs take the exactly-off defaults.
        assert_eq!(o.suspect_after, ObservationConfig::default().suspect_after);
        assert_eq!(o.dead_after, ObservationConfig::default().dead_after);
        assert_eq!(o.ewma_alpha, 1.0);
        assert_eq!(o.degraded_mode, "hold");
        assert!(o.to_config().is_active());
        // No block at all renders without the key, keeping legacy
        // scenario files byte-stable, and builds an inactive config.
        let legacy = minimal("apc");
        assert!(!legacy.to_json_string().contains("observation"));
        assert!(!ObservationConfig::default().is_active());
    }

    #[test]
    fn observation_round_trips_through_json() {
        let mut spec = minimal("apc");
        spec.observation = Some(ObservationSpec {
            heartbeat_loss: 0.3,
            max_staleness_cycles: 2,
            noise: 0.1,
            loss_until_secs: Some(400.0),
            seed: 11,
            suspect_after: 2,
            dead_after: 5,
            reinstate_after: 3,
            ewma_alpha: 0.5,
            headroom: 0.1,
            staleness_budget_cycles: 1,
            degraded_mode: "fill_only".to_string(),
        });
        let text = spec.to_json_string();
        let back = ScenarioSpec::from_json_str(&text).unwrap();
        assert_eq!(back.observation, spec.observation);
    }

    #[test]
    fn degenerate_observation_blocks_are_rejected() {
        type Mutation = fn(&mut ObservationSpec);
        let cases: &[(&str, Mutation)] = &[
            ("heartbeat_loss", |o| o.heartbeat_loss = 1.0),
            ("heartbeat_loss", |o| o.heartbeat_loss = -0.1),
            ("noise", |o| o.noise = 1.5),
            ("noise", |o| o.noise = f64::NAN),
            ("ewma_alpha", |o| o.ewma_alpha = 0.0),
            ("ewma_alpha", |o| o.ewma_alpha = 1.5),
            ("headroom", |o| o.headroom = -0.5),
            ("suspect_after", |o| o.suspect_after = 0),
            ("dead_after", |o| o.dead_after = 2),
            ("reinstate_after", |o| o.reinstate_after = 0),
            ("loss_until_secs", |o| o.loss_until_secs = Some(-1.0)),
            ("degraded_mode", |o| o.degraded_mode = "panic".to_string()),
        ];
        for (what, mutate) in cases {
            let mut spec = minimal("apc");
            let mut o = ObservationSpec::default();
            mutate(&mut o);
            spec.observation = Some(o);
            assert!(
                matches!(
                    spec.validate(),
                    Err(ScenarioError::InvalidObservation { .. })
                ),
                "{what} should be rejected"
            );
        }
        // And the layer is APC-only, like sharding.
        let mut spec = minimal("fcfs");
        spec.observation = Some(ObservationSpec::default());
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::InvalidObservation { ref message })
                if message.contains("apc")
        ));
    }

    #[test]
    fn legacy_scalars_canonicalize_out_of_the_resources_block() {
        // cpu_mhz / memory_mb may live inside the resources block; they
        // hoist to the dedicated fields and leave only true extras.
        let json = r#"{
            "scheduler": "apc", "cycle_secs": 10.0, "horizon_secs": 500.0,
            "resources": ["disk_mb"],
            "nodes": [{ "count": 2,
                        "resources": { "cpu_mhz": 2000.0, "memory_mb": 4000.0,
                                       "disk_mb": 8000.0 } }],
            "jobs": [], "txns": []
        }"#;
        let spec = ScenarioSpec::from_json_str(json).unwrap();
        assert_eq!(spec.nodes[0].cpu_mhz, 2_000.0);
        assert_eq!(spec.nodes[0].memory_mb, 4_000.0);
        assert_eq!(
            spec.nodes[0].resources,
            BTreeMap::from([("disk_mb".to_string(), 8_000.0)])
        );
        // Memory-only scenarios render without any resources fields, so
        // checked-in legacy files and goldens stay byte-stable.
        let legacy = minimal("apc");
        let text = legacy.to_json_string();
        assert!(!text.contains("resources"), "{text}");
    }
}
