//! Discrete-event cluster simulator for mixed transactional and batch
//! workloads.
//!
//! Reproduces the evaluation environment of the paper's §5: a
//! virtualized cluster whose placement is driven by any
//! [`dynaplace_apc::PlacementPolicy`] — the Application Placement
//! Controller, the reservation baselines (FCFS, EDF, static partition),
//! or a policy resolved from the registry by name — with VM control
//! operations (boot, suspend, resume, migrate) charged at the latencies
//! the paper measured.
//!
//! - [`engine::Simulation`] — the event-driven simulator;
//! - [`costs::VmCostModel`] — the §5 cost model;
//! - [`actuation`] — the fallible actuation layer (failure/backoff/quarantine);
//! - [`observe`] — the imperfect-telemetry observation layer
//!   (heartbeats, node-health hysteresis, demand estimation);
//! - [`scenario`] — builders for the §4.3 example and Experiments 1–3;
//! - [`metrics::RunMetrics`] — everything the paper's figures plot.
//!
//! # Example
//!
//! ```
//! use dynaplace_sim::engine::SimConfig;
//! use dynaplace_sim::scenario::{paper_example, ExampleScenario};
//! use dynaplace_sim::costs::VmCostModel;
//! use dynaplace_apc::optimizer::ApcConfig;
//! use dynaplace_apc::PolicyHandle;
//! use dynaplace_model::units::SimDuration;
//!
//! let config = SimConfig {
//!     cycle: SimDuration::from_secs(1.0),
//!     horizon: Some(SimDuration::from_secs(60.0)),
//!     costs: VmCostModel::free(),
//!     scheduler: PolicyHandle::apc_with(ApcConfig::paper_narrative(), false),
//!     batch_nodes: None,
//!     static_txn_nodes: None,
//!     noise: dynaplace_sim::engine::EstimationNoise::NONE,
//!     profile_from_history: false,
//!     node_failures: Vec::new(),
//!     estimate_txn_demand: false,
//!     record_placements: false,
//!     actuation: dynaplace_sim::actuation::ActuationConfig::default(),
//!     observation: dynaplace_sim::observe::ObservationConfig::default(),
//!     trace: dynaplace_trace::TraceConfig::default(),
//!     stall_limit: dynaplace_sim::engine::DEFAULT_STALL_LIMIT,
//!     retention: dynaplace_sim::engine::MetricsRetention::Full,
//! };
//! let metrics = paper_example(ExampleScenario::S2, config).run();
//! assert_eq!(metrics.completions.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actuation;
pub mod costs;
pub mod engine;
pub mod events;
pub mod metrics;
pub mod observe;
pub mod scenario;
pub mod source;
pub mod spec;

pub use actuation::{ActuationConfig, ActuationState, OpOutcome};
pub use costs::{VmCostModel, VmOperation};
#[allow(deprecated)]
pub use engine::SchedulerKind;
pub use engine::{MetricsRetention, NodeOutage, SimConfig, Simulation};
pub use metrics::{
    ActuationCounters, ChangeCounters, CompletionRecord, CycleSample, ObservationCounters,
    RunMetrics,
};
pub use observe::{DegradedMode, NodeHealth, ObservationConfig, ObservationState};
pub use scenario::{
    experiment_one, experiment_three, experiment_two, paper_example, ExampleScenario, SharingConfig,
};
pub use source::{
    ArrivalProcess, GenerativeSource, GoalSubmission, JobSubmission, JobTemplate, MergedSource,
    ScenarioSource, Submission, TxnSubmission, WorkloadSource,
};
pub use spec::{ScenarioError, ScenarioSpec, TraceSpec};

pub use dynaplace_trace::{JsonlSink, NoopSink, TraceConfig, TraceEvent, TraceLevel, TraceSink};
