//! Fault-tolerant actuation of VM control operations.
//!
//! The controller does not *apply* placements — it issues boot, suspend,
//! resume, and migrate operations to a virtualization layer that can be
//! slow, fail outright, or time out (§3.1's sensing loop exists because
//! actual state drifts from desired state). This module models that
//! layer: each [`PlacementAction`](dynaplace_model::delta::PlacementAction)
//! becomes an operation with a latency draw, a deterministic
//! per-(app, node, attempt) failure probability, and an optional timeout.
//! Failed and timed-out operations leave the actual placement unchanged
//! while the controller's desired placement says otherwise; the engine's
//! reconciliation loop retries with capped exponential backoff and
//! quarantines repeatedly failing (app, node) pairs so the next
//! optimization routes around them.
//!
//! Everything here is a pure function of the configuration seed and the
//! (app, node, attempt) triple — two runs of the same scenario are
//! bit-identical, and with the default configuration (zero failure rate,
//! zero jitter, no timeout) every operation succeeds with exactly the
//! [`VmCostModel`] latency, so the machinery is exactly-off by default.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use dynaplace_model::ids::{AppId, NodeId};
use dynaplace_model::units::{Memory, SimDuration, SimTime};

use crate::costs::{VmCostModel, VmOperation};

/// Configuration of the fallible actuation layer.
///
/// The defaults model a perfect virtualization layer: no failures, no
/// latency jitter, no timeout — byte-identical behavior to a simulator
/// without an actuation layer at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActuationConfig {
    /// Probability that an issued operation fails, drawn deterministically
    /// per (app, node, attempt). `0.0` disables failures. Values must be
    /// `< 1.0` or retries never converge.
    pub failure_rate: f64,
    /// Relative latency inflation: each operation's latency is the cost
    /// model's value times a deterministic factor in
    /// `[1, 1 + latency_jitter]`. `0.0` disables jitter.
    pub latency_jitter: f64,
    /// Operations whose (jittered) latency exceeds this are reported as
    /// timed out: the placement change does not happen and the operation
    /// is retried like a failure.
    pub timeout: Option<SimDuration>,
    /// Operations issued at or after this instant never fail or time out
    /// — the "failures stop" switch that makes convergence provable in
    /// tests and scripted scenarios.
    pub fail_until: Option<SimTime>,
    /// Seed for the deterministic failure/jitter draws.
    pub seed: u64,
    /// First retry delay after a failed operation (beyond its latency).
    pub base_backoff: SimDuration,
    /// Multiplier applied to the backoff per consecutive failure.
    pub backoff_factor: f64,
    /// Upper bound on the per-retry backoff delay.
    pub max_backoff: SimDuration,
    /// Consecutive failures of one (app, node) pair before it is
    /// quarantined. `0` disables quarantining.
    pub quarantine_after: u32,
    /// How long a quarantined pair is barred from placement.
    pub quarantine: SimDuration,
    /// Consecutive control cycles with unreconciled actions before the
    /// controller falls back to a non-disruptive `fill_only` pass for one
    /// cycle. `0` disables the fallback.
    pub fallback_after: u32,
}

impl Default for ActuationConfig {
    fn default() -> Self {
        Self {
            failure_rate: 0.0,
            latency_jitter: 0.0,
            timeout: None,
            fail_until: None,
            seed: 0,
            base_backoff: SimDuration::from_secs(5.0),
            backoff_factor: 2.0,
            max_backoff: SimDuration::from_secs(300.0),
            quarantine_after: 3,
            quarantine: SimDuration::from_secs(900.0),
            fallback_after: 2,
        }
    }
}

/// How one issued operation resolved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpOutcome {
    /// The operation completed after the given latency; the placement
    /// change took effect (progress frozen for the duration).
    Applied(SimDuration),
    /// The operation failed after the given latency; the actual placement
    /// is unchanged.
    Failed(SimDuration),
    /// The operation exceeded the timeout and was abandoned at the
    /// timeout instant; the actual placement is unchanged.
    TimedOut(SimDuration),
}

impl OpOutcome {
    /// Whether the placement change took effect.
    pub fn applied(&self) -> bool {
        matches!(self, OpOutcome::Applied(_))
    }

    /// Wall-clock time the operation occupied the instance.
    pub fn latency(&self) -> SimDuration {
        match *self {
            OpOutcome::Applied(l) | OpOutcome::Failed(l) | OpOutcome::TimedOut(l) => l,
        }
    }
}

/// Identity of one operation attempt: the key of every deterministic
/// failure and jitter draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpAttempt {
    /// Application being moved.
    pub app: AppId,
    /// Node the operation touches (the target node for migrations).
    pub node: NodeId,
    /// 1-based consecutive attempt number for this (app, node) pair.
    pub attempt: u32,
}

impl ActuationConfig {
    /// Whether any operation issued at `now` can fail or time out.
    pub fn failures_active(&self, now: SimTime) -> bool {
        (self.failure_rate > 0.0 || self.timeout.is_some())
            && self.fail_until.map_or(true, |until| now < until)
    }

    /// Resolves one issued operation: latency draw, timeout check,
    /// failure draw — a pure function of `(seed, app, node, attempt, op)`.
    pub fn resolve(
        &self,
        costs: &VmCostModel,
        op: VmOperation,
        footprint: Memory,
        at: OpAttempt,
        now: SimTime,
    ) -> OpOutcome {
        let OpAttempt { app, node, attempt } = at;
        let base = costs.latency(op, footprint);
        let latency = if self.latency_jitter > 0.0 {
            let u = unit(mix(
                self.seed,
                &[1, key(app, node), u64::from(attempt), tag(op)],
            ));
            base * (1.0 + self.latency_jitter * u)
        } else {
            base
        };
        if !self.failures_active(now) {
            return OpOutcome::Applied(latency);
        }
        if let Some(timeout) = self.timeout {
            if latency > timeout {
                return OpOutcome::TimedOut(timeout);
            }
        }
        if self.failure_rate > 0.0 {
            let u = unit(mix(
                self.seed,
                &[2, key(app, node), u64::from(attempt), tag(op)],
            ));
            if u < self.failure_rate {
                return OpOutcome::Failed(latency);
            }
        }
        OpOutcome::Applied(latency)
    }

    /// Retry delay after the `attempt`-th consecutive failure (1-based):
    /// capped exponential backoff.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(63);
        let secs = self.base_backoff.as_secs() * self.backoff_factor.powi(exp as i32);
        SimDuration::from_secs(secs.min(self.max_backoff.as_secs()))
    }
}

/// What [`ActuationState::record_failure`] decided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureDisposition {
    /// When the pair may be retried (failure detection + backoff, and the
    /// quarantine expiry when one was imposed).
    pub retry_at: SimTime,
    /// Whether this failure pushed the pair into (a fresh) quarantine.
    pub quarantined: bool,
}

/// Per-(app, node) bookkeeping of the reconciliation loop: consecutive
/// failure counts, backoff gates, and quarantine expiries. All maps are
/// ordered, so iteration (and therefore the whole engine) stays
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct ActuationState {
    attempts: BTreeMap<(AppId, NodeId), u32>,
    retry_at: BTreeMap<(AppId, NodeId), SimTime>,
    quarantined_until: BTreeMap<(AppId, NodeId), SimTime>,
}

impl ActuationState {
    /// Creates an empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether operations on `(app, node)` are currently gated (backoff
    /// in progress or quarantine active).
    pub fn is_blocked(&self, app: AppId, node: NodeId, now: SimTime) -> bool {
        let k = (app, node);
        self.retry_at.get(&k).is_some_and(|&t| now < t)
            || self.quarantined_until.get(&k).is_some_and(|&t| now < t)
    }

    /// The attempt number the next operation on `(app, node)` gets
    /// (1-based; resets on success).
    pub fn next_attempt(&self, app: AppId, node: NodeId) -> u32 {
        self.attempts.get(&(app, node)).copied().unwrap_or(0) + 1
    }

    /// Records a successful operation: the pair's failure episode ends.
    pub fn record_success(&mut self, app: AppId, node: NodeId) {
        let k = (app, node);
        self.attempts.remove(&k);
        self.retry_at.remove(&k);
        self.quarantined_until.remove(&k);
    }

    /// Records a failed (or timed-out) operation that was *detected* at
    /// `detected` (issue time + latency): advances the consecutive
    /// failure count, arms the backoff gate, and quarantines the pair
    /// when the count reaches a multiple of `config.quarantine_after`.
    pub fn record_failure(
        &mut self,
        config: &ActuationConfig,
        app: AppId,
        node: NodeId,
        detected: SimTime,
    ) -> FailureDisposition {
        let k = (app, node);
        let attempts = self.attempts.entry(k).or_insert(0);
        *attempts += 1;
        let mut retry_at = detected + config.backoff(*attempts);
        let quarantined = config.quarantine_after > 0 && *attempts % config.quarantine_after == 0;
        if quarantined {
            let until = detected + config.quarantine;
            self.quarantined_until.insert(k, until);
            retry_at = retry_at.max(until);
        }
        self.retry_at.insert(k, retry_at);
        FailureDisposition {
            retry_at,
            quarantined,
        }
    }

    /// The (app, node) pairs under active quarantine at `now`, in
    /// deterministic order — fed into
    /// [`PlacementProblem::forbidden`](dynaplace_apc::problem::PlacementProblem)
    /// so the optimizer routes around them.
    pub fn quarantined_pairs(&self, now: SimTime) -> Vec<(AppId, NodeId)> {
        self.quarantined_until
            .iter()
            .filter(|&(_, &until)| now < until)
            .map(|(&k, _)| k)
            .collect()
    }

    /// Drops bookkeeping for an application that left the system.
    pub fn forget_app(&mut self, app: AppId) {
        self.attempts.retain(|&(a, _), _| a != app);
        self.retry_at.retain(|&(a, _), _| a != app);
        self.quarantined_until.retain(|&(a, _), _| a != app);
    }
}

/// splitmix64 finalizer — the standard 64-bit avalanche mix.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix(seed: u64, parts: &[u64]) -> u64 {
    let mut h = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
    for &p in parts {
        h = splitmix64(h ^ p);
    }
    h
}

/// Uniform draw in `[0, 1)` from a mixed hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn key(app: AppId, node: NodeId) -> u64 {
    ((app.index() as u64) << 32) | node.index() as u64
}

fn tag(op: VmOperation) -> u64 {
    match op {
        VmOperation::Boot => 1,
        VmOperation::Suspend => 2,
        VmOperation::Resume => 3,
        VmOperation::Migrate => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(i: u32) -> AppId {
        AppId::new(i)
    }
    fn node(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn default_config_never_fails_and_charges_exact_latency() {
        let config = ActuationConfig::default();
        let costs = VmCostModel::default();
        let footprint = Memory::from_mb(1_000.0);
        for op in [
            VmOperation::Boot,
            VmOperation::Suspend,
            VmOperation::Resume,
            VmOperation::Migrate,
        ] {
            for attempt in 1..5 {
                let outcome = config.resolve(
                    &costs,
                    op,
                    footprint,
                    OpAttempt {
                        app: app(3),
                        node: node(1),
                        attempt,
                    },
                    SimTime::ZERO,
                );
                assert_eq!(outcome, OpOutcome::Applied(costs.latency(op, footprint)));
            }
        }
    }

    #[test]
    fn draws_are_pure_functions_of_the_triple() {
        let config = ActuationConfig {
            failure_rate: 0.5,
            latency_jitter: 0.3,
            seed: 42,
            ..Default::default()
        };
        let costs = VmCostModel::default();
        let fp = Memory::from_mb(800.0);
        for attempt in 1..20 {
            let a = config.resolve(
                &costs,
                VmOperation::Resume,
                fp,
                OpAttempt {
                    app: app(1),
                    node: node(2),
                    attempt,
                },
                SimTime::ZERO,
            );
            let b = config.resolve(
                &costs,
                VmOperation::Resume,
                fp,
                OpAttempt {
                    app: app(1),
                    node: node(2),
                    attempt,
                },
                SimTime::ZERO,
            );
            assert_eq!(a, b, "attempt {attempt} must be deterministic");
        }
    }

    #[test]
    fn failure_rate_roughly_matches_draws() {
        let config = ActuationConfig {
            failure_rate: 0.3,
            seed: 7,
            ..Default::default()
        };
        let costs = VmCostModel::free();
        let failures = (0..1_000)
            .filter(|&i| {
                !config
                    .resolve(
                        &costs,
                        VmOperation::Boot,
                        Memory::ZERO,
                        OpAttempt {
                            app: app(i),
                            node: node(0),
                            attempt: 1,
                        },
                        SimTime::ZERO,
                    )
                    .applied()
            })
            .count();
        assert!(
            (200..400).contains(&failures),
            "≈30% of 1000 draws should fail, got {failures}"
        );
    }

    #[test]
    fn fail_until_stops_failures() {
        let config = ActuationConfig {
            failure_rate: 1.0 - 1e-12,
            fail_until: Some(SimTime::from_secs(100.0)),
            ..Default::default()
        };
        let costs = VmCostModel::free();
        let before = config.resolve(
            &costs,
            VmOperation::Boot,
            Memory::ZERO,
            OpAttempt {
                app: app(0),
                node: node(0),
                attempt: 1,
            },
            SimTime::from_secs(50.0),
        );
        let after = config.resolve(
            &costs,
            VmOperation::Boot,
            Memory::ZERO,
            OpAttempt {
                app: app(0),
                node: node(0),
                attempt: 1,
            },
            SimTime::from_secs(100.0),
        );
        assert!(!before.applied());
        assert!(after.applied());
    }

    #[test]
    fn timeout_reports_timed_out_at_the_timeout_instant() {
        let config = ActuationConfig {
            timeout: Some(SimDuration::from_secs(10.0)),
            ..Default::default()
        };
        let costs = VmCostModel::default();
        // A 1000 MB suspend takes 35.3 s > 10 s timeout.
        let outcome = config.resolve(
            &costs,
            VmOperation::Suspend,
            Memory::from_mb(1_000.0),
            OpAttempt {
                app: app(0),
                node: node(0),
                attempt: 1,
            },
            SimTime::ZERO,
        );
        assert_eq!(outcome, OpOutcome::TimedOut(SimDuration::from_secs(10.0)));
        // A boot (3.6 s) fits within the timeout.
        let ok = config.resolve(
            &costs,
            VmOperation::Boot,
            Memory::from_mb(1_000.0),
            OpAttempt {
                app: app(0),
                node: node(0),
                attempt: 1,
            },
            SimTime::ZERO,
        );
        assert!(ok.applied());
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let config = ActuationConfig {
            base_backoff: SimDuration::from_secs(5.0),
            backoff_factor: 2.0,
            max_backoff: SimDuration::from_secs(30.0),
            ..Default::default()
        };
        assert_eq!(config.backoff(1), SimDuration::from_secs(5.0));
        assert_eq!(config.backoff(2), SimDuration::from_secs(10.0));
        assert_eq!(config.backoff(3), SimDuration::from_secs(20.0));
        assert_eq!(config.backoff(4), SimDuration::from_secs(30.0));
        assert_eq!(config.backoff(40), SimDuration::from_secs(30.0));
    }

    #[test]
    fn quarantine_after_consecutive_failures_and_reset_on_success() {
        let config = ActuationConfig {
            quarantine_after: 3,
            quarantine: SimDuration::from_secs(100.0),
            ..Default::default()
        };
        let mut state = ActuationState::new();
        let t = SimTime::from_secs(10.0);
        let d1 = state.record_failure(&config, app(0), node(0), t);
        let d2 = state.record_failure(&config, app(0), node(0), t);
        assert!(!d1.quarantined && !d2.quarantined);
        let d3 = state.record_failure(&config, app(0), node(0), t);
        assert!(d3.quarantined);
        assert_eq!(d3.retry_at, t + config.quarantine);
        assert_eq!(state.quarantined_pairs(t), vec![(app(0), node(0))]);
        // Quarantine expires by time…
        assert!(state.quarantined_pairs(t + config.quarantine).is_empty());
        // …and success clears the whole episode.
        state.record_success(app(0), node(0));
        assert_eq!(state.next_attempt(app(0), node(0)), 1);
        assert!(!state.is_blocked(app(0), node(0), t));
    }

    #[test]
    fn blocked_while_backoff_pending() {
        let config = ActuationConfig::default();
        let mut state = ActuationState::new();
        let t = SimTime::from_secs(0.0);
        let d = state.record_failure(&config, app(1), node(2), t);
        assert!(state.is_blocked(app(1), node(2), t));
        assert!(!state.is_blocked(app(1), node(2), d.retry_at));
        assert!(!state.is_blocked(app(2), node(2), t), "other pairs free");
    }
}
