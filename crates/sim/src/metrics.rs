//! Metric collection: everything the paper's figures plot.

use serde::{Deserialize, Serialize};

use dynaplace_model::ids::AppId;
use dynaplace_model::units::{CpuSpeed, SimDuration, SimTime};
use dynaplace_rpf::value::Rp;

/// One per-cycle sample of system state (the time axes of Figs. 2, 6, 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleSample {
    /// Sample instant.
    pub time: SimTime,
    /// Mean hypothetical relative performance over live jobs, if any.
    pub batch_hypothetical_rp: Option<Rp>,
    /// Actual relative performance of the transactional workload (from
    /// the router's observed response time), if present.
    pub txn_rp: Option<Rp>,
    /// Total CPU allocated to batch jobs.
    pub batch_allocation: CpuSpeed,
    /// Total CPU allocated to transactional applications.
    pub txn_allocation: CpuSpeed,
    /// Jobs currently running.
    pub running_jobs: usize,
    /// Jobs waiting (queued or suspended).
    pub waiting_jobs: usize,
    /// Wall-clock seconds the placement computation took this cycle.
    pub placement_compute_secs: f64,
}

/// One completed job (the scatter points of Fig. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletionRecord {
    /// The job.
    pub app: AppId,
    /// Submission time.
    pub arrival: SimTime,
    /// Completion time.
    pub completion: SimTime,
    /// Completion deadline.
    pub deadline: SimTime,
    /// Signed distance to the deadline (positive = early).
    pub distance: SimDuration,
    /// Relative performance at completion (eq. 2).
    pub rp: Rp,
    /// The job's relative goal factor (deadline slack / best execution).
    pub goal_factor: f64,
    /// Whether the completion met the deadline.
    pub met_deadline: bool,
}

/// Counters of placement changes (Fig. 4 counts suspends + resumes +
/// migrations; starts of never-run jobs are not changes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChangeCounters {
    /// First-time starts (boots).
    pub starts: u64,
    /// Running or paused instances suspended off their node.
    pub suspends: u64,
    /// Suspended instances resumed onto a node.
    pub resumes: u64,
    /// Instances live-migrated between nodes.
    pub migrations: u64,
}

impl ChangeCounters {
    /// The paper's "number of placement changes": suspends + resumes +
    /// migrations.
    pub fn disruptive_total(&self) -> u64 {
        self.suspends + self.resumes + self.migrations
    }
}

/// Everything recorded over one simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Per-cycle samples in time order.
    pub samples: Vec<CycleSample>,
    /// Completion records in completion order.
    pub completions: Vec<CompletionRecord>,
    /// Placement change counters.
    pub changes: ChangeCounters,
}

impl RunMetrics {
    /// Fraction of completed jobs that met their deadline, `None` when
    /// nothing completed.
    pub fn deadline_met_ratio(&self) -> Option<f64> {
        if self.completions.is_empty() {
            return None;
        }
        let met = self.completions.iter().filter(|c| c.met_deadline).count();
        Some(met as f64 / self.completions.len() as f64)
    }

    /// Completion records for jobs with (approximately) the given goal
    /// factor.
    pub fn completions_with_factor(&self, factor: f64) -> impl Iterator<Item = &CompletionRecord> {
        self.completions
            .iter()
            .filter(move |c| (c.goal_factor - factor).abs() < 1e-6)
    }

    /// Mean relative performance at completion.
    pub fn mean_completion_rp(&self) -> Option<Rp> {
        if self.completions.is_empty() {
            return None;
        }
        let sum: f64 = self.completions.iter().map(|c| c.rp.value()).sum();
        Some(Rp::new(sum / self.completions.len() as f64))
    }

    /// Mean wall-clock placement compute time per cycle, in seconds.
    pub fn mean_placement_compute_secs(&self) -> Option<f64> {
        let times: Vec<f64> = self
            .samples
            .iter()
            .map(|s| s.placement_compute_secs)
            .filter(|&t| t > 0.0)
            .collect();
        if times.is_empty() {
            return None;
        }
        Some(times.iter().sum::<f64>() / times.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completion(met: bool, factor: f64, rp: f64) -> CompletionRecord {
        CompletionRecord {
            app: AppId::new(0),
            arrival: SimTime::ZERO,
            completion: SimTime::from_secs(10.0),
            deadline: SimTime::from_secs(20.0),
            distance: SimDuration::from_secs(if met { 10.0 } else { -5.0 }),
            rp: Rp::new(rp),
            goal_factor: factor,
            met_deadline: met,
        }
    }

    #[test]
    fn deadline_ratio() {
        let mut m = RunMetrics::default();
        assert_eq!(m.deadline_met_ratio(), None);
        m.completions.push(completion(true, 1.3, 0.5));
        m.completions.push(completion(false, 2.5, -0.1));
        m.completions.push(completion(true, 1.3, 0.4));
        assert!((m.deadline_met_ratio().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn filter_by_factor() {
        let mut m = RunMetrics::default();
        m.completions.push(completion(true, 1.3, 0.5));
        m.completions.push(completion(true, 4.0, 0.5));
        assert_eq!(m.completions_with_factor(1.3).count(), 1);
        assert_eq!(m.completions_with_factor(4.0).count(), 1);
        assert_eq!(m.completions_with_factor(2.5).count(), 0);
    }

    #[test]
    fn change_totals() {
        let c = ChangeCounters {
            starts: 10,
            suspends: 3,
            resumes: 2,
            migrations: 4,
        };
        assert_eq!(c.disruptive_total(), 9);
    }

    #[test]
    fn mean_rp() {
        let mut m = RunMetrics::default();
        m.completions.push(completion(true, 1.3, 0.2));
        m.completions.push(completion(true, 1.3, 0.6));
        assert!(m.mean_completion_rp().unwrap().approx_eq(Rp::new(0.4), 1e-12));
    }
}
