//! Metric collection: everything the paper's figures plot.

use serde::{Deserialize, Serialize};

use dynaplace_json::{obj, FromJson, Json, JsonError, ToJson};
use dynaplace_model::ids::{AppId, NodeId};
use dynaplace_model::placement::Placement;
use dynaplace_model::units::{CpuSpeed, SimDuration, SimTime};
use dynaplace_rpf::value::Rp;

/// One per-cycle sample of system state (the time axes of Figs. 2, 6, 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleSample {
    /// Sample instant.
    pub time: SimTime,
    /// Mean hypothetical relative performance over live jobs, if any.
    pub batch_hypothetical_rp: Option<Rp>,
    /// Actual relative performance of the transactional workload (from
    /// the router's observed response time), if present.
    pub txn_rp: Option<Rp>,
    /// Total CPU allocated to batch jobs.
    pub batch_allocation: CpuSpeed,
    /// Total CPU allocated to transactional applications.
    pub txn_allocation: CpuSpeed,
    /// Jobs currently running.
    pub running_jobs: usize,
    /// Jobs waiting (queued or suspended).
    pub waiting_jobs: usize,
    /// Wall-clock seconds the placement computation took this cycle.
    pub placement_compute_secs: f64,
    /// Placement actions the reconciliation loop still owes: the size of
    /// the diff between the actual placement and the (live, surviving)
    /// desired placement at sample time. Always zero with infallible
    /// actuation.
    pub pending_actions: usize,
    /// Cluster-wide utilization of each *extra* rigid dimension (beyond
    /// memory) at sample time, in registry order. Empty for memory-only
    /// deployments, leaving legacy artifacts unchanged.
    pub rigid_utilization: Vec<RigidDimSample>,
}

/// Utilization of one extra rigid resource dimension in one
/// [`CycleSample`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RigidDimSample {
    /// Registry name of the dimension (e.g. `disk_mb`).
    pub dim: String,
    /// Total demand pinned across the cluster, in the dimension's native
    /// unit.
    pub used: f64,
    /// Total capacity across the scheduler-visible cluster.
    pub capacity: f64,
}

/// One completed job (the scatter points of Fig. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletionRecord {
    /// The job.
    pub app: AppId,
    /// Submission time.
    pub arrival: SimTime,
    /// Completion time.
    pub completion: SimTime,
    /// Completion deadline.
    pub deadline: SimTime,
    /// Signed distance to the deadline (positive = early).
    pub distance: SimDuration,
    /// Relative performance at completion (eq. 2).
    pub rp: Rp,
    /// The job's relative goal factor (deadline slack / best execution).
    pub goal_factor: f64,
    /// Whether the completion met the deadline.
    pub met_deadline: bool,
}

/// Counters of placement changes (Fig. 4 counts suspends + resumes +
/// migrations; starts of never-run jobs are not changes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChangeCounters {
    /// First-time starts (boots).
    pub starts: u64,
    /// Running or paused instances suspended off their node.
    pub suspends: u64,
    /// Suspended instances resumed onto a node.
    pub resumes: u64,
    /// Instances live-migrated between nodes.
    pub migrations: u64,
}

impl ChangeCounters {
    /// The paper's "number of placement changes": suspends + resumes +
    /// migrations.
    pub fn disruptive_total(&self) -> u64 {
        self.suspends + self.resumes + self.migrations
    }
}

/// Counters of the fault-tolerant actuation layer and its reconciliation
/// loop. All-zero whenever the actuation configuration is the default
/// (infallible) one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActuationCounters {
    /// Operations that failed outright (placement unchanged).
    pub failed_ops: u64,
    /// Operations abandoned at their timeout (placement unchanged).
    pub timed_out_ops: u64,
    /// Successful operations that were retries of earlier failures.
    pub retries: u64,
    /// Actions skipped because their (app, node) pair was inside a
    /// backoff window or quarantine when the action was issued.
    pub deferrals: u64,
    /// Times an (app, node) pair entered quarantine.
    pub quarantines: u64,
    /// Control cycles where the controller fell back to a non-disruptive
    /// `fill_only` pass because full placements kept failing to actuate.
    pub fill_only_fallbacks: u64,
    /// Optimizer runs cut short by the wall-clock deadline.
    pub deadline_truncations: u64,
    /// Scheduler-visible invariants that legitimately did not hold under
    /// fallible actuation and were skipped instead of panicking.
    pub invariant_skips: u64,
}

impl ActuationCounters {
    /// Total operations that did not take effect when issued.
    pub fn unapplied_total(&self) -> u64 {
        self.failed_ops + self.timed_out_ops + self.deferrals
    }
}

/// Counters of the imperfect-telemetry observation layer: heartbeat and
/// report transport faults, node-health transitions, and staleness-
/// budget degradations. All-zero whenever the observation configuration
/// is the default (perfect-telemetry) one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservationCounters {
    /// Node heartbeats lost in transport.
    pub missed_heartbeats: u64,
    /// Application state reports lost in transport (the controller
    /// reused its cached previous report).
    pub lost_reports: u64,
    /// Healthy → Suspect transitions (node frozen for new placements).
    pub suspects: u64,
    /// Suspect → Dead transitions (residents evicted, capacity zeroed
    /// in the controller's believed cluster).
    pub deaths: u64,
    /// Suspect/Dead → Healthy transitions after heartbeats resumed.
    pub reinstatements: u64,
    /// Control cycles where placement changes were held because the
    /// observed snapshot was older than the staleness budget.
    pub stale_holds: u64,
    /// Control cycles dropped to a non-disruptive `fill_only` pass by
    /// the staleness budget (distinct from the actuation layer's
    /// `fill_only_fallbacks`).
    pub fill_only_degrades: u64,
}

impl ObservationCounters {
    /// Total transport losses (heartbeats + reports).
    pub fn lost_total(&self) -> u64 {
        self.missed_heartbeats + self.lost_reports
    }
}

/// The placement in effect at the end of one control cycle. Only
/// recorded when [`crate::engine::SimConfig::record_placements`] is set
/// (golden-file regression tests diff consecutive records).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementRecord {
    /// Sample instant (matches the [`CycleSample`] at the same time).
    pub time: SimTime,
    /// The full placement.
    pub placement: Placement,
}

/// The starvation breaker fired: live jobs existed but the system made
/// provably zero progress for [`crate::engine::SimConfig::stall_limit`]
/// consecutive control cycles with nothing else pending, so the run was
/// terminated instead of cycling forever. The canonical trigger is a
/// job whose deadline is so hopelessly blown that its relative
/// performance sits at the floor whatever it receives, on a cluster
/// whose capacity a transactional workload legitimately absorbs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StarvationReport {
    /// When the stall was declared (end of the last identical cycle).
    pub time: SimTime,
    /// The live, unfinished jobs at that instant, in id order.
    pub apps: Vec<AppId>,
}

/// Streaming (constant-memory) completion aggregates: the fold of every
/// [`CompletionRecord`] a run would otherwise have kept. Carried only by
/// runs with [`MetricsRetention::Aggregate`], where per-job records are
/// folded in at completion and dropped so memory stays O(live jobs)
/// instead of O(all jobs).
///
/// [`MetricsRetention::Aggregate`]: crate::engine::MetricsRetention
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CompletionTotals {
    /// Jobs completed.
    pub count: u64,
    /// Completions that met their deadline.
    pub met_deadlines: u64,
    /// Sum of relative performance at completion (for the mean).
    pub sum_rp: f64,
}

impl CompletionTotals {
    /// Folds one completion into the totals.
    pub fn fold(&mut self, record: &CompletionRecord) {
        self.count += 1;
        if record.met_deadline {
            self.met_deadlines += 1;
        }
        self.sum_rp += record.rp.value();
    }
}

/// Everything recorded over one simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Per-cycle samples in time order.
    pub samples: Vec<CycleSample>,
    /// Completion records in completion order. Empty under aggregate
    /// retention — see [`RunMetrics::totals`].
    pub completions: Vec<CompletionRecord>,
    /// Folded completion aggregates; `Some` only under aggregate
    /// retention, where `completions` stays empty.
    pub totals: Option<CompletionTotals>,
    /// Placement change counters.
    pub changes: ChangeCounters,
    /// Actuation-layer counters (failures, retries, quarantines).
    pub actuation: ActuationCounters,
    /// Observation-layer counters (transport faults, health
    /// transitions, staleness degradations).
    pub observation: ObservationCounters,
    /// Per-cycle placements; empty unless recording was enabled.
    pub placements: Vec<PlacementRecord>,
    /// Set when the run ended because the starvation breaker fired
    /// rather than because every job completed.
    pub starvation: Option<StarvationReport>,
}

impl RunMetrics {
    /// Number of jobs that completed, whichever retention mode recorded
    /// them (per-job records or folded totals).
    pub fn completed_jobs(&self) -> usize {
        match &self.totals {
            Some(t) => t.count as usize,
            None => self.completions.len(),
        }
    }

    /// Fraction of completed jobs that met their deadline, `None` when
    /// nothing completed.
    pub fn deadline_met_ratio(&self) -> Option<f64> {
        if let Some(t) = &self.totals {
            if t.count == 0 {
                return None;
            }
            return Some(t.met_deadlines as f64 / t.count as f64);
        }
        if self.completions.is_empty() {
            return None;
        }
        let met = self.completions.iter().filter(|c| c.met_deadline).count();
        Some(met as f64 / self.completions.len() as f64)
    }

    /// Completion records for jobs with (approximately) the given goal
    /// factor. The comparison is relative, so factors large enough that
    /// one ulp exceeds an absolute tolerance still match themselves
    /// after a JSON round trip.
    pub fn completions_with_factor(&self, factor: f64) -> impl Iterator<Item = &CompletionRecord> {
        self.completions.iter().filter(move |c| {
            let scale = c.goal_factor.abs().max(factor.abs()).max(1.0);
            (c.goal_factor - factor).abs() <= 1e-9 * scale
        })
    }

    /// Mean relative performance at completion.
    pub fn mean_completion_rp(&self) -> Option<Rp> {
        if let Some(t) = &self.totals {
            if t.count == 0 {
                return None;
            }
            return Some(Rp::new(t.sum_rp / t.count as f64));
        }
        if self.completions.is_empty() {
            return None;
        }
        let sum: f64 = self.completions.iter().map(|c| c.rp.value()).sum();
        Some(Rp::new(sum / self.completions.len() as f64))
    }

    /// Mean wall-clock placement compute time per cycle, in seconds,
    /// over *all* sampled cycles. Cycles fast enough to measure as
    /// exactly zero count toward the mean — dropping them (as an
    /// earlier version did) biased the estimate upward on clusters
    /// small enough that many cycles finish below timer resolution.
    /// `None` only when no cycle was sampled at all.
    pub fn mean_placement_compute_secs(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: f64 = self.samples.iter().map(|s| s.placement_compute_secs).sum();
        Some(sum / self.samples.len() as f64)
    }

    /// Number of sampled cycles whose placement computation measured as
    /// exactly zero seconds, i.e. finished below wall-clock timer
    /// resolution.
    pub fn sub_resolution_compute_cycles(&self) -> usize {
        self.samples
            .iter()
            .filter(|s| s.placement_compute_secs == 0.0)
            .count()
    }
}

// JSON conversions matching the checked-in `results/*.json` artifacts:
// unit newtypes and ids render as plain numbers, absent optionals as
// `null`.

/// Decodes an application or node id, rejecting values a `u32` cannot
/// hold. These used to be truncated with `as u32`, so a corrupt artifact
/// with app `4294967297` silently decoded as app `1`.
fn decode_id(raw: u64, what: &str) -> Result<u32, JsonError> {
    u32::try_from(raw).map_err(|_| JsonError {
        message: format!("{what} id {raw} is out of range (max {})", u32::MAX),
    })
}

impl ToJson for CycleSample {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("time", self.time.as_secs().to_json()),
            (
                "batch_hypothetical_rp",
                self.batch_hypothetical_rp.map(|u| u.value()).to_json(),
            ),
            ("txn_rp", self.txn_rp.map(|u| u.value()).to_json()),
            ("batch_allocation", self.batch_allocation.as_mhz().to_json()),
            ("txn_allocation", self.txn_allocation.as_mhz().to_json()),
            ("running_jobs", self.running_jobs.to_json()),
            ("waiting_jobs", self.waiting_jobs.to_json()),
            (
                "placement_compute_secs",
                self.placement_compute_secs.to_json(),
            ),
            ("pending_actions", self.pending_actions.to_json()),
        ];
        // Only multi-dimensional deployments carry the field, so
        // memory-only artifacts stay byte-identical to older writers.
        if !self.rigid_utilization.is_empty() {
            fields.push(("rigid_utilization", self.rigid_utilization.to_json()));
        }
        obj(fields)
    }
}

impl FromJson for CycleSample {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CycleSample {
            time: SimTime::from_secs(v.field("time")?),
            batch_hypothetical_rp: v
                .field_or::<Option<f64>>("batch_hypothetical_rp")?
                .map(Rp::new),
            txn_rp: v.field_or::<Option<f64>>("txn_rp")?.map(Rp::new),
            batch_allocation: CpuSpeed::from_mhz(v.field("batch_allocation")?),
            txn_allocation: CpuSpeed::from_mhz(v.field("txn_allocation")?),
            running_jobs: v.field("running_jobs")?,
            waiting_jobs: v.field("waiting_jobs")?,
            placement_compute_secs: v.field("placement_compute_secs")?,
            // Absent in artifacts written before fallible actuation.
            pending_actions: v.field_or("pending_actions")?,
            // Absent in memory-only artifacts.
            rigid_utilization: v.field_or("rigid_utilization")?,
        })
    }
}

impl ToJson for RigidDimSample {
    fn to_json(&self) -> Json {
        obj([
            ("dim", self.dim.to_json()),
            ("used", self.used.to_json()),
            ("capacity", self.capacity.to_json()),
        ])
    }
}

impl FromJson for RigidDimSample {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(RigidDimSample {
            dim: v.field("dim")?,
            used: v.field("used")?,
            capacity: v.field("capacity")?,
        })
    }
}

impl ToJson for CompletionRecord {
    fn to_json(&self) -> Json {
        obj([
            ("app", (self.app.index() as u64).to_json()),
            ("arrival", self.arrival.as_secs().to_json()),
            ("completion", self.completion.as_secs().to_json()),
            ("deadline", self.deadline.as_secs().to_json()),
            ("distance", self.distance.as_secs().to_json()),
            ("rp", self.rp.value().to_json()),
            ("goal_factor", self.goal_factor.to_json()),
            ("met_deadline", self.met_deadline.to_json()),
        ])
    }
}

impl FromJson for CompletionRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CompletionRecord {
            app: AppId::new(decode_id(v.field::<u64>("app")?, "app")?),
            arrival: SimTime::from_secs(v.field("arrival")?),
            completion: SimTime::from_secs(v.field("completion")?),
            deadline: SimTime::from_secs(v.field("deadline")?),
            distance: SimDuration::from_secs(v.field("distance")?),
            rp: Rp::new(v.field("rp")?),
            goal_factor: v.field("goal_factor")?,
            met_deadline: v.field("met_deadline")?,
        })
    }
}

impl ToJson for ChangeCounters {
    fn to_json(&self) -> Json {
        obj([
            ("starts", self.starts.to_json()),
            ("suspends", self.suspends.to_json()),
            ("resumes", self.resumes.to_json()),
            ("migrations", self.migrations.to_json()),
        ])
    }
}

impl FromJson for ChangeCounters {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ChangeCounters {
            starts: v.field("starts")?,
            suspends: v.field("suspends")?,
            resumes: v.field("resumes")?,
            migrations: v.field("migrations")?,
        })
    }
}

impl ToJson for ActuationCounters {
    fn to_json(&self) -> Json {
        obj([
            ("failed_ops", self.failed_ops.to_json()),
            ("timed_out_ops", self.timed_out_ops.to_json()),
            ("retries", self.retries.to_json()),
            ("deferrals", self.deferrals.to_json()),
            ("quarantines", self.quarantines.to_json()),
            ("fill_only_fallbacks", self.fill_only_fallbacks.to_json()),
            ("deadline_truncations", self.deadline_truncations.to_json()),
            ("invariant_skips", self.invariant_skips.to_json()),
        ])
    }
}

impl FromJson for ActuationCounters {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ActuationCounters {
            failed_ops: v.field_or("failed_ops")?,
            timed_out_ops: v.field_or("timed_out_ops")?,
            retries: v.field_or("retries")?,
            deferrals: v.field_or("deferrals")?,
            quarantines: v.field_or("quarantines")?,
            fill_only_fallbacks: v.field_or("fill_only_fallbacks")?,
            deadline_truncations: v.field_or("deadline_truncations")?,
            invariant_skips: v.field_or("invariant_skips")?,
        })
    }
}

impl ToJson for ObservationCounters {
    fn to_json(&self) -> Json {
        obj([
            ("missed_heartbeats", self.missed_heartbeats.to_json()),
            ("lost_reports", self.lost_reports.to_json()),
            ("suspects", self.suspects.to_json()),
            ("deaths", self.deaths.to_json()),
            ("reinstatements", self.reinstatements.to_json()),
            ("stale_holds", self.stale_holds.to_json()),
            ("fill_only_degrades", self.fill_only_degrades.to_json()),
        ])
    }
}

impl FromJson for ObservationCounters {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ObservationCounters {
            missed_heartbeats: v.field_or("missed_heartbeats")?,
            lost_reports: v.field_or("lost_reports")?,
            suspects: v.field_or("suspects")?,
            deaths: v.field_or("deaths")?,
            reinstatements: v.field_or("reinstatements")?,
            stale_holds: v.field_or("stale_holds")?,
            fill_only_degrades: v.field_or("fill_only_degrades")?,
        })
    }
}

impl ToJson for PlacementRecord {
    fn to_json(&self) -> Json {
        let instances: Vec<Json> = self
            .placement
            .iter()
            .map(|(app, node, count)| {
                Json::Arr(vec![
                    (app.index() as u64).to_json(),
                    (node.index() as u64).to_json(),
                    u64::from(count).to_json(),
                ])
            })
            .collect();
        obj([
            ("time", self.time.as_secs().to_json()),
            ("instances", Json::Arr(instances)),
        ])
    }
}

impl FromJson for PlacementRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let triples: Vec<(u64, (u64, u64))> = match v.get("instances") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|item| {
                    let arr = item.as_arr().ok_or_else(|| JsonError {
                        message: "placement instance must be an array".into(),
                    })?;
                    match arr {
                        [a, n, c] => {
                            Ok((u64::from_json(a)?, (u64::from_json(n)?, u64::from_json(c)?)))
                        }
                        _ => Err(JsonError {
                            message: "placement instance must be [app, node, count]".into(),
                        }),
                    }
                })
                .collect::<Result<_, _>>()?,
            _ => {
                return Err(JsonError {
                    message: "placement record missing instances".into(),
                })
            }
        };
        let mut placement = Placement::new();
        for (app, (node, count)) in triples {
            let app = AppId::new(decode_id(app, "app")?);
            let node = NodeId::new(decode_id(node, "node")?);
            for _ in 0..count {
                placement.place(app, node);
            }
        }
        Ok(PlacementRecord {
            time: SimTime::from_secs(v.field("time")?),
            placement,
        })
    }
}

impl ToJson for StarvationReport {
    fn to_json(&self) -> Json {
        let apps: Vec<Json> = self
            .apps
            .iter()
            .map(|a| (a.index() as u64).to_json())
            .collect();
        obj([
            ("time", self.time.as_secs().to_json()),
            ("apps", Json::Arr(apps)),
        ])
    }
}

impl FromJson for StarvationReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let apps: Vec<u64> = v.field("apps")?;
        Ok(StarvationReport {
            time: SimTime::from_secs(v.field("time")?),
            apps: apps
                .into_iter()
                .map(|a| Ok(AppId::new(decode_id(a, "app")?)))
                .collect::<Result<_, JsonError>>()?,
        })
    }
}

impl ToJson for CompletionTotals {
    fn to_json(&self) -> Json {
        obj([
            ("count", self.count.to_json()),
            ("met_deadlines", self.met_deadlines.to_json()),
            ("sum_rp", self.sum_rp.to_json()),
        ])
    }
}

impl FromJson for CompletionTotals {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CompletionTotals {
            count: v.field("count")?,
            met_deadlines: v.field("met_deadlines")?,
            sum_rp: v.field("sum_rp")?,
        })
    }
}

impl ToJson for RunMetrics {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("samples", self.samples.to_json()),
            ("completions", self.completions.to_json()),
        ];
        // Only aggregate-retention runs carry the field, so full-record
        // artifacts stay byte-identical to older writers.
        if let Some(totals) = &self.totals {
            fields.push(("totals", totals.to_json()));
        }
        fields.extend([
            ("changes", self.changes.to_json()),
            ("actuation", self.actuation.to_json()),
        ]);
        // Only runs with an active observation layer carry the field, so
        // perfect-telemetry artifacts stay byte-identical to older
        // writers.
        if self.observation != ObservationCounters::default() {
            fields.push(("observation", self.observation.to_json()));
        }
        fields.push(("placements", self.placements.to_json()));
        fields.push(("starvation", self.starvation.to_json()));
        obj(fields)
    }
}

impl FromJson for RunMetrics {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(RunMetrics {
            samples: v.field("samples")?,
            completions: v.field("completions")?,
            // Absent everywhere but aggregate-retention streaming runs.
            totals: v.field_or("totals")?,
            changes: v.field("changes")?,
            // Absent in artifacts written before fallible actuation.
            actuation: v.field_or("actuation")?,
            // Absent in perfect-telemetry artifacts (and everything
            // written before the observation layer).
            observation: v.field_or("observation")?,
            // Absent in artifacts written before placements existed.
            placements: v.field_or("placements")?,
            // Absent in artifacts written before the starvation breaker.
            starvation: v.field_or("starvation")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completion(met: bool, factor: f64, rp: f64) -> CompletionRecord {
        CompletionRecord {
            app: AppId::new(0),
            arrival: SimTime::ZERO,
            completion: SimTime::from_secs(10.0),
            deadline: SimTime::from_secs(20.0),
            distance: SimDuration::from_secs(if met { 10.0 } else { -5.0 }),
            rp: Rp::new(rp),
            goal_factor: factor,
            met_deadline: met,
        }
    }

    #[test]
    fn deadline_ratio() {
        let mut m = RunMetrics::default();
        assert_eq!(m.deadline_met_ratio(), None);
        m.completions.push(completion(true, 1.3, 0.5));
        m.completions.push(completion(false, 2.5, -0.1));
        m.completions.push(completion(true, 1.3, 0.4));
        assert!((m.deadline_met_ratio().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn filter_by_factor() {
        let mut m = RunMetrics::default();
        m.completions.push(completion(true, 1.3, 0.5));
        m.completions.push(completion(true, 4.0, 0.5));
        assert_eq!(m.completions_with_factor(1.3).count(), 1);
        assert_eq!(m.completions_with_factor(4.0).count(), 1);
        assert_eq!(m.completions_with_factor(2.5).count(), 0);
    }

    #[test]
    fn filter_by_factor_is_relative_not_absolute() {
        // One ulp at 1e13 is ~2e-3 — far beyond the old absolute 1e-6
        // tolerance, so a record could fail to match its own factor.
        let big = 12_345_678_901_234.5_f64;
        let nudged = f64::from_bits(big.to_bits() + 1);
        let mut m = RunMetrics::default();
        m.completions.push(completion(true, nudged, 0.5));
        assert_eq!(m.completions_with_factor(big).count(), 1);
        // Genuinely different factors still do not match.
        assert_eq!(m.completions_with_factor(big * 1.5).count(), 0);
    }

    fn sample_with_compute(secs: f64) -> CycleSample {
        CycleSample {
            time: SimTime::ZERO,
            batch_hypothetical_rp: None,
            txn_rp: None,
            batch_allocation: CpuSpeed::ZERO,
            txn_allocation: CpuSpeed::ZERO,
            running_jobs: 0,
            waiting_jobs: 0,
            placement_compute_secs: secs,
            pending_actions: 0,
            rigid_utilization: Vec::new(),
        }
    }

    #[test]
    fn mean_compute_time_counts_sub_resolution_cycles() {
        let mut m = RunMetrics::default();
        assert_eq!(m.mean_placement_compute_secs(), None);
        // One cycle below timer resolution, one at 0.2 s. The old
        // implementation dropped the zero and reported 0.2.
        m.samples.push(sample_with_compute(0.0));
        m.samples.push(sample_with_compute(0.2));
        let mean = m.mean_placement_compute_secs().unwrap();
        assert!((mean - 0.1).abs() < 1e-12, "got {mean}");
        assert_eq!(m.sub_resolution_compute_cycles(), 1);
    }

    #[test]
    fn out_of_range_ids_fail_to_decode() {
        // u32::MAX + 2 used to truncate to app 1.
        let text = r#"{
            "app": 4294967297, "arrival": 0.0, "completion": 1.0,
            "deadline": 2.0, "distance": 1.0, "rp": 0.5,
            "goal_factor": 2.0, "met_deadline": true
        }"#;
        let err = CompletionRecord::from_json(&Json::parse(text).unwrap()).unwrap_err();
        assert!(err.message.contains("4294967297"), "{}", err.message);
        assert!(err.message.contains("out of range"), "{}", err.message);

        let text = r#"{ "time": 0.0, "instances": [[0, 4294967297, 1]] }"#;
        let err = PlacementRecord::from_json(&Json::parse(text).unwrap()).unwrap_err();
        assert!(err.message.contains("node id"), "{}", err.message);

        // In-range ids still decode.
        let text = r#"{ "time": 0.0, "instances": [[7, 3, 2]] }"#;
        let rec = PlacementRecord::from_json(&Json::parse(text).unwrap()).unwrap();
        assert_eq!(rec.placement.count(AppId::new(7), NodeId::new(3)), 2);
    }

    #[test]
    fn large_goal_factor_survives_json_round_trip() {
        let mut m = RunMetrics::default();
        m.completions.push(completion(true, 9.87654321e12, 0.25));
        let text = m.to_json().pretty();
        let back = RunMetrics::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.completions[0].goal_factor, 9.87654321e12);
        assert_eq!(back.completions_with_factor(9.87654321e12).count(), 1);
    }

    #[test]
    fn change_totals() {
        let c = ChangeCounters {
            starts: 10,
            suspends: 3,
            resumes: 2,
            migrations: 4,
        };
        assert_eq!(c.disruptive_total(), 9);
    }

    #[test]
    fn mean_rp() {
        let mut m = RunMetrics::default();
        m.completions.push(completion(true, 1.3, 0.2));
        m.completions.push(completion(true, 1.3, 0.6));
        assert!(m
            .mean_completion_rp()
            .unwrap()
            .approx_eq(Rp::new(0.4), 1e-12));
    }

    #[test]
    fn metrics_round_trip_through_json() {
        let mut m = RunMetrics::default();
        m.samples.push(CycleSample {
            time: SimTime::from_secs(60.0),
            batch_hypothetical_rp: Some(Rp::new(0.25)),
            txn_rp: None,
            batch_allocation: CpuSpeed::from_mhz(1_234.5),
            txn_allocation: CpuSpeed::from_mhz(0.0),
            running_jobs: 3,
            waiting_jobs: 1,
            placement_compute_secs: 0.0125,
            pending_actions: 2,
            rigid_utilization: vec![RigidDimSample {
                dim: "disk_mb".to_string(),
                used: 2_048.0,
                capacity: 8_192.0,
            }],
        });
        m.completions.push(completion(true, 2.5, 0.375));
        m.changes = ChangeCounters {
            starts: 4,
            suspends: 1,
            resumes: 1,
            migrations: 0,
        };
        m.actuation = ActuationCounters {
            failed_ops: 3,
            timed_out_ops: 1,
            retries: 2,
            deferrals: 5,
            quarantines: 1,
            fill_only_fallbacks: 1,
            deadline_truncations: 0,
            invariant_skips: 0,
        };
        m.observation = ObservationCounters {
            missed_heartbeats: 12,
            lost_reports: 7,
            suspects: 3,
            deaths: 1,
            reinstatements: 1,
            stale_holds: 2,
            fill_only_degrades: 1,
        };
        let text = m.to_json().pretty();
        let back = RunMetrics::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.samples, m.samples);
        assert_eq!(back.completions, m.completions);
        assert_eq!(back.changes, m.changes);
        assert_eq!(back.actuation, m.actuation);
        assert_eq!(back.observation, m.observation);
        assert_eq!(back.observation.lost_total(), 19);
    }

    #[test]
    fn actuation_counters_absent_in_old_artifacts_default_to_zero() {
        let m = RunMetrics::default();
        let mut json = m.to_json();
        // Simulate a pre-actuation artifact by dropping the new fields.
        if let Json::Obj(fields) = &mut json {
            fields.retain(|(k, _)| k != "actuation");
        }
        let back = RunMetrics::from_json(&json).unwrap();
        assert_eq!(back.actuation, ActuationCounters::default());
        assert_eq!(back.actuation.unapplied_total(), 0);
    }

    #[test]
    fn observation_counters_absent_in_old_artifacts_default_to_zero() {
        // Perfect-telemetry runs omit the field entirely (byte-stable
        // artifacts), and artifacts written before the observation layer
        // never had it; both decode to all-zero counters.
        let m = RunMetrics::default();
        let text = m.to_json().pretty();
        assert!(
            !text.contains("observation"),
            "all-zero counters must not be emitted: {text}"
        );
        let back = RunMetrics::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.observation, ObservationCounters::default());
    }
}
