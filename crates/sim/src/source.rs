//! Streaming workload sources.
//!
//! A [`WorkloadSource`] yields [`Submission`]s lazily, in non-decreasing
//! time order, so the engine can admit work just before it arrives
//! instead of materializing every job up front. Three implementations:
//!
//! - [`ScenarioSource`] — a replay adapter over a scenario's classic
//!   `jobs`/`txns` blocks, with pre-assigned application ids so a
//!   streamed replay is bit-identical to the lock-step build;
//! - [`GenerativeSource`] — stochastic batch arrival streams (Poisson,
//!   cyclic MMPP, diurnal curves, flash crowds) plus open-loop
//!   transactional populations, drawn lazily from per-stream RNGs;
//! - [`MergedSource`] — a deterministic merge of both, ordered by
//!   `(time, child index)`.
//!
//! The ordering contract: `peek` returns the time of the submission the
//! next `next` call will yield, times never decrease, and a source is
//! exhausted exactly when `peek` returns `None`.

use std::collections::VecDeque;

use dynaplace_model::ids::AppId;
use dynaplace_model::units::{SimDuration, SimTime};
use dynaplace_txn::workload::ArrivalPattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a streamed job's deadline is derived (mirrors the scenario
/// `goal` block; the engine resolves it against the job's profile at
/// admission).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GoalSubmission {
    /// Deadline = arrival + factor × best execution time.
    Factor(f64),
    /// Deadline = arrival + this many seconds.
    RelativeSecs(f64),
}

/// One batch job submission, in raw scenario units. The engine builds
/// the [`dynaplace_batch::job::JobSpec`] at admission, using `id` when
/// pre-assigned (replay sources) or the next free application id
/// (generative sources — which is what lets constant-memory runs
/// recycle ids).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSubmission {
    /// Pre-assigned application id; `None` = assign at admission.
    pub id: Option<AppId>,
    /// Submission instant.
    pub arrival: SimTime,
    /// Total work, megacycles.
    pub work_mcycles: f64,
    /// Maximum speed per task, MHz.
    pub max_speed_mhz: f64,
    /// Memory per task, MB.
    pub memory_mb: f64,
    /// Deadline derivation.
    pub goal: GoalSubmission,
    /// Parallel tasks (1 = ordinary job).
    pub tasks: u32,
    /// Optional job class tag.
    pub class: Option<String>,
    /// Demand in the cluster's extra rigid dimensions, registry order.
    pub extra_rigid: Vec<f64>,
}

/// One transactional application registration (always at time zero —
/// transactional load is a rate curve, not a job stream).
pub struct TxnSubmission {
    /// Pre-assigned application id; `None` = assign at admission.
    pub id: Option<AppId>,
    /// Memory per instance, MB.
    pub memory_mb: f64,
    /// Maximum instances.
    pub max_instances: u32,
    /// Per-request CPU demand, megacycles.
    pub demand_mcycles: f64,
    /// Response-time floor, seconds.
    pub floor_secs: f64,
    /// Response-time goal, seconds.
    pub goal_secs: f64,
    /// The arrival-rate curve.
    pub pattern: Box<dyn ArrivalPattern + Send>,
    /// Demand in the cluster's extra rigid dimensions, registry order.
    pub extra_rigid: Vec<f64>,
}

impl std::fmt::Debug for TxnSubmission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnSubmission")
            .field("id", &self.id)
            .field("memory_mb", &self.memory_mb)
            .field("max_instances", &self.max_instances)
            .field("demand_mcycles", &self.demand_mcycles)
            .finish_non_exhaustive()
    }
}

/// One unit of streamed workload.
#[derive(Debug)]
pub enum Submission {
    /// A batch job arriving at [`JobSubmission::arrival`].
    Job(JobSubmission),
    /// A transactional application registering at time zero.
    Txn(TxnSubmission),
}

impl Submission {
    /// The instant this submission takes effect.
    pub fn time(&self) -> SimTime {
        match self {
            Submission::Job(job) => job.arrival,
            Submission::Txn(_) => SimTime::ZERO,
        }
    }
}

/// A lazy, time-ordered stream of workload submissions.
///
/// Contract: `peek` returns the time of the submission the next call to
/// `next` yields (`None` = exhausted), and yielded times never
/// decrease. `peek` takes `&mut self` so generative implementations can
/// draw the next arrival on demand.
pub trait WorkloadSource: std::fmt::Debug + Send {
    /// Time of the next submission, or `None` when exhausted.
    fn peek(&mut self) -> Option<SimTime>;
    /// Yields the next submission in time order.
    fn next(&mut self) -> Option<Submission>;
    /// Number of application ids `0..reserved_ids()` this source
    /// pre-assigns. The engine keeps automatic id assignment above this
    /// range so lazily admitted submissions never collide with a
    /// pre-assigned id that has not been admitted yet.
    fn reserved_ids(&self) -> u32 {
        0
    }
}

/// A replay source over pre-materialized submissions (the adapter that
/// wraps a scenario's classic `jobs`/`txns` blocks).
///
/// The caller supplies submissions already sorted by time (stable, so
/// same-instant submissions keep declaration order) with ids
/// pre-assigned in declaration order — which makes a streamed replay
/// admit exactly the applications, under exactly the ids, that the
/// lock-step build registers up front.
#[derive(Debug)]
pub struct ScenarioSource {
    submissions: VecDeque<Submission>,
    reserved: u32,
}

impl ScenarioSource {
    /// Wraps `submissions` (must be sorted by [`Submission::time`]) that
    /// pre-assign ids `0..reserved`.
    ///
    /// # Panics
    ///
    /// Panics if the submissions are not in non-decreasing time order.
    pub fn from_parts(submissions: Vec<Submission>, reserved: u32) -> Self {
        for pair in submissions.windows(2) {
            assert!(
                pair[0].time() <= pair[1].time(),
                "scenario submissions must be sorted by time"
            );
        }
        Self {
            submissions: submissions.into(),
            reserved,
        }
    }
}

impl WorkloadSource for ScenarioSource {
    fn peek(&mut self) -> Option<SimTime> {
        self.submissions.front().map(Submission::time)
    }

    fn next(&mut self) -> Option<Submission> {
        self.submissions.pop_front()
    }

    fn reserved_ids(&self) -> u32 {
        self.reserved
    }
}

/// A stochastic arrival process for one generated batch stream.
///
/// All stochastic variants are sampled by thinning a homogeneous
/// Poisson process at the variant's maximum rate, so one stream
/// consumes its RNG in a single deterministic order regardless of how
/// the acceptance draws fall.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals.
    Poisson {
        /// Arrival rate, jobs per second.
        rate_per_sec: f64,
    },
    /// Cyclic Markov-modulated Poisson process: the stream dwells in
    /// each `(rate_per_sec, mean_dwell_secs)` state for an
    /// exponentially distributed time, then moves to the next state
    /// (wrapping around). Two states give the classic on/off burst
    /// model.
    Mmpp {
        /// `(rate_per_sec, mean_dwell_secs)` per state, visited in
        /// order.
        states: Vec<(f64, f64)>,
    },
    /// Diurnal curve: a non-homogeneous Poisson process with rate
    /// `base + amplitude·sin(2π·t/period)`, floored at zero.
    Diurnal {
        /// Mean rate, jobs per second.
        base_rate_per_sec: f64,
        /// Peak deviation from the mean, jobs per second.
        amplitude: f64,
        /// Period in seconds (86 400 = one day).
        period_secs: f64,
    },
    /// Flash crowds: `base` rate with a `multiplier×` spike of
    /// `duration_secs` starting every `every_secs`.
    FlashCrowd {
        /// Baseline rate, jobs per second.
        base_rate_per_sec: f64,
        /// Rate multiplier during a spike.
        multiplier: f64,
        /// Spike spacing, seconds (first spike starts at this offset).
        every_secs: f64,
        /// Spike length, seconds.
        duration_secs: f64,
    },
}

impl ArrivalProcess {
    /// The thinning envelope: an upper bound on the instantaneous rate.
    fn max_rate(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_per_sec } => *rate_per_sec,
            ArrivalProcess::Mmpp { states } => states.iter().map(|&(r, _)| r).fold(0.0, f64::max),
            ArrivalProcess::Diurnal {
                base_rate_per_sec,
                amplitude,
                ..
            } => base_rate_per_sec + amplitude.abs(),
            ArrivalProcess::FlashCrowd {
                base_rate_per_sec,
                multiplier,
                ..
            } => base_rate_per_sec * multiplier.max(1.0),
        }
    }
}

/// Mutable sampling state of one [`ArrivalProcess`] (the MMPP state
/// trajectory is drawn lazily as time advances).
#[derive(Debug, Clone, Default)]
struct ProcessState {
    /// Current MMPP state index.
    mmpp_state: usize,
    /// Instant the current MMPP dwell ends.
    mmpp_dwell_end: SimTime,
}

impl ArrivalProcess {
    /// Instantaneous rate at `t`, advancing `state` (and drawing dwell
    /// times from `rng`) as needed. `t` must not decrease across calls
    /// on one stream.
    fn rate_at(&self, t: SimTime, state: &mut ProcessState, rng: &mut StdRng) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_per_sec } => *rate_per_sec,
            ArrivalProcess::Mmpp { states } => {
                while t >= state.mmpp_dwell_end {
                    state.mmpp_state = (state.mmpp_state + 1) % states.len();
                    let (_, mean_dwell) = states[state.mmpp_state];
                    let u: f64 = rng.gen::<f64>().max(1e-12);
                    state.mmpp_dwell_end += SimDuration::from_secs(-mean_dwell * u.ln());
                }
                states[state.mmpp_state].0
            }
            ArrivalProcess::Diurnal {
                base_rate_per_sec,
                amplitude,
                period_secs,
            } => {
                let phase = 2.0 * std::f64::consts::PI * t.as_secs() / period_secs;
                (base_rate_per_sec + amplitude * phase.sin()).max(0.0)
            }
            ArrivalProcess::FlashCrowd {
                base_rate_per_sec,
                multiplier,
                every_secs,
                duration_secs,
            } => {
                let into_cycle = t.as_secs().rem_euclid(*every_secs);
                if into_cycle < *duration_secs {
                    base_rate_per_sec * multiplier
                } else {
                    *base_rate_per_sec
                }
            }
        }
    }
}

/// The per-job template of one generated batch stream: every arrival
/// the stream yields is an instance of this shape.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTemplate {
    /// Total work per job, megacycles.
    pub work_mcycles: f64,
    /// Maximum speed per task, MHz.
    pub max_speed_mhz: f64,
    /// Memory per task, MB.
    pub memory_mb: f64,
    /// Deadline derivation.
    pub goal: GoalSubmission,
    /// Parallel tasks per job.
    pub tasks: u32,
    /// Optional job class tag.
    pub class: Option<String>,
    /// Demand in the cluster's extra rigid dimensions, registry order.
    pub extra_rigid: Vec<f64>,
}

/// One generated batch stream: an arrival process, a job template, and
/// termination caps.
#[derive(Debug)]
struct BatchStream {
    process: ArrivalProcess,
    state: ProcessState,
    template: JobTemplate,
    rng: StdRng,
    /// Jobs left to yield; `None` = unbounded (horizon-capped).
    remaining: Option<u64>,
    /// Arrivals strictly after this instant are never yielded.
    horizon: Option<SimTime>,
    /// Envelope-process clock for thinning.
    t: SimTime,
    /// The next accepted arrival, drawn ahead for `peek`.
    pending: Option<SimTime>,
    exhausted: bool,
}

impl BatchStream {
    /// Draws the next accepted arrival by thinning, or `None` when the
    /// stream hit its count cap or horizon.
    fn draw(&mut self) -> Option<SimTime> {
        if self.remaining == Some(0) {
            return None;
        }
        let max = self.process.max_rate();
        if max <= 0.0 {
            return None;
        }
        loop {
            let u: f64 = self.rng.gen::<f64>().max(1e-12);
            self.t += SimDuration::from_secs(-u.ln() / max);
            if let Some(h) = self.horizon {
                if self.t > h {
                    return None;
                }
            }
            let rate = self.process.rate_at(self.t, &mut self.state, &mut self.rng);
            if rate >= max || self.rng.gen::<f64>() * max < rate {
                if let Some(c) = &mut self.remaining {
                    *c -= 1;
                }
                return Some(self.t);
            }
        }
    }

    fn peek(&mut self) -> Option<SimTime> {
        if self.pending.is_none() && !self.exhausted {
            self.pending = self.draw();
            self.exhausted = self.pending.is_none();
        }
        self.pending
    }
}

/// A generative workload source: open-loop transactional populations
/// registered at time zero, then batch arrivals drawn lazily from
/// per-stream arrival processes — memory use is independent of how many
/// jobs the run generates.
///
/// Determinism: stream `i` samples from its own
/// [`StdRng`] seeded as a pure function of `(seed, i)`, and same-instant
/// arrivals across streams are yielded lowest-stream-first, so the
/// submission sequence is a pure function of the configuration.
#[derive(Debug, Default)]
pub struct GenerativeSource {
    txns: VecDeque<TxnSubmission>,
    streams: Vec<BatchStream>,
}

impl GenerativeSource {
    /// Creates an empty source (populate with
    /// [`GenerativeSource::push_txn`] / [`GenerativeSource::push_batch`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Derives the RNG seed of stream `index` from the scenario seed
    /// (splitmix-style spread so neighboring streams decorrelate).
    pub fn stream_seed(seed: u64, index: usize) -> u64 {
        seed ^ (index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Registers an open-loop transactional population (yielded at time
    /// zero, before any batch arrival).
    pub fn push_txn(&mut self, txn: TxnSubmission) {
        self.txns.push_back(txn);
    }

    /// Adds a generated batch stream. `stream_rng_seed` should come from
    /// [`GenerativeSource::stream_seed`]; `count`/`horizon` bound the
    /// stream (at least one must be finite for the stream to terminate).
    pub fn push_batch(
        &mut self,
        process: ArrivalProcess,
        template: JobTemplate,
        stream_rng_seed: u64,
        count: Option<u64>,
        horizon: Option<SimTime>,
    ) {
        self.streams.push(BatchStream {
            process,
            state: ProcessState::default(),
            template,
            rng: StdRng::seed_from_u64(stream_rng_seed),
            remaining: count,
            horizon,
            t: SimTime::ZERO,
            pending: None,
            exhausted: false,
        });
    }

    /// Index of the stream with the earliest pending arrival (ties go to
    /// the lowest stream index).
    fn earliest_stream(&mut self) -> Option<usize> {
        let mut best: Option<(SimTime, usize)> = None;
        for i in 0..self.streams.len() {
            if let Some(t) = self.streams[i].peek() {
                let better = match best {
                    None => true,
                    Some((bt, _)) => t.as_secs() < bt.as_secs(),
                };
                if better {
                    best = Some((t, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }
}

impl WorkloadSource for GenerativeSource {
    fn peek(&mut self) -> Option<SimTime> {
        if !self.txns.is_empty() {
            return Some(SimTime::ZERO);
        }
        let i = self.earliest_stream()?;
        self.streams[i].peek()
    }

    fn next(&mut self) -> Option<Submission> {
        if let Some(txn) = self.txns.pop_front() {
            return Some(Submission::Txn(txn));
        }
        let i = self.earliest_stream()?;
        let arrival = self.streams[i].pending.take()?;
        let template = &self.streams[i].template;
        Some(Submission::Job(JobSubmission {
            id: None,
            arrival,
            work_mcycles: template.work_mcycles,
            max_speed_mhz: template.max_speed_mhz,
            memory_mb: template.memory_mb,
            goal: template.goal,
            tasks: template.tasks,
            class: template.class.clone(),
            extra_rigid: template.extra_rigid.clone(),
        }))
    }
}

/// A deterministic merge of several sources, ordered by
/// `(time, child index)` — so a scenario's classic submissions (child 0)
/// win ties against generated ones, matching the lock-step build's
/// registration order.
#[derive(Debug, Default)]
pub struct MergedSource {
    children: Vec<Box<dyn WorkloadSource>>,
}

impl MergedSource {
    /// Creates an empty merge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a child; earlier children win same-instant ties.
    pub fn push(&mut self, child: Box<dyn WorkloadSource>) {
        self.children.push(child);
    }

    fn earliest_child(&mut self) -> Option<usize> {
        let mut best: Option<(SimTime, usize)> = None;
        for i in 0..self.children.len() {
            if let Some(t) = self.children[i].peek() {
                let better = match best {
                    None => true,
                    Some((bt, _)) => t.as_secs() < bt.as_secs(),
                };
                if better {
                    best = Some((t, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }
}

impl WorkloadSource for MergedSource {
    fn peek(&mut self) -> Option<SimTime> {
        let i = self.earliest_child()?;
        self.children[i].peek()
    }

    fn next(&mut self) -> Option<Submission> {
        let i = self.earliest_child()?;
        self.children[i].next()
    }

    fn reserved_ids(&self) -> u32 {
        self.children
            .iter()
            .map(|c| c.reserved_ids())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template() -> JobTemplate {
        JobTemplate {
            work_mcycles: 1_000.0,
            max_speed_mhz: 500.0,
            memory_mb: 256.0,
            goal: GoalSubmission::Factor(2.0),
            tasks: 1,
            class: None,
            extra_rigid: Vec::new(),
        }
    }

    fn drain_times(source: &mut dyn WorkloadSource) -> Vec<f64> {
        let mut times = Vec::new();
        while let Some(t) = source.peek() {
            let sub = source.next().expect("peek promised a submission");
            assert_eq!(sub.time(), t, "peek must match the yielded time");
            times.push(t.as_secs());
        }
        times
    }

    #[test]
    fn poisson_stream_is_deterministic_and_ordered() {
        let build = || {
            let mut s = GenerativeSource::new();
            s.push_batch(
                ArrivalProcess::Poisson { rate_per_sec: 0.5 },
                template(),
                GenerativeSource::stream_seed(7, 0),
                Some(50),
                None,
            );
            s
        };
        let a = drain_times(&mut build());
        let b = drain_times(&mut build());
        assert_eq!(a, b, "same seed must reproduce the same stream");
        assert_eq!(a.len(), 50);
        assert!(
            a.windows(2).all(|w| w[0] <= w[1]),
            "times must not decrease"
        );
        // Mean gap should be in the ballpark of 1/rate = 2 s.
        let mean_gap = a.last().unwrap() / a.len() as f64;
        assert!(
            (0.5..8.0).contains(&mean_gap),
            "implausible mean gap {mean_gap}"
        );
    }

    #[test]
    fn horizon_caps_an_unbounded_stream() {
        let mut s = GenerativeSource::new();
        s.push_batch(
            ArrivalProcess::Diurnal {
                base_rate_per_sec: 0.2,
                amplitude: 0.1,
                period_secs: 600.0,
            },
            template(),
            GenerativeSource::stream_seed(3, 0),
            None,
            Some(SimTime::from_secs(1_000.0)),
        );
        let times = drain_times(&mut s);
        assert!(!times.is_empty());
        assert!(times.iter().all(|&t| t <= 1_000.0));
    }

    #[test]
    fn mmpp_and_flash_streams_terminate_and_order() {
        let mut s = GenerativeSource::new();
        s.push_batch(
            ArrivalProcess::Mmpp {
                states: vec![(2.0, 30.0), (0.05, 60.0)],
            },
            template(),
            GenerativeSource::stream_seed(11, 0),
            Some(40),
            None,
        );
        s.push_batch(
            ArrivalProcess::FlashCrowd {
                base_rate_per_sec: 0.1,
                multiplier: 20.0,
                every_secs: 300.0,
                duration_secs: 30.0,
            },
            template(),
            GenerativeSource::stream_seed(11, 1),
            Some(40),
            None,
        );
        let times = drain_times(&mut s);
        assert_eq!(times.len(), 80);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn merged_source_orders_children_and_breaks_ties_low_first() {
        let classic = ScenarioSource::from_parts(
            vec![
                Submission::Job(JobSubmission {
                    id: Some(AppId::new(0)),
                    arrival: SimTime::from_secs(5.0),
                    work_mcycles: 1.0,
                    max_speed_mhz: 1.0,
                    memory_mb: 1.0,
                    goal: GoalSubmission::Factor(1.0),
                    tasks: 1,
                    class: None,
                    extra_rigid: Vec::new(),
                }),
                Submission::Job(JobSubmission {
                    id: Some(AppId::new(1)),
                    arrival: SimTime::from_secs(10.0),
                    work_mcycles: 1.0,
                    max_speed_mhz: 1.0,
                    memory_mb: 1.0,
                    goal: GoalSubmission::Factor(1.0),
                    tasks: 1,
                    class: None,
                    extra_rigid: Vec::new(),
                }),
            ],
            2,
        );
        let gen_only = ScenarioSource::from_parts(
            vec![Submission::Job(JobSubmission {
                id: None,
                arrival: SimTime::from_secs(5.0),
                work_mcycles: 2.0,
                max_speed_mhz: 1.0,
                memory_mb: 1.0,
                goal: GoalSubmission::Factor(1.0),
                tasks: 1,
                class: None,
                extra_rigid: Vec::new(),
            })],
            0,
        );
        let mut merged = MergedSource::new();
        merged.push(Box::new(classic));
        merged.push(Box::new(gen_only));
        assert_eq!(merged.reserved_ids(), 2);
        // Tie at t=5: the classic child (index 0) yields first.
        assert_eq!(merged.peek(), Some(SimTime::from_secs(5.0)));
        match merged.next() {
            Some(Submission::Job(j)) => assert_eq!(j.id, Some(AppId::new(0))),
            other => panic!("expected classic job first, got {other:?}"),
        }
        match merged.next() {
            Some(Submission::Job(j)) => assert_eq!(j.id, None),
            other => panic!("expected generated job second, got {other:?}"),
        }
        match merged.next() {
            Some(Submission::Job(j)) => assert_eq!(j.id, Some(AppId::new(1))),
            other => panic!("expected trailing classic job, got {other:?}"),
        }
        assert!(merged.next().is_none());
        assert!(merged.peek().is_none());
    }

    #[test]
    fn txn_submissions_yield_before_batch_arrivals() {
        let mut s = GenerativeSource::new();
        s.push_batch(
            ArrivalProcess::Poisson { rate_per_sec: 1.0 },
            template(),
            GenerativeSource::stream_seed(1, 0),
            Some(3),
            None,
        );
        s.push_txn(TxnSubmission {
            id: None,
            memory_mb: 512.0,
            max_instances: 4,
            demand_mcycles: 10.0,
            floor_secs: 0.1,
            goal_secs: 1.0,
            pattern: Box::new(dynaplace_txn::workload::ConstantRate(5.0)),
            extra_rigid: Vec::new(),
        });
        assert_eq!(s.peek(), Some(SimTime::ZERO));
        assert!(matches!(s.next(), Some(Submission::Txn(_))));
        for _ in 0..3 {
            assert!(matches!(s.next(), Some(Submission::Job(_))));
        }
        assert!(s.next().is_none());
    }
}
