//! The discrete-event cluster simulator.
//!
//! Reproduces the evaluation vehicle of §5: a virtualized cluster on
//! which batch jobs and transactional applications are placed by either
//! the paper's placement controller (APC) or one of the baseline
//! schedulers (FCFS, EDF), with VM control operations charged according
//! to the measured cost model.
//!
//! The simulation is event-driven and fully deterministic: job arrivals,
//! projected job completions, and periodic control cycles are the only
//! event sources, and all state lives in ordered maps.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use dynaplace_apc::optimizer::{fill_only_traced, place_traced, ApcConfig, PlacementOutcome};
use dynaplace_apc::problem::{PlacementProblem, WorkloadModel};
use dynaplace_batch::baselines::{edf_schedule, fcfs_schedule, BaselineJob, NodeCapacity};
use dynaplace_batch::class_profiler::JobClassProfiler;
use dynaplace_batch::hypothetical::{HypotheticalRpf, JobSnapshot};
use dynaplace_batch::job::JobSpec;
use dynaplace_batch::state::{JobState, JobStatus};
use dynaplace_model::app::ApplicationSpec;
use dynaplace_model::cluster::{AppSet, Cluster};
use dynaplace_model::delta::PlacementAction;
use dynaplace_model::ids::{AppId, NodeId};
use dynaplace_model::load::LoadDistribution;
use dynaplace_model::placement::Placement;
use dynaplace_model::units::{CpuSpeed, Memory, SimDuration, SimTime, Work};
use dynaplace_rpf::goal::ResponseTimeGoal;
use dynaplace_rpf::value::Rp;
use dynaplace_trace::{JsonlSink, NoopSink, Phase, TraceConfig, TraceEvent, TraceLevel, TraceSink};
use dynaplace_txn::model::{TxnPerformanceModel, TxnWorkload};
use dynaplace_txn::router::RequestRouter;
use dynaplace_txn::workload::ArrivalPattern;

use crate::actuation::{ActuationConfig, ActuationState, OpAttempt, OpOutcome};
use crate::costs::{VmCostModel, VmOperation};
use crate::events::{EventKind, EventQueue};
use crate::metrics::{CompletionRecord, CycleSample, RunMetrics};

/// A config-derived buffering trace sink paired with the path it is
/// flushed to at end of run.
type FileSink = (Arc<JsonlSink>, String);

/// Work remaining below this is considered complete (floating point
/// slack, in megacycles).
const COMPLETION_EPS: f64 = 1e-6;

/// Which decision maker drives the cluster.
#[derive(Debug, Clone)]
pub enum SchedulerKind {
    /// The paper's placement controller, running a full optimization
    /// every control cycle. When `advice_between_cycles` is set, job
    /// arrivals and completions additionally trigger a non-disruptive
    /// fill pass (§3.1: the scheduler consults the controller on where
    /// and *when* a job should run).
    Apc {
        /// Optimizer tunables.
        config: ApcConfig,
        /// Run a start-only advice pass on arrivals/completions.
        advice_between_cycles: bool,
    },
    /// First-Come, First-Served (non-preemptive, first fit).
    Fcfs,
    /// Earliest Deadline First (preemptive, first fit).
    Edf,
}

/// One scripted node outage: the node's capacity drops to zero at
/// `at`, instances on it are evicted (jobs suspended, losing no
/// completed work), and — when `duration` is set — the node recovers
/// with full capacity `duration` later, after which the scheduler may
/// place work on it again through the normal optimizer path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeOutage {
    /// Offset of the failure from the start of the run.
    pub at: SimDuration,
    /// The failing node.
    pub node: NodeId,
    /// Outage length; `None` means the node never comes back.
    pub duration: Option<SimDuration>,
}

impl NodeOutage {
    /// A permanent failure (the pre-transient behavior).
    pub fn permanent(at: SimDuration, node: NodeId) -> Self {
        Self {
            at,
            node,
            duration: None,
        }
    }

    /// A transient failure: the node recovers `duration` after failing.
    pub fn transient(at: SimDuration, node: NodeId, duration: SimDuration) -> Self {
        Self {
            at,
            node,
            duration: Some(duration),
        }
    }
}

impl From<(SimDuration, NodeId)> for NodeOutage {
    fn from((at, node): (SimDuration, NodeId)) -> Self {
        Self::permanent(at, node)
    }
}

/// Simulation-wide configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Control cycle length `T` (also the metric sampling period).
    pub cycle: SimDuration,
    /// Hard stop; when `None` the simulation runs until every job has
    /// completed.
    pub horizon: Option<SimDuration>,
    /// VM operation cost model.
    pub costs: VmCostModel,
    /// The decision maker.
    pub scheduler: SchedulerKind,
    /// Nodes batch jobs may use under the baseline schedulers; `None`
    /// means all nodes. (The APC path uses per-application pinning
    /// instead.)
    pub batch_nodes: Option<Vec<NodeId>>,
    /// When set, transactional applications are not managed by the
    /// scheduler: each receives a fixed allocation equal to
    /// `min(its saturation allocation, the capacity of these nodes)` —
    /// the paper's static partitioning baseline (Experiment Three).
    pub static_txn_nodes: Option<Vec<NodeId>>,
    /// Estimation errors injected into what the *controller* sees (the
    /// simulated truth is unaffected). Models imperfect job workload
    /// profilers and CPU-demand estimators (§3.1).
    pub noise: EstimationNoise,
    /// On-the-fly profile generation (the paper's future work): when
    /// set, jobs tagged with a class whose history has at least three
    /// completions are presented to the controller with the *estimated*
    /// class-mean work instead of their true profile.
    pub profile_from_history: bool,
    /// Scripted node failures (permanent or transient): at each offset
    /// from the start of the run, the node's capacity drops to zero,
    /// instances on it are evicted (jobs suspended, losing no completed
    /// work), and the scheduler re-places the survivors; transient
    /// outages recover after their duration.
    pub node_failures: Vec<NodeOutage>,
    /// Close the work-profiler loop (§3.1): instead of the configured
    /// per-request demand, the controller uses an online regression
    /// estimate from (throughput, CPU-used) observations taken each
    /// control cycle — with a small deterministic measurement error so
    /// the estimator actually works for its living.
    pub estimate_txn_demand: bool,
    /// Record the full placement at every cycle sample (golden-file
    /// regression tests diff consecutive records). Off by default: the
    /// records grow linearly with run length × cluster occupancy.
    pub record_placements: bool,
    /// The fallible actuation layer (VM operation failure rate, latency
    /// jitter, timeout, backoff/quarantine policy). The default models a
    /// perfect layer: every operation succeeds with exactly the cost
    /// model's latency, bit-identical to a simulator without actuation.
    pub actuation: ActuationConfig,
    /// Decision-provenance tracing. With `path` unset (the default) the
    /// engine installs a no-op sink and the run is bit-identical to an
    /// untraced build; with a path, every controller decision is buffered
    /// as a JSONL event stream and flushed there at end of run.
    pub trace: TraceConfig,
}

/// Relative estimation errors presented to the placement controller.
///
/// Each job gets a deterministic bias in `[-job_work, +job_work]`
/// (derived from its id), applied to the *remaining work* the controller
/// sees; the transactional arrival rate is scaled by `1 + txn_rate`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EstimationNoise {
    /// Maximum relative error on each job's remaining work (0.2 = ±20%).
    pub job_work: f64,
    /// Relative error on transactional arrival rates (may be negative).
    pub txn_rate: f64,
}

impl EstimationNoise {
    /// No estimation error (the default).
    pub const NONE: Self = Self {
        job_work: 0.0,
        txn_rate: 0.0,
    };

    /// Deterministic per-job bias factor in `[1 - job_work, 1 + job_work]`.
    fn work_factor(&self, app: AppId) -> f64 {
        if self.job_work == 0.0 {
            return 1.0;
        }
        // Knuth multiplicative hash → uniform-ish in [-1, 1].
        let h = (app.index() as u64).wrapping_mul(2_654_435_761) % 10_000;
        let unit = (h as f64) / 5_000.0 - 1.0;
        1.0 + self.job_work * unit
    }
}

impl SimConfig {
    /// A configuration with the paper's defaults: 600 s control cycle,
    /// measured VM costs, APC scheduling with between-cycle advice.
    pub fn apc_default() -> Self {
        Self {
            cycle: SimDuration::from_secs(600.0),
            horizon: None,
            costs: VmCostModel::default(),
            scheduler: SchedulerKind::Apc {
                config: ApcConfig::default(),
                advice_between_cycles: true,
            },
            batch_nodes: None,
            static_txn_nodes: None,
            noise: EstimationNoise::NONE,
            profile_from_history: false,
            node_failures: Vec::new(),
            estimate_txn_demand: false,
            record_placements: false,
            actuation: ActuationConfig::default(),
            trace: TraceConfig::default(),
        }
    }

    /// Same timing/costs but FCFS scheduling.
    pub fn fcfs_default() -> Self {
        Self {
            scheduler: SchedulerKind::Fcfs,
            ..Self::apc_default()
        }
    }

    /// Same timing/costs but EDF scheduling.
    pub fn edf_default() -> Self {
        Self {
            scheduler: SchedulerKind::Edf,
            ..Self::apc_default()
        }
    }
}

#[derive(Debug)]
struct Job {
    spec: JobSpec,
    profile: Arc<dynaplace_batch::job::JobProfile>,
    state: JobState,
    node: Option<NodeId>,
    allocation: CpuSpeed,
    /// Progress is frozen until this instant (VM operation in flight).
    transition_until: SimTime,
    /// Invalidates stale completion events.
    generation: u64,
    arrived: bool,
    ever_started: bool,
    /// Concurrent task instances (1 for ordinary jobs).
    parallelism: u32,
}

impl Job {
    fn is_live(&self) -> bool {
        self.arrived && self.state.status().is_live()
    }

    fn is_running(&self) -> bool {
        self.arrived && self.state.status() == JobStatus::Running
    }
}

/// A managed transactional application.
struct TxnApp {
    demand_per_request: f64,
    floor: SimDuration,
    goal: ResponseTimeGoal,
    pattern: Box<dyn ArrivalPattern + Send>,
    router: RequestRouter,
    /// Online per-request demand estimator (work profiler, §3.1).
    profiler: dynaplace_txn::profiler::WorkProfiler,
    /// Observation counter driving the deterministic measurement error.
    observations: u64,
}

impl std::fmt::Debug for TxnApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnApp")
            .field("demand_per_request", &self.demand_per_request)
            .field("floor", &self.floor)
            .finish_non_exhaustive()
    }
}

/// The simulator.
///
/// Build with [`Simulation::new`], register workloads with
/// [`Simulation::add_job`] / [`Simulation::add_txn`], then call
/// [`Simulation::run`].
#[derive(Debug)]
pub struct Simulation {
    cluster: Cluster,
    apps: AppSet,
    config: SimConfig,
    jobs: BTreeMap<AppId, Job>,
    txns: BTreeMap<AppId, TxnApp>,
    /// The *actual* placement: what the (fallible) actuation layer has
    /// really applied to the cluster.
    placement: Placement,
    load: LoadDistribution,
    /// The *desired* placement: the controller's latest decision. Equal
    /// to `placement` whenever every operation actuated; the
    /// reconciliation loop works off the diff when they diverge.
    desired: Placement,
    /// The load distribution the controller intended for `desired`.
    desired_load: LoadDistribution,
    /// Backoff / quarantine bookkeeping of the actuation layer.
    actuation: ActuationState,
    /// Consecutive control cycles that started with unreconciled actions
    /// (drives the `fill_only` fallback).
    stalled_cycles: u32,
    now: SimTime,
    last_advance: SimTime,
    events: EventQueue,
    metrics: RunMetrics,
    live_jobs: usize,
    class_profiler: JobClassProfiler,
    /// The cluster as the schedulers see it (failed nodes zeroed).
    effective_cluster: Cluster,
    failed_nodes: std::collections::BTreeSet<NodeId>,
    /// Decision-provenance sink shared with the optimizer; a [`NoopSink`]
    /// unless [`SimConfig::trace`] set a path or a test installed one via
    /// [`Simulation::set_trace_sink`].
    trace: Arc<dyn TraceSink>,
    /// The config-derived JSONL sink and its flush path, when tracing to
    /// a file.
    trace_file: Option<FileSink>,
    /// Control cycles started so far (the trace's cycle index).
    cycle_index: u64,
}

impl Simulation {
    /// Creates an empty simulation over `cluster`.
    pub fn new(cluster: Cluster, config: SimConfig) -> Self {
        let (trace, trace_file): (Arc<dyn TraceSink>, Option<FileSink>) = match &config.trace.path {
            Some(path) => {
                let sink = Arc::new(JsonlSink::new(config.trace.level));
                (
                    Arc::clone(&sink) as Arc<dyn TraceSink>,
                    Some((sink, path.clone())),
                )
            }
            None => (Arc::new(NoopSink), None),
        };
        Self {
            trace,
            trace_file,
            cycle_index: 0,
            effective_cluster: cluster.clone(),
            cluster,
            apps: AppSet::new(),
            config,
            jobs: BTreeMap::new(),
            txns: BTreeMap::new(),
            placement: Placement::new(),
            load: LoadDistribution::new(),
            desired: Placement::new(),
            desired_load: LoadDistribution::new(),
            actuation: ActuationState::new(),
            stalled_cycles: 0,
            now: SimTime::ZERO,
            last_advance: SimTime::ZERO,
            events: EventQueue::new(),
            metrics: RunMetrics::default(),
            live_jobs: 0,
            class_profiler: JobClassProfiler::new(3),
            failed_nodes: std::collections::BTreeSet::new(),
        }
    }

    /// The cluster under simulation.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Enables (or disables) per-cycle placement recording after
    /// construction — scenario files have no switch for it, but the
    /// golden regression tests need the records.
    pub fn record_placements(&mut self, on: bool) {
        self.config.record_placements = on;
    }

    /// Installs a decision-provenance sink, replacing whatever
    /// [`SimConfig::trace`] configured. The caller keeps its own handle
    /// (e.g. an `Arc<JsonlSink>`) to inspect the buffered events; sinks
    /// installed this way are *not* flushed to [`SimConfig::trace`]'s
    /// path at end of run.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.trace = sink;
        self.trace_file = None;
    }

    /// Submits a batch job described by `spec`; optionally pinned to a
    /// subset of nodes. Returns the application id assigned to it.
    ///
    /// The job's [`ApplicationSpec`] is derived from its profile: memory
    /// is the maximum over stages (conservative; the per-stage value
    /// drives CPU bounds at runtime), speed cap is the maximum stage
    /// speed.
    pub fn add_job(&mut self, build: impl FnOnce(AppId) -> JobSpec) -> AppId {
        self.add_job_pinned(build, None)
    }

    /// Like [`Simulation::add_job`] with a node restriction.
    pub fn add_job_pinned(
        &mut self,
        build: impl FnOnce(AppId) -> JobSpec,
        allowed: Option<Vec<NodeId>>,
    ) -> AppId {
        // Reserve the id first so the spec can reference it.
        let provisional = AppId::new(self.apps.len() as u32);
        let spec = build(provisional);
        assert_eq!(spec.app(), provisional, "job spec must use the given id");
        let memory = spec
            .profile()
            .stages()
            .iter()
            .map(|s| s.memory())
            .fold(Memory::ZERO, Memory::max);
        let max_speed = spec
            .profile()
            .stages()
            .iter()
            .map(|s| s.max_speed())
            .fold(CpuSpeed::ZERO, CpuSpeed::max);
        let mut app_spec = ApplicationSpec::batch(memory, max_speed);
        if let Some(nodes) = allowed {
            app_spec = app_spec.with_allowed_nodes(nodes);
        }
        let app = self.apps.add(app_spec);
        debug_assert_eq!(app, provisional);
        let profile = Arc::new(spec.profile().clone());
        let arrival = spec.arrival();
        self.jobs.insert(
            app,
            Job {
                spec,
                profile,
                state: JobState::new(),
                node: None,
                allocation: CpuSpeed::ZERO,
                transition_until: SimTime::ZERO,
                generation: 0,
                arrived: false,
                ever_started: false,
                parallelism: 1,
            },
        );
        self.events.push(arrival, EventKind::JobArrival(app));
        app
    }

    /// Submits a *malleable parallel* job with up to `tasks` concurrent
    /// task instances, each pinning the profile's stage memory and
    /// running at up to the stage's maximum speed; the job progresses at
    /// the sum of its placed tasks' speeds. Only supported under the APC
    /// scheduler (the FCFS/EDF baselines model single-instance jobs).
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is zero or the scheduler is a baseline.
    pub fn add_parallel_job(&mut self, tasks: u32, build: impl FnOnce(AppId) -> JobSpec) -> AppId {
        assert!(tasks > 0, "tasks must be positive");
        assert!(
            matches!(self.config.scheduler, SchedulerKind::Apc { .. }),
            "parallel jobs require the APC scheduler"
        );
        let provisional = AppId::new(self.apps.len() as u32);
        let spec = build(provisional);
        assert_eq!(spec.app(), provisional, "job spec must use the given id");
        let memory = spec
            .profile()
            .stages()
            .iter()
            .map(|s| s.memory())
            .fold(Memory::ZERO, Memory::max);
        let per_task_speed = spec
            .profile()
            .stages()
            .iter()
            .map(|s| s.max_speed())
            .fold(CpuSpeed::ZERO, CpuSpeed::max);
        let app = self.apps.add(ApplicationSpec::batch_parallel(
            memory,
            per_task_speed,
            tasks,
        ));
        debug_assert_eq!(app, provisional);
        let profile = Arc::new(spec.profile().clone());
        let arrival = spec.arrival();
        self.jobs.insert(
            app,
            Job {
                spec,
                profile,
                state: JobState::new(),
                node: None,
                allocation: CpuSpeed::ZERO,
                transition_until: SimTime::ZERO,
                generation: 0,
                arrived: false,
                ever_started: false,
                parallelism: tasks,
            },
        );
        self.events.push(arrival, EventKind::JobArrival(app));
        app
    }

    /// Registers a transactional application. `allowed` optionally pins
    /// its instances (used for static partitioning).
    #[allow(clippy::too_many_arguments)]
    pub fn add_txn(
        &mut self,
        memory_per_instance: Memory,
        max_instances: u32,
        demand_per_request: f64,
        floor: SimDuration,
        goal: ResponseTimeGoal,
        pattern: Box<dyn ArrivalPattern + Send>,
        allowed: Option<Vec<NodeId>>,
    ) -> AppId {
        let mut spec = ApplicationSpec::transactional(
            memory_per_instance,
            CpuSpeed::from_mhz(f64::INFINITY),
            max_instances,
        );
        if let Some(nodes) = allowed {
            spec = spec.with_allowed_nodes(nodes);
        }
        let app = self.apps.add(spec);
        self.txns.insert(
            app,
            TxnApp {
                demand_per_request,
                floor,
                goal,
                pattern,
                router: RequestRouter::default(),
                profiler: dynaplace_txn::profiler::WorkProfiler::new(1, 32),
                observations: 0,
            },
        );
        app
    }

    /// Runs the simulation to completion (or the horizon) and returns
    /// the recorded metrics.
    pub fn run(mut self) -> RunMetrics {
        // First control cycle fires immediately (places any jobs that
        // arrived at t = 0 and the transactional applications).
        self.events.push(SimTime::ZERO, EventKind::ControlCycle);
        if let Some(h) = self.config.horizon {
            self.events.push(SimTime::ZERO + h, EventKind::Horizon);
        }
        for outage in self.config.node_failures.clone() {
            self.events.push(
                SimTime::ZERO + outage.at,
                EventKind::NodeFailure(outage.node),
            );
            if let Some(duration) = outage.duration {
                self.events.push(
                    SimTime::ZERO + outage.at + duration,
                    EventKind::NodeRecovery(outage.node),
                );
            }
        }
        self.live_jobs = 0;

        while let Some((time, kind)) = self.events.pop() {
            self.now = time;
            match kind {
                EventKind::Horizon => break,
                EventKind::JobArrival(app) => self.on_arrival(app),
                EventKind::JobCompletion { app, generation } => self.on_completion(app, generation),
                EventKind::NodeFailure(node) => self.on_node_failure(node),
                EventKind::NodeRecovery(node) => self.on_node_recovery(node),
                EventKind::ActuationRetry => self.on_actuation_retry(),
                EventKind::ControlCycle => {
                    self.on_cycle();
                    // Keep cycling while work remains (or a horizon will
                    // cut us off).
                    let pending_arrivals = self.jobs.values().any(|j| !j.arrived);
                    if self.live_jobs > 0
                        || pending_arrivals
                        || (self.config.horizon.is_some() && !self.txns.is_empty())
                    {
                        self.events
                            .push(self.now + self.config.cycle, EventKind::ControlCycle);
                    }
                }
            }
        }
        if let Some((sink, path)) = &self.trace_file {
            if let Err(e) = sink.write_to(path) {
                eprintln!("warning: failed to write trace to {path}: {e}");
            }
        }
        self.metrics
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_arrival(&mut self, app: AppId) {
        self.advance_progress();
        let Some(job) = self.jobs.get_mut(&app) else {
            // An arrival event for an unknown job: count and skip rather
            // than taking the whole run down.
            self.metrics.actuation.invariant_skips += 1;
            return;
        };
        job.arrived = true;
        self.live_jobs += 1;
        self.between_cycle_advice();
    }

    fn on_completion(&mut self, app: AppId, generation: u64) {
        {
            let job = &self.jobs[&app];
            if !job.is_running() || job.generation != generation {
                return; // stale projection (or completed inline already)
            }
        }
        // advance_progress completes this job (and any peer finishing at
        // the same instant) inline.
        self.advance_progress();
        if let Some(job) = self.jobs.get_mut(&app) {
            if job.is_running() {
                // Numerical drift: reschedule precisely.
                let remaining = job.state.remaining_work(&job.profile);
                job.generation += 1;
                if job.allocation.as_mhz() > 0.0 && remaining.as_mcycles() > 0.0 {
                    let t = self.now.max(job.transition_until) + remaining / job.allocation;
                    self.events.push(
                        t,
                        EventKind::JobCompletion {
                            app,
                            generation: job.generation,
                        },
                    );
                }
                return;
            }
        }
        self.between_cycle_advice();
    }

    /// Rebuilds the scheduler-visible cluster from the real one with every
    /// currently failed node's capacity zeroed.
    fn rebuild_effective(&mut self) {
        let mut rebuilt = Cluster::new();
        for (id, spec) in self.cluster.iter() {
            if self.failed_nodes.contains(&id) {
                rebuilt.add_node(
                    dynaplace_model::node::NodeSpec::new(CpuSpeed::ZERO, Memory::ZERO)
                        .with_name(format!("{id} (failed)")),
                );
            } else {
                rebuilt.add_node(spec.clone());
            }
        }
        self.effective_cluster = rebuilt;
    }

    fn on_node_failure(&mut self, node: NodeId) {
        self.advance_progress();
        if !self.failed_nodes.insert(node) {
            return; // already failed
        }
        // Zero the node's capacity in the scheduler-visible cluster.
        self.rebuild_effective();
        // Evict everything on the failed node: jobs suspend (keeping
        // their completed work), transactional instances just vanish.
        let victims: Vec<AppId> = self.placement.apps_on(node).map(|(app, _)| app).collect();
        for app in victims {
            while self.placement.count(app, node) > 0 {
                if self.placement.remove(app, node).is_err() {
                    self.metrics.actuation.invariant_skips += 1;
                    break;
                }
            }
            self.load.set(app, node, CpuSpeed::ZERO);
            if let Some(job) = self.jobs.get_mut(&app) {
                if job.is_running() && !self.placement.is_placed(app) {
                    job.state.suspend();
                    job.node = None;
                    self.metrics.changes.suspends += 1;
                }
                job.allocation = self.load.app_total(app);
            }
        }
        // The controller's standing decision can no longer mean the dead
        // node; purge it so a later recovery does not resurrect stale
        // placement intents.
        let stale: Vec<AppId> = self.desired.apps_on(node).map(|(app, _)| app).collect();
        for app in stale {
            while self.desired.count(app, node) > 0 {
                if self.desired.remove(app, node).is_err() {
                    self.metrics.actuation.invariant_skips += 1;
                    break;
                }
            }
            self.desired_load.set(app, node, CpuSpeed::ZERO);
        }
        let ids: Vec<AppId> = self.jobs.keys().copied().collect();
        for app in ids {
            self.reschedule_completion(app);
        }
        // Let the scheduler react immediately.
        self.between_cycle_advice();
    }

    fn on_node_recovery(&mut self, node: NodeId) {
        self.advance_progress();
        if !self.failed_nodes.remove(&node) {
            return; // never failed (or recovered already)
        }
        self.rebuild_effective();
        // The capacity is back; suspended jobs resume through the normal
        // scheduling path (advice pass now, full optimization next cycle).
        self.between_cycle_advice();
    }

    fn on_actuation_retry(&mut self) {
        self.advance_progress();
        self.reconcile();
    }

    /// Whether `app` still participates in placement (an unfinished job or
    /// a registered transactional application).
    fn app_is_live(&self, app: AppId) -> bool {
        self.jobs
            .get(&app)
            .map(|j| j.is_live())
            .unwrap_or_else(|| self.txns.contains_key(&app))
    }

    /// The desired placement restricted to what is still actuatable: live
    /// applications on live nodes.
    fn surviving_desired(&self) -> Placement {
        self.desired
            .iter()
            .filter(|&(app, node, _)| !self.failed_nodes.contains(&node) && self.app_is_live(app))
            .collect()
    }

    /// Size of the diff between the actual placement and the surviving
    /// desired placement: the operations reconciliation still owes. Always
    /// zero with infallible actuation.
    fn pending_actions(&self) -> usize {
        self.placement.diff(&self.surviving_desired()).len()
    }

    /// Drives the actual placement toward the (surviving) desired one by
    /// re-issuing the missing operations through the actuation layer.
    /// Runs on every actuation-retry event; a no-op when nothing diverged.
    fn reconcile(&mut self) {
        match self.config.scheduler {
            SchedulerKind::Apc { .. } => {
                let target = self.surviving_desired();
                let actions = self.placement.diff(&target);
                if actions.is_empty() {
                    return;
                }
                let traced = self.trace.wants(TraceLevel::Decisions);
                let cycle = self.cycle_index.saturating_sub(1);
                if traced {
                    self.trace.record(&TraceEvent::ReconcileDiff {
                        time: self.now.as_secs(),
                        cycle,
                        pending: actions.len(),
                    });
                }
                let mut load = LoadDistribution::new();
                for (app, node, _count) in target.iter() {
                    let v = self.desired_load.get(app, node);
                    if v.as_mhz() > 0.0 {
                        load.set(app, node, v);
                    }
                }
                let started = Instant::now();
                self.apply_transition(target, load, &actions);
                if traced {
                    self.trace.record(&TraceEvent::PhaseSpan {
                        time: self.now.as_secs(),
                        cycle,
                        phase: Phase::Reconcile,
                        wall_secs: started.elapsed().as_secs_f64(),
                    });
                }
            }
            SchedulerKind::Fcfs | SchedulerKind::Edf => self.run_baseline(),
        }
    }

    /// Records one (throughput, CPU-used) observation per transactional
    /// application into its work profiler — the measurement the real
    /// router takes every interval (§3.1). A deterministic ±2%
    /// alternating error keeps the regression honest.
    fn observe_txn_demand(&mut self) {
        let placement = &self.placement;
        let load = &self.load;
        let now = self.now;
        for (&app, txn) in self.txns.iter_mut() {
            let rate = txn.pattern.rate_at(now);
            let allocations: Vec<CpuSpeed> = placement
                .instances_of(app)
                .map(|(node, _)| load.get(app, node))
                .collect();
            let workload = TxnWorkload::new(rate, txn.demand_per_request, txn.floor);
            let outcome = txn.router.route(&workload, &allocations);
            if outcome.admitted_rate <= 0.0 {
                continue; // nothing served: no signal this interval
            }
            let error = if txn.observations % 2 == 0 {
                0.02
            } else {
                -0.02
            };
            txn.observations += 1;
            txn.profiler
                .record(dynaplace_txn::profiler::UtilizationSample {
                    throughput: vec![outcome.admitted_rate],
                    cpu_used_mhz: outcome.admitted_rate * txn.demand_per_request * (1.0 + error),
                });
        }
    }

    /// Runs the between-event scheduling reaction: a start-only advice
    /// pass under APC (when enabled), a full reschedule under the
    /// baselines.
    fn between_cycle_advice(&mut self) {
        match self.config.scheduler.clone() {
            SchedulerKind::Apc {
                config,
                advice_between_cycles,
            } => {
                if advice_between_cycles {
                    let sink = Arc::clone(&self.trace);
                    let outcome = {
                        let problem = self.build_problem();
                        fill_only_traced(&problem, &config, &*sink)
                    };
                    self.apply_outcome(outcome);
                }
            }
            SchedulerKind::Fcfs | SchedulerKind::Edf => self.run_baseline(),
        }
    }

    /// Marks a running job as finished now: records the completion and
    /// releases its resources.
    fn finish_job(&mut self, app: AppId) {
        let Some(job) = self.jobs.get_mut(&app) else {
            self.metrics.actuation.invariant_skips += 1;
            return;
        };
        debug_assert!(job.is_running());
        job.state.complete(self.now);
        job.allocation = CpuSpeed::ZERO;
        job.node = None;
        self.live_jobs -= 1;
        let goal = job.spec.goal();
        let best = job.profile.min_execution_time();
        let record = CompletionRecord {
            app,
            arrival: job.spec.arrival(),
            completion: self.now,
            deadline: goal.deadline(),
            distance: goal.distance_to_deadline(self.now),
            rp: goal.performance_at(self.now),
            goal_factor: goal.relative_goal().as_secs() / best.as_secs(),
            met_deadline: self.now <= goal.deadline(),
        };
        self.metrics.completions.push(record);
        if let Some(class) = self.jobs[&app].spec.class() {
            let total = self.jobs[&app].profile.total_work();
            self.class_profiler.record_completion(class, total);
        }
        self.placement.evict(app);
        self.load.evict(app);
        // Completed jobs leave the control loop entirely: no stale desired
        // cells, no pending retries, no quarantine bookkeeping.
        self.desired.evict(app);
        self.desired_load.evict(app);
        self.actuation.forget_app(app);
    }

    fn on_cycle(&mut self) {
        self.advance_progress();
        let cycle = self.cycle_index;
        self.cycle_index += 1;
        let traced = self.trace.wants(TraceLevel::Decisions);
        if traced {
            self.trace.record(&TraceEvent::CycleStart {
                time: self.now.as_secs(),
                cycle,
            });
        }
        if self.config.estimate_txn_demand {
            self.observe_txn_demand();
        }
        let mut compute_secs = 0.0;
        match self.config.scheduler.clone() {
            SchedulerKind::Apc { config, .. } => {
                // When several consecutive cycles started with desired ≠
                // actual, a full re-optimization would pile yet more
                // operations onto an actuation layer that is already
                // struggling; fall back to a non-disruptive fill pass for
                // one cycle and let reconciliation drain the backlog.
                if self.pending_actions() > 0 {
                    self.stalled_cycles += 1;
                } else {
                    self.stalled_cycles = 0;
                }
                let fallback = self.config.actuation.fallback_after > 0
                    && self.stalled_cycles >= self.config.actuation.fallback_after;
                let sink = Arc::clone(&self.trace);
                let started = Instant::now();
                let outcome = {
                    let problem = self.build_problem();
                    if fallback {
                        fill_only_traced(&problem, &config, &*sink)
                    } else {
                        place_traced(&problem, &config, &*sink)
                    }
                };
                compute_secs = started.elapsed().as_secs_f64();
                if traced {
                    self.trace.record(&TraceEvent::PhaseSpan {
                        time: self.now.as_secs(),
                        cycle,
                        phase: Phase::Optimize,
                        wall_secs: compute_secs,
                    });
                }
                if fallback {
                    self.metrics.actuation.fill_only_fallbacks += 1;
                    self.stalled_cycles = 0;
                }
                let actuate_started = Instant::now();
                self.apply_outcome(outcome);
                if traced {
                    self.trace.record(&TraceEvent::PhaseSpan {
                        time: self.now.as_secs(),
                        cycle,
                        phase: Phase::Actuate,
                        wall_secs: actuate_started.elapsed().as_secs_f64(),
                    });
                }
            }
            SchedulerKind::Fcfs | SchedulerKind::Edf => {
                // Baselines are event-driven; the cycle is only a metric
                // sampling tick. Still run the scheduler to pick up any
                // state change (idempotent when nothing changed).
                self.run_baseline();
            }
        }
        let sample_started = Instant::now();
        self.record_sample(compute_secs);
        if traced {
            self.trace.record(&TraceEvent::PhaseSpan {
                time: self.now.as_secs(),
                cycle,
                phase: Phase::Sample,
                wall_secs: sample_started.elapsed().as_secs_f64(),
            });
        }
    }

    // ------------------------------------------------------------------
    // Progress accounting
    // ------------------------------------------------------------------

    /// Advances every running job's consumed work from `last_advance` to
    /// `now` at its current allocation, excluding in-flight transition
    /// time.
    fn advance_progress(&mut self) {
        let from = self.last_advance;
        let to = self.now;
        if to <= from {
            self.last_advance = to.max(from);
            return;
        }
        let mut exhausted = Vec::new();
        for (&app, job) in self.jobs.iter_mut() {
            if !job.is_running() || job.allocation.is_zero() {
                continue;
            }
            let start = from.max(job.transition_until);
            if to > start {
                let done = job.allocation * (to - start);
                job.state.advance(&job.profile, done);
            }
            let remaining = job.state.remaining_work(&job.profile);
            if remaining.as_mcycles() <= COMPLETION_EPS {
                // Snap to done and complete inline, so jobs finishing at
                // the same instant as the current event are never seen
                // as live-with-zero-work by the decision makers.
                job.state.advance(&job.profile, remaining);
                exhausted.push(app);
            }
        }
        self.last_advance = to;
        for app in exhausted {
            self.finish_job(app);
        }
    }

    /// Bumps a job's generation and schedules its projected completion.
    fn reschedule_completion(&mut self, app: AppId) {
        let Some(job) = self.jobs.get_mut(&app) else {
            self.metrics.actuation.invariant_skips += 1;
            return;
        };
        job.generation += 1;
        if !job.is_running() || job.allocation.is_zero() {
            return;
        }
        let remaining = job.state.remaining_work(&job.profile);
        if remaining.is_zero() {
            return;
        }
        let t = self.now.max(job.transition_until) + remaining / job.allocation;
        self.events.push(
            t,
            EventKind::JobCompletion {
                app,
                generation: job.generation,
            },
        );
    }

    // ------------------------------------------------------------------
    // Decision making
    // ------------------------------------------------------------------

    fn build_problem(&self) -> PlacementProblem<'_> {
        let mut workloads = BTreeMap::new();
        for (&app, job) in &self.jobs {
            if !job.is_live() || job.state.remaining_work(&job.profile).as_mcycles() <= 1e-6 {
                // Jobs whose completion event is pending at this very
                // instant are no longer placement-relevant.
                continue;
            }
            let delay = if job.is_running() {
                SimDuration::ZERO
            } else {
                self.config.cycle
            };
            // The controller sees the (possibly misestimated) profile;
            // scaling consumed work by the same factor keeps the fraction
            // done consistent while the remaining work carries the error.
            let mut factor = self.config.noise.work_factor(app);
            let mut measured_consumed = false;
            if self.config.profile_from_history {
                if let Some(est) = job
                    .spec
                    .class()
                    .and_then(|c| self.class_profiler.estimate(c))
                {
                    // Present the class-mean total work. Consumed work is
                    // *measured* (not estimated), so scale the profile
                    // only: factor = estimate / truth, floored so the
                    // presented job is never already "done".
                    let truth = job.profile.total_work().as_mcycles();
                    let consumed = job.state.consumed().as_mcycles();
                    let est_total = est.mean_work().as_mcycles().max(consumed * 1.01 + 1.0);
                    factor = est_total / truth;
                    measured_consumed = true;
                }
            }
            let (profile, consumed) = if factor == 1.0 {
                (Arc::clone(&job.profile), job.state.consumed())
            } else {
                let stages = job
                    .profile
                    .stages()
                    .iter()
                    .map(|s| {
                        dynaplace_batch::job::JobStage::new(
                            s.work() * factor,
                            s.max_speed(),
                            s.min_speed(),
                            s.memory(),
                        )
                    })
                    .collect();
                let consumed = if measured_consumed {
                    job.state.consumed()
                } else {
                    job.state.consumed() * factor
                };
                (
                    Arc::new(dynaplace_batch::job::JobProfile::new(stages)),
                    consumed,
                )
            };
            workloads.insert(
                app,
                WorkloadModel::Batch(
                    JobSnapshot::new(app, job.spec.goal(), profile, consumed, delay)
                        .with_parallelism(job.parallelism),
                ),
            );
        }
        for (&app, txn) in &self.txns {
            if self.config.static_txn_nodes.is_some() {
                continue; // statically partitioned: not managed
            }
            let rate = txn.pattern.rate_at(self.now) * (1.0 + self.config.noise.txn_rate);
            let demand = if self.config.estimate_txn_demand {
                txn.profiler
                    .estimate_single()
                    .ok()
                    .filter(|d| *d > 0.0)
                    .unwrap_or(txn.demand_per_request)
            } else {
                txn.demand_per_request
            };
            workloads.insert(
                app,
                WorkloadModel::Transactional(TxnPerformanceModel::new(
                    TxnWorkload::new(rate.max(0.0), demand, txn.floor),
                    txn.goal,
                )),
            );
        }
        PlacementProblem::new(
            &self.effective_cluster,
            &self.apps,
            workloads,
            &self.placement,
            self.now,
            self.config.cycle,
            self.actuation
                .quarantined_pairs(self.now)
                .into_iter()
                .collect(),
        )
        .expect("engine state always yields a well-formed problem")
    }

    fn apply_outcome(&mut self, outcome: PlacementOutcome) {
        if outcome.timed_out {
            self.metrics.actuation.deadline_truncations += 1;
        }
        let actions = outcome.actions.clone();
        self.apply_transition(outcome.placement, outcome.score.load, &actions);
    }

    /// Reverse-applies one control action onto `achieved`: the placement
    /// looks as if the action was never issued. Cells kept alive by a
    /// reverted stop (or migrate source) are recorded in `kept` so the
    /// load merge can restore their old consumption.
    fn reverse_apply(
        achieved: &mut Placement,
        action: &PlacementAction,
        kept: &mut std::collections::BTreeSet<(AppId, NodeId)>,
        counters: &mut crate::metrics::ActuationCounters,
    ) {
        match *action {
            PlacementAction::Start { app, node } => {
                if achieved.remove(app, node).is_err() {
                    counters.invariant_skips += 1;
                }
            }
            PlacementAction::Stop { app, node } => {
                achieved.place(app, node);
                kept.insert((app, node));
            }
            PlacementAction::Migrate { app, from, to } => {
                if achieved.remove(app, to).is_err() {
                    counters.invariant_skips += 1;
                }
                achieved.place(app, from);
                kept.insert((app, from));
            }
        }
    }

    /// Applies a new placement + load through the (possibly fallible)
    /// actuation layer: resolves each VM operation, counts the ones that
    /// actually applied, charges transition latencies, reverse-applies
    /// failed/deferred operations so the *actual* placement keeps the old
    /// state, and derives every job's lifecycle from its actual placement
    /// *membership* (which also covers malleable parallel jobs whose task
    /// count changes without the job stopping).
    ///
    /// With the default [`ActuationConfig`] every operation applies with
    /// exactly the cost model's latency and this reduces to the
    /// infallible transition: `placement = target`, `load` verbatim.
    fn apply_transition(
        &mut self,
        target: Placement,
        load: LoadDistribution,
        actions: &[PlacementAction],
    ) {
        // The controller's decision is the *desired* state verbatim; the
        // rest of this function decides how much of it actually lands.
        self.desired = target.clone();
        self.desired_load = load.clone();

        let acfg = self.config.actuation;
        let costs = self.config.costs;
        let traced = self.trace.wants(TraceLevel::Decisions);
        let trace_cycle = self.cycle_index.saturating_sub(1);

        // Pass 1: resolve every action against the actuation layer, before
        // any job-state changes (the boot-vs-resume distinction needs the
        // old `ever_started`). Failed and backoff-deferred operations are
        // reverse-applied onto `achieved`.
        let mut achieved = target;
        let mut latency: BTreeMap<AppId, SimDuration> = BTreeMap::new();
        let mut kept: std::collections::BTreeSet<(AppId, NodeId)> = Default::default();
        let mut diverged = false;
        // Applied instance-adding actions, in order, for the feasibility
        // rollback below: (action, counted as resume).
        let mut applied_adds: Vec<(PlacementAction, bool)> = Vec::new();

        for action in actions {
            let app = action.app();
            let Some(job) = self.jobs.get(&app) else {
                continue; // transactional instances reconfigure freely
            };
            let footprint = job
                .state
                .current_memory(&job.profile)
                .unwrap_or(Memory::ZERO);
            let (op, op_node) = match *action {
                PlacementAction::Start { node, .. } => {
                    let op = if job.ever_started {
                        VmOperation::Resume
                    } else {
                        VmOperation::Boot
                    };
                    (op, node)
                }
                PlacementAction::Stop { node, .. } => (VmOperation::Suspend, node),
                PlacementAction::Migrate { to, .. } => (VmOperation::Migrate, to),
            };
            // Backoff / quarantine gate: the operation is not even issued
            // this round; a retry event is already scheduled.
            if self.actuation.is_blocked(app, op_node, self.now) {
                Self::reverse_apply(
                    &mut achieved,
                    action,
                    &mut kept,
                    &mut self.metrics.actuation,
                );
                self.metrics.actuation.deferrals += 1;
                if traced {
                    self.trace.record(&TraceEvent::OpDeferred {
                        time: self.now.as_secs(),
                        cycle: trace_cycle,
                        app,
                        node: op_node,
                        reason: "backoff",
                    });
                }
                diverged = true;
                continue;
            }
            let attempt = self.actuation.next_attempt(app, op_node);
            let outcome = acfg.resolve(
                &costs,
                op,
                footprint,
                OpAttempt {
                    app,
                    node: op_node,
                    attempt,
                },
                self.now,
            );
            if traced {
                self.trace.record(&TraceEvent::OpResolved {
                    time: self.now.as_secs(),
                    cycle: trace_cycle,
                    app,
                    node: op_node,
                    op: op.name(),
                    attempt: u64::from(attempt),
                    outcome: match outcome {
                        OpOutcome::Applied(_) => "applied",
                        OpOutcome::Failed(_) => "failed",
                        OpOutcome::TimedOut(_) => "timed_out",
                    },
                    latency_secs: outcome.latency().as_secs(),
                });
            }
            if outcome.applied() {
                let lat = match op {
                    // Suspends overlap the cycle boundary for free, as in
                    // the infallible engine.
                    VmOperation::Suspend => SimDuration::ZERO,
                    _ => outcome.latency(),
                };
                match op {
                    VmOperation::Boot => self.metrics.changes.starts += 1,
                    VmOperation::Resume => self.metrics.changes.resumes += 1,
                    VmOperation::Suspend => self.metrics.changes.suspends += 1,
                    VmOperation::Migrate => self.metrics.changes.migrations += 1,
                }
                if attempt > 1 {
                    self.metrics.actuation.retries += 1;
                }
                self.actuation.record_success(app, op_node);
                if !matches!(op, VmOperation::Suspend) {
                    applied_adds.push((*action, matches!(op, VmOperation::Resume)));
                }
                let entry = latency.entry(app).or_insert(SimDuration::ZERO);
                *entry = entry.max(lat);
            } else {
                // The operation burned its latency but the placement is
                // unchanged; back off and retry via reconciliation.
                Self::reverse_apply(
                    &mut achieved,
                    action,
                    &mut kept,
                    &mut self.metrics.actuation,
                );
                diverged = true;
                match outcome {
                    OpOutcome::Failed(_) => self.metrics.actuation.failed_ops += 1,
                    OpOutcome::TimedOut(_) => self.metrics.actuation.timed_out_ops += 1,
                    OpOutcome::Applied(_) => unreachable!("handled above"),
                }
                let entry = latency.entry(app).or_insert(SimDuration::ZERO);
                *entry = entry.max(outcome.latency());
                let detected = self.now + outcome.latency();
                let disp = self.actuation.record_failure(&acfg, app, op_node, detected);
                if disp.quarantined {
                    self.metrics.actuation.quarantines += 1;
                    if traced {
                        self.trace.record(&TraceEvent::Quarantined {
                            time: self.now.as_secs(),
                            cycle: trace_cycle,
                            app,
                            node: op_node,
                        });
                    }
                }
                self.events.push(disp.retry_at, EventKind::ActuationRetry);
            }
        }

        // An instance kept alive by a failed stop can make its node
        // infeasible for adds that *did* apply (in a real cluster the
        // hypervisor would refuse them: not enough free memory, or an
        // anti-affinity conflict with the instance that was supposed to be
        // gone). Roll back the most recent applied add on the offending
        // node until the placement is consistent; reconciliation re-issues
        // the rolled-back operations once the node drains.
        if !kept.is_empty() {
            while let Err(err) = achieved.validate(&self.effective_cluster, &self.apps) {
                use dynaplace_model::error::ModelError;
                let node = match err {
                    ModelError::MemoryExceeded { node } => node,
                    ModelError::AntiAffinityViolated { node, .. } => node,
                    _ => {
                        self.metrics.actuation.invariant_skips += 1;
                        break;
                    }
                };
                let Some(pos) = applied_adds.iter().rposition(|(a, _)| match *a {
                    PlacementAction::Start { node: n, .. } => n == node,
                    PlacementAction::Migrate { to, .. } => to == node,
                    PlacementAction::Stop { .. } => false,
                }) else {
                    self.metrics.actuation.invariant_skips += 1;
                    break;
                };
                let (rolled, resumed) = applied_adds.remove(pos);
                match rolled {
                    PlacementAction::Start { app, node } => {
                        if achieved.remove(app, node).is_err() {
                            self.metrics.actuation.invariant_skips += 1;
                        }
                        if resumed {
                            self.metrics.changes.resumes -= 1;
                        } else {
                            self.metrics.changes.starts -= 1;
                        }
                    }
                    PlacementAction::Migrate { app, from, to } => {
                        if achieved.remove(app, to).is_err() {
                            self.metrics.actuation.invariant_skips += 1;
                        }
                        achieved.place(app, from);
                        kept.insert((app, from));
                        self.metrics.changes.migrations -= 1;
                    }
                    PlacementAction::Stop { .. } => unreachable!("stops never add instances"),
                }
                self.metrics.actuation.deferrals += 1;
                if traced {
                    self.trace.record(&TraceEvent::OpDeferred {
                        time: self.now.as_secs(),
                        cycle: trace_cycle,
                        app: rolled.app(),
                        node,
                        reason: "rollback",
                    });
                }
                self.events
                    .push(self.now + acfg.base_backoff, EventKind::ActuationRetry);
                diverged = true;
            }
        }

        // Load: verbatim on the (common) fully-applied path — bit-identical
        // to the infallible engine — else the intended load restricted to
        // the cells that exist, plus the kept instances at their old
        // consumption clamped to what their node has left.
        let merged = if !diverged {
            load
        } else {
            let mut merged = LoadDistribution::new();
            for (app, node, _count) in achieved.iter() {
                if kept.contains(&(app, node)) {
                    continue;
                }
                let v = load.get(app, node);
                if v.as_mhz() > 0.0 {
                    merged.set(app, node, v);
                }
            }
            for &(app, node) in &kept {
                let count = achieved.count(app, node);
                if count == 0 {
                    continue;
                }
                let capacity = self
                    .effective_cluster
                    .node(node)
                    .map(|n| n.cpu_capacity())
                    .unwrap_or(CpuSpeed::ZERO);
                let free = CpuSpeed::from_mhz(
                    (capacity.as_mhz() - merged.node_total(node).as_mhz()).max(0.0),
                );
                let mut v = self.load.get(app, node).min(free);
                if let Ok(spec) = self.apps.get(app) {
                    let max = spec.max_instance_speed().as_mhz() * f64::from(count);
                    if max.is_finite() {
                        v = v.min(CpuSpeed::from_mhz(max));
                    }
                }
                if v.as_mhz() > 0.0 {
                    merged.set(app, node, v);
                }
            }
            merged
        };

        // Pass 2: lifecycle from *actual* placement membership.
        let ids: Vec<AppId> = self.jobs.keys().copied().collect();
        for app in &ids {
            let placed = achieved.is_placed(*app);
            let Some(job) = self.jobs.get_mut(app) else {
                self.metrics.actuation.invariant_skips += 1;
                continue;
            };
            if !job.is_live() {
                continue;
            }
            match (job.state.status(), placed) {
                (JobStatus::NotStarted | JobStatus::Suspended, true) => {
                    job.ever_started = true;
                    job.state.start();
                }
                (JobStatus::Running | JobStatus::Paused, false) => {
                    job.state.suspend();
                }
                _ => {}
            }
            job.node = achieved.single_node_of(*app);
            if let Some(lat) = latency.get(app) {
                job.transition_until = self.now + *lat;
            }
        }

        self.placement = achieved;
        self.load = merged;
        #[cfg(debug_assertions)]
        {
            self.placement
                .validate(&self.effective_cluster, &self.apps)
                .expect("engine invariant: placement always valid");
            self.load
                .validate(&self.placement, &self.effective_cluster, &self.apps)
                .expect("engine invariant: load always valid");
        }
        for app in ids {
            let total = self.load.app_total(app);
            let Some(job) = self.jobs.get_mut(&app) else {
                self.metrics.actuation.invariant_skips += 1;
                continue;
            };
            job.allocation = total;
            self.reschedule_completion(app);
        }
    }

    fn baseline_nodes(&self) -> Vec<NodeCapacity> {
        let allowed = self.config.batch_nodes.clone();
        self.effective_cluster
            .iter()
            .filter(|(id, _)| {
                !self.failed_nodes.contains(id) && allowed.as_ref().map_or(true, |v| v.contains(id))
            })
            .map(|(id, spec)| NodeCapacity {
                node: id,
                cpu: spec.cpu_capacity(),
                memory: spec.memory_capacity(),
            })
            .collect()
    }

    fn run_baseline(&mut self) {
        let nodes = self.baseline_nodes();
        // Reservation-based schedulers reserve a job's full speed; a job
        // faster than any node caps its reservation at the largest node
        // (it simply runs slower there).
        let largest = nodes
            .iter()
            .map(|n| n.cpu)
            .fold(CpuSpeed::ZERO, CpuSpeed::max);
        let jobs: Vec<BaselineJob> = self
            .jobs
            .iter()
            .filter(|(_, j)| j.is_live())
            .map(|(&app, j)| BaselineJob {
                app,
                arrival: j.spec.arrival(),
                deadline: j.spec.goal().deadline(),
                memory: j.state.current_memory(&j.profile).unwrap_or(Memory::ZERO),
                max_speed: j
                    .state
                    .current_speed_bounds(&j.profile)
                    .map_or(CpuSpeed::ZERO, |(_, max)| max)
                    .min(largest),
                current_node: j.node,
            })
            .collect();
        let target = match self.config.scheduler {
            SchedulerKind::Fcfs => fcfs_schedule(&nodes, &jobs),
            SchedulerKind::Edf => edf_schedule(&nodes, &jobs),
            SchedulerKind::Apc { .. } => unreachable!("baseline path"),
        };
        let actions = self.placement.diff(&target);
        let mut load = LoadDistribution::new();
        for job in &jobs {
            if let Some(node) = target.single_node_of(job.app) {
                load.set(job.app, node, job.max_speed);
            }
        }
        self.apply_transition(target, load, &actions);
    }

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    fn record_sample(&mut self, placement_compute_secs: f64) {
        // Batch: mean hypothetical relative performance at the current
        // aggregate batch allocation.
        let mut snapshots = Vec::new();
        let mut batch_alloc = CpuSpeed::ZERO;
        let mut running = 0;
        let mut waiting = 0;
        for (&app, job) in &self.jobs {
            if !job.is_live() || job.state.remaining_work(&job.profile).as_mcycles() <= 1e-6 {
                continue;
            }
            if job.is_running() {
                running += 1;
            } else {
                waiting += 1;
            }
            batch_alloc += job.allocation;
            let delay = if job.is_running() {
                SimDuration::ZERO
            } else {
                self.config.cycle
            };
            snapshots.push(
                JobSnapshot::new(
                    app,
                    job.spec.goal(),
                    Arc::clone(&job.profile),
                    job.state.consumed(),
                    delay,
                )
                .with_parallelism(job.parallelism),
            );
        }
        let batch_rp = if snapshots.is_empty() {
            None
        } else {
            HypotheticalRpf::new(self.now, &snapshots).mean_performance(batch_alloc)
        };

        // Transactional: actual relative performance via the router.
        let (txn_rp, txn_alloc) = self.txn_sample();

        self.metrics.samples.push(CycleSample {
            time: self.now,
            batch_hypothetical_rp: batch_rp,
            txn_rp,
            batch_allocation: batch_alloc,
            txn_allocation: txn_alloc,
            running_jobs: running,
            waiting_jobs: waiting,
            placement_compute_secs,
            pending_actions: self.pending_actions(),
        });
        if self.config.record_placements {
            self.metrics
                .placements
                .push(crate::metrics::PlacementRecord {
                    time: self.now,
                    placement: self.placement.clone(),
                });
        }
    }

    fn txn_sample(&self) -> (Option<Rp>, CpuSpeed) {
        if self.txns.is_empty() {
            return (None, CpuSpeed::ZERO);
        }
        let mut total_alloc = CpuSpeed::ZERO;
        let mut rp_sum = 0.0;
        let mut rp_count = 0usize;
        for (&app, txn) in &self.txns {
            let rate = txn.pattern.rate_at(self.now);
            let workload = TxnWorkload::new(rate, txn.demand_per_request, txn.floor);
            let allocations: Vec<CpuSpeed> = match &self.config.static_txn_nodes {
                Some(nodes) => {
                    // Static partition: the app owns its nodes outright,
                    // consuming up to its saturation allocation.
                    let capacity: CpuSpeed = nodes
                        .iter()
                        .map(|&n| {
                            self.effective_cluster
                                .node(n)
                                .expect("static txn node exists")
                                .cpu_capacity()
                        })
                        .sum();
                    let used = capacity.min(workload.saturation_allocation());
                    vec![used]
                }
                None => self
                    .placement
                    .instances_of(app)
                    .map(|(node, _)| self.load.get(app, node))
                    .collect(),
            };
            total_alloc += allocations.iter().copied().sum();
            let outcome = txn.router.route(&workload, &allocations);
            let rp = match outcome.mean_response {
                Some(t) if !outcome.is_overloaded() => txn.goal.performance_at(t),
                // Overload (or no capacity): report the floor.
                _ => Rp::MIN,
            };
            rp_sum += rp.value();
            rp_count += 1;
        }
        let rp = if rp_count > 0 {
            Some(Rp::new(rp_sum / rp_count as f64))
        } else {
            None
        };
        (rp, total_alloc)
    }

    /// Consumed work of a job (test/diagnostic hook).
    pub fn job_consumed(&self, app: AppId) -> Option<Work> {
        self.jobs.get(&app).map(|j| j.state.consumed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_factor_is_deterministic_and_bounded() {
        let noise = EstimationNoise {
            job_work: 0.3,
            txn_rate: 0.0,
        };
        for i in 0..100 {
            let app = AppId::new(i);
            let f1 = noise.work_factor(app);
            let f2 = noise.work_factor(app);
            assert_eq!(f1, f2, "factor must be a pure function of the id");
            assert!((0.7..=1.3).contains(&f1), "factor {f1} out of bounds");
        }
    }

    #[test]
    fn zero_noise_is_exactly_one() {
        let noise = EstimationNoise::NONE;
        for i in 0..10 {
            assert_eq!(noise.work_factor(AppId::new(i)), 1.0);
        }
    }

    #[test]
    fn noise_factors_spread_across_ids() {
        // Not all jobs share the same bias (the hash spreads them).
        let noise = EstimationNoise {
            job_work: 0.5,
            txn_rate: 0.0,
        };
        let factors: std::collections::BTreeSet<u64> = (0..50)
            .map(|i| (noise.work_factor(AppId::new(i)) * 1e6) as u64)
            .collect();
        assert!(
            factors.len() > 25,
            "biases should be diverse: {}",
            factors.len()
        );
    }

    #[test]
    fn config_constructors_pick_schedulers() {
        assert!(matches!(
            SimConfig::apc_default().scheduler,
            SchedulerKind::Apc { .. }
        ));
        assert!(matches!(
            SimConfig::fcfs_default().scheduler,
            SchedulerKind::Fcfs
        ));
        assert!(matches!(
            SimConfig::edf_default().scheduler,
            SchedulerKind::Edf
        ));
    }
}
