//! Per-cycle metric sampling: relative-performance aggregates,
//! allocation totals, and per-dimension rigid utilization.

use super::*;

impl Simulation {
    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    pub(super) fn record_sample(&mut self, placement_compute_secs: f64) {
        // Batch: mean hypothetical relative performance at the current
        // aggregate batch allocation.
        let mut snapshots = Vec::new();
        let mut batch_alloc = CpuSpeed::ZERO;
        let mut running = 0;
        let mut waiting = 0;
        for (&app, job) in &self.jobs {
            if !job.is_live() || job.state.remaining_work(&job.profile).as_mcycles() <= 1e-6 {
                continue;
            }
            if job.is_running() {
                running += 1;
            } else {
                waiting += 1;
            }
            batch_alloc += job.allocation;
            let delay = if job.is_running() {
                SimDuration::ZERO
            } else {
                self.config.cycle
            };
            snapshots.push(
                JobSnapshot::new(
                    app,
                    job.spec.goal(),
                    Arc::clone(&job.profile),
                    job.state.consumed(),
                    delay,
                )
                .with_parallelism(job.parallelism),
            );
        }
        let batch_rp = if snapshots.is_empty() {
            None
        } else {
            HypotheticalRpf::new(self.now, &snapshots).mean_performance(batch_alloc)
        };

        // Transactional: actual relative performance via the router.
        let (txn_rp, txn_alloc) = self.txn_sample();

        // Extra rigid dimensions (beyond memory): cluster-wide pinned
        // demand vs. scheduler-visible capacity. Memory-only deployments
        // skip this entirely, keeping metrics and traces byte-identical
        // to the scalar-memory engine.
        let dims = self.effective_cluster.dims();
        let mut rigid_utilization = Vec::new();
        if dims.len() > 1 {
            let mut used = vec![0.0; dims.len()];
            for (app, _node, count) in self.placement.iter() {
                if let Ok(spec) = self.apps.get(app) {
                    for (d, u) in used.iter_mut().enumerate().skip(1) {
                        *u += spec.rigid_per_instance().get(d) * count as f64;
                    }
                }
            }
            let mut capacity = vec![0.0; dims.len()];
            for (_, spec) in self.effective_cluster.iter() {
                for (d, c) in capacity.iter_mut().enumerate().skip(1) {
                    *c += spec.rigid_capacity().get(d);
                }
            }
            let cycle = self.cycle_index.saturating_sub(1);
            for d in 1..dims.len() {
                rigid_utilization.push(crate::metrics::RigidDimSample {
                    dim: dims.name(d).to_string(),
                    used: used[d],
                    capacity: capacity[d],
                });
                if self.trace.wants(TraceLevel::Decisions) {
                    self.trace.record(&TraceEvent::RigidUtilization {
                        time: self.now.as_secs(),
                        cycle,
                        dim: dims.name(d).to_string(),
                        used: used[d],
                        capacity: capacity[d],
                    });
                }
            }
        }

        self.metrics.samples.push(CycleSample {
            time: self.now,
            batch_hypothetical_rp: batch_rp,
            txn_rp,
            batch_allocation: batch_alloc,
            txn_allocation: txn_alloc,
            running_jobs: running,
            waiting_jobs: waiting,
            placement_compute_secs,
            pending_actions: self.pending_actions(),
            rigid_utilization,
        });
        if self.config.record_placements {
            self.metrics
                .placements
                .push(crate::metrics::PlacementRecord {
                    time: self.now,
                    placement: self.placement.clone(),
                });
        }
    }

    pub(super) fn txn_sample(&self) -> (Option<Rp>, CpuSpeed) {
        if self.txns.is_empty() {
            return (None, CpuSpeed::ZERO);
        }
        let mut total_alloc = CpuSpeed::ZERO;
        let mut rp_sum = 0.0;
        let mut rp_count = 0usize;
        for (&app, txn) in &self.txns {
            let rate = txn.pattern.rate_at(self.now);
            let workload = TxnWorkload::new(rate, txn.demand_per_request, txn.floor);
            let allocations: Vec<CpuSpeed> = match &self.config.static_txn_nodes {
                Some(nodes) => {
                    // Static partition: the app owns its nodes outright,
                    // consuming up to its saturation allocation.
                    let capacity: CpuSpeed = nodes
                        .iter()
                        .map(|&n| {
                            self.effective_cluster
                                .node(n)
                                .expect("static txn node exists")
                                .cpu_capacity()
                        })
                        .sum();
                    let used = capacity.min(workload.saturation_allocation());
                    vec![used]
                }
                None => self
                    .placement
                    .instances_of(app)
                    .map(|(node, _)| self.load.get(app, node))
                    .collect(),
            };
            total_alloc += allocations.iter().copied().sum();
            let outcome = txn.router.route(&workload, &allocations);
            let rp = match outcome.mean_response {
                Some(t) if !outcome.is_overloaded() => txn.goal.performance_at(t),
                // Overload (or no capacity): report the healthy floor.
                // Txn flows are memoryless, so they never accrue the
                // lateness that would place them in the sub-floor band.
                _ => Rp::FLOOR,
            };
            rp_sum += rp.value();
            rp_count += 1;
        }
        let rp = if rp_count > 0 {
            Some(Rp::new(rp_sum / rp_count as f64))
        } else {
            None
        };
        (rp, total_alloc)
    }
}
