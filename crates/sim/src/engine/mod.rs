//! The discrete-event cluster simulator.
//!
//! Reproduces the evaluation vehicle of §5: a virtualized cluster on
//! which batch jobs and transactional applications are placed by a
//! pluggable [`dynaplace_apc::PlacementPolicy`] — the paper's placement
//! controller (APC), one of the reservation baselines (FCFS, EDF,
//! static partition), or any policy from the registry — with VM control
//! operations charged according to the measured cost model.
//!
//! The simulation is event-driven and fully deterministic: job arrivals,
//! projected job completions, and periodic control cycles are the only
//! event sources, and all state lives in ordered maps.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use dynaplace_apc::optimizer::{ApcConfig, PlacementOutcome};
use dynaplace_apc::policy::baselines::{EdfPolicy, FcfsPolicy};
use dynaplace_apc::policy::{PolicyClass, PolicyHandle};
use dynaplace_apc::problem::{PlacementProblem, WorkloadModel};
use dynaplace_batch::class_profiler::JobClassProfiler;
use dynaplace_batch::hypothetical::{HypotheticalRpf, JobSnapshot};
use dynaplace_batch::job::{JobProfile, JobSpec};
use dynaplace_batch::state::{JobState, JobStatus};
use dynaplace_model::app::ApplicationSpec;
use dynaplace_model::cluster::{AppSet, Cluster};
use dynaplace_model::delta::PlacementAction;
use dynaplace_model::ids::{AppId, NodeId};
use dynaplace_model::load::LoadDistribution;
use dynaplace_model::placement::Placement;
use dynaplace_model::units::{CpuSpeed, Memory, SimDuration, SimTime, Work};
use dynaplace_rpf::goal::{CompletionGoal, ResponseTimeGoal};
use dynaplace_rpf::value::Rp;
use dynaplace_trace::{JsonlSink, NoopSink, Phase, TraceConfig, TraceEvent, TraceLevel, TraceSink};
use dynaplace_txn::model::{TxnPerformanceModel, TxnWorkload};
use dynaplace_txn::router::RequestRouter;
use dynaplace_txn::workload::ArrivalPattern;

use crate::actuation::{ActuationConfig, ActuationState, OpAttempt, OpOutcome};
use crate::costs::{VmCostModel, VmOperation};
use crate::events::{EventKind, EventQueue};
use crate::metrics::{CompletionRecord, CycleSample, RunMetrics, StarvationReport};
use crate::observe::{
    DegradedMode, HealthTransition, JobView, ObservationConfig, ObservationState, TxnView,
};
use crate::source::{GoalSubmission, JobSubmission, Submission, TxnSubmission, WorkloadSource};

/// A config-derived buffering trace sink paired with the path it is
/// flushed to at end of run.
type FileSink = (Arc<JsonlSink>, String);

/// Work remaining below this is considered complete (floating point
/// slack, in megacycles).
const COMPLETION_EPS: f64 = 1e-6;

mod config;
mod cycle;
mod progress;
mod reconcile;
mod sample;
mod telemetry;

#[allow(deprecated)]
pub use config::SchedulerKind;
pub use config::{EstimationNoise, MetricsRetention, NodeOutage, SimConfig, DEFAULT_STALL_LIMIT};

#[derive(Debug)]
struct Job {
    spec: JobSpec,
    profile: Arc<dynaplace_batch::job::JobProfile>,
    state: JobState,
    node: Option<NodeId>,
    allocation: CpuSpeed,
    /// Progress is frozen until this instant (VM operation in flight).
    transition_until: SimTime,
    /// Invalidates stale completion events.
    generation: u64,
    arrived: bool,
    ever_started: bool,
    /// Concurrent task instances (1 for ordinary jobs).
    parallelism: u32,
}

impl Job {
    fn is_live(&self) -> bool {
        self.arrived && self.state.status().is_live()
    }

    fn is_running(&self) -> bool {
        self.arrived && self.state.status() == JobStatus::Running
    }
}

/// A managed transactional application.
struct TxnApp {
    demand_per_request: f64,
    floor: SimDuration,
    goal: ResponseTimeGoal,
    pattern: Box<dyn ArrivalPattern + Send>,
    router: RequestRouter,
    /// Online per-request demand estimator (work profiler, §3.1).
    profiler: dynaplace_txn::profiler::WorkProfiler,
    /// Observation counter driving the deterministic measurement error.
    observations: u64,
}

impl std::fmt::Debug for TxnApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnApp")
            .field("demand_per_request", &self.demand_per_request)
            .field("floor", &self.floor)
            .finish_non_exhaustive()
    }
}

/// The simulator.
///
/// Build with [`Simulation::new`], register workloads with
/// [`Simulation::add_job`] / [`Simulation::add_txn`], then call
/// [`Simulation::run`].
#[derive(Debug)]
pub struct Simulation {
    cluster: Cluster,
    apps: AppSet,
    config: SimConfig,
    jobs: BTreeMap<AppId, Job>,
    txns: BTreeMap<AppId, TxnApp>,
    /// The *actual* placement: what the (fallible) actuation layer has
    /// really applied to the cluster.
    placement: Placement,
    load: LoadDistribution,
    /// The *desired* placement: the controller's latest decision. Equal
    /// to `placement` whenever every operation actuated; the
    /// reconciliation loop works off the diff when they diverge.
    desired: Placement,
    /// The load distribution the controller intended for `desired`.
    desired_load: LoadDistribution,
    /// Backoff / quarantine bookkeeping of the actuation layer.
    actuation: ActuationState,
    /// Consecutive control cycles that started with unreconciled actions
    /// (drives the `fill_only` fallback).
    stalled_cycles: u32,
    /// Fingerprint of the progress-relevant state at the end of the last
    /// control cycle, for the starvation breaker. `None` whenever the
    /// last cycle was disqualified (work pending, events queued, jobs
    /// progressing).
    stall_fingerprint: Option<u64>,
    /// Consecutive control cycles whose fingerprint matched
    /// `stall_fingerprint` (drives the starvation breaker).
    no_progress_cycles: u32,
    now: SimTime,
    last_advance: SimTime,
    events: EventQueue,
    /// The lazily drained workload source (streaming mode); `None` when
    /// every submission was registered up front (lock-step mode).
    source: Option<Box<dyn WorkloadSource>>,
    metrics: RunMetrics,
    live_jobs: usize,
    class_profiler: JobClassProfiler,
    /// The cluster as the schedulers see it (failed nodes zeroed).
    effective_cluster: Cluster,
    failed_nodes: std::collections::BTreeSet<NodeId>,
    /// The imperfect-telemetry observation layer: node-health beliefs,
    /// report caches, estimator state, and the per-cycle views the
    /// controller reads instead of the truth. Inert when
    /// [`SimConfig::observation`] is the default.
    observation: ObservationState,
    /// The cluster as the *controller believes* it: `effective_cluster`
    /// with believed-dead nodes zeroed. `None` while the believed-dead
    /// set is empty, so the inactive path borrows `effective_cluster`
    /// with zero overhead.
    observed_cluster: Option<Cluster>,
    /// Whether the last observation cycle breached the staleness budget
    /// with [`DegradedMode::Hold`]: between-cycle advice passes also
    /// hold while set.
    degraded_hold: bool,
    /// Decision-provenance sink shared with the optimizer; a [`NoopSink`]
    /// unless [`SimConfig::trace`] set a path or a test installed one via
    /// [`Simulation::set_trace_sink`].
    trace: Arc<dyn TraceSink>,
    /// The config-derived JSONL sink and its flush path, when tracing to
    /// a file.
    trace_file: Option<FileSink>,
    /// Control cycles started so far (the trace's cycle index).
    cycle_index: u64,
}

impl Simulation {
    /// Creates an empty simulation over `cluster`.
    pub fn new(cluster: Cluster, config: SimConfig) -> Self {
        let (trace, trace_file): (Arc<dyn TraceSink>, Option<FileSink>) = match &config.trace.path {
            Some(path) => {
                let sink = Arc::new(JsonlSink::new(config.trace.level));
                (
                    Arc::clone(&sink) as Arc<dyn TraceSink>,
                    Some((sink, path.clone())),
                )
            }
            None => (Arc::new(NoopSink), None),
        };
        Self {
            trace,
            trace_file,
            cycle_index: 0,
            effective_cluster: cluster.clone(),
            cluster,
            apps: AppSet::new(),
            config,
            jobs: BTreeMap::new(),
            txns: BTreeMap::new(),
            placement: Placement::new(),
            load: LoadDistribution::new(),
            desired: Placement::new(),
            desired_load: LoadDistribution::new(),
            actuation: ActuationState::new(),
            stalled_cycles: 0,
            stall_fingerprint: None,
            no_progress_cycles: 0,
            now: SimTime::ZERO,
            last_advance: SimTime::ZERO,
            events: EventQueue::new(),
            source: None,
            metrics: RunMetrics::default(),
            live_jobs: 0,
            class_profiler: JobClassProfiler::new(3),
            failed_nodes: std::collections::BTreeSet::new(),
            observation: ObservationState::new(),
            observed_cluster: None,
            degraded_hold: false,
        }
    }

    /// The cluster under simulation.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Enables (or disables) per-cycle placement recording after
    /// construction — scenario files have no switch for it, but the
    /// golden regression tests need the records.
    pub fn record_placements(&mut self, on: bool) {
        self.config.record_placements = on;
    }

    /// Installs a decision-provenance sink, replacing whatever
    /// [`SimConfig::trace`] configured. The caller keeps its own handle
    /// (e.g. an `Arc<JsonlSink>`) to inspect the buffered events; sinks
    /// installed this way are *not* flushed to [`SimConfig::trace`]'s
    /// path at end of run.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.trace = sink;
        self.trace_file = None;
    }

    /// The APC optimizer configuration, when this simulation runs an
    /// APC-backed policy; `None` under the baselines.
    pub fn apc_config(&self) -> Option<&ApcConfig> {
        self.config.scheduler.apc_config()
    }

    /// Replaces the APC optimizer configuration after construction.
    /// Differential harnesses use this to rerun one scenario under
    /// varied scoring modes or thread counts without a scenario-file
    /// switch for each knob.
    ///
    /// # Panics
    ///
    /// Panics when the simulation runs a baseline scheduler — there is
    /// no APC configuration to replace, and silently ignoring the call
    /// would make a differential run compare a scheduler to itself.
    pub fn set_apc_config(&mut self, apc: ApcConfig) {
        match self.config.scheduler.with_apc_config(apc) {
            Some(handle) => self.config.scheduler = handle,
            None => panic!(
                "set_apc_config on a baseline scheduler ({:?})",
                self.config.scheduler
            ),
        }
    }

    /// Submits a batch job described by `spec`; optionally pinned to a
    /// subset of nodes. Returns the application id assigned to it.
    ///
    /// The job's [`ApplicationSpec`] is derived from its profile: memory
    /// is the maximum over stages (conservative; the per-stage value
    /// drives CPU bounds at runtime), speed cap is the maximum stage
    /// speed.
    pub fn add_job(&mut self, build: impl FnOnce(AppId) -> JobSpec) -> AppId {
        self.insert_job(None, build, None, &[])
    }

    /// Like [`Simulation::add_job`] with a node restriction.
    pub fn add_job_pinned(
        &mut self,
        build: impl FnOnce(AppId) -> JobSpec,
        allowed: Option<Vec<NodeId>>,
    ) -> AppId {
        self.insert_job(None, build, allowed, &[])
    }

    /// Like [`Simulation::add_job`], additionally declaring per-instance
    /// demand in the cluster's extra rigid dimensions beyond memory, in
    /// registry order starting at dimension 1 (see
    /// [`Cluster::dims`]). Demands stay constant across job stages; only
    /// memory varies per stage.
    pub fn add_job_with_rigid(
        &mut self,
        extra_rigid: &[f64],
        build: impl FnOnce(AppId) -> JobSpec,
    ) -> AppId {
        self.insert_job(None, build, None, extra_rigid)
    }

    fn insert_job(
        &mut self,
        id: Option<AppId>,
        build: impl FnOnce(AppId) -> JobSpec,
        allowed: Option<Vec<NodeId>>,
        extra_rigid: &[f64],
    ) -> AppId {
        // Resolve the id first so the spec can reference it: the
        // caller's pre-assigned id (streamed replay), or the smallest
        // unreserved free slot.
        let provisional = id.unwrap_or_else(|| self.apps.peek_next_id());
        let spec = build(provisional);
        assert_eq!(spec.app(), provisional, "job spec must use the given id");
        let memory = spec
            .profile()
            .stages()
            .iter()
            .map(|s| s.memory())
            .fold(Memory::ZERO, Memory::max);
        let max_speed = spec
            .profile()
            .stages()
            .iter()
            .map(|s| s.max_speed())
            .fold(CpuSpeed::ZERO, CpuSpeed::max);
        let mut app_spec = ApplicationSpec::batch(memory, max_speed);
        if !extra_rigid.is_empty() {
            app_spec = app_spec.with_extra_rigid_demand(extra_rigid.iter().copied());
        }
        if let Some(nodes) = allowed {
            app_spec = app_spec.with_allowed_nodes(nodes);
        }
        let app = provisional;
        self.apps.insert_at(app, app_spec);
        let profile = Arc::new(spec.profile().clone());
        let arrival = spec.arrival();
        self.jobs.insert(
            app,
            Job {
                spec,
                profile,
                state: JobState::new(),
                node: None,
                allocation: CpuSpeed::ZERO,
                transition_until: SimTime::ZERO,
                generation: 0,
                arrived: false,
                ever_started: false,
                parallelism: 1,
            },
        );
        self.events.push(arrival, EventKind::JobArrival(app));
        app
    }

    /// Submits a *malleable parallel* job with up to `tasks` concurrent
    /// task instances, each pinning the profile's stage memory and
    /// running at up to the stage's maximum speed; the job progresses at
    /// the sum of its placed tasks' speeds. Only supported under the APC
    /// scheduler (the FCFS/EDF baselines model single-instance jobs).
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is zero or the scheduler is a baseline.
    pub fn add_parallel_job(&mut self, tasks: u32, build: impl FnOnce(AppId) -> JobSpec) -> AppId {
        self.add_parallel_job_with_rigid(tasks, &[], build)
    }

    /// Like [`Simulation::add_parallel_job`], additionally declaring
    /// per-task demand in the cluster's extra rigid dimensions beyond
    /// memory (see [`Simulation::add_job_with_rigid`]).
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is zero or the scheduler is a baseline.
    pub fn add_parallel_job_with_rigid(
        &mut self,
        tasks: u32,
        extra_rigid: &[f64],
        build: impl FnOnce(AppId) -> JobSpec,
    ) -> AppId {
        self.insert_parallel_job(None, tasks, extra_rigid, build)
    }

    fn insert_parallel_job(
        &mut self,
        id: Option<AppId>,
        tasks: u32,
        extra_rigid: &[f64],
        build: impl FnOnce(AppId) -> JobSpec,
    ) -> AppId {
        assert!(tasks > 0, "tasks must be positive");
        assert!(
            self.config.scheduler.class() == PolicyClass::Apc,
            "parallel jobs require the APC scheduler"
        );
        let provisional = id.unwrap_or_else(|| self.apps.peek_next_id());
        let spec = build(provisional);
        assert_eq!(spec.app(), provisional, "job spec must use the given id");
        let memory = spec
            .profile()
            .stages()
            .iter()
            .map(|s| s.memory())
            .fold(Memory::ZERO, Memory::max);
        let per_task_speed = spec
            .profile()
            .stages()
            .iter()
            .map(|s| s.max_speed())
            .fold(CpuSpeed::ZERO, CpuSpeed::max);
        let mut app_spec = ApplicationSpec::batch_parallel(memory, per_task_speed, tasks);
        if !extra_rigid.is_empty() {
            app_spec = app_spec.with_extra_rigid_demand(extra_rigid.iter().copied());
        }
        let app = provisional;
        self.apps.insert_at(app, app_spec);
        let profile = Arc::new(spec.profile().clone());
        let arrival = spec.arrival();
        self.jobs.insert(
            app,
            Job {
                spec,
                profile,
                state: JobState::new(),
                node: None,
                allocation: CpuSpeed::ZERO,
                transition_until: SimTime::ZERO,
                generation: 0,
                arrived: false,
                ever_started: false,
                parallelism: tasks,
            },
        );
        self.events.push(arrival, EventKind::JobArrival(app));
        app
    }

    /// Registers a transactional application. `allowed` optionally pins
    /// its instances (used for static partitioning).
    #[allow(clippy::too_many_arguments)]
    pub fn add_txn(
        &mut self,
        memory_per_instance: Memory,
        max_instances: u32,
        demand_per_request: f64,
        floor: SimDuration,
        goal: ResponseTimeGoal,
        pattern: Box<dyn ArrivalPattern + Send>,
        allowed: Option<Vec<NodeId>>,
    ) -> AppId {
        self.add_txn_with_rigid(
            &[],
            memory_per_instance,
            max_instances,
            demand_per_request,
            floor,
            goal,
            pattern,
            allowed,
        )
    }

    /// Like [`Simulation::add_txn`], additionally declaring per-instance
    /// demand in the cluster's extra rigid dimensions beyond memory (see
    /// [`Simulation::add_job_with_rigid`]).
    #[allow(clippy::too_many_arguments)]
    pub fn add_txn_with_rigid(
        &mut self,
        extra_rigid: &[f64],
        memory_per_instance: Memory,
        max_instances: u32,
        demand_per_request: f64,
        floor: SimDuration,
        goal: ResponseTimeGoal,
        pattern: Box<dyn ArrivalPattern + Send>,
        allowed: Option<Vec<NodeId>>,
    ) -> AppId {
        self.insert_txn(
            None,
            extra_rigid,
            memory_per_instance,
            max_instances,
            demand_per_request,
            floor,
            goal,
            pattern,
            allowed,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_txn(
        &mut self,
        id: Option<AppId>,
        extra_rigid: &[f64],
        memory_per_instance: Memory,
        max_instances: u32,
        demand_per_request: f64,
        floor: SimDuration,
        goal: ResponseTimeGoal,
        pattern: Box<dyn ArrivalPattern + Send>,
        allowed: Option<Vec<NodeId>>,
    ) -> AppId {
        let mut spec = ApplicationSpec::transactional(
            memory_per_instance,
            CpuSpeed::from_mhz(f64::INFINITY),
            max_instances,
        );
        if !extra_rigid.is_empty() {
            spec = spec.with_extra_rigid_demand(extra_rigid.iter().copied());
        }
        if let Some(nodes) = allowed {
            spec = spec.with_allowed_nodes(nodes);
        }
        let app = id.unwrap_or_else(|| self.apps.peek_next_id());
        self.apps.insert_at(app, spec);
        self.txns.insert(
            app,
            TxnApp {
                demand_per_request,
                floor,
                goal,
                pattern,
                router: RequestRouter::default(),
                profiler: dynaplace_txn::profiler::WorkProfiler::new(1, 32),
                observations: 0,
            },
        );
        app
    }

    /// Attaches a streaming [`WorkloadSource`]: its submissions are
    /// admitted lazily just before their arrival instant instead of
    /// being registered up front, so memory stays bounded however long
    /// the stream runs. The source's pre-assigned id block is reserved
    /// immediately, keeping automatically assigned ids above it.
    pub fn attach_source(&mut self, source: Box<dyn WorkloadSource>) {
        self.apps.reserve(source.reserved_ids());
        self.source = Some(source);
    }

    /// Overrides the completion-record retention policy after
    /// construction (see [`MetricsRetention`]).
    pub fn set_retention(&mut self, retention: MetricsRetention) {
        self.config.retention = retention;
    }

    /// Admits one streamed submission. This is the single construction
    /// path shared by lock-step builds and streaming injection, so both
    /// modes register bit-identical applications under identical ids.
    pub(crate) fn admit(&mut self, submission: Submission) {
        match submission {
            Submission::Job(job) => self.admit_job(job),
            Submission::Txn(txn) => self.admit_txn(txn),
        }
    }

    fn admit_job(&mut self, sub: JobSubmission) {
        let JobSubmission {
            id,
            arrival,
            work_mcycles,
            max_speed_mhz,
            memory_mb,
            goal,
            tasks,
            class,
            extra_rigid,
        } = sub;
        let build = move |app| {
            let profile = JobProfile::single_stage(
                Work::from_mcycles(work_mcycles),
                CpuSpeed::from_mhz(max_speed_mhz),
                Memory::from_mb(memory_mb),
            );
            let goal = match goal {
                // Parallel jobs: the "best execution time" the factor
                // multiplies is the parallel one.
                GoalSubmission::Factor(f) => CompletionGoal::from_goal_factor(
                    arrival,
                    profile.min_execution_time() / f64::from(tasks),
                    f,
                ),
                GoalSubmission::RelativeSecs(secs) => {
                    CompletionGoal::new(arrival, arrival + SimDuration::from_secs(secs))
                }
            };
            let mut spec = JobSpec::new(app, profile, arrival, goal);
            if let Some(class) = class {
                spec = spec.with_class(class);
            }
            spec
        };
        if tasks > 1 {
            self.insert_parallel_job(id, tasks, &extra_rigid, build);
        } else {
            self.insert_job(id, build, None, &extra_rigid);
        }
    }

    fn admit_txn(&mut self, sub: TxnSubmission) {
        self.insert_txn(
            sub.id,
            &sub.extra_rigid,
            Memory::from_mb(sub.memory_mb),
            sub.max_instances,
            sub.demand_mcycles,
            SimDuration::from_secs(sub.floor_secs),
            ResponseTimeGoal::new(SimDuration::from_secs(sub.goal_secs)),
            sub.pattern,
            None,
        );
    }

    /// Runs the simulation to completion (or the horizon) and returns
    /// the recorded metrics.
    pub fn run(mut self) -> RunMetrics {
        // First control cycle fires immediately (places any jobs that
        // arrived at t = 0 and the transactional applications).
        self.events.push(SimTime::ZERO, EventKind::ControlCycle);
        if let Some(h) = self.config.horizon {
            self.events.push(SimTime::ZERO + h, EventKind::Horizon);
        }
        for outage in self.config.node_failures.clone() {
            self.events.push(
                SimTime::ZERO + outage.at,
                EventKind::NodeFailure(outage.node),
            );
            if let Some(duration) = outage.duration {
                self.events.push(
                    SimTime::ZERO + outage.at + duration,
                    EventKind::NodeRecovery(outage.node),
                );
            }
        }
        self.live_jobs = 0;

        while let Some((time, kind)) = self.next_event() {
            self.now = time;
            match kind {
                EventKind::Horizon => break,
                EventKind::JobArrival(app) => self.on_arrival(app),
                EventKind::JobCompletion { app, generation } => self.on_completion(app, generation),
                EventKind::NodeFailure(node) => self.on_node_failure(node),
                EventKind::NodeRecovery(node) => self.on_node_recovery(node),
                EventKind::ActuationRetry => self.on_actuation_retry(),
                EventKind::ControlCycle => {
                    self.on_cycle();
                    // Keep cycling while work remains (or a horizon will
                    // cut us off) — unless the starvation breaker proves
                    // the remaining work can never progress.
                    let pending_arrivals = self.jobs.values().any(|j| !j.arrived)
                        || self.source.as_mut().is_some_and(|s| s.peek().is_some());
                    if (self.live_jobs > 0
                        || pending_arrivals
                        || (self.config.horizon.is_some() && !self.txns.is_empty()))
                        && !self.starvation_detected(pending_arrivals)
                    {
                        self.events
                            .push(self.now + self.config.cycle, EventKind::ControlCycle);
                    }
                }
            }
        }
        if let Some((sink, path)) = &self.trace_file {
            if let Err(e) = sink.write_to(path) {
                eprintln!("warning: failed to write trace to {path}: {e}");
            }
        }
        self.metrics
    }

    /// Pops the next event, first admitting every sourced submission due
    /// at or before it (streaming mode). Admitted arrivals enter the
    /// queue in the arrival class, which orders ahead of every other
    /// same-instant event — exactly where a lock-step run, which queues
    /// all arrivals before anything else, would have fired them.
    fn next_event(&mut self) -> Option<(SimTime, EventKind)> {
        if let Some(mut source) = self.source.take() {
            loop {
                let due = match (source.peek(), self.events.peek_time()) {
                    (Some(s), Some(q)) => s <= q,
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                if !due {
                    break;
                }
                let submission = source.next().expect("peek promised a submission");
                self.admit(submission);
            }
            self.source = Some(source);
        }
        self.events.pop()
    }

    /// The starvation breaker: a **should-never-fire diagnostic** that
    /// proves an unbounded run is in a zero-progress livelock and
    /// terminates it with the survivors recorded as starved, instead of
    /// scheduling control cycles forever.
    ///
    /// Historically this was a live containment shim: a job whose
    /// deadline was so hopelessly blown that its relative performance
    /// sat flat at the clamp floor whatever it received could be starved
    /// forever by a saturated transactional application, and the breaker
    /// was the only way such a run terminated. The sub-floor utility
    /// band ([`dynaplace_rpf::SUB_FLOOR_BAND`]) removed the root cause:
    /// hopeless jobs now carry strictly decreasing utility, so the
    /// optimizer's max-min objective drains them instead of stalling.
    /// The breaker remains solely as a tripwire for regressions in that
    /// guarantee — a firing is a bug in the controller, not an expected
    /// workload outcome, and `tests/repro/starved_floor_job.json` pins
    /// the canonical ex-livelock as a must-drain acceptance test.
    ///
    /// Called after a control cycle, before the next one is pushed — so
    /// an empty event queue proves the simulation is waiting on nothing
    /// but future control cycles (no completions, arrivals, failures,
    /// recoveries, or actuation retries are coming). In that state the
    /// progress-relevant world is fingerprinted and consecutive
    /// identical cycles counted against [`SimConfig::stall_limit`]. Any
    /// disqualifying condition (or horizon-bounded runs, which terminate
    /// on their own and must stay bit-identical) resets the counter.
    fn starvation_detected(&mut self, pending_arrivals: bool) -> bool {
        let limit = self.config.stall_limit;
        let armed = limit > 0
            && self.config.horizon.is_none()
            && self.live_jobs > 0
            && !pending_arrivals
            && self.events.is_empty();
        if !armed {
            self.stall_fingerprint = None;
            self.no_progress_cycles = 0;
            return false;
        }
        let fp = self.progress_fingerprint();
        if self.stall_fingerprint == Some(fp) {
            self.no_progress_cycles += 1;
        } else {
            self.stall_fingerprint = Some(fp);
            self.no_progress_cycles = 0;
        }
        if self.no_progress_cycles < limit {
            return false;
        }
        let apps: Vec<AppId> = self
            .jobs
            .iter()
            .filter(|(_, job)| job.is_live())
            .map(|(&app, _)| app)
            .collect();
        self.trace.record(&TraceEvent::StarvationBreak {
            time: self.now.as_secs(),
            cycles: u64::from(self.no_progress_cycles),
            apps: apps.clone(),
        });
        self.metrics.starvation = Some(StarvationReport {
            time: self.now,
            apps,
        });
        true
    }

    /// FNV-1a fingerprint of everything a control cycle can change that
    /// bears on job progress: both placements, per-job scheduling state
    /// and consumed work, the actuation stall counter, and the failed
    /// node set.
    ///
    /// Deliberately *excluded*: the transactional work profiler's
    /// observation counters, which advance every cycle — including them
    /// would make every fingerprint unique and the breaker would never
    /// fire. That slow-moving controller state may legitimately flip a
    /// decision after many outwardly identical cycles is exactly why
    /// [`SimConfig::stall_limit`] is generous rather than 2. The
    /// telemetry layer's health counters are excluded for the same
    /// reason: under permanent heartbeat loss they flap forever, and
    /// fingerprinting them would let a genuinely starved run cycle
    /// unbounded. Health flaps that *matter* change the placement (a
    /// believed death evicts residents), which is fingerprinted.
    fn progress_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            for byte in x.to_le_bytes() {
                h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.live_jobs as u64);
        mix(u64::from(self.stalled_cycles));
        // `Job::generation` is deliberately excluded: it is an
        // event-invalidation counter that advances every cycle whether or
        // not anything changed.
        for (app, job) in &self.jobs {
            mix(app.index() as u64);
            mix(u64::from(job.arrived) | u64::from(job.is_running()) << 1);
            mix(job.state.consumed().as_mcycles().to_bits());
            mix(job.allocation.as_mhz().to_bits());
            mix(match job.node {
                Some(n) => n.index() as u64,
                None => u64::MAX,
            });
            mix(job.transition_until.as_secs().to_bits());
        }
        for placement in [&self.placement, &self.desired] {
            for (app, node, count) in placement.iter() {
                mix(app.index() as u64);
                mix(node.index() as u64);
                mix(u64::from(count));
            }
        }
        for node in &self.failed_nodes {
            mix(node.index() as u64);
        }
        h
    }
}
