//! Completion accounting: job arrival/completion events, work
//! progress integration, projected-completion scheduling, and the
//! transactional demand observations feeding the work profilers.

use super::*;

impl Simulation {
    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    pub(super) fn on_arrival(&mut self, app: AppId) {
        self.advance_progress();
        let Some(job) = self.jobs.get_mut(&app) else {
            // An arrival event for an unknown job: count and skip rather
            // than taking the whole run down.
            self.metrics.actuation.invariant_skips += 1;
            return;
        };
        job.arrived = true;
        self.live_jobs += 1;
        self.between_cycle_advice();
    }

    pub(super) fn on_completion(&mut self, app: AppId, generation: u64) {
        {
            // Under aggregate retention a finished job leaves the map
            // entirely, so a projection it scheduled may outlive it —
            // that is ordinary staleness, not an invariant breach.
            let Some(job) = self.jobs.get(&app) else {
                return;
            };
            if !job.is_running() || job.generation != generation {
                return; // stale projection (or completed inline already)
            }
        }
        // advance_progress completes this job (and any peer finishing at
        // the same instant) inline.
        self.advance_progress();
        if let Some(job) = self.jobs.get_mut(&app) {
            if job.is_running() {
                // Numerical drift: reschedule precisely.
                let remaining = job.state.remaining_work(&job.profile);
                job.generation += 1;
                if job.allocation.as_mhz() > 0.0 && remaining.as_mcycles() > 0.0 {
                    let t = self.now.max(job.transition_until) + remaining / job.allocation;
                    self.events.push(
                        t,
                        EventKind::JobCompletion {
                            app,
                            generation: job.generation,
                        },
                    );
                }
                return;
            }
        }
        self.between_cycle_advice();
    }

    /// Records one (throughput, CPU-used) observation per transactional
    /// application into its work profiler — the measurement the real
    /// router takes every interval (§3.1). A deterministic ±2%
    /// alternating error keeps the regression honest.
    pub(super) fn observe_txn_demand(&mut self) {
        let placement = &self.placement;
        let load = &self.load;
        let now = self.now;
        for (&app, txn) in self.txns.iter_mut() {
            let rate = txn.pattern.rate_at(now);
            let allocations: Vec<CpuSpeed> = placement
                .instances_of(app)
                .map(|(node, _)| load.get(app, node))
                .collect();
            let workload = TxnWorkload::new(rate, txn.demand_per_request, txn.floor);
            let outcome = txn.router.route(&workload, &allocations);
            if outcome.admitted_rate <= 0.0 {
                continue; // nothing served: no signal this interval
            }
            let error = if txn.observations % 2 == 0 {
                0.02
            } else {
                -0.02
            };
            txn.observations += 1;
            txn.profiler
                .record(dynaplace_txn::profiler::UtilizationSample {
                    throughput: vec![outcome.admitted_rate],
                    cpu_used_mhz: outcome.admitted_rate * txn.demand_per_request * (1.0 + error),
                });
        }
    }

    /// Marks a running job as finished now: records the completion and
    /// releases its resources.
    pub(super) fn finish_job(&mut self, app: AppId) {
        let Some(job) = self.jobs.get_mut(&app) else {
            self.metrics.actuation.invariant_skips += 1;
            return;
        };
        debug_assert!(job.is_running());
        job.state.complete(self.now);
        job.allocation = CpuSpeed::ZERO;
        job.node = None;
        self.live_jobs -= 1;
        let goal = job.spec.goal();
        let best = job.profile.min_execution_time();
        let record = CompletionRecord {
            app,
            arrival: job.spec.arrival(),
            completion: self.now,
            deadline: goal.deadline(),
            distance: goal.distance_to_deadline(self.now),
            rp: goal.performance_at(self.now),
            goal_factor: goal.relative_goal().as_secs() / best.as_secs(),
            met_deadline: self.now <= goal.deadline(),
        };
        match self.config.retention {
            MetricsRetention::Full => self.metrics.completions.push(record),
            MetricsRetention::Aggregate => {
                self.metrics
                    .totals
                    .get_or_insert_with(Default::default)
                    .fold(&record);
            }
        }
        if let Some(class) = self.jobs[&app].spec.class() {
            let total = self.jobs[&app].profile.total_work();
            self.class_profiler.record_completion(class, total);
        }
        self.placement.evict(app);
        self.load.evict(app);
        // Completed jobs leave the control loop entirely: no stale desired
        // cells, no pending retries, no quarantine bookkeeping.
        self.desired.evict(app);
        self.desired_load.evict(app);
        self.actuation.forget_app(app);
        if self.config.retention == MetricsRetention::Aggregate {
            // Constant-memory mode: drop the finished job's state and
            // recycle its application id instead of keeping a tombstone
            // for every job the stream ever produced.
            self.jobs.remove(&app);
            self.apps.retire(app);
        }
    }

    // ------------------------------------------------------------------
    // Progress accounting
    // ------------------------------------------------------------------

    /// Advances every running job's consumed work from `last_advance` to
    /// `now` at its current allocation, excluding in-flight transition
    /// time.
    pub(super) fn advance_progress(&mut self) {
        let from = self.last_advance;
        let to = self.now;
        if to <= from {
            self.last_advance = to.max(from);
            return;
        }
        let mut exhausted = Vec::new();
        for (&app, job) in self.jobs.iter_mut() {
            if !job.is_running() || job.allocation.is_zero() {
                continue;
            }
            let start = from.max(job.transition_until);
            if to > start {
                let done = job.allocation * (to - start);
                job.state.advance(&job.profile, done);
            }
            let remaining = job.state.remaining_work(&job.profile);
            if remaining.as_mcycles() <= COMPLETION_EPS {
                // Snap to done and complete inline, so jobs finishing at
                // the same instant as the current event are never seen
                // as live-with-zero-work by the decision makers.
                job.state.advance(&job.profile, remaining);
                exhausted.push(app);
            }
        }
        self.last_advance = to;
        for app in exhausted {
            self.finish_job(app);
        }
    }

    /// Bumps a job's generation and schedules its projected completion.
    pub(super) fn reschedule_completion(&mut self, app: AppId) {
        let Some(job) = self.jobs.get_mut(&app) else {
            self.metrics.actuation.invariant_skips += 1;
            return;
        };
        job.generation += 1;
        if !job.is_running() || job.allocation.is_zero() {
            return;
        }
        let remaining = job.state.remaining_work(&job.profile);
        if remaining.is_zero() {
            return;
        }
        let t = self.now.max(job.transition_until) + remaining / job.allocation;
        self.events.push(
            t,
            EventKind::JobCompletion {
                app,
                generation: job.generation,
            },
        );
    }

    /// Consumed work of a job (test/diagnostic hook).
    pub fn job_consumed(&self, app: AppId) -> Option<Work> {
        self.jobs.get(&app).map(|j| j.state.consumed())
    }
}
