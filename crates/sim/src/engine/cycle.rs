//! The control cycle: problem construction, the periodic optimization
//! pass, between-cycle advice, and the baseline schedulers.

use super::*;

impl Simulation {
    /// Runs the between-event scheduling reaction: a start-only advice
    /// pass under APC (when enabled), a full reschedule under the
    /// baselines.
    pub(super) fn between_cycle_advice(&mut self) {
        let policy = self.config.scheduler.clone();
        match policy.class() {
            PolicyClass::Apc => {
                // While the last observation cycle breached the staleness
                // budget in Hold mode, between-cycle reactions hold too:
                // the controller's picture is too old to act on anywhere.
                if policy.advises_between_cycles() && !self.degraded_hold {
                    let sink = Arc::clone(&self.trace);
                    let outcome = {
                        let problem = self.build_problem();
                        policy.fill_only(&problem, &*sink)
                    };
                    self.apply_outcome(outcome);
                }
            }
            PolicyClass::Baseline => self.run_baseline_policy(),
        }
    }

    pub(super) fn on_cycle(&mut self) {
        self.advance_progress();
        let cycle = self.cycle_index;
        self.cycle_index += 1;
        let traced = self.trace.wants(TraceLevel::Decisions);
        if traced {
            self.trace.record(&TraceEvent::CycleStart {
                time: self.now.as_secs(),
                cycle,
            });
        }
        if self.config.estimate_txn_demand {
            self.observe_txn_demand();
        }
        let mut compute_secs = 0.0;
        let policy = self.config.scheduler.clone();
        if self.trace.wants(TraceLevel::Verbose) {
            self.trace.record(&TraceEvent::PolicyInvoked {
                time: self.now.as_secs(),
                cycle,
                policy: policy.name().to_owned(),
                class: policy.class().name().to_owned(),
            });
        }
        match policy.class() {
            PolicyClass::Apc => {
                // Observation first: heartbeats, health transitions, and
                // this cycle's report views — the placement pass below
                // reads the world through them.
                let degraded = self.observe_cycle(cycle);
                self.degraded_hold = matches!(degraded, Some(DegradedMode::Hold));
                // When several consecutive cycles started with desired ≠
                // actual, a full re-optimization would pile yet more
                // operations onto an actuation layer that is already
                // struggling; fall back to a non-disruptive fill pass for
                // one cycle and let reconciliation drain the backlog.
                if self.pending_actions() > 0 {
                    self.stalled_cycles += 1;
                } else {
                    self.stalled_cycles = 0;
                }
                if self.degraded_hold {
                    // The observed snapshot is over the staleness budget:
                    // hold all placement changes this cycle. Already-
                    // desired state keeps reconciling via retry events.
                    self.metrics.observation.stale_holds += 1;
                } else {
                    let degrade_fill = matches!(degraded, Some(DegradedMode::FillOnly));
                    let stalled_fallback = self.config.actuation.fallback_after > 0
                        && self.stalled_cycles >= self.config.actuation.fallback_after;
                    let fallback = stalled_fallback || degrade_fill;
                    let sink = Arc::clone(&self.trace);
                    let started = Instant::now();
                    let outcome = {
                        let problem = self.build_problem();
                        if fallback {
                            policy.fill_only(&problem, &*sink)
                        } else {
                            policy.place(&problem, &*sink)
                        }
                    };
                    compute_secs = started.elapsed().as_secs_f64();
                    if traced {
                        self.trace.record(&TraceEvent::PhaseSpan {
                            time: self.now.as_secs(),
                            cycle,
                            phase: Phase::Optimize,
                            wall_secs: compute_secs,
                        });
                    }
                    if degrade_fill {
                        self.metrics.observation.fill_only_degrades += 1;
                    }
                    if stalled_fallback {
                        self.metrics.actuation.fill_only_fallbacks += 1;
                        self.stalled_cycles = 0;
                    }
                    let actuate_started = Instant::now();
                    self.apply_outcome(outcome);
                    if traced {
                        self.trace.record(&TraceEvent::PhaseSpan {
                            time: self.now.as_secs(),
                            cycle,
                            phase: Phase::Actuate,
                            wall_secs: actuate_started.elapsed().as_secs_f64(),
                        });
                    }
                }
            }
            PolicyClass::Baseline => {
                // Baselines are event-driven; the cycle is only a metric
                // sampling tick. Still run the scheduler to pick up any
                // state change (idempotent when nothing changed).
                self.run_baseline_policy();
            }
        }
        let sample_started = Instant::now();
        self.record_sample(compute_secs);
        if traced {
            self.trace.record(&TraceEvent::PhaseSpan {
                time: self.now.as_secs(),
                cycle,
                phase: Phase::Sample,
                wall_secs: sample_started.elapsed().as_secs_f64(),
            });
        }
    }

    // ------------------------------------------------------------------
    // Decision making
    // ------------------------------------------------------------------

    pub(super) fn build_problem(&self) -> PlacementProblem<'_> {
        let mut workloads = BTreeMap::new();
        for (&app, job) in &self.jobs {
            if !job.is_live() || job.state.remaining_work(&job.profile).as_mcycles() <= 1e-6 {
                // Jobs whose completion event is pending at this very
                // instant are no longer placement-relevant.
                continue;
            }
            let delay = if job.is_running() {
                SimDuration::ZERO
            } else {
                self.config.cycle
            };
            // The observation layer's view of this job: the live truth
            // under perfect (or inactive) telemetry, else the stale
            // consumed work and report-noise factor the controller
            // actually received this cycle.
            let (base_consumed, obs_factor) = match self.observation.job_view(app) {
                JobView::Live => (job.state.consumed(), 1.0),
                JobView::Snapshot {
                    consumed_mcycles,
                    factor,
                } => (Work::from_mcycles(consumed_mcycles), factor),
            };
            // The controller sees the (possibly misestimated) profile;
            // scaling consumed work by the same factor keeps the fraction
            // done consistent while the remaining work carries the error.
            let mut factor = self.config.noise.work_factor(app);
            let mut measured_consumed = false;
            if self.config.profile_from_history {
                if let Some(est) = job
                    .spec
                    .class()
                    .and_then(|c| self.class_profiler.estimate(c))
                {
                    // Present the class-mean total work. Consumed work is
                    // *measured* (not estimated), so scale the profile
                    // only: factor = estimate / truth, floored so the
                    // presented job is never already "done".
                    let truth = job.profile.total_work().as_mcycles();
                    let consumed = base_consumed.as_mcycles();
                    let est_total = est.mean_work().as_mcycles().max(consumed * 1.01 + 1.0);
                    factor = est_total / truth;
                    measured_consumed = true;
                }
            }
            // Telemetry noise applies on top of whatever estimator is in
            // play (exactly 1.0 when the layer is off or quiet, keeping
            // the product bit-identical).
            factor *= obs_factor;
            let (profile, consumed) = if factor == 1.0 {
                (Arc::clone(&job.profile), base_consumed)
            } else {
                let stages = job
                    .profile
                    .stages()
                    .iter()
                    .map(|s| {
                        dynaplace_batch::job::JobStage::new(
                            s.work() * factor,
                            s.max_speed(),
                            s.min_speed(),
                            s.memory(),
                        )
                    })
                    .collect();
                let consumed = if measured_consumed {
                    base_consumed
                } else {
                    base_consumed * factor
                };
                (
                    Arc::new(dynaplace_batch::job::JobProfile::new(stages)),
                    consumed,
                )
            };
            workloads.insert(
                app,
                WorkloadModel::Batch(
                    JobSnapshot::new(app, job.spec.goal(), profile, consumed, delay)
                        .with_parallelism(job.parallelism),
                ),
            );
        }
        for (&app, txn) in &self.txns {
            if self.config.static_txn_nodes.is_some() {
                continue; // statically partitioned: not managed
            }
            // The observation layer's view of this application's arrival
            // rate: the live pattern under perfect (or inactive)
            // telemetry, else the EWMA-smoothed, headroom-inflated
            // estimate built from the delivered reports.
            let observed_rate = match self.observation.txn_view(app) {
                TxnView::Live => txn.pattern.rate_at(self.now),
                TxnView::Estimate(estimate) => estimate,
            };
            let rate = observed_rate * (1.0 + self.config.noise.txn_rate);
            let demand = if self.config.estimate_txn_demand {
                txn.profiler
                    .estimate_single()
                    .ok()
                    .filter(|d| *d > 0.0)
                    .unwrap_or(txn.demand_per_request)
            } else {
                txn.demand_per_request
            };
            workloads.insert(
                app,
                WorkloadModel::Transactional(TxnPerformanceModel::new(
                    TxnWorkload::new(rate.max(0.0), demand, txn.floor),
                    txn.goal,
                )),
            );
        }
        // The controller plans over the cluster it *believes* in:
        // identical to the effective (truth-masked) cluster until
        // telemetry declares a node dead.
        let believed = self
            .observed_cluster
            .as_ref()
            .unwrap_or(&self.effective_cluster);
        // Quarantined pairs from the actuation layer, plus a freeze on
        // every Suspect node: instances already there are left alone, but
        // no new starts are routed to a node whose heartbeats are
        // faltering.
        let mut forbidden: std::collections::BTreeSet<(AppId, NodeId)> = self
            .actuation
            .quarantined_pairs(self.now)
            .into_iter()
            .collect();
        for node in self.observation.suspect_nodes() {
            for &app in workloads.keys() {
                forbidden.insert((app, node));
            }
        }
        PlacementProblem::new(
            believed,
            &self.apps,
            workloads,
            &self.placement,
            self.now,
            self.config.cycle,
            forbidden,
        )
        .expect("engine state always yields a well-formed problem")
    }

    pub(super) fn apply_outcome(&mut self, outcome: PlacementOutcome) {
        if outcome.timed_out {
            self.metrics.actuation.deadline_truncations += 1;
        }
        let actions = outcome.actions.clone();
        self.apply_transition(outcome.placement, outcome.score.load, &actions);
    }

    /// Reverse-applies one control action onto `achieved`: the placement
    /// looks as if the action was never issued. Cells kept alive by a
    /// reverted stop (or migrate source) are recorded in `kept` so the
    /// load merge can restore their old consumption.
    pub(super) fn reverse_apply(
        achieved: &mut Placement,
        action: &PlacementAction,
        kept: &mut std::collections::BTreeSet<(AppId, NodeId)>,
        counters: &mut crate::metrics::ActuationCounters,
    ) {
        match *action {
            PlacementAction::Start { app, node } => {
                if achieved.remove(app, node).is_err() {
                    counters.invariant_skips += 1;
                }
            }
            PlacementAction::Stop { app, node } => {
                achieved.place(app, node);
                kept.insert((app, node));
            }
            PlacementAction::Migrate { app, from, to } => {
                if achieved.remove(app, to).is_err() {
                    counters.invariant_skips += 1;
                }
                achieved.place(app, from);
                kept.insert((app, from));
            }
        }
    }

    /// Runs a baseline-class policy over the full (event-driven)
    /// reschedule path: build a truth-view problem, let the policy place
    /// it, and actuate the diff against the current placement.
    pub(super) fn run_baseline_policy(&mut self) {
        let policy = self.config.scheduler.clone();
        let sink = Arc::clone(&self.trace);
        let masked = self.baseline_cluster();
        let outcome = {
            let cluster = masked.as_ref().unwrap_or(&self.effective_cluster);
            let problem = self.build_baseline_problem(cluster);
            policy.place(&problem, &*sink)
        };
        self.apply_outcome(outcome);
    }

    /// The cluster a baseline policy schedules over: the effective
    /// (failure-masked) cluster with every node outside
    /// [`SimConfig::batch_nodes`] additionally zeroed. `None` when no
    /// restriction is configured, so the hot path borrows
    /// `effective_cluster` directly.
    pub(super) fn baseline_cluster(&self) -> Option<Cluster> {
        let allowed = self.config.batch_nodes.as_ref()?;
        let mut rebuilt = Cluster::new().with_dims(self.effective_cluster.dims().clone());
        for (id, spec) in self.effective_cluster.iter() {
            if allowed.contains(&id) {
                rebuilt.add_node(spec.clone());
            } else {
                // Zero every capacity but keep the rigid vector's
                // dimensionality, exactly like a failed node: the
                // baselines skip capacity-less nodes entirely.
                let zeroed = dynaplace_model::resources::Resources::new(vec![
                    0.0;
                    spec.rigid_capacity()
                        .len()
                ]);
                rebuilt.add_node(
                    dynaplace_model::node::NodeSpec::try_with_resources(CpuSpeed::ZERO, zeroed)
                        .expect("valid node capacities")
                        .with_name(format!("{id} (off-limits)")),
                );
            }
        }
        Some(rebuilt)
    }

    /// The placement problem a baseline policy sees: the simulated truth
    /// (no estimation noise, no observation layer, no class-profile
    /// estimates) over all live jobs and — unless statically partitioned
    /// away — the transactional applications. Matches the historical
    /// reservation-scheduler inputs: the controller-side estimators are
    /// an APC-path feature.
    pub(super) fn build_baseline_problem<'a>(
        &'a self,
        cluster: &'a Cluster,
    ) -> PlacementProblem<'a> {
        let mut workloads = BTreeMap::new();
        for (&app, job) in &self.jobs {
            if !job.is_live() {
                continue;
            }
            let delay = if job.is_running() {
                SimDuration::ZERO
            } else {
                self.config.cycle
            };
            workloads.insert(
                app,
                WorkloadModel::Batch(
                    JobSnapshot::new(
                        app,
                        job.spec.goal(),
                        Arc::clone(&job.profile),
                        job.state.consumed(),
                        delay,
                    )
                    .with_parallelism(job.parallelism),
                ),
            );
        }
        for (&app, txn) in &self.txns {
            if self.config.static_txn_nodes.is_some() {
                continue; // statically partitioned: not managed
            }
            let rate = txn.pattern.rate_at(self.now) * (1.0 + self.config.noise.txn_rate);
            let demand = if self.config.estimate_txn_demand {
                txn.profiler
                    .estimate_single()
                    .ok()
                    .filter(|d| *d > 0.0)
                    .unwrap_or(txn.demand_per_request)
            } else {
                txn.demand_per_request
            };
            workloads.insert(
                app,
                WorkloadModel::Transactional(TxnPerformanceModel::new(
                    TxnWorkload::new(rate.max(0.0), demand, txn.floor),
                    txn.goal,
                )),
            );
        }
        let forbidden: std::collections::BTreeSet<(AppId, NodeId)> = self
            .actuation
            .quarantined_pairs(self.now)
            .into_iter()
            .collect();
        PlacementProblem::new(
            cluster,
            &self.apps,
            workloads,
            &self.placement,
            self.now,
            self.config.cycle,
            forbidden,
        )
        .expect("engine state always yields a well-formed problem")
    }
}
