//! The control cycle: problem construction, the periodic optimization
//! pass, between-cycle advice, and the baseline schedulers.

use super::*;

impl Simulation {
    /// Runs the between-event scheduling reaction: a start-only advice
    /// pass under APC (when enabled), a full reschedule under the
    /// baselines.
    pub(super) fn between_cycle_advice(&mut self) {
        match self.config.scheduler.clone() {
            SchedulerKind::Apc {
                config,
                advice_between_cycles,
            } => {
                if advice_between_cycles {
                    let sink = Arc::clone(&self.trace);
                    let outcome = {
                        let problem = self.build_problem();
                        fill_only_traced(&problem, &config, &*sink)
                    };
                    self.apply_outcome(outcome);
                }
            }
            SchedulerKind::Fcfs | SchedulerKind::Edf => self.run_baseline(),
        }
    }

    pub(super) fn on_cycle(&mut self) {
        self.advance_progress();
        let cycle = self.cycle_index;
        self.cycle_index += 1;
        let traced = self.trace.wants(TraceLevel::Decisions);
        if traced {
            self.trace.record(&TraceEvent::CycleStart {
                time: self.now.as_secs(),
                cycle,
            });
        }
        if self.config.estimate_txn_demand {
            self.observe_txn_demand();
        }
        let mut compute_secs = 0.0;
        match self.config.scheduler.clone() {
            SchedulerKind::Apc { config, .. } => {
                // When several consecutive cycles started with desired ≠
                // actual, a full re-optimization would pile yet more
                // operations onto an actuation layer that is already
                // struggling; fall back to a non-disruptive fill pass for
                // one cycle and let reconciliation drain the backlog.
                if self.pending_actions() > 0 {
                    self.stalled_cycles += 1;
                } else {
                    self.stalled_cycles = 0;
                }
                let fallback = self.config.actuation.fallback_after > 0
                    && self.stalled_cycles >= self.config.actuation.fallback_after;
                let sink = Arc::clone(&self.trace);
                let started = Instant::now();
                let outcome = {
                    let problem = self.build_problem();
                    if fallback {
                        fill_only_traced(&problem, &config, &*sink)
                    } else {
                        place_traced(&problem, &config, &*sink)
                    }
                };
                compute_secs = started.elapsed().as_secs_f64();
                if traced {
                    self.trace.record(&TraceEvent::PhaseSpan {
                        time: self.now.as_secs(),
                        cycle,
                        phase: Phase::Optimize,
                        wall_secs: compute_secs,
                    });
                }
                if fallback {
                    self.metrics.actuation.fill_only_fallbacks += 1;
                    self.stalled_cycles = 0;
                }
                let actuate_started = Instant::now();
                self.apply_outcome(outcome);
                if traced {
                    self.trace.record(&TraceEvent::PhaseSpan {
                        time: self.now.as_secs(),
                        cycle,
                        phase: Phase::Actuate,
                        wall_secs: actuate_started.elapsed().as_secs_f64(),
                    });
                }
            }
            SchedulerKind::Fcfs | SchedulerKind::Edf => {
                // Baselines are event-driven; the cycle is only a metric
                // sampling tick. Still run the scheduler to pick up any
                // state change (idempotent when nothing changed).
                self.run_baseline();
            }
        }
        let sample_started = Instant::now();
        self.record_sample(compute_secs);
        if traced {
            self.trace.record(&TraceEvent::PhaseSpan {
                time: self.now.as_secs(),
                cycle,
                phase: Phase::Sample,
                wall_secs: sample_started.elapsed().as_secs_f64(),
            });
        }
    }

    // ------------------------------------------------------------------
    // Decision making
    // ------------------------------------------------------------------

    pub(super) fn build_problem(&self) -> PlacementProblem<'_> {
        let mut workloads = BTreeMap::new();
        for (&app, job) in &self.jobs {
            if !job.is_live() || job.state.remaining_work(&job.profile).as_mcycles() <= 1e-6 {
                // Jobs whose completion event is pending at this very
                // instant are no longer placement-relevant.
                continue;
            }
            let delay = if job.is_running() {
                SimDuration::ZERO
            } else {
                self.config.cycle
            };
            // The controller sees the (possibly misestimated) profile;
            // scaling consumed work by the same factor keeps the fraction
            // done consistent while the remaining work carries the error.
            let mut factor = self.config.noise.work_factor(app);
            let mut measured_consumed = false;
            if self.config.profile_from_history {
                if let Some(est) = job
                    .spec
                    .class()
                    .and_then(|c| self.class_profiler.estimate(c))
                {
                    // Present the class-mean total work. Consumed work is
                    // *measured* (not estimated), so scale the profile
                    // only: factor = estimate / truth, floored so the
                    // presented job is never already "done".
                    let truth = job.profile.total_work().as_mcycles();
                    let consumed = job.state.consumed().as_mcycles();
                    let est_total = est.mean_work().as_mcycles().max(consumed * 1.01 + 1.0);
                    factor = est_total / truth;
                    measured_consumed = true;
                }
            }
            let (profile, consumed) = if factor == 1.0 {
                (Arc::clone(&job.profile), job.state.consumed())
            } else {
                let stages = job
                    .profile
                    .stages()
                    .iter()
                    .map(|s| {
                        dynaplace_batch::job::JobStage::new(
                            s.work() * factor,
                            s.max_speed(),
                            s.min_speed(),
                            s.memory(),
                        )
                    })
                    .collect();
                let consumed = if measured_consumed {
                    job.state.consumed()
                } else {
                    job.state.consumed() * factor
                };
                (
                    Arc::new(dynaplace_batch::job::JobProfile::new(stages)),
                    consumed,
                )
            };
            workloads.insert(
                app,
                WorkloadModel::Batch(
                    JobSnapshot::new(app, job.spec.goal(), profile, consumed, delay)
                        .with_parallelism(job.parallelism),
                ),
            );
        }
        for (&app, txn) in &self.txns {
            if self.config.static_txn_nodes.is_some() {
                continue; // statically partitioned: not managed
            }
            let rate = txn.pattern.rate_at(self.now) * (1.0 + self.config.noise.txn_rate);
            let demand = if self.config.estimate_txn_demand {
                txn.profiler
                    .estimate_single()
                    .ok()
                    .filter(|d| *d > 0.0)
                    .unwrap_or(txn.demand_per_request)
            } else {
                txn.demand_per_request
            };
            workloads.insert(
                app,
                WorkloadModel::Transactional(TxnPerformanceModel::new(
                    TxnWorkload::new(rate.max(0.0), demand, txn.floor),
                    txn.goal,
                )),
            );
        }
        PlacementProblem::new(
            &self.effective_cluster,
            &self.apps,
            workloads,
            &self.placement,
            self.now,
            self.config.cycle,
            self.actuation
                .quarantined_pairs(self.now)
                .into_iter()
                .collect(),
        )
        .expect("engine state always yields a well-formed problem")
    }

    pub(super) fn apply_outcome(&mut self, outcome: PlacementOutcome) {
        if outcome.timed_out {
            self.metrics.actuation.deadline_truncations += 1;
        }
        let actions = outcome.actions.clone();
        self.apply_transition(outcome.placement, outcome.score.load, &actions);
    }

    /// Reverse-applies one control action onto `achieved`: the placement
    /// looks as if the action was never issued. Cells kept alive by a
    /// reverted stop (or migrate source) are recorded in `kept` so the
    /// load merge can restore their old consumption.
    pub(super) fn reverse_apply(
        achieved: &mut Placement,
        action: &PlacementAction,
        kept: &mut std::collections::BTreeSet<(AppId, NodeId)>,
        counters: &mut crate::metrics::ActuationCounters,
    ) {
        match *action {
            PlacementAction::Start { app, node } => {
                if achieved.remove(app, node).is_err() {
                    counters.invariant_skips += 1;
                }
            }
            PlacementAction::Stop { app, node } => {
                achieved.place(app, node);
                kept.insert((app, node));
            }
            PlacementAction::Migrate { app, from, to } => {
                if achieved.remove(app, to).is_err() {
                    counters.invariant_skips += 1;
                }
                achieved.place(app, from);
                kept.insert((app, from));
            }
        }
    }

    pub(super) fn baseline_nodes(&self) -> Vec<NodeCapacity> {
        let allowed = self.config.batch_nodes.clone();
        self.effective_cluster
            .iter()
            .filter(|(id, _)| {
                !self.failed_nodes.contains(id) && allowed.as_ref().map_or(true, |v| v.contains(id))
            })
            .map(|(id, spec)| NodeCapacity {
                node: id,
                cpu: spec.cpu_capacity(),
                memory: spec.memory_capacity(),
            })
            .collect()
    }

    pub(super) fn run_baseline(&mut self) {
        let nodes = self.baseline_nodes();
        // Reservation-based schedulers reserve a job's full speed; a job
        // faster than any node caps its reservation at the largest node
        // (it simply runs slower there).
        let largest = nodes
            .iter()
            .map(|n| n.cpu)
            .fold(CpuSpeed::ZERO, CpuSpeed::max);
        let jobs: Vec<BaselineJob> = self
            .jobs
            .iter()
            .filter(|(_, j)| j.is_live())
            .map(|(&app, j)| BaselineJob {
                app,
                arrival: j.spec.arrival(),
                deadline: j.spec.goal().deadline(),
                memory: j.state.current_memory(&j.profile).unwrap_or(Memory::ZERO),
                max_speed: j
                    .state
                    .current_speed_bounds(&j.profile)
                    .map_or(CpuSpeed::ZERO, |(_, max)| max)
                    .min(largest),
                current_node: j.node,
            })
            .collect();
        let target = match self.config.scheduler {
            SchedulerKind::Fcfs => fcfs_schedule(&nodes, &jobs),
            SchedulerKind::Edf => edf_schedule(&nodes, &jobs),
            SchedulerKind::Apc { .. } => unreachable!("baseline path"),
        };
        let actions = self.placement.diff(&target);
        let mut load = LoadDistribution::new();
        for job in &jobs {
            if let Some(node) = target.single_node_of(job.app) {
                load.set(job.app, node, job.max_speed);
            }
        }
        self.apply_transition(target, load, &actions);
    }
}
