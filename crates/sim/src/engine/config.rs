//! Simulator configuration: scheduler selection, cycle timing,
//! injected node outages, and estimation noise.

use super::*;

/// Which decision maker drives the cluster.
///
/// Retired in favor of the open [`PolicyHandle`] surface: any policy in
/// the registry (or a custom [`dynaplace_apc::PlacementPolicy`]) can
/// drive the engine now, not just these three.
#[deprecated(
    since = "0.6.0",
    note = "use `PolicyHandle` (e.g. `PolicyHandle::apc_with`, `dynaplace_apc::resolve_policy`) instead"
)]
#[derive(Debug, Clone)]
pub enum SchedulerKind {
    /// The paper's placement controller, running a full optimization
    /// every control cycle. When `advice_between_cycles` is set, job
    /// arrivals and completions additionally trigger a non-disruptive
    /// fill pass (§3.1: the scheduler consults the controller on where
    /// and *when* a job should run).
    Apc {
        /// Optimizer tunables.
        config: ApcConfig,
        /// Run a start-only advice pass on arrivals/completions.
        advice_between_cycles: bool,
    },
    /// First-Come, First-Served (non-preemptive, first fit).
    Fcfs,
    /// Earliest Deadline First (preemptive, first fit).
    Edf,
}

#[allow(deprecated)]
impl From<SchedulerKind> for PolicyHandle {
    fn from(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::Apc {
                config,
                advice_between_cycles,
            } => PolicyHandle::apc_with(config, advice_between_cycles),
            SchedulerKind::Fcfs => PolicyHandle::new(FcfsPolicy),
            SchedulerKind::Edf => PolicyHandle::new(EdfPolicy),
        }
    }
}

/// One scripted node outage: the node's capacity drops to zero at
/// `at`, instances on it are evicted (jobs suspended, losing no
/// completed work), and — when `duration` is set — the node recovers
/// with full capacity `duration` later, after which the scheduler may
/// place work on it again through the normal optimizer path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeOutage {
    /// Offset of the failure from the start of the run.
    pub at: SimDuration,
    /// The failing node.
    pub node: NodeId,
    /// Outage length; `None` means the node never comes back.
    pub duration: Option<SimDuration>,
}

impl NodeOutage {
    /// A permanent failure (the pre-transient behavior).
    pub fn permanent(at: SimDuration, node: NodeId) -> Self {
        Self {
            at,
            node,
            duration: None,
        }
    }

    /// A transient failure: the node recovers `duration` after failing.
    pub fn transient(at: SimDuration, node: NodeId, duration: SimDuration) -> Self {
        Self {
            at,
            node,
            duration: Some(duration),
        }
    }
}

impl From<(SimDuration, NodeId)> for NodeOutage {
    fn from((at, node): (SimDuration, NodeId)) -> Self {
        Self::permanent(at, node)
    }
}

/// What the engine keeps of per-job completion history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MetricsRetention {
    /// Keep a [`CompletionRecord`] per job (the classic behavior; memory
    /// grows with the number of jobs submitted).
    #[default]
    Full,
    /// Fold completions into [`RunMetrics::totals`] and retire finished
    /// jobs entirely — their map entries are dropped and their
    /// application ids recycled, so memory stays bounded by the number
    /// of *concurrently live* jobs. Only meaningful for streaming runs;
    /// per-cycle samples are still kept (they grow with run length, not
    /// job count).
    Aggregate,
}

/// Simulation-wide configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Control cycle length `T` (also the metric sampling period).
    pub cycle: SimDuration,
    /// Hard stop; when `None` the simulation runs until every job has
    /// completed.
    pub horizon: Option<SimDuration>,
    /// VM operation cost model.
    pub costs: VmCostModel,
    /// The decision maker: any [`dynaplace_apc::PlacementPolicy`] behind
    /// a shared handle — resolve one by name via
    /// [`dynaplace_apc::resolve_policy`], or wrap a custom policy with
    /// [`PolicyHandle::new`].
    pub scheduler: PolicyHandle,
    /// Nodes batch jobs may use under the baseline schedulers; `None`
    /// means all nodes. (The APC path uses per-application pinning
    /// instead.)
    pub batch_nodes: Option<Vec<NodeId>>,
    /// When set, transactional applications are not managed by the
    /// scheduler: each receives a fixed allocation equal to
    /// `min(its saturation allocation, the capacity of these nodes)` —
    /// the paper's static partitioning baseline (Experiment Three).
    pub static_txn_nodes: Option<Vec<NodeId>>,
    /// Estimation errors injected into what the *controller* sees (the
    /// simulated truth is unaffected). Models imperfect job workload
    /// profilers and CPU-demand estimators (§3.1).
    pub noise: EstimationNoise,
    /// On-the-fly profile generation (the paper's future work): when
    /// set, jobs tagged with a class whose history has at least three
    /// completions are presented to the controller with the *estimated*
    /// class-mean work instead of their true profile.
    pub profile_from_history: bool,
    /// Scripted node failures (permanent or transient): at each offset
    /// from the start of the run, the node's capacity drops to zero,
    /// instances on it are evicted (jobs suspended, losing no completed
    /// work), and the scheduler re-places the survivors; transient
    /// outages recover after their duration.
    pub node_failures: Vec<NodeOutage>,
    /// Close the work-profiler loop (§3.1): instead of the configured
    /// per-request demand, the controller uses an online regression
    /// estimate from (throughput, CPU-used) observations taken each
    /// control cycle — with a small deterministic measurement error so
    /// the estimator actually works for its living.
    pub estimate_txn_demand: bool,
    /// Record the full placement at every cycle sample (golden-file
    /// regression tests diff consecutive records). Off by default: the
    /// records grow linearly with run length × cluster occupancy.
    pub record_placements: bool,
    /// The fallible actuation layer (VM operation failure rate, latency
    /// jitter, timeout, backoff/quarantine policy). The default models a
    /// perfect layer: every operation succeeds with exactly the cost
    /// model's latency, bit-identical to a simulator without actuation.
    pub actuation: ActuationConfig,
    /// The imperfect-telemetry observation layer (heartbeat loss,
    /// report staleness, demand noise, node-health hysteresis, demand
    /// estimation, staleness-budget degraded modes). The default models
    /// perfect telemetry: the engine skips the layer entirely and runs
    /// are bit-identical to a simulator without an observation layer.
    pub observation: ObservationConfig,
    /// Decision-provenance tracing. With `path` unset (the default) the
    /// engine installs a no-op sink and the run is bit-identical to an
    /// untraced build; with a path, every controller decision is buffered
    /// as a JSONL event stream and flushed there at end of run.
    pub trace: TraceConfig,
    /// Starvation breaker (unbounded runs only): after this many
    /// consecutive control cycles in which live jobs exist, nothing else
    /// is pending, and the system state is provably identical to the
    /// previous cycle, the run is declared starved — the surviving jobs
    /// are recorded in [`RunMetrics::starvation`] and the simulation
    /// terminates instead of cycling forever. Since the sub-floor
    /// utility band made hopeless-job starvation impossible by
    /// construction, this is a should-never-fire diagnostic: a trip
    /// indicates a controller regression, not a legitimate workload
    /// outcome. `0` disables the breaker (such runs then never return).
    pub stall_limit: u32,
    /// Completion-history retention. [`MetricsRetention::Full`] (the
    /// default) keeps every per-job record; [`MetricsRetention::Aggregate`]
    /// folds completions into running totals and retires finished jobs so
    /// long streaming runs hold memory proportional to concurrency, not
    /// job count.
    pub retention: MetricsRetention,
}

/// Default [`SimConfig::stall_limit`]: generous, because slow-moving
/// controller state (e.g. the online demand profiler accumulating
/// observations) may legitimately take many identical-looking cycles
/// before a decision flips.
pub const DEFAULT_STALL_LIMIT: u32 = 64;

/// Relative estimation errors presented to the placement controller.
///
/// Each job gets a deterministic bias in `[-job_work, +job_work]`
/// (derived from its id), applied to the *remaining work* the controller
/// sees; the transactional arrival rate is scaled by `1 + txn_rate`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EstimationNoise {
    /// Maximum relative error on each job's remaining work (0.2 = ±20%).
    pub job_work: f64,
    /// Relative error on transactional arrival rates (may be negative).
    pub txn_rate: f64,
}

impl EstimationNoise {
    /// No estimation error (the default).
    pub const NONE: Self = Self {
        job_work: 0.0,
        txn_rate: 0.0,
    };

    /// Deterministic per-job bias factor in `[1 - job_work, 1 + job_work]`.
    pub(super) fn work_factor(&self, app: AppId) -> f64 {
        if self.job_work == 0.0 {
            return 1.0;
        }
        // Knuth multiplicative hash → uniform-ish in [-1, 1].
        let h = (app.index() as u64).wrapping_mul(2_654_435_761) % 10_000;
        let unit = (h as f64) / 5_000.0 - 1.0;
        1.0 + self.job_work * unit
    }
}

impl SimConfig {
    /// A configuration with the paper's defaults: 600 s control cycle,
    /// measured VM costs, APC scheduling with between-cycle advice.
    pub fn apc_default() -> Self {
        Self {
            cycle: SimDuration::from_secs(600.0),
            horizon: None,
            costs: VmCostModel::default(),
            scheduler: PolicyHandle::apc_with(ApcConfig::default(), true),
            batch_nodes: None,
            static_txn_nodes: None,
            noise: EstimationNoise::NONE,
            profile_from_history: false,
            node_failures: Vec::new(),
            estimate_txn_demand: false,
            record_placements: false,
            actuation: ActuationConfig::default(),
            observation: ObservationConfig::default(),
            trace: TraceConfig::default(),
            stall_limit: DEFAULT_STALL_LIMIT,
            retention: MetricsRetention::Full,
        }
    }

    /// Same timing/costs but FCFS scheduling.
    pub fn fcfs_default() -> Self {
        Self {
            scheduler: PolicyHandle::new(FcfsPolicy),
            ..Self::apc_default()
        }
    }

    /// Same timing/costs but EDF scheduling.
    pub fn edf_default() -> Self {
        Self {
            scheduler: PolicyHandle::new(EdfPolicy),
            ..Self::apc_default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_factor_is_deterministic_and_bounded() {
        let noise = EstimationNoise {
            job_work: 0.3,
            txn_rate: 0.0,
        };
        for i in 0..100 {
            let app = AppId::new(i);
            let f1 = noise.work_factor(app);
            let f2 = noise.work_factor(app);
            assert_eq!(f1, f2, "factor must be a pure function of the id");
            assert!((0.7..=1.3).contains(&f1), "factor {f1} out of bounds");
        }
    }

    #[test]
    fn zero_noise_is_exactly_one() {
        let noise = EstimationNoise::NONE;
        for i in 0..10 {
            assert_eq!(noise.work_factor(AppId::new(i)), 1.0);
        }
    }

    #[test]
    fn noise_factors_spread_across_ids() {
        // Not all jobs share the same bias (the hash spreads them).
        let noise = EstimationNoise {
            job_work: 0.5,
            txn_rate: 0.0,
        };
        let factors: std::collections::BTreeSet<u64> = (0..50)
            .map(|i| (noise.work_factor(AppId::new(i)) * 1e6) as u64)
            .collect();
        assert!(
            factors.len() > 25,
            "biases should be diverse: {}",
            factors.len()
        );
    }

    #[test]
    fn config_constructors_pick_schedulers() {
        assert_eq!(SimConfig::apc_default().scheduler.name(), "apc");
        assert!(SimConfig::apc_default().scheduler.advises_between_cycles());
        assert_eq!(SimConfig::fcfs_default().scheduler.name(), "fcfs");
        assert_eq!(SimConfig::edf_default().scheduler.name(), "edf");
        assert_eq!(
            SimConfig::fcfs_default().scheduler.class(),
            PolicyClass::Baseline
        );
    }

    #[test]
    #[allow(deprecated)]
    fn scheduler_kind_shim_converts_to_handles() {
        let apc: PolicyHandle = SchedulerKind::Apc {
            config: ApcConfig::default(),
            advice_between_cycles: false,
        }
        .into();
        assert_eq!(apc.name(), "apc");
        assert!(!apc.advises_between_cycles());
        let fcfs: PolicyHandle = SchedulerKind::Fcfs.into();
        assert_eq!(fcfs.name(), "fcfs");
        let edf: PolicyHandle = SchedulerKind::Edf.into();
        assert_eq!(edf.name(), "edf");
    }
}
