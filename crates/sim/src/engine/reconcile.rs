//! Desired/actual reconciliation and fault handling: the effective
//! (failure-masked) cluster, node outage events, actuation retries, and
//! the fallible placement transition with feasibility rollback.

use super::*;

impl Simulation {
    /// Rebuilds the scheduler-visible cluster from the real one with every
    /// currently failed node's capacity zeroed.
    pub(super) fn rebuild_effective(&mut self) {
        // Keep the real cluster's rigid dimension registry: a default
        // (memory-only) registry would make multi-dim node vectors
        // inconsistent and be rejected at problem build time.
        let mut rebuilt = Cluster::new().with_dims(self.cluster.dims().clone());
        for (id, spec) in self.cluster.iter() {
            if self.failed_nodes.contains(&id) {
                // Zero every capacity but keep the node's rigid vector
                // dimensionality: a memory-only stand-in would make the
                // cluster dimensionally inconsistent under a multi-dim
                // registry and be rejected at problem build time.
                let zeroed = dynaplace_model::resources::Resources::new(vec![
                    0.0;
                    spec.rigid_capacity()
                        .len()
                ]);
                rebuilt.add_node(
                    dynaplace_model::node::NodeSpec::try_with_resources(CpuSpeed::ZERO, zeroed)
                        .expect("valid node capacities")
                        .with_name(format!("{id} (failed)")),
                );
            } else {
                rebuilt.add_node(spec.clone());
            }
        }
        self.effective_cluster = rebuilt;
        // The controller's believed cluster is derived from the
        // effective one, so it must track every failure/recovery.
        self.rebuild_observed();
    }

    /// Rebuilds the cluster as the *controller believes* it: the
    /// effective (truth-masked) cluster with every believed-dead node's
    /// capacity additionally zeroed. `None` while nothing is believed
    /// dead, so the hot inactive path borrows `effective_cluster`
    /// directly.
    pub(super) fn rebuild_observed(&mut self) {
        if self.observation.believed_dead.is_empty() {
            self.observed_cluster = None;
            return;
        }
        let mut rebuilt = Cluster::new().with_dims(self.effective_cluster.dims().clone());
        for (id, spec) in self.effective_cluster.iter() {
            if self.observation.believed_dead.contains(&id) {
                let zeroed = dynaplace_model::resources::Resources::new(vec![
                    0.0;
                    spec.rigid_capacity()
                        .len()
                ]);
                rebuilt.add_node(
                    dynaplace_model::node::NodeSpec::try_with_resources(CpuSpeed::ZERO, zeroed)
                        .expect("valid node capacities")
                        .with_name(format!("{id} (believed dead)")),
                );
            } else {
                rebuilt.add_node(spec.clone());
            }
        }
        self.observed_cluster = Some(rebuilt);
    }

    /// Evicts every resident of `node` from the actual placement and
    /// load (jobs suspend, keeping their completed work; transactional
    /// instances just vanish), purges the node from the controller's
    /// standing decision so reconciliation stops aiming at it, and
    /// reprojects job completions. Shared between true node failures
    /// and telemetry-declared (believed) deaths — the caller decides
    /// which cluster view to rebuild and whether the scheduler reacts
    /// immediately. Idempotent: evicting an already-empty node touches
    /// nothing and counts no skips.
    pub(super) fn evict_node_residents(&mut self, node: NodeId) {
        let victims: Vec<AppId> = self.placement.apps_on(node).map(|(app, _)| app).collect();
        for app in victims {
            while self.placement.count(app, node) > 0 {
                if self.placement.remove(app, node).is_err() {
                    self.metrics.actuation.invariant_skips += 1;
                    break;
                }
            }
            self.load.set(app, node, CpuSpeed::ZERO);
            if let Some(job) = self.jobs.get_mut(&app) {
                if job.is_running() && !self.placement.is_placed(app) {
                    job.state.suspend();
                    job.node = None;
                    self.metrics.changes.suspends += 1;
                }
                job.allocation = self.load.app_total(app);
            }
        }
        // The controller's standing decision can no longer mean the dead
        // node; purge it so a later recovery does not resurrect stale
        // placement intents.
        let stale: Vec<AppId> = self.desired.apps_on(node).map(|(app, _)| app).collect();
        for app in stale {
            while self.desired.count(app, node) > 0 {
                if self.desired.remove(app, node).is_err() {
                    self.metrics.actuation.invariant_skips += 1;
                    break;
                }
            }
            self.desired_load.set(app, node, CpuSpeed::ZERO);
        }
        let ids: Vec<AppId> = self.jobs.keys().copied().collect();
        for app in ids {
            self.reschedule_completion(app);
        }
    }

    pub(super) fn on_node_failure(&mut self, node: NodeId) {
        self.advance_progress();
        if !self.failed_nodes.insert(node) {
            return; // already failed
        }
        // Zero the node's capacity in the scheduler-visible cluster,
        // then evict everything on it.
        self.rebuild_effective();
        self.evict_node_residents(node);
        // Let the scheduler react immediately.
        self.between_cycle_advice();
    }

    pub(super) fn on_node_recovery(&mut self, node: NodeId) {
        self.advance_progress();
        if !self.failed_nodes.remove(&node) {
            return; // never failed (or recovered already)
        }
        self.rebuild_effective();
        // The capacity is back; suspended jobs resume through the normal
        // scheduling path (advice pass now, full optimization next cycle).
        self.between_cycle_advice();
    }

    pub(super) fn on_actuation_retry(&mut self) {
        self.advance_progress();
        self.reconcile();
    }

    /// Whether `app` still participates in placement (an unfinished job or
    /// a registered transactional application).
    pub(super) fn app_is_live(&self, app: AppId) -> bool {
        self.jobs
            .get(&app)
            .map(|j| j.is_live())
            .unwrap_or_else(|| self.txns.contains_key(&app))
    }

    /// The desired placement restricted to what is still actuatable: live
    /// applications on live nodes.
    pub(super) fn surviving_desired(&self) -> Placement {
        self.desired
            .iter()
            .filter(|&(app, node, _)| !self.failed_nodes.contains(&node) && self.app_is_live(app))
            .collect()
    }

    /// Size of the diff between the actual placement and the surviving
    /// desired placement: the operations reconciliation still owes. Always
    /// zero with infallible actuation.
    pub(super) fn pending_actions(&self) -> usize {
        self.placement.diff(&self.surviving_desired()).len()
    }

    /// Drives the actual placement toward the (surviving) desired one by
    /// re-issuing the missing operations through the actuation layer.
    /// Runs on every actuation-retry event; a no-op when nothing diverged.
    pub(super) fn reconcile(&mut self) {
        match self.config.scheduler.class() {
            PolicyClass::Apc => {
                let target = self.surviving_desired();
                let actions = self.placement.diff(&target);
                if actions.is_empty() {
                    return;
                }
                let traced = self.trace.wants(TraceLevel::Decisions);
                let cycle = self.cycle_index.saturating_sub(1);
                if traced {
                    self.trace.record(&TraceEvent::ReconcileDiff {
                        time: self.now.as_secs(),
                        cycle,
                        pending: actions.len(),
                    });
                }
                let mut load = LoadDistribution::new();
                for (app, node, _count) in target.iter() {
                    let v = self.desired_load.get(app, node);
                    if v.as_mhz() > 0.0 {
                        load.set(app, node, v);
                    }
                }
                let started = Instant::now();
                self.apply_transition(target, load, &actions);
                if traced {
                    self.trace.record(&TraceEvent::PhaseSpan {
                        time: self.now.as_secs(),
                        cycle,
                        phase: Phase::Reconcile,
                        wall_secs: started.elapsed().as_secs_f64(),
                    });
                }
            }
            PolicyClass::Baseline => self.run_baseline_policy(),
        }
    }

    /// Applies a new placement + load through the (possibly fallible)
    /// actuation layer: resolves each VM operation, counts the ones that
    /// actually applied, charges transition latencies, reverse-applies
    /// failed/deferred operations so the *actual* placement keeps the old
    /// state, and derives every job's lifecycle from its actual placement
    /// *membership* (which also covers malleable parallel jobs whose task
    /// count changes without the job stopping).
    ///
    /// With the default [`ActuationConfig`] every operation applies with
    /// exactly the cost model's latency and this reduces to the
    /// infallible transition: `placement = target`, `load` verbatim.
    pub(super) fn apply_transition(
        &mut self,
        target: Placement,
        load: LoadDistribution,
        actions: &[PlacementAction],
    ) {
        // The controller's decision is the *desired* state verbatim; the
        // rest of this function decides how much of it actually lands.
        self.desired = target.clone();
        self.desired_load = load.clone();

        let acfg = self.config.actuation;
        let costs = self.config.costs;
        let traced = self.trace.wants(TraceLevel::Decisions);
        let trace_cycle = self.cycle_index.saturating_sub(1);

        // Pass 1: resolve every action against the actuation layer, before
        // any job-state changes (the boot-vs-resume distinction needs the
        // old `ever_started`). Failed and backoff-deferred operations are
        // reverse-applied onto `achieved`.
        let mut achieved = target;
        let mut latency: BTreeMap<AppId, SimDuration> = BTreeMap::new();
        let mut kept: std::collections::BTreeSet<(AppId, NodeId)> = Default::default();
        let mut diverged = false;
        // Applied instance-adding actions, in order, for the feasibility
        // rollback below: (action, counted as resume).
        let mut applied_adds: Vec<(PlacementAction, bool)> = Vec::new();

        for action in actions {
            let app = action.app();
            let Some(job) = self.jobs.get(&app) else {
                continue; // transactional instances reconfigure freely
            };
            let footprint = job
                .state
                .current_memory(&job.profile)
                .unwrap_or(Memory::ZERO);
            let (op, op_node) = match *action {
                PlacementAction::Start { node, .. } => {
                    let op = if job.ever_started {
                        VmOperation::Resume
                    } else {
                        VmOperation::Boot
                    };
                    (op, node)
                }
                PlacementAction::Stop { node, .. } => (VmOperation::Suspend, node),
                PlacementAction::Migrate { to, .. } => (VmOperation::Migrate, to),
            };
            // Backoff / quarantine gate: the operation is not even issued
            // this round; a retry event is already scheduled.
            if self.actuation.is_blocked(app, op_node, self.now) {
                Self::reverse_apply(
                    &mut achieved,
                    action,
                    &mut kept,
                    &mut self.metrics.actuation,
                );
                self.metrics.actuation.deferrals += 1;
                if traced {
                    self.trace.record(&TraceEvent::OpDeferred {
                        time: self.now.as_secs(),
                        cycle: trace_cycle,
                        app,
                        node: op_node,
                        reason: "backoff",
                    });
                }
                diverged = true;
                continue;
            }
            let attempt = self.actuation.next_attempt(app, op_node);
            let outcome = acfg.resolve(
                &costs,
                op,
                footprint,
                OpAttempt {
                    app,
                    node: op_node,
                    attempt,
                },
                self.now,
            );
            if traced {
                self.trace.record(&TraceEvent::OpResolved {
                    time: self.now.as_secs(),
                    cycle: trace_cycle,
                    app,
                    node: op_node,
                    op: op.name(),
                    attempt: u64::from(attempt),
                    outcome: match outcome {
                        OpOutcome::Applied(_) => "applied",
                        OpOutcome::Failed(_) => "failed",
                        OpOutcome::TimedOut(_) => "timed_out",
                    },
                    latency_secs: outcome.latency().as_secs(),
                });
            }
            if outcome.applied() {
                let lat = match op {
                    // Suspends overlap the cycle boundary for free, as in
                    // the infallible engine.
                    VmOperation::Suspend => SimDuration::ZERO,
                    _ => outcome.latency(),
                };
                match op {
                    VmOperation::Boot => self.metrics.changes.starts += 1,
                    VmOperation::Resume => self.metrics.changes.resumes += 1,
                    VmOperation::Suspend => self.metrics.changes.suspends += 1,
                    VmOperation::Migrate => self.metrics.changes.migrations += 1,
                }
                if attempt > 1 {
                    self.metrics.actuation.retries += 1;
                }
                self.actuation.record_success(app, op_node);
                if !matches!(op, VmOperation::Suspend) {
                    applied_adds.push((*action, matches!(op, VmOperation::Resume)));
                }
                let entry = latency.entry(app).or_insert(SimDuration::ZERO);
                *entry = entry.max(lat);
            } else {
                // The operation burned its latency but the placement is
                // unchanged; back off and retry via reconciliation.
                Self::reverse_apply(
                    &mut achieved,
                    action,
                    &mut kept,
                    &mut self.metrics.actuation,
                );
                diverged = true;
                match outcome {
                    OpOutcome::Failed(_) => self.metrics.actuation.failed_ops += 1,
                    OpOutcome::TimedOut(_) => self.metrics.actuation.timed_out_ops += 1,
                    OpOutcome::Applied(_) => unreachable!("handled above"),
                }
                let entry = latency.entry(app).or_insert(SimDuration::ZERO);
                *entry = entry.max(outcome.latency());
                let detected = self.now + outcome.latency();
                let disp = self.actuation.record_failure(&acfg, app, op_node, detected);
                if disp.quarantined {
                    self.metrics.actuation.quarantines += 1;
                    if traced {
                        self.trace.record(&TraceEvent::Quarantined {
                            time: self.now.as_secs(),
                            cycle: trace_cycle,
                            app,
                            node: op_node,
                        });
                    }
                }
                self.events.push(disp.retry_at, EventKind::ActuationRetry);
            }
        }

        // An instance kept alive by a failed stop can make its node
        // infeasible for adds that *did* apply (in a real cluster the
        // hypervisor would refuse them: not enough free memory, or an
        // anti-affinity conflict with the instance that was supposed to be
        // gone). Roll back the most recent applied add on the offending
        // node until the placement is consistent; reconciliation re-issues
        // the rolled-back operations once the node drains.
        if !kept.is_empty() {
            while let Err(err) = achieved.validate(&self.effective_cluster, &self.apps) {
                use dynaplace_model::error::ModelError;
                let node = match err {
                    ModelError::MemoryExceeded { node } => node,
                    ModelError::ResourceExceeded { node, .. } => node,
                    ModelError::AntiAffinityViolated { node, .. } => node,
                    _ => {
                        self.metrics.actuation.invariant_skips += 1;
                        break;
                    }
                };
                let Some(pos) = applied_adds.iter().rposition(|(a, _)| match *a {
                    PlacementAction::Start { node: n, .. } => n == node,
                    PlacementAction::Migrate { to, .. } => to == node,
                    PlacementAction::Stop { .. } => false,
                }) else {
                    self.metrics.actuation.invariant_skips += 1;
                    break;
                };
                let (rolled, resumed) = applied_adds.remove(pos);
                match rolled {
                    PlacementAction::Start { app, node } => {
                        if achieved.remove(app, node).is_err() {
                            self.metrics.actuation.invariant_skips += 1;
                        }
                        if resumed {
                            self.metrics.changes.resumes -= 1;
                        } else {
                            self.metrics.changes.starts -= 1;
                        }
                    }
                    PlacementAction::Migrate { app, from, to } => {
                        if achieved.remove(app, to).is_err() {
                            self.metrics.actuation.invariant_skips += 1;
                        }
                        achieved.place(app, from);
                        kept.insert((app, from));
                        self.metrics.changes.migrations -= 1;
                    }
                    PlacementAction::Stop { .. } => unreachable!("stops never add instances"),
                }
                self.metrics.actuation.deferrals += 1;
                if traced {
                    self.trace.record(&TraceEvent::OpDeferred {
                        time: self.now.as_secs(),
                        cycle: trace_cycle,
                        app: rolled.app(),
                        node,
                        reason: "rollback",
                    });
                }
                self.events
                    .push(self.now + acfg.base_backoff, EventKind::ActuationRetry);
                diverged = true;
            }
        }

        // Load: verbatim on the (common) fully-applied path — bit-identical
        // to the infallible engine — else the intended load restricted to
        // the cells that exist, plus the kept instances at their old
        // consumption clamped to what their node has left.
        let merged = if !diverged {
            load
        } else {
            let mut merged = LoadDistribution::new();
            for (app, node, count) in achieved.iter() {
                if kept.contains(&(app, node)) {
                    continue;
                }
                // The intended speed was computed for the *intended*
                // instance count; a partially-applied add (e.g. one of a
                // parallel job's tasks failing to start) leaves fewer, so
                // clamp to what the surviving instances may legally run.
                let mut v = load.get(app, node);
                if let Ok(spec) = self.apps.get(app) {
                    let max = spec.max_instance_speed().as_mhz() * f64::from(count);
                    if max.is_finite() {
                        v = v.min(CpuSpeed::from_mhz(max));
                    }
                }
                if v.as_mhz() > 0.0 {
                    merged.set(app, node, v);
                }
            }
            for &(app, node) in &kept {
                let count = achieved.count(app, node);
                if count == 0 {
                    continue;
                }
                let capacity = self
                    .effective_cluster
                    .node(node)
                    .map(|n| n.cpu_capacity())
                    .unwrap_or(CpuSpeed::ZERO);
                let free = CpuSpeed::from_mhz(
                    (capacity.as_mhz() - merged.node_total(node).as_mhz()).max(0.0),
                );
                let mut v = self.load.get(app, node).min(free);
                if let Ok(spec) = self.apps.get(app) {
                    let max = spec.max_instance_speed().as_mhz() * f64::from(count);
                    if max.is_finite() {
                        v = v.min(CpuSpeed::from_mhz(max));
                    }
                }
                if v.as_mhz() > 0.0 {
                    merged.set(app, node, v);
                }
            }
            merged
        };

        // Pass 2: lifecycle from *actual* placement membership.
        let ids: Vec<AppId> = self.jobs.keys().copied().collect();
        for app in &ids {
            let placed = achieved.is_placed(*app);
            let Some(job) = self.jobs.get_mut(app) else {
                self.metrics.actuation.invariant_skips += 1;
                continue;
            };
            if !job.is_live() {
                continue;
            }
            match (job.state.status(), placed) {
                (JobStatus::NotStarted | JobStatus::Suspended, true) => {
                    job.ever_started = true;
                    job.state.start();
                }
                (JobStatus::Running | JobStatus::Paused, false) => {
                    job.state.suspend();
                }
                _ => {}
            }
            job.node = achieved.single_node_of(*app);
            if let Some(lat) = latency.get(app) {
                job.transition_until = self.now + *lat;
            }
        }

        self.placement = achieved;
        self.load = merged;
        #[cfg(debug_assertions)]
        {
            self.placement
                .validate(&self.effective_cluster, &self.apps)
                .expect("engine invariant: placement always valid");
            self.load
                .validate(&self.placement, &self.effective_cluster, &self.apps)
                .expect("engine invariant: load always valid");
        }
        for app in ids {
            let total = self.load.app_total(app);
            let Some(job) = self.jobs.get_mut(&app) else {
                self.metrics.actuation.invariant_skips += 1;
                continue;
            };
            job.allocation = total;
            self.reschedule_completion(app);
        }
    }
}
