//! The engine side of the observation layer: per-cycle heartbeat and
//! report processing, believed-death eviction and reinstatement, and
//! the staleness-budget degraded-mode decision.
//!
//! Entirely skipped when [`SimConfig::observation`] is the default —
//! the exactly-off contract: no draws, no state, no trace events, and
//! the control path is bit-identical to a simulator without telemetry
//! modeling.

use super::*;

impl Simulation {
    /// Runs one observation cycle: feeds every node's heartbeat through
    /// the health state machine (declaring believed deaths and
    /// reinstatements), resolves every application's state report into
    /// the view the controller reads this cycle, and checks the
    /// staleness budget. Returns the degraded mode to apply to this
    /// cycle's placement pass, if any.
    pub(super) fn observe_cycle(&mut self, cycle: u64) -> Option<DegradedMode> {
        let cfg = self.config.observation;
        if !cfg.is_active() {
            return None;
        }
        self.observation.begin_cycle();
        let verbose = self.trace.wants(TraceLevel::Verbose);
        let decisions = self.trace.wants(TraceLevel::Decisions);

        // 1. Node heartbeats drive the health state machine. Misses come
        // only from the lossy transport, never from true node failures: a
        // truly failed node's capacity is already zeroed in the effective
        // cluster, and keeping belief faults independent of truth faults
        // is what lets the zero-fault differential hold on scenarios that
        // script outages.
        let nodes: Vec<NodeId> = self.cluster.iter().map(|(id, _)| id).collect();
        let mut died = Vec::new();
        let mut reinstated = Vec::new();
        for node in nodes {
            let miss = cfg.heartbeat_missed(node, cycle, self.now);
            let (transition, misses) = self.observation.observe_node(&cfg, node, miss);
            if miss {
                self.metrics.observation.missed_heartbeats += 1;
                if verbose {
                    self.trace.record(&TraceEvent::HeartbeatMissed {
                        time: self.now.as_secs(),
                        cycle,
                        node,
                        consecutive: u64::from(misses),
                    });
                }
            }
            match transition {
                Some(HealthTransition::Suspected) => {
                    self.metrics.observation.suspects += 1;
                    if decisions {
                        self.trace.record(&TraceEvent::NodeSuspected {
                            time: self.now.as_secs(),
                            cycle,
                            node,
                            misses: u64::from(misses),
                        });
                    }
                }
                Some(HealthTransition::Died) => {
                    self.metrics.observation.deaths += 1;
                    if decisions {
                        self.trace.record(&TraceEvent::NodeDeclaredDead {
                            time: self.now.as_secs(),
                            cycle,
                            node,
                            misses: u64::from(misses),
                        });
                    }
                    died.push(node);
                }
                Some(HealthTransition::Reinstated) => {
                    self.metrics.observation.reinstatements += 1;
                    if decisions {
                        self.trace.record(&TraceEvent::NodeReinstated {
                            time: self.now.as_secs(),
                            cycle,
                            node,
                        });
                    }
                    reinstated.push(node);
                }
                None => {}
            }
        }
        for node in died {
            self.on_believed_death(node);
        }
        for node in reinstated {
            self.on_reinstatement(node);
        }

        // 2. Application state reports become this cycle's views.
        let job_apps: Vec<AppId> = self
            .jobs
            .iter()
            .filter(|(_, j)| j.is_live())
            .map(|(&a, _)| a)
            .collect();
        for app in job_apps {
            let consumed = self.jobs[&app].state.consumed().as_mcycles();
            let reading = self
                .observation
                .observe_job(&cfg, app, consumed, cycle, self.now);
            if reading.lost {
                self.metrics.observation.lost_reports += 1;
            }
        }
        let now = self.now;
        let cycle_len = self.config.cycle;
        let txn_apps: Vec<AppId> = self.txns.keys().copied().collect();
        for app in txn_apps {
            let txn = &self.txns[&app];
            let pattern = &txn.pattern;
            let reading = self.observation.observe_txn(&cfg, app, cycle, now, |lag| {
                // Rates are time-indexed, so staleness is a clamped
                // look-back into the arrival pattern itself.
                let at = (now.as_secs() - cycle_len.as_secs() * f64::from(lag)).max(0.0);
                pattern.rate_at(SimTime::from_secs(at))
            });
            if reading.lost {
                self.metrics.observation.lost_reports += 1;
            }
            if verbose {
                if let TxnView::Estimate(estimate) = reading.view {
                    self.trace.record(&TraceEvent::DemandEstimate {
                        time: now.as_secs(),
                        cycle,
                        app,
                        observed: txn.pattern.rate_at(now),
                        estimate,
                    });
                }
            }
        }

        // 3. The staleness budget: when the oldest report in the snapshot
        // is over budget, the controller degrades rather than act on a
        // picture of the past.
        let age = self.observation.snapshot_age();
        if cfg.staleness_budget_cycles > 0 && age > cfg.staleness_budget_cycles {
            if decisions {
                self.trace.record(&TraceEvent::StaleHold {
                    time: self.now.as_secs(),
                    cycle,
                    age_cycles: u64::from(age),
                    budget: u64::from(cfg.staleness_budget_cycles),
                    mode: cfg.degraded_mode.name(),
                });
            }
            return Some(cfg.degraded_mode);
        }
        None
    }

    /// The controller declares `node` dead on telemetry evidence alone:
    /// its residents are evicted through the same path a true failure
    /// takes and its capacity is zeroed in the controller's believed
    /// cluster. The simulated truth (`effective_cluster`,
    /// `failed_nodes`) is untouched — when the death is a false
    /// positive, reinstatement plus the normal desired/actual machinery
    /// restore service.
    fn on_believed_death(&mut self, node: NodeId) {
        self.observation.believed_dead.insert(node);
        self.rebuild_observed();
        self.evict_node_residents(node);
    }

    /// Heartbeats resumed long enough: the node is believed healthy
    /// again, its capacity returns to the controller's view, and this
    /// cycle's optimization pass may place work on it.
    fn on_reinstatement(&mut self, node: NodeId) {
        self.observation.believed_dead.remove(&node);
        self.rebuild_observed();
    }
}
