//! Property-based tests of the simulator: randomized declarative
//! scenarios must uphold global invariants under every scheduler.

#![deny(deprecated)]

use dynaplace_sim::spec::{ArrivalSpec, GoalSpec, JobGroupSpec, NodeGroupSpec, ScenarioSpec};
use proptest::prelude::*;

fn arb_scenario() -> impl Strategy<Value = ScenarioSpec> {
    let nodes =
        (1usize..4, 800.0..4_000.0f64, 2_000.0..8_000.0f64).prop_map(|(count, cpu, mem)| {
            NodeGroupSpec {
                count,
                name: None,
                cpu_mhz: cpu,
                memory_mb: mem,
                resources: Default::default(),
            }
        });
    let jobs = (
        1usize..8,
        5_000.0..100_000.0f64,
        200.0..1_500.0f64,
        200.0..1_800.0f64,
        1.5..6.0f64,
        5.0..120.0f64,
    )
        .prop_map(
            |(count, work, speed, memory, factor, spacing)| JobGroupSpec {
                count,
                name: None,
                work_mcycles: work,
                max_speed_mhz: speed,
                memory_mb: memory,
                goal: GoalSpec::Factor(factor),
                arrivals: ArrivalSpec::Periodic {
                    every_secs: spacing,
                },
                tasks: 1,
                class: None,
                resources: Default::default(),
            },
        );
    (
        any::<u64>(),
        prop_oneof![
            Just("apc".to_string()),
            Just("fcfs".to_string()),
            Just("edf".to_string())
        ],
        nodes,
        proptest::collection::vec(jobs, 1..3),
    )
        .prop_map(|(seed, scheduler, nodes, jobs)| ScenarioSpec {
            seed,
            scheduler,
            cycle_secs: 20.0,
            horizon_secs: Some(50_000.0),
            free_vm_costs: false,
            resources: vec![],
            nodes: vec![nodes],
            jobs,
            txns: vec![],
            workload: None,
            node_failures: vec![],
            actuation: Default::default(),
            deadline_secs: None,
            sharding: None,
            observation: None,
            trace: Default::default(),
        })
}

/// A scenario is *serviceable* when every job group fits the nodes
/// (memory and speed), so all jobs must eventually complete.
fn serviceable(spec: &ScenarioSpec) -> bool {
    let node = &spec.nodes[0];
    spec.jobs
        .iter()
        .all(|g| g.memory_mb <= node.memory_mb && g.max_speed_mhz > 0.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every serviceable job completes exactly once, and completion
    /// records are internally consistent.
    #[test]
    fn completions_are_consistent(spec in arb_scenario()) {
        prop_assume!(serviceable(&spec));
        let total: usize = spec.jobs.iter().map(|g| g.count).sum();
        let metrics = spec.build().run();
        prop_assert_eq!(metrics.completions.len(), total);
        let mut seen = std::collections::BTreeSet::new();
        for c in &metrics.completions {
            prop_assert!(seen.insert(c.app), "duplicate completion for {}", c.app);
            // distance = deadline − completion, met ⇔ distance ≥ 0.
            let expect = c.deadline.as_secs() - c.completion.as_secs();
            prop_assert!((c.distance.as_secs() - expect).abs() < 1e-6);
            prop_assert_eq!(c.met_deadline, c.distance.as_secs() >= 0.0);
            // Completion cannot precede arrival plus best execution.
            prop_assert!(c.completion >= c.arrival);
        }
    }

    /// No job completes faster than physics allows: completion −
    /// arrival ≥ work / max_speed (single-task jobs).
    #[test]
    fn no_superluminal_jobs(spec in arb_scenario()) {
        prop_assume!(serviceable(&spec));
        let metrics = spec.build().run();
        // Recover each group's best time from the spec: jobs are created
        // group by group in order, `count` apiece.
        let mut best = Vec::new();
        for g in &spec.jobs {
            for _ in 0..g.count {
                best.push(g.work_mcycles / g.max_speed_mhz);
            }
        }
        for c in &metrics.completions {
            let idx = c.app.index();
            let min_time = best[idx];
            let elapsed = c.completion.as_secs() - c.arrival.as_secs();
            prop_assert!(
                elapsed >= min_time - 1e-6,
                "{} finished in {elapsed}s < physical minimum {min_time}s",
                c.app
            );
        }
    }

    /// The same spec always produces the same run (bitwise determinism),
    /// regardless of scheduler.
    #[test]
    fn scenarios_are_deterministic(spec in arb_scenario()) {
        prop_assume!(serviceable(&spec));
        let a = spec.build().run();
        let b = spec.build().run();
        prop_assert_eq!(a.completions.len(), b.completions.len());
        for (x, y) in a.completions.iter().zip(&b.completions) {
            prop_assert_eq!(x.app, y.app);
            prop_assert_eq!(x.completion, y.completion);
        }
        prop_assert_eq!(a.changes, b.changes);
    }

    /// Change counters are consistent: resumes never exceed suspends,
    /// and every live job boots exactly once.
    #[test]
    fn change_counters_are_consistent(spec in arb_scenario()) {
        prop_assume!(serviceable(&spec));
        let total: u64 = spec.jobs.iter().map(|g| g.count as u64).sum();
        let metrics = spec.build().run();
        prop_assert_eq!(metrics.changes.starts, total, "each job boots once");
        prop_assert!(metrics.changes.resumes <= metrics.changes.suspends);
    }
}
