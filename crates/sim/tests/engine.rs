//! Behavioural tests of the discrete-event engine across schedulers.

#![deny(deprecated)]

use dynaplace_apc::optimizer::ApcConfig;
use dynaplace_apc::PolicyHandle;
use dynaplace_batch::job::{JobProfile, JobSpec};
use dynaplace_model::cluster::Cluster;
use dynaplace_model::node::NodeSpec;
use dynaplace_model::units::{CpuSpeed, Memory, SimDuration, SimTime, Work};
use dynaplace_rpf::goal::CompletionGoal;
use dynaplace_sim::costs::VmCostModel;
use dynaplace_sim::engine::{MetricsRetention, SimConfig, Simulation, DEFAULT_STALL_LIMIT};
use dynaplace_sim::scenario::{experiment_one, experiment_two, paper_example, ExampleScenario};

fn mhz(x: f64) -> CpuSpeed {
    CpuSpeed::from_mhz(x)
}
fn mb(x: f64) -> Memory {
    Memory::from_mb(x)
}
fn t(x: f64) -> SimTime {
    SimTime::from_secs(x)
}
fn secs(x: f64) -> SimDuration {
    SimDuration::from_secs(x)
}

fn one_node_cluster() -> Cluster {
    let mut c = Cluster::new();
    c.add_node(NodeSpec::try_new(mhz(1_000.0), mb(2_000.0)).expect("valid node capacities"));
    c
}

fn config(kind: PolicyHandle) -> SimConfig {
    SimConfig {
        cycle: secs(1.0),
        horizon: Some(secs(500.0)),
        costs: VmCostModel::free(),
        scheduler: kind,
        batch_nodes: None,
        static_txn_nodes: None,
        noise: dynaplace_sim::engine::EstimationNoise::NONE,
        profile_from_history: false,
        node_failures: Vec::new(),
        estimate_txn_demand: false,
        record_placements: false,
        actuation: Default::default(),
        observation: Default::default(),
        trace: Default::default(),
        stall_limit: DEFAULT_STALL_LIMIT,
        retention: MetricsRetention::Full,
    }
}

fn apc() -> PolicyHandle {
    PolicyHandle::apc_with(ApcConfig::default(), true)
}

fn fcfs() -> PolicyHandle {
    dynaplace_apc::resolve_policy("fcfs").expect("fcfs is builtin")
}

fn edf() -> PolicyHandle {
    dynaplace_apc::resolve_policy("edf").expect("edf is builtin")
}

fn simple_job(
    sim: &mut Simulation,
    work: f64,
    max_speed: f64,
    memory: f64,
    arrival: f64,
    deadline: f64,
) -> dynaplace_model::ids::AppId {
    sim.add_job(|app| {
        JobSpec::new(
            app,
            JobProfile::single_stage(Work::from_mcycles(work), mhz(max_speed), mb(memory)),
            t(arrival),
            CompletionGoal::new(t(arrival), t(deadline)),
        )
    })
}

/// A single job completes exactly when its work divided by its speed
/// says it should (work conservation).
#[test]
fn single_job_completes_on_schedule() {
    for kind in [apc(), fcfs(), edf()] {
        let mut sim = Simulation::new(one_node_cluster(), config(kind));
        let app = simple_job(&mut sim, 4_000.0, 1_000.0, 750.0, 0.0, 100.0);
        let m = sim.run();
        assert_eq!(m.completions.len(), 1);
        let c = &m.completions[0];
        assert_eq!(c.app, app);
        // Placed at t=0 (first cycle / arrival), runs at 1,000 MHz → 4 s.
        assert!(
            (c.completion.as_secs() - 4.0).abs() < 0.01,
            "completed at {}",
            c.completion
        );
        assert!(c.met_deadline);
    }
}

/// Boot latency delays progress: with the paper's 3.6 s boot the same
/// job finishes 3.6 s later.
#[test]
fn boot_cost_delays_completion() {
    let mut cfg = config(apc());
    cfg.costs = VmCostModel::default();
    let mut sim = Simulation::new(one_node_cluster(), cfg);
    simple_job(&mut sim, 4_000.0, 1_000.0, 750.0, 0.0, 100.0);
    let m = sim.run();
    let c = &m.completions[0];
    assert!(
        (c.completion.as_secs() - 7.6).abs() < 0.01,
        "completed at {}",
        c.completion
    );
}

/// FCFS never suspends or migrates, ever.
#[test]
fn fcfs_makes_no_changes() {
    let mut sim = Simulation::new(one_node_cluster(), config(fcfs()));
    for i in 0..6 {
        simple_job(&mut sim, 2_000.0, 500.0, 750.0, i as f64 * 0.5, 500.0);
    }
    let m = sim.run();
    assert_eq!(m.completions.len(), 6);
    assert_eq!(m.changes.suspends, 0);
    assert_eq!(m.changes.migrations, 0);
    assert_eq!(m.changes.resumes, 0);
    assert_eq!(m.changes.starts, 6);
}

/// EDF preempts a late-deadline job when an urgent one arrives, then
/// resumes it.
#[test]
fn edf_preempts_and_resumes() {
    let mut sim = Simulation::new(one_node_cluster(), config(edf()));
    // Two long jobs with late deadlines fill the node (memory).
    simple_job(&mut sim, 50_000.0, 500.0, 750.0, 0.0, 400.0);
    simple_job(&mut sim, 50_000.0, 500.0, 750.0, 0.0, 400.0);
    // An urgent job arrives later.
    simple_job(&mut sim, 5_000.0, 500.0, 750.0, 10.0, 30.0);
    let m = sim.run();
    assert_eq!(m.completions.len(), 3);
    assert!(m.changes.suspends >= 1, "EDF must preempt");
    assert!(m.changes.resumes >= 1, "EDF must resume the victim");
    // The urgent job met its goal.
    let urgent = m
        .completions
        .iter()
        .find(|c| (c.deadline.as_secs() - 30.0).abs() < 1e-9)
        .unwrap();
    assert!(
        urgent.met_deadline,
        "urgent job finished at {}",
        urgent.completion
    );
}

/// Work is conserved: total allocated CPU-time ≥ total job work for all
/// completed jobs (equality when no idling happens mid-cycle).
#[test]
fn work_conservation() {
    let kinds = [apc(), fcfs(), edf()];
    for kind in kinds {
        let mut sim = Simulation::new(one_node_cluster(), config(kind));
        let total_work = 3.0 * 2_000.0;
        for i in 0..3 {
            simple_job(&mut sim, 2_000.0, 500.0, 750.0, i as f64, 400.0);
        }
        let m = sim.run();
        assert_eq!(m.completions.len(), 3);
        // Every job completed: completion times are consistent with each
        // job doing all its work.
        let makespan = m
            .completions
            .iter()
            .map(|c| c.completion.as_secs())
            .fold(0.0, f64::max);
        // 6,000 Mcycles through a 1,000 MHz node takes ≥ 6 s.
        assert!(makespan >= total_work / 1_000.0 - 1e-6);
    }
}

/// The same seed gives identical runs (determinism).
#[test]
fn runs_are_deterministic() {
    let run = |_: u32| {
        let sim = experiment_two(11, 30, 100.0, config(apc()));
        sim.run()
    };
    let a = run(0);
    let b = run(1);
    assert_eq!(a.completions.len(), b.completions.len());
    for (x, y) in a.completions.iter().zip(&b.completions) {
        assert_eq!(x.app, y.app);
        assert_eq!(x.completion, y.completion);
        assert_eq!(x.rp, y.rp);
    }
    assert_eq!(a.changes, b.changes);
}

/// Suspended jobs make no progress while suspended.
#[test]
fn suspension_freezes_progress() {
    let mut sim = Simulation::new(one_node_cluster(), config(edf()));
    // Long job, preempted by a stream of urgent jobs.
    let victim = simple_job(&mut sim, 100_000.0, 1_000.0, 1_500.0, 0.0, 5_000.0);
    for i in 0..3 {
        simple_job(
            &mut sim,
            5_000.0,
            1_000.0,
            1_500.0,
            20.0 + 10.0 * i as f64,
            60.0 + 10.0 * i as f64,
        );
    }
    let m = sim.run();
    // All jobs complete eventually; the victim's completion reflects the
    // time lost while suspended (it cannot be earlier than work/speed +
    // the time the urgent jobs held the node).
    let v = m.completions.iter().find(|c| c.app == victim).unwrap();
    assert!(v.completion.as_secs() >= 100.0 + 15.0 - 1.0);
}

/// The §4.3 scenarios: S2 completes J2 strictly earlier than S1 does
/// (the tighter goal makes the controller start it earlier).
#[test]
fn example_s2_starts_j2_earlier_than_s1_under_narrative_config() {
    let narrative = || SimConfig {
        cycle: secs(1.0),
        horizon: Some(secs(100.0)),
        costs: VmCostModel::free(),
        scheduler: PolicyHandle::apc_with(ApcConfig::paper_narrative(), false),
        batch_nodes: None,
        static_txn_nodes: None,
        noise: dynaplace_sim::engine::EstimationNoise::NONE,
        profile_from_history: false,
        node_failures: Vec::new(),
        estimate_txn_demand: false,
        record_placements: false,
        actuation: Default::default(),
        observation: Default::default(),
        trace: Default::default(),
        stall_limit: DEFAULT_STALL_LIMIT,
        retention: MetricsRetention::Full,
    };
    let s1 = paper_example(ExampleScenario::S1, narrative()).run();
    let s2 = paper_example(ExampleScenario::S2, narrative()).run();
    let j2_completion = |m: &dynaplace_sim::RunMetrics| {
        m.completions
            .iter()
            .find(|c| c.app.index() == 1)
            .map(|c| c.completion.as_secs())
            .unwrap()
    };
    assert!(
        j2_completion(&s2) < j2_completion(&s1),
        "S2 must start J2 earlier: {} vs {}",
        j2_completion(&s2),
        j2_completion(&s1)
    );
    // All jobs complete in both scenarios.
    assert_eq!(s1.completions.len(), 3);
    assert_eq!(s2.completions.len(), 3);
}

/// Experiment One (scaled down): no suspends or migrations, plateau at
/// u ≈ 0.63.
#[test]
fn experiment_one_scaled_properties() {
    let sim = experiment_one(
        5,
        40,
        260.0,
        SimConfig {
            horizon: None,
            ..SimConfig::apc_default()
        },
    );
    let m = sim.run();
    assert_eq!(m.completions.len(), 40);
    assert_eq!(m.changes.suspends, 0, "identical jobs: no suspends");
    assert_eq!(m.changes.migrations, 0, "identical jobs: no migrations");
    assert_eq!(m.deadline_met_ratio(), Some(1.0));
    // The plateau value 1 − 17,600/47,520 ≈ 0.6296 appears in samples.
    let plateau = m
        .samples
        .iter()
        .filter_map(|s| s.batch_hypothetical_rp)
        .map(|r| r.value())
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        (plateau - 0.6296).abs() < 0.01,
        "plateau should be ≈0.63, got {plateau}"
    );
}
